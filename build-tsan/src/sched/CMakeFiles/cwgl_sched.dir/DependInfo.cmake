
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/cluster_state.cpp" "src/sched/CMakeFiles/cwgl_sched.dir/cluster_state.cpp.o" "gcc" "src/sched/CMakeFiles/cwgl_sched.dir/cluster_state.cpp.o.d"
  "/root/repo/src/sched/policy.cpp" "src/sched/CMakeFiles/cwgl_sched.dir/policy.cpp.o" "gcc" "src/sched/CMakeFiles/cwgl_sched.dir/policy.cpp.o.d"
  "/root/repo/src/sched/simulator.cpp" "src/sched/CMakeFiles/cwgl_sched.dir/simulator.cpp.o" "gcc" "src/sched/CMakeFiles/cwgl_sched.dir/simulator.cpp.o.d"
  "/root/repo/src/sched/workload.cpp" "src/sched/CMakeFiles/cwgl_sched.dir/workload.cpp.o" "gcc" "src/sched/CMakeFiles/cwgl_sched.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/cwgl_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/graph/CMakeFiles/cwgl_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/cwgl_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/cwgl_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/kernel/CMakeFiles/cwgl_kernel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cluster/CMakeFiles/cwgl_cluster.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/cwgl_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline.cpp" "src/core/CMakeFiles/cwgl_core.dir/baseline.cpp.o" "gcc" "src/core/CMakeFiles/cwgl_core.dir/baseline.cpp.o.d"
  "/root/repo/src/core/characterization.cpp" "src/core/CMakeFiles/cwgl_core.dir/characterization.cpp.o" "gcc" "src/core/CMakeFiles/cwgl_core.dir/characterization.cpp.o.d"
  "/root/repo/src/core/clustering.cpp" "src/core/CMakeFiles/cwgl_core.dir/clustering.cpp.o" "gcc" "src/core/CMakeFiles/cwgl_core.dir/clustering.cpp.o.d"
  "/root/repo/src/core/comparison.cpp" "src/core/CMakeFiles/cwgl_core.dir/comparison.cpp.o" "gcc" "src/core/CMakeFiles/cwgl_core.dir/comparison.cpp.o.d"
  "/root/repo/src/core/job_dag.cpp" "src/core/CMakeFiles/cwgl_core.dir/job_dag.cpp.o" "gcc" "src/core/CMakeFiles/cwgl_core.dir/job_dag.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/cwgl_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/cwgl_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/core/CMakeFiles/cwgl_core.dir/predictor.cpp.o" "gcc" "src/core/CMakeFiles/cwgl_core.dir/predictor.cpp.o.d"
  "/root/repo/src/core/report_json.cpp" "src/core/CMakeFiles/cwgl_core.dir/report_json.cpp.o" "gcc" "src/core/CMakeFiles/cwgl_core.dir/report_json.cpp.o.d"
  "/root/repo/src/core/report_text.cpp" "src/core/CMakeFiles/cwgl_core.dir/report_text.cpp.o" "gcc" "src/core/CMakeFiles/cwgl_core.dir/report_text.cpp.o.d"
  "/root/repo/src/core/resource_report.cpp" "src/core/CMakeFiles/cwgl_core.dir/resource_report.cpp.o" "gcc" "src/core/CMakeFiles/cwgl_core.dir/resource_report.cpp.o.d"
  "/root/repo/src/core/similarity.cpp" "src/core/CMakeFiles/cwgl_core.dir/similarity.cpp.o" "gcc" "src/core/CMakeFiles/cwgl_core.dir/similarity.cpp.o.d"
  "/root/repo/src/core/topology_census.cpp" "src/core/CMakeFiles/cwgl_core.dir/topology_census.cpp.o" "gcc" "src/core/CMakeFiles/cwgl_core.dir/topology_census.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/trace/CMakeFiles/cwgl_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/graph/CMakeFiles/cwgl_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/kernel/CMakeFiles/cwgl_kernel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cluster/CMakeFiles/cwgl_cluster.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/cwgl_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/cwgl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/util_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/graph_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/trace_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/linalg_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/kernel_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/cluster_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/sched_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/cli_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/integration_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/core_tests[1]_include.cmake")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/linalg/eigen_test.cpp" "tests/CMakeFiles/linalg_tests.dir/linalg/eigen_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_tests.dir/linalg/eigen_test.cpp.o.d"
  "/root/repo/tests/linalg/matrix_test.cpp" "tests/CMakeFiles/linalg_tests.dir/linalg/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_tests.dir/linalg/matrix_test.cpp.o.d"
  "/root/repo/tests/linalg/solve_test.cpp" "tests/CMakeFiles/linalg_tests.dir/linalg/solve_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_tests.dir/linalg/solve_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/cwgl_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sched/CMakeFiles/cwgl_sched.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cluster/CMakeFiles/cwgl_cluster.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/kernel/CMakeFiles/cwgl_kernel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/cwgl_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/cwgl_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/graph/CMakeFiles/cwgl_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/cwgl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

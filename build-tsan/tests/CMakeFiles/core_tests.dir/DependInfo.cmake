
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/baseline_test.cpp" "tests/CMakeFiles/core_tests.dir/core/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/baseline_test.cpp.o.d"
  "/root/repo/tests/core/characterization_test.cpp" "tests/CMakeFiles/core_tests.dir/core/characterization_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/characterization_test.cpp.o.d"
  "/root/repo/tests/core/clustering_test.cpp" "tests/CMakeFiles/core_tests.dir/core/clustering_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/clustering_test.cpp.o.d"
  "/root/repo/tests/core/comparison_test.cpp" "tests/CMakeFiles/core_tests.dir/core/comparison_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/comparison_test.cpp.o.d"
  "/root/repo/tests/core/job_dag_test.cpp" "tests/CMakeFiles/core_tests.dir/core/job_dag_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/job_dag_test.cpp.o.d"
  "/root/repo/tests/core/pipeline_test.cpp" "tests/CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o.d"
  "/root/repo/tests/core/predictor_test.cpp" "tests/CMakeFiles/core_tests.dir/core/predictor_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/predictor_test.cpp.o.d"
  "/root/repo/tests/core/report_json_test.cpp" "tests/CMakeFiles/core_tests.dir/core/report_json_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/report_json_test.cpp.o.d"
  "/root/repo/tests/core/resource_report_test.cpp" "tests/CMakeFiles/core_tests.dir/core/resource_report_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/resource_report_test.cpp.o.d"
  "/root/repo/tests/core/similarity_test.cpp" "tests/CMakeFiles/core_tests.dir/core/similarity_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/similarity_test.cpp.o.d"
  "/root/repo/tests/core/topology_census_test.cpp" "tests/CMakeFiles/core_tests.dir/core/topology_census_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/topology_census_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/cwgl_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sched/CMakeFiles/cwgl_sched.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cluster/CMakeFiles/cwgl_cluster.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/kernel/CMakeFiles/cwgl_kernel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/cwgl_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/cwgl_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/graph/CMakeFiles/cwgl_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/cwgl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

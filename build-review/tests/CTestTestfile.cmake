# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/util_tests[1]_include.cmake")
include("/root/repo/build-review/tests/graph_tests[1]_include.cmake")
include("/root/repo/build-review/tests/trace_tests[1]_include.cmake")
include("/root/repo/build-review/tests/linalg_tests[1]_include.cmake")
include("/root/repo/build-review/tests/kernel_tests[1]_include.cmake")
include("/root/repo/build-review/tests/cluster_tests[1]_include.cmake")
include("/root/repo/build-review/tests/sched_tests[1]_include.cmake")
include("/root/repo/build-review/tests/cli_tests[1]_include.cmake")
include("/root/repo/build-review/tests/integration_tests[1]_include.cmake")
include("/root/repo/build-review/tests/core_tests[1]_include.cmake")

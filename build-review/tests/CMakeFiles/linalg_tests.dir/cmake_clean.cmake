file(REMOVE_RECURSE
  "CMakeFiles/linalg_tests.dir/linalg/eigen_test.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/eigen_test.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/matrix_test.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/matrix_test.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/solve_test.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/solve_test.cpp.o.d"
  "linalg_tests"
  "linalg_tests.pdb"
  "linalg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for linalg_tests.
# This may be replaced when dependencies are built.

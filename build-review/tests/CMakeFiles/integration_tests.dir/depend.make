# Empty dependencies file for integration_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/end_to_end_test.cpp.o.d"
  "integration_tests"
  "integration_tests.pdb"
  "integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sched_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sched_tests.dir/sched/cluster_state_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/cluster_state_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/policy_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/policy_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/simulator_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/simulator_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/workload_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/workload_test.cpp.o.d"
  "sched_tests"
  "sched_tests.pdb"
  "sched_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

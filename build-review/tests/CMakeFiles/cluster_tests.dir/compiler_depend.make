# Empty compiler generated dependencies file for cluster_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cluster_tests.dir/cluster/kmeans_test.cpp.o"
  "CMakeFiles/cluster_tests.dir/cluster/kmeans_test.cpp.o.d"
  "CMakeFiles/cluster_tests.dir/cluster/metrics_test.cpp.o"
  "CMakeFiles/cluster_tests.dir/cluster/metrics_test.cpp.o.d"
  "CMakeFiles/cluster_tests.dir/cluster/spectral_test.cpp.o"
  "CMakeFiles/cluster_tests.dir/cluster/spectral_test.cpp.o.d"
  "cluster_tests"
  "cluster_tests.pdb"
  "cluster_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/cli_tests.dir/cli/args_test.cpp.o"
  "CMakeFiles/cli_tests.dir/cli/args_test.cpp.o.d"
  "CMakeFiles/cli_tests.dir/cli/commands_test.cpp.o"
  "CMakeFiles/cli_tests.dir/cli/commands_test.cpp.o.d"
  "cli_tests"
  "cli_tests.pdb"
  "cli_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

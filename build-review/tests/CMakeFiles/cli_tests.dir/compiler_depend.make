# Empty compiler generated dependencies file for cli_tests.
# This may be replaced when dependencies are built.

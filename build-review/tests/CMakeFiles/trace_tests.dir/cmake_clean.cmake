file(REMOVE_RECURSE
  "CMakeFiles/trace_tests.dir/trace/filter_test.cpp.o"
  "CMakeFiles/trace_tests.dir/trace/filter_test.cpp.o.d"
  "CMakeFiles/trace_tests.dir/trace/generator_property_test.cpp.o"
  "CMakeFiles/trace_tests.dir/trace/generator_property_test.cpp.o.d"
  "CMakeFiles/trace_tests.dir/trace/generator_test.cpp.o"
  "CMakeFiles/trace_tests.dir/trace/generator_test.cpp.o.d"
  "CMakeFiles/trace_tests.dir/trace/instance_census_test.cpp.o"
  "CMakeFiles/trace_tests.dir/trace/instance_census_test.cpp.o.d"
  "CMakeFiles/trace_tests.dir/trace/io_test.cpp.o"
  "CMakeFiles/trace_tests.dir/trace/io_test.cpp.o.d"
  "CMakeFiles/trace_tests.dir/trace/schema_test.cpp.o"
  "CMakeFiles/trace_tests.dir/trace/schema_test.cpp.o.d"
  "CMakeFiles/trace_tests.dir/trace/taskname_test.cpp.o"
  "CMakeFiles/trace_tests.dir/trace/taskname_test.cpp.o.d"
  "trace_tests"
  "trace_tests.pdb"
  "trace_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

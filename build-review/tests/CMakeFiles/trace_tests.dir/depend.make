# Empty dependencies file for trace_tests.
# This may be replaced when dependencies are built.

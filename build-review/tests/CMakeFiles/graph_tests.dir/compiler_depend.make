# Empty compiler generated dependencies file for graph_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/graph_tests.dir/graph/algorithms_property_test.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/algorithms_property_test.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/algorithms_test.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/algorithms_test.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/canonical_test.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/canonical_test.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/conflation_property_test.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/conflation_property_test.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/conflation_test.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/conflation_test.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/digraph_test.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/digraph_test.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/dot_test.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/dot_test.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/isomorphism_test.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/isomorphism_test.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/patterns_test.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/patterns_test.cpp.o.d"
  "graph_tests"
  "graph_tests.pdb"
  "graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/kernel_tests.dir/kernel/base_kernels_test.cpp.o"
  "CMakeFiles/kernel_tests.dir/kernel/base_kernels_test.cpp.o.d"
  "CMakeFiles/kernel_tests.dir/kernel/embedding_test.cpp.o"
  "CMakeFiles/kernel_tests.dir/kernel/embedding_test.cpp.o.d"
  "CMakeFiles/kernel_tests.dir/kernel/ged_test.cpp.o"
  "CMakeFiles/kernel_tests.dir/kernel/ged_test.cpp.o.d"
  "CMakeFiles/kernel_tests.dir/kernel/gram_property_test.cpp.o"
  "CMakeFiles/kernel_tests.dir/kernel/gram_property_test.cpp.o.d"
  "CMakeFiles/kernel_tests.dir/kernel/gram_test.cpp.o"
  "CMakeFiles/kernel_tests.dir/kernel/gram_test.cpp.o.d"
  "CMakeFiles/kernel_tests.dir/kernel/label_dict_test.cpp.o"
  "CMakeFiles/kernel_tests.dir/kernel/label_dict_test.cpp.o.d"
  "CMakeFiles/kernel_tests.dir/kernel/wl_parallel_test.cpp.o"
  "CMakeFiles/kernel_tests.dir/kernel/wl_parallel_test.cpp.o.d"
  "CMakeFiles/kernel_tests.dir/kernel/wl_test.cpp.o"
  "CMakeFiles/kernel_tests.dir/kernel/wl_test.cpp.o.d"
  "kernel_tests"
  "kernel_tests.pdb"
  "kernel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

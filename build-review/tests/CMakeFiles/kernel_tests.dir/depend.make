# Empty dependencies file for kernel_tests.
# This may be replaced when dependencies are built.

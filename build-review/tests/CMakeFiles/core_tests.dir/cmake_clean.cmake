file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/baseline_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/baseline_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/characterization_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/characterization_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/clustering_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/clustering_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/comparison_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/comparison_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/job_dag_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/job_dag_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/predictor_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/predictor_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/report_json_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/report_json_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/resource_report_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/resource_report_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/similarity_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/similarity_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/topology_census_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/topology_census_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for core_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/util_tests.dir/util/csv_test.cpp.o"
  "CMakeFiles/util_tests.dir/util/csv_test.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/json_test.cpp.o"
  "CMakeFiles/util_tests.dir/util/json_test.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/rng_test.cpp.o"
  "CMakeFiles/util_tests.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/stats_test.cpp.o"
  "CMakeFiles/util_tests.dir/util/stats_test.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/strings_test.cpp.o"
  "CMakeFiles/util_tests.dir/util/strings_test.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/thread_pool_stress_test.cpp.o"
  "CMakeFiles/util_tests.dir/util/thread_pool_stress_test.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/thread_pool_test.cpp.o"
  "CMakeFiles/util_tests.dir/util/thread_pool_test.cpp.o.d"
  "util_tests"
  "util_tests.pdb"
  "util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

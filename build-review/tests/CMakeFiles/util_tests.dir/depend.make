# Empty dependencies file for util_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_features_after.dir/bench_fig5_features_after.cpp.o"
  "CMakeFiles/bench_fig5_features_after.dir/bench_fig5_features_after.cpp.o.d"
  "bench_fig5_features_after"
  "bench_fig5_features_after.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_features_after.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

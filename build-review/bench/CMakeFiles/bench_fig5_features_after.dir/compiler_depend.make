# Empty compiler generated dependencies file for bench_fig5_features_after.
# This may be replaced when dependencies are built.

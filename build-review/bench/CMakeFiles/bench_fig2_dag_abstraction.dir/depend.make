# Empty dependencies file for bench_fig2_dag_abstraction.
# This may be replaced when dependencies are built.

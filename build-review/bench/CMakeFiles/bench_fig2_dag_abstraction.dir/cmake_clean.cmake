file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_dag_abstraction.dir/bench_fig2_dag_abstraction.cpp.o"
  "CMakeFiles/bench_fig2_dag_abstraction.dir/bench_fig2_dag_abstraction.cpp.o.d"
  "bench_fig2_dag_abstraction"
  "bench_fig2_dag_abstraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_dag_abstraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

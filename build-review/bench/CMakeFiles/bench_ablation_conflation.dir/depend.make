# Empty dependencies file for bench_ablation_conflation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_conflation.dir/bench_ablation_conflation.cpp.o"
  "CMakeFiles/bench_ablation_conflation.dir/bench_ablation_conflation.cpp.o.d"
  "bench_ablation_conflation"
  "bench_ablation_conflation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_conflation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

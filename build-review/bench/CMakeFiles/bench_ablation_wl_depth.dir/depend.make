# Empty dependencies file for bench_ablation_wl_depth.
# This may be replaced when dependencies are built.

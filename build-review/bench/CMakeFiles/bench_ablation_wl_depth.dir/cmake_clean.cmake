file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wl_depth.dir/bench_ablation_wl_depth.cpp.o"
  "CMakeFiles/bench_ablation_wl_depth.dir/bench_ablation_wl_depth.cpp.o.d"
  "bench_ablation_wl_depth"
  "bench_ablation_wl_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wl_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_conflation.dir/bench_fig3_conflation.cpp.o"
  "CMakeFiles/bench_fig3_conflation.dir/bench_fig3_conflation.cpp.o.d"
  "bench_fig3_conflation"
  "bench_fig3_conflation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_conflation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig3_conflation.
# This may be replaced when dependencies are built.

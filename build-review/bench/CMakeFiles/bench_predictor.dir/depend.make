# Empty dependencies file for bench_predictor.
# This may be replaced when dependencies are built.

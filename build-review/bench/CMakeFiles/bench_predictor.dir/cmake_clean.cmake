file(REMOVE_RECURSE
  "CMakeFiles/bench_predictor.dir/bench_predictor.cpp.o"
  "CMakeFiles/bench_predictor.dir/bench_predictor.cpp.o.d"
  "bench_predictor"
  "bench_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig8_representatives.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_representatives.dir/bench_fig8_representatives.cpp.o"
  "CMakeFiles/bench_fig8_representatives.dir/bench_fig8_representatives.cpp.o.d"
  "bench_fig8_representatives"
  "bench_fig8_representatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_representatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_clustering.dir/bench_fig9_clustering.cpp.o"
  "CMakeFiles/bench_fig9_clustering.dir/bench_fig9_clustering.cpp.o.d"
  "bench_fig9_clustering"
  "bench_fig9_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table1_census.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_census.dir/bench_table1_census.cpp.o"
  "CMakeFiles/bench_table1_census.dir/bench_table1_census.cpp.o.d"
  "bench_table1_census"
  "bench_table1_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

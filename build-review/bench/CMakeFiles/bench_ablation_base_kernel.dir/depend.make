# Empty dependencies file for bench_ablation_base_kernel.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_base_kernel.dir/bench_ablation_base_kernel.cpp.o"
  "CMakeFiles/bench_ablation_base_kernel.dir/bench_ablation_base_kernel.cpp.o.d"
  "bench_ablation_base_kernel"
  "bench_ablation_base_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_base_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig4_features_before.
# This may be replaced when dependencies are built.

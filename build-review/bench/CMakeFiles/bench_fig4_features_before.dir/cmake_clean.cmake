file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_features_before.dir/bench_fig4_features_before.cpp.o"
  "CMakeFiles/bench_fig4_features_before.dir/bench_fig4_features_before.cpp.o.d"
  "bench_fig4_features_before"
  "bench_fig4_features_before.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_features_before.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

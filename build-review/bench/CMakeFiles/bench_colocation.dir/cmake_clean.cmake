file(REMOVE_RECURSE
  "CMakeFiles/bench_colocation.dir/bench_colocation.cpp.o"
  "CMakeFiles/bench_colocation.dir/bench_colocation.cpp.o.d"
  "bench_colocation"
  "bench_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_colocation.
# This may be replaced when dependencies are built.

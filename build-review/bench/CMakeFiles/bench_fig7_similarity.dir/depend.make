# Empty dependencies file for bench_fig7_similarity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_similarity.dir/bench_fig7_similarity.cpp.o"
  "CMakeFiles/bench_fig7_similarity.dir/bench_fig7_similarity.cpp.o.d"
  "bench_fig7_similarity"
  "bench_fig7_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_sched_policies.dir/bench_sched_policies.cpp.o"
  "CMakeFiles/bench_sched_policies.dir/bench_sched_policies.cpp.o.d"
  "bench_sched_policies"
  "bench_sched_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sched_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_sched_policies.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_embedding_scale.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_embedding_scale.dir/bench_embedding_scale.cpp.o"
  "CMakeFiles/bench_embedding_scale.dir/bench_embedding_scale.cpp.o.d"
  "bench_embedding_scale"
  "bench_embedding_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_embedding_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_resource_kmeans.dir/bench_baseline_resource_kmeans.cpp.o"
  "CMakeFiles/bench_baseline_resource_kmeans.dir/bench_baseline_resource_kmeans.cpp.o.d"
  "bench_baseline_resource_kmeans"
  "bench_baseline_resource_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_resource_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_baseline_resource_kmeans.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig6_task_types.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_task_types.dir/bench_fig6_task_types.cpp.o"
  "CMakeFiles/bench_fig6_task_types.dir/bench_fig6_task_types.cpp.o.d"
  "bench_fig6_task_types"
  "bench_fig6_task_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_task_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

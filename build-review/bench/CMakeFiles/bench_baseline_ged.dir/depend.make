# Empty dependencies file for bench_baseline_ged.
# This may be replaced when dependencies are built.

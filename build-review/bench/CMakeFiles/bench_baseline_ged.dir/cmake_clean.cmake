file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_ged.dir/bench_baseline_ged.cpp.o"
  "CMakeFiles/bench_baseline_ged.dir/bench_baseline_ged.cpp.o.d"
  "bench_baseline_ged"
  "bench_baseline_ged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_ged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

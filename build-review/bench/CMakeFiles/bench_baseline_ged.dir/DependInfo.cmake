
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_baseline_ged.cpp" "bench/CMakeFiles/bench_baseline_ged.dir/bench_baseline_ged.cpp.o" "gcc" "bench/CMakeFiles/bench_baseline_ged.dir/bench_baseline_ged.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/cwgl_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sched/CMakeFiles/cwgl_sched.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cluster/CMakeFiles/cwgl_cluster.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kernel/CMakeFiles/cwgl_kernel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/cwgl_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/cwgl_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/cwgl_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/cwgl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

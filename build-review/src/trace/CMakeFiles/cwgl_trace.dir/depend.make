# Empty dependencies file for cwgl_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cwgl_trace.dir/filter.cpp.o"
  "CMakeFiles/cwgl_trace.dir/filter.cpp.o.d"
  "CMakeFiles/cwgl_trace.dir/generator.cpp.o"
  "CMakeFiles/cwgl_trace.dir/generator.cpp.o.d"
  "CMakeFiles/cwgl_trace.dir/instance_census.cpp.o"
  "CMakeFiles/cwgl_trace.dir/instance_census.cpp.o.d"
  "CMakeFiles/cwgl_trace.dir/io.cpp.o"
  "CMakeFiles/cwgl_trace.dir/io.cpp.o.d"
  "CMakeFiles/cwgl_trace.dir/schema.cpp.o"
  "CMakeFiles/cwgl_trace.dir/schema.cpp.o.d"
  "CMakeFiles/cwgl_trace.dir/taskname.cpp.o"
  "CMakeFiles/cwgl_trace.dir/taskname.cpp.o.d"
  "libcwgl_trace.a"
  "libcwgl_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwgl_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/filter.cpp" "src/trace/CMakeFiles/cwgl_trace.dir/filter.cpp.o" "gcc" "src/trace/CMakeFiles/cwgl_trace.dir/filter.cpp.o.d"
  "/root/repo/src/trace/generator.cpp" "src/trace/CMakeFiles/cwgl_trace.dir/generator.cpp.o" "gcc" "src/trace/CMakeFiles/cwgl_trace.dir/generator.cpp.o.d"
  "/root/repo/src/trace/instance_census.cpp" "src/trace/CMakeFiles/cwgl_trace.dir/instance_census.cpp.o" "gcc" "src/trace/CMakeFiles/cwgl_trace.dir/instance_census.cpp.o.d"
  "/root/repo/src/trace/io.cpp" "src/trace/CMakeFiles/cwgl_trace.dir/io.cpp.o" "gcc" "src/trace/CMakeFiles/cwgl_trace.dir/io.cpp.o.d"
  "/root/repo/src/trace/schema.cpp" "src/trace/CMakeFiles/cwgl_trace.dir/schema.cpp.o" "gcc" "src/trace/CMakeFiles/cwgl_trace.dir/schema.cpp.o.d"
  "/root/repo/src/trace/taskname.cpp" "src/trace/CMakeFiles/cwgl_trace.dir/taskname.cpp.o" "gcc" "src/trace/CMakeFiles/cwgl_trace.dir/taskname.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/cwgl_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/cwgl_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcwgl_trace.a"
)

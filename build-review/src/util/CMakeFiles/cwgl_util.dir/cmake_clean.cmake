file(REMOVE_RECURSE
  "CMakeFiles/cwgl_util.dir/csv.cpp.o"
  "CMakeFiles/cwgl_util.dir/csv.cpp.o.d"
  "CMakeFiles/cwgl_util.dir/json.cpp.o"
  "CMakeFiles/cwgl_util.dir/json.cpp.o.d"
  "CMakeFiles/cwgl_util.dir/rng.cpp.o"
  "CMakeFiles/cwgl_util.dir/rng.cpp.o.d"
  "CMakeFiles/cwgl_util.dir/stats.cpp.o"
  "CMakeFiles/cwgl_util.dir/stats.cpp.o.d"
  "CMakeFiles/cwgl_util.dir/strings.cpp.o"
  "CMakeFiles/cwgl_util.dir/strings.cpp.o.d"
  "CMakeFiles/cwgl_util.dir/thread_pool.cpp.o"
  "CMakeFiles/cwgl_util.dir/thread_pool.cpp.o.d"
  "libcwgl_util.a"
  "libcwgl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwgl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcwgl_util.a"
)

# Empty compiler generated dependencies file for cwgl_util.
# This may be replaced when dependencies are built.

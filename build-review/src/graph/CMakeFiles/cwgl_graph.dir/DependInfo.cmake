
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cpp" "src/graph/CMakeFiles/cwgl_graph.dir/algorithms.cpp.o" "gcc" "src/graph/CMakeFiles/cwgl_graph.dir/algorithms.cpp.o.d"
  "/root/repo/src/graph/canonical.cpp" "src/graph/CMakeFiles/cwgl_graph.dir/canonical.cpp.o" "gcc" "src/graph/CMakeFiles/cwgl_graph.dir/canonical.cpp.o.d"
  "/root/repo/src/graph/conflation.cpp" "src/graph/CMakeFiles/cwgl_graph.dir/conflation.cpp.o" "gcc" "src/graph/CMakeFiles/cwgl_graph.dir/conflation.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/graph/CMakeFiles/cwgl_graph.dir/digraph.cpp.o" "gcc" "src/graph/CMakeFiles/cwgl_graph.dir/digraph.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/graph/CMakeFiles/cwgl_graph.dir/dot.cpp.o" "gcc" "src/graph/CMakeFiles/cwgl_graph.dir/dot.cpp.o.d"
  "/root/repo/src/graph/isomorphism.cpp" "src/graph/CMakeFiles/cwgl_graph.dir/isomorphism.cpp.o" "gcc" "src/graph/CMakeFiles/cwgl_graph.dir/isomorphism.cpp.o.d"
  "/root/repo/src/graph/patterns.cpp" "src/graph/CMakeFiles/cwgl_graph.dir/patterns.cpp.o" "gcc" "src/graph/CMakeFiles/cwgl_graph.dir/patterns.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/cwgl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

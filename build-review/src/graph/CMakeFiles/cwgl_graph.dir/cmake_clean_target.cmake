file(REMOVE_RECURSE
  "libcwgl_graph.a"
)

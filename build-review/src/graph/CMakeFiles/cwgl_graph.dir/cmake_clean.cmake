file(REMOVE_RECURSE
  "CMakeFiles/cwgl_graph.dir/algorithms.cpp.o"
  "CMakeFiles/cwgl_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/cwgl_graph.dir/canonical.cpp.o"
  "CMakeFiles/cwgl_graph.dir/canonical.cpp.o.d"
  "CMakeFiles/cwgl_graph.dir/conflation.cpp.o"
  "CMakeFiles/cwgl_graph.dir/conflation.cpp.o.d"
  "CMakeFiles/cwgl_graph.dir/digraph.cpp.o"
  "CMakeFiles/cwgl_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/cwgl_graph.dir/dot.cpp.o"
  "CMakeFiles/cwgl_graph.dir/dot.cpp.o.d"
  "CMakeFiles/cwgl_graph.dir/isomorphism.cpp.o"
  "CMakeFiles/cwgl_graph.dir/isomorphism.cpp.o.d"
  "CMakeFiles/cwgl_graph.dir/patterns.cpp.o"
  "CMakeFiles/cwgl_graph.dir/patterns.cpp.o.d"
  "libcwgl_graph.a"
  "libcwgl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwgl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cwgl_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cwgl_sched.dir/cluster_state.cpp.o"
  "CMakeFiles/cwgl_sched.dir/cluster_state.cpp.o.d"
  "CMakeFiles/cwgl_sched.dir/policy.cpp.o"
  "CMakeFiles/cwgl_sched.dir/policy.cpp.o.d"
  "CMakeFiles/cwgl_sched.dir/simulator.cpp.o"
  "CMakeFiles/cwgl_sched.dir/simulator.cpp.o.d"
  "CMakeFiles/cwgl_sched.dir/workload.cpp.o"
  "CMakeFiles/cwgl_sched.dir/workload.cpp.o.d"
  "libcwgl_sched.a"
  "libcwgl_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwgl_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

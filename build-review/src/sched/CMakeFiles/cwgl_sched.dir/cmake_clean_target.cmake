file(REMOVE_RECURSE
  "libcwgl_sched.a"
)

# Empty dependencies file for cwgl_sched.
# This may be replaced when dependencies are built.

# Empty dependencies file for cwgl_cluster.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cwgl_cluster.dir/kmeans.cpp.o"
  "CMakeFiles/cwgl_cluster.dir/kmeans.cpp.o.d"
  "CMakeFiles/cwgl_cluster.dir/metrics.cpp.o"
  "CMakeFiles/cwgl_cluster.dir/metrics.cpp.o.d"
  "CMakeFiles/cwgl_cluster.dir/spectral.cpp.o"
  "CMakeFiles/cwgl_cluster.dir/spectral.cpp.o.d"
  "libcwgl_cluster.a"
  "libcwgl_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwgl_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

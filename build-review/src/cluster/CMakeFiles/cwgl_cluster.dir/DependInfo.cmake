
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/kmeans.cpp" "src/cluster/CMakeFiles/cwgl_cluster.dir/kmeans.cpp.o" "gcc" "src/cluster/CMakeFiles/cwgl_cluster.dir/kmeans.cpp.o.d"
  "/root/repo/src/cluster/metrics.cpp" "src/cluster/CMakeFiles/cwgl_cluster.dir/metrics.cpp.o" "gcc" "src/cluster/CMakeFiles/cwgl_cluster.dir/metrics.cpp.o.d"
  "/root/repo/src/cluster/spectral.cpp" "src/cluster/CMakeFiles/cwgl_cluster.dir/spectral.cpp.o" "gcc" "src/cluster/CMakeFiles/cwgl_cluster.dir/spectral.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/linalg/CMakeFiles/cwgl_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/cwgl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

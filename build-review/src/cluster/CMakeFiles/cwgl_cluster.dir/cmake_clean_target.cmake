file(REMOVE_RECURSE
  "libcwgl_cluster.a"
)

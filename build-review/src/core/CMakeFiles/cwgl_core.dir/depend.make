# Empty dependencies file for cwgl_core.
# This may be replaced when dependencies are built.

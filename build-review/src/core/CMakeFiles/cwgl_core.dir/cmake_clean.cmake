file(REMOVE_RECURSE
  "CMakeFiles/cwgl_core.dir/baseline.cpp.o"
  "CMakeFiles/cwgl_core.dir/baseline.cpp.o.d"
  "CMakeFiles/cwgl_core.dir/characterization.cpp.o"
  "CMakeFiles/cwgl_core.dir/characterization.cpp.o.d"
  "CMakeFiles/cwgl_core.dir/clustering.cpp.o"
  "CMakeFiles/cwgl_core.dir/clustering.cpp.o.d"
  "CMakeFiles/cwgl_core.dir/comparison.cpp.o"
  "CMakeFiles/cwgl_core.dir/comparison.cpp.o.d"
  "CMakeFiles/cwgl_core.dir/job_dag.cpp.o"
  "CMakeFiles/cwgl_core.dir/job_dag.cpp.o.d"
  "CMakeFiles/cwgl_core.dir/pipeline.cpp.o"
  "CMakeFiles/cwgl_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/cwgl_core.dir/predictor.cpp.o"
  "CMakeFiles/cwgl_core.dir/predictor.cpp.o.d"
  "CMakeFiles/cwgl_core.dir/report_json.cpp.o"
  "CMakeFiles/cwgl_core.dir/report_json.cpp.o.d"
  "CMakeFiles/cwgl_core.dir/report_text.cpp.o"
  "CMakeFiles/cwgl_core.dir/report_text.cpp.o.d"
  "CMakeFiles/cwgl_core.dir/resource_report.cpp.o"
  "CMakeFiles/cwgl_core.dir/resource_report.cpp.o.d"
  "CMakeFiles/cwgl_core.dir/similarity.cpp.o"
  "CMakeFiles/cwgl_core.dir/similarity.cpp.o.d"
  "CMakeFiles/cwgl_core.dir/topology_census.cpp.o"
  "CMakeFiles/cwgl_core.dir/topology_census.cpp.o.d"
  "libcwgl_core.a"
  "libcwgl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwgl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcwgl_core.a"
)

# Empty dependencies file for cwgl_linalg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cwgl_linalg.dir/eigen.cpp.o"
  "CMakeFiles/cwgl_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/cwgl_linalg.dir/matrix.cpp.o"
  "CMakeFiles/cwgl_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/cwgl_linalg.dir/solve.cpp.o"
  "CMakeFiles/cwgl_linalg.dir/solve.cpp.o.d"
  "libcwgl_linalg.a"
  "libcwgl_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwgl_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

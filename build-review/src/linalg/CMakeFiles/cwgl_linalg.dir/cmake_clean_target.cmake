file(REMOVE_RECURSE
  "libcwgl_linalg.a"
)

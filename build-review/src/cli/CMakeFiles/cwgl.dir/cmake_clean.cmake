file(REMOVE_RECURSE
  "CMakeFiles/cwgl.dir/main.cpp.o"
  "CMakeFiles/cwgl.dir/main.cpp.o.d"
  "cwgl"
  "cwgl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwgl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

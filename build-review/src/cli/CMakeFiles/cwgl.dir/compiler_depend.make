# Empty compiler generated dependencies file for cwgl.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for cwgl_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cwgl_cli.dir/args.cpp.o"
  "CMakeFiles/cwgl_cli.dir/args.cpp.o.d"
  "CMakeFiles/cwgl_cli.dir/commands.cpp.o"
  "CMakeFiles/cwgl_cli.dir/commands.cpp.o.d"
  "libcwgl_cli.a"
  "libcwgl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwgl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

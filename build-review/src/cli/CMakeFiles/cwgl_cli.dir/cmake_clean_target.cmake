file(REMOVE_RECURSE
  "libcwgl_cli.a"
)

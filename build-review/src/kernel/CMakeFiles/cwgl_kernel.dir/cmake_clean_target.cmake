file(REMOVE_RECURSE
  "libcwgl_kernel.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/base_kernels.cpp" "src/kernel/CMakeFiles/cwgl_kernel.dir/base_kernels.cpp.o" "gcc" "src/kernel/CMakeFiles/cwgl_kernel.dir/base_kernels.cpp.o.d"
  "/root/repo/src/kernel/embedding.cpp" "src/kernel/CMakeFiles/cwgl_kernel.dir/embedding.cpp.o" "gcc" "src/kernel/CMakeFiles/cwgl_kernel.dir/embedding.cpp.o.d"
  "/root/repo/src/kernel/ged.cpp" "src/kernel/CMakeFiles/cwgl_kernel.dir/ged.cpp.o" "gcc" "src/kernel/CMakeFiles/cwgl_kernel.dir/ged.cpp.o.d"
  "/root/repo/src/kernel/gram.cpp" "src/kernel/CMakeFiles/cwgl_kernel.dir/gram.cpp.o" "gcc" "src/kernel/CMakeFiles/cwgl_kernel.dir/gram.cpp.o.d"
  "/root/repo/src/kernel/label_dict.cpp" "src/kernel/CMakeFiles/cwgl_kernel.dir/label_dict.cpp.o" "gcc" "src/kernel/CMakeFiles/cwgl_kernel.dir/label_dict.cpp.o.d"
  "/root/repo/src/kernel/types.cpp" "src/kernel/CMakeFiles/cwgl_kernel.dir/types.cpp.o" "gcc" "src/kernel/CMakeFiles/cwgl_kernel.dir/types.cpp.o.d"
  "/root/repo/src/kernel/wl.cpp" "src/kernel/CMakeFiles/cwgl_kernel.dir/wl.cpp.o" "gcc" "src/kernel/CMakeFiles/cwgl_kernel.dir/wl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/graph/CMakeFiles/cwgl_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/cwgl_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/cwgl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for cwgl_kernel.
# This may be replaced when dependencies are built.

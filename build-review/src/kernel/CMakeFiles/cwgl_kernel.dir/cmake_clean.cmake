file(REMOVE_RECURSE
  "CMakeFiles/cwgl_kernel.dir/base_kernels.cpp.o"
  "CMakeFiles/cwgl_kernel.dir/base_kernels.cpp.o.d"
  "CMakeFiles/cwgl_kernel.dir/embedding.cpp.o"
  "CMakeFiles/cwgl_kernel.dir/embedding.cpp.o.d"
  "CMakeFiles/cwgl_kernel.dir/ged.cpp.o"
  "CMakeFiles/cwgl_kernel.dir/ged.cpp.o.d"
  "CMakeFiles/cwgl_kernel.dir/gram.cpp.o"
  "CMakeFiles/cwgl_kernel.dir/gram.cpp.o.d"
  "CMakeFiles/cwgl_kernel.dir/label_dict.cpp.o"
  "CMakeFiles/cwgl_kernel.dir/label_dict.cpp.o.d"
  "CMakeFiles/cwgl_kernel.dir/types.cpp.o"
  "CMakeFiles/cwgl_kernel.dir/types.cpp.o.d"
  "CMakeFiles/cwgl_kernel.dir/wl.cpp.o"
  "CMakeFiles/cwgl_kernel.dir/wl.cpp.o.d"
  "libcwgl_kernel.a"
  "libcwgl_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwgl_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Fig 9 — properties of job DAGs in the five spectral-clustering groups:
// (a) population per group, (b) job-size distribution, (c) critical-path
// distribution, (d) maximum-parallelism distribution.
//
// Paper shape to reproduce: group A dominates the population (~75%) and is
// overwhelmingly small chains (90.6% short jobs, 91% chains); group B's mean
// size is ~1.55x group A's; later groups grow in depth and parallelism.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hpp"
#include "core/clustering.hpp"
#include "core/report_text.hpp"
#include "core/similarity.hpp"

using namespace cwgl;

namespace {

void run_variant(core::SamplingMode mode, const char* label) {
  const trace::Trace data = bench::make_trace(20000);
  core::PipelineConfig cfg;
  cfg.sample_size = 100;
  cfg.sampling = mode;
  const auto sample = core::CharacterizationPipeline(cfg).build_sample(data);
  util::ThreadPool pool;
  const auto similarity = core::SimilarityAnalysis::compute(sample, {}, &pool);
  const auto clustering =
      core::ClusteringAnalysis::compute(similarity.gram, sample, {});

  std::cout << "\n--- sampling mode: " << label << " ---\n";
  core::print_clustering_analysis(std::cout, clustering);

  // Map our groups onto the paper's narrative. The paper's "group A" is a
  // single dominant small-job group (75% population, 91% chains, 90.6%
  // short). Exactly-identical tiny DAGs in our synthetic workload form
  // tighter similarity blocks than the noisier production data, so k=5
  // splits that mass into 2-3 small-job subgroups; the paper-comparable
  // quantity is their COMBINED share, and per-role stats come from the
  // small-chain subgroup itself.
  double small_groups_share = 0.0;
  double small_groups_size_sum = 0.0;
  std::size_t small_groups_pop = 0;
  const core::ClusterGroupStats* chainiest_small = nullptr;
  const core::ClusterGroupStats* largest_jobs = nullptr;
  for (const auto& g : clustering.groups) {
    if (g.population == 0) continue;
    if (g.size.mean <= 5.0) {
      small_groups_share += g.population_fraction;
      small_groups_size_sum += g.size.mean * static_cast<double>(g.population);
      small_groups_pop += g.population;
      if (!chainiest_small || g.chain_fraction > chainiest_small->chain_fraction) {
        chainiest_small = &g;
      }
    }
    if (!largest_jobs || g.size.mean > largest_jobs->size.mean) largest_jobs = &g;
  }
  std::cout << "paper cross-checks (" << label << "):\n";
  std::cout << "  combined small-job-group share: " << 100.0 * small_groups_share
            << "%  (paper's group A: ~75%)\n";
  if (chainiest_small) {
    std::cout << "  small-chain subgroup (" << chainiest_small->letter()
              << "): chains " << 100.0 * chainiest_small->chain_fraction
              << "%, short jobs " << 100.0 * chainiest_small->short_job_fraction
              << "%  (paper: 91% / 90.6%)\n";
  }
  if (small_groups_pop > 0 && largest_jobs) {
    const double small_mean =
        small_groups_size_sum / static_cast<double>(small_groups_pop);
    std::cout << "  largest-job group mean size / small groups mean size: "
              << largest_jobs->size.mean / small_mean
              << "x  (paper B/A: ~1.55x, D deeper still)\n";
  }
}

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("Fig 9", "properties of job DAGs in cluster groups");
  run_variant(core::SamplingMode::VariabilityStratified,
              "variability-stratified (17-size coverage)");
  run_variant(core::SamplingMode::Natural,
              "natural (population-faithful, matches paper's shares)");
}

void BM_SpectralClustering(benchmark::State& state) {
  const auto sample = bench::make_experiment_set(
      20000, static_cast<std::size_t>(state.range(0)));
  const auto similarity = core::SimilarityAnalysis::compute(sample);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ClusteringAnalysis::compute(similarity.gram, sample, {}));
  }
}
BENCHMARK(BM_SpectralClustering)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("fig9_clustering");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Fig 4 — job features before node conflation: per size group, the job
// count, the maximum critical path, and the maximum width.
//
// Paper shape to reproduce: counts decay as size grows; the maximum critical
// path does NOT grow linearly with size (it stays in a 2..8 band); width is
// positively correlated with size, up to the 30-of-31-parallel extreme.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hpp"
#include "core/characterization.hpp"
#include "core/report_text.hpp"
#include "graph/algorithms.hpp"
#include "util/stats.hpp"

using namespace cwgl;

namespace {

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("Fig 4", "job features before node conflation");
  const auto sample = bench::make_experiment_set();
  const auto report = core::StructuralReport::compute(sample);
  core::print_structural_report(std::cout, report,
                                "Fig 4: job features before node conflation");

  // The paper's side observations, measured:
  std::vector<double> sizes, widths, depths;
  for (const auto& job : sample) {
    sizes.push_back(job.size());
    widths.push_back(graph::max_width(job.dag));
    depths.push_back(graph::critical_path_length(job.dag));
  }
  std::cout << "\ncorrelation(size, max width)         = "
            << util::pearson(sizes, widths)
            << "  (paper: quite positively correlated)\n";
  std::cout << "correlation(size, critical path)     = "
            << util::pearson(sizes, depths)
            << "  (paper: does not increase linearly)\n";
  const auto depth_stats = util::describe(depths);
  std::cout << "critical path range: " << depth_stats.min << ".."
            << depth_stats.max << "  (paper: 2..8)\n";
}

void BM_StructuralFeatures(benchmark::State& state) {
  const auto sample = bench::make_experiment_set();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::StructuralReport::compute(sample));
  }
}
BENCHMARK(BM_StructuralFeatures)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("fig4_features_before");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

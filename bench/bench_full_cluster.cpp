// Full-trace clustering (core::CharacterizationPipeline::run_full): the
// scalable learning stage behind `cwgl characterize --full`. Two claims:
//   1. throughput — >= 100k synthetic jobs cluster end-to-end in seconds,
//      with memory bounded by DISTINCT shapes (no n x n Gram is ever
//      allocated; the exact path would need ~75 GB for the same corpus),
//   2. fidelity — both backends (mini-batch k-means, landmark spectral)
//      agree with the exact sampled spectral pipeline on a shared uniform
//      job subsample at ARI >= 0.8 (check.sh gates this via bench_diff
//      --min-bar 'agreement_ari_*=0.8').

#include <benchmark/benchmark.h>

#include <cstddef>
#include <iostream>

#include "bench/common.hpp"
#include "cluster/scale.hpp"
#include "core/pipeline.hpp"
#include "obs/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

using namespace cwgl;

namespace {

core::FullTraceResult run_once(const trace::Trace& data,
                               cluster::ScaleMethod method,
                               util::ThreadPool* pool) {
  core::PipelineConfig cfg;
  cfg.full_method = method;
  const core::CharacterizationPipeline pipeline(cfg);
  return pipeline.run_full(data, pool);
}

void print_figure(bench::Reporter& reporter) {
  bench::banner("F1", "full-trace clustering: 100k+ jobs, shape-weighted");
  // ~47% of generated jobs survive the eligibility filters, so 250k trace
  // jobs put >= 100k actual DAG jobs through the clustering engine.
  const trace::Trace data = bench::make_trace(250000);
  util::ThreadPool pool;
  std::cout << "input: " << data.tasks.size() << " task rows\n\n";

  core::FullTraceResult mb;
  const double minibatch_ms = reporter.time(
      "full_minibatch_ms",
      [&] { mb = run_once(data, cluster::ScaleMethod::MiniBatch, &pool); });
  const double jobs_per_s =
      static_cast<double>(mb.total_jobs()) / (minibatch_ms / 1000.0);

  core::FullTraceResult lm;
  const double landmark_ms = reporter.time(
      "full_landmark_ms",
      [&] { lm = run_once(data, cluster::ScaleMethod::Landmark, &pool); });

  std::cout << "jobs clustered: " << mb.total_jobs() << " ("
            << mb.table.size() << " distinct shapes, ratio "
            << util::format_double(
                   static_cast<double>(mb.table.size()) /
                       static_cast<double>(mb.total_jobs()), 4)
            << ")\n"
            << "mini-batch:    " << util::format_double(minibatch_ms, 1)
            << " ms  (" << util::format_double(jobs_per_s / 1e3, 1)
            << " kjobs/s), ARI vs exact "
            << util::format_double(mb.agreement.ari, 3) << " on "
            << mb.agreement.items << " jobs\n"
            << "landmark:      " << util::format_double(landmark_ms, 1)
            << " ms  (" << lm.landmarks << " landmarks, "
            << lm.embedding_dims << " dims"
            << (lm.degraded ? ", DEGRADED to mini-batch" : "")
            << "), ARI vs exact "
            << util::format_double(lm.agreement.ari, 3) << "\n"
            << "acceptance bar: ARI >= 0.8 for both backends\n";

  reporter.set("dag_jobs", static_cast<double>(mb.total_jobs()), "jobs");
  reporter.set("distinct_shapes", static_cast<double>(mb.table.size()),
               "shapes");
  reporter.set("minibatch_jobs_per_s", jobs_per_s, "jobs/s");
  reporter.set("agreement_ari_minibatch", mb.agreement.ari, "ari");
  reporter.set("agreement_ari_landmark", lm.agreement.ari, "ari");
  reporter.set("agreement_nmi_minibatch", mb.agreement.nmi, "nmi");
  reporter.set("agreement_nmi_landmark", lm.agreement.nmi, "nmi");
  reporter.set("landmark_degraded", lm.degraded ? 1.0 : 0.0, "bool");
}

void BM_FullTraceMiniBatch(benchmark::State& state) {
  const trace::Trace data =
      bench::make_trace(static_cast<std::size_t>(state.range(0)));
  util::ThreadPool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_once(data, cluster::ScaleMethod::MiniBatch, &pool));
  }
}
BENCHMARK(BM_FullTraceMiniBatch)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_FullTraceLandmark(benchmark::State& state) {
  const trace::Trace data =
      bench::make_trace(static_cast<std::size_t>(state.range(0)));
  util::ThreadPool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_once(data, cluster::ScaleMethod::Landmark, &pool));
  }
}
BENCHMARK(BM_FullTraceLandmark)->Arg(20000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("full_cluster");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// A10 — extension: foreseeing job completion time from submission-time
// information (the paper's opening motivation: "helps us foresee resource
// demands and execution time of new jobs").
//
// A linear predictor is fitted on a historical sample and evaluated on a
// held-out set, with progressively richer feature sets:
//   size-only           — task count
//   +topology           — critical path + max width (from the task names)
//   +plan               — declared instances / cpu / mem
//   +WL cluster group   — the paper's classification as a feature
//
// Expected shape: topology is the big jump over size-only (stage execution
// is serial along the critical path, so depth — not raw size — drives wall
// time). Plan and group features add little beyond topology here because
// the synthetic workload draws plans independently of runtimes; on
// production traces they correlate and would help further.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hpp"
#include "core/clustering.hpp"
#include "core/predictor.hpp"
#include "core/similarity.hpp"
#include "util/strings.hpp"

using namespace cwgl;

namespace {

struct Split {
  std::vector<core::JobDag> train, test;
  std::vector<int> train_labels, test_labels;
  int num_groups = 5;
};

Split make_split() {
  const trace::Trace data = bench::make_trace(20000);
  core::PipelineConfig cfg;
  cfg.sample_size = 400;
  // Stratified sampling keeps all job scales represented: in the natural
  // (tiny-dominated) mix size and depth coincide, which would mask what the
  // topology features contribute for the larger jobs a scheduler cares
  // about most.
  const auto sample = core::CharacterizationPipeline(cfg).build_sample(data);
  util::ThreadPool pool;
  const auto sim = core::SimilarityAnalysis::compute(sample, {}, &pool);
  core::ClusteringOptions copt;
  const auto clustering = core::ClusteringAnalysis::compute(sim.gram, sample, copt);

  Split s;
  s.num_groups = copt.clusters;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    if (i % 2 == 0) {
      s.train.push_back(sample[i]);
      s.train_labels.push_back(clustering.labels[i]);
    } else {
      s.test.push_back(sample[i]);
      s.test_labels.push_back(clustering.labels[i]);
    }
  }
  return s;
}

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("A10", "foreseeing job completion time from submission-time info");
  const Split s = make_split();

  struct Variant {
    const char* name;
    core::PredictorConfig cfg;
    bool groups;
  };
  std::vector<Variant> variants;
  {
    core::PredictorConfig size_only;
    size_only.use_topology = false;
    size_only.use_plan = false;
    variants.push_back({"size-only", size_only, false});
    core::PredictorConfig topo = size_only;
    topo.use_topology = true;
    variants.push_back({"+topology", topo, false});
    core::PredictorConfig plan = topo;
    plan.use_plan = true;
    variants.push_back({"+plan", plan, false});
    core::PredictorConfig grouped = plan;
    grouped.num_groups = s.num_groups;
    variants.push_back({"+WL cluster group", grouped, true});
  }

  std::cout << util::pad_right("features", 20) << util::pad_left("R^2", 8)
            << util::pad_left("MAE s", 9) << util::pad_left("MAE/mean", 10)
            << "\n";
  for (const Variant& v : variants) {
    const auto model = core::JctPredictor::fit(
        s.train, v.groups ? std::span<const int>(s.train_labels)
                          : std::span<const int>{},
        v.cfg);
    const auto eval = model.evaluate(
        s.test, v.groups ? std::span<const int>(s.test_labels)
                         : std::span<const int>{});
    std::cout << util::pad_right(v.name, 20)
              << util::pad_left(util::format_double(eval.r2, 3), 8)
              << util::pad_left(util::format_double(eval.mae, 1), 9)
              << util::pad_left(
                     util::format_double(
                         eval.mean_actual > 0 ? eval.mae / eval.mean_actual : 0, 2),
                     10)
              << "\n";
  }
}

void BM_FitPredictor(benchmark::State& state) {
  const Split s = make_split();
  core::PredictorConfig cfg;
  cfg.num_groups = s.num_groups;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::JctPredictor::fit(s.train, s.train_labels, cfg));
  }
  state.counters["train_jobs"] = static_cast<double>(s.train.size());
}
BENCHMARK(BM_FitPredictor)->Unit(benchmark::kMillisecond);

void BM_PredictSingleJob(benchmark::State& state) {
  const Split s = make_split();
  core::PredictorConfig cfg;
  const auto model = core::JctPredictor::fit(s.train, {}, cfg);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(s.test[i % s.test.size()]));
    ++i;
  }
}
BENCHMARK(BM_PredictSingleJob)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("predictor");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

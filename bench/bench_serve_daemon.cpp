// Resident-daemon load bench: start the `cwgl serve` daemon in-process on
// an ephemeral loopback port and drive it with an open-loop generator at
// configured offered loads. Reports accepted-request latency percentiles
// (p50/p99/p999) and the shed fraction per load level, plus hot-reload
// behavior under sustained traffic. The daemon runs with a fixed artificial
// `service_delay`, which makes capacity — and therefore what counts as
// overload — deterministic across machines: the phases scale their offered
// load off the measured capacity rather than hard-coding a rate.
//
// Phases:
//   capacity   closed-loop clients, back-to-back call()s       -> jobs/s
//   sustained  open-loop at 25% of capacity                    -> p50/p99/p999,
//                                                                 shed ~ 0
//   overload   open-loop at 3x capacity                        -> typed sheds,
//                                                                 bounded
//                                                                 accepted p99
//   reload     sustained traffic + 3 hot model swaps           -> zero errors
//   telemetry  sustained traffic with the periodic Prometheus
//              exporter + structured logging enabled           -> overhead %
//
// This is the bench behind bench/baselines/BENCH_serve_daemon.json;
// check.sh's serve-daemon-smoke pass gates it with --min-bar on sustained
// throughput and reload/export counts and --max-bar on the sustained shed
// fraction, reload errors, and telemetry overhead.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "model/fit.hpp"
#include "model/format.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/classifier.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"

namespace cwgl::bench {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

model::FittedModel fit_model() {
  const trace::Trace data = make_trace(1000, kMasterSeed);
  core::PipelineConfig cfg;
  cfg.sample_size = 60;
  cfg.clustering.clusters = 4;
  core::FittedFeatures fitted;
  const auto result =
      core::CharacterizationPipeline(cfg).run(data, nullptr, &fitted);
  return model::build_model(result, std::move(fitted), cfg);
}

serve::Request classify_request(std::uint64_t id) {
  serve::Request r;
  r.type = serve::RequestType::Classify;
  r.id = id;
  r.job_name = "j_bench";
  r.tasks = {"M1", "M2_1", "R3_2", "J4_2"};
  return r;
}

double percentile(std::vector<double>& sorted_values, double p) {
  if (sorted_values.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_values.size() - 1));
  return sorted_values[idx];
}

/// Aggregate outcome of one load phase (client-side view).
struct LoadResult {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t timeout = 0;
  std::uint64_t other = 0;
  std::vector<double> ok_latency_us;  ///< accepted-request latency, sorted
  double elapsed_s = 0.0;

  double shed_fraction() const {
    return sent == 0 ? 0.0
                     : static_cast<double>(shed) / static_cast<double>(sent);
  }
  double ok_per_second() const {
    return elapsed_s <= 0.0 ? 0.0 : static_cast<double>(ok) / elapsed_s;
  }
};

/// Closed-loop capacity probe: `clients` connections issue back-to-back
/// call()s for `duration`. The achieved ok-rate is the service capacity the
/// open-loop phases scale against.
LoadResult closed_loop(const serve::Endpoint& ep, int clients,
                       std::chrono::milliseconds duration) {
  LoadResult total;
  std::mutex merge_mutex;
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  const auto end = start + duration;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      serve::Client client(ep);
      LoadResult local;
      std::uint64_t id = 0;
      while (Clock::now() < end) {
        const auto sent_at = Clock::now();
        const serve::Response r = client.call(classify_request(++id));
        ++local.sent;
        if (r.status == serve::ResponseStatus::Ok) {
          ++local.ok;
          local.ok_latency_us.push_back(
              std::chrono::duration<double, std::micro>(Clock::now() - sent_at)
                  .count());
        } else if (r.status == serve::ResponseStatus::Overloaded) {
          ++local.shed;
        } else if (r.status == serve::ResponseStatus::Timeout) {
          ++local.timeout;
        } else {
          ++local.other;
        }
      }
      const std::lock_guard<std::mutex> lock(merge_mutex);
      total.sent += local.sent;
      total.ok += local.ok;
      total.shed += local.shed;
      total.timeout += local.timeout;
      total.other += local.other;
      total.ok_latency_us.insert(total.ok_latency_us.end(),
                                 local.ok_latency_us.begin(),
                                 local.ok_latency_us.end());
    });
  }
  for (auto& t : threads) t.join();
  total.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
  std::sort(total.ok_latency_us.begin(), total.ok_latency_us.end());
  return total;
}

/// Open-loop generator: `connections` pipelined connections jointly offer
/// `rate_per_s`, each with a paced sender and a concurrent receiver (send
/// times never wait on responses — the defining property of open-loop load,
/// which is what exposes shedding). Every request is answered (the daemon's
/// no-silent-drop invariant), so the receiver exits once it has matched the
/// sender's final count.
LoadResult open_loop(const serve::Endpoint& ep, double rate_per_s,
                     std::chrono::milliseconds duration, int connections) {
  LoadResult total;
  std::mutex merge_mutex;
  std::vector<std::thread> threads;
  const double per_conn_rate =
      std::max(1.0, rate_per_s / std::max(1, connections));
  const auto start = Clock::now();
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&] {
      serve::Client client(ep);
      LoadResult local;
      // Ids are sequential per connection, so index id-1 recovers the send
      // timestamp when the (possibly reordered) response arrives.
      std::mutex times_mutex;
      std::vector<Clock::time_point> send_times;
      send_times.reserve(static_cast<std::size_t>(
          per_conn_rate * std::chrono::duration<double>(duration).count() * 2));
      std::atomic<std::uint64_t> sent{0};
      std::atomic<bool> sending_done{false};

      std::thread receiver([&] {
        std::uint64_t received = 0;
        for (;;) {
          const auto r = client.recv();
          if (!r.has_value()) break;  // EOF: every response has been written
          const auto now = Clock::now();
          ++received;
          if (r->status == serve::ResponseStatus::Ok) {
            ++local.ok;
            Clock::time_point sent_at;
            {
              const std::lock_guard<std::mutex> lock(times_mutex);
              sent_at = send_times[static_cast<std::size_t>(r->id - 1)];
            }
            local.ok_latency_us.push_back(
                std::chrono::duration<double, std::micro>(now - sent_at)
                    .count());
          } else if (r->status == serve::ResponseStatus::Overloaded) {
            ++local.shed;
          } else if (r->status == serve::ResponseStatus::Timeout) {
            ++local.timeout;
          } else {
            ++local.other;
          }
          if (sending_done.load() && received == sent.load()) break;
        }
      });

      const auto interval = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(1.0 / per_conn_rate));
      auto next_send = Clock::now();
      const auto end = start + duration;
      std::uint64_t id = 0;
      while (Clock::now() < end) {
        {
          const std::lock_guard<std::mutex> lock(times_mutex);
          send_times.push_back(Clock::now());
        }
        client.send(classify_request(++id));
        sent.fetch_add(1);
        next_send += interval;
        std::this_thread::sleep_until(next_send);  // no-op when behind: the
                                                   // generator catches up in a
                                                   // burst instead of slowing
      }
      sending_done.store(true);
      // The count check above races with the final response (the receiver may
      // have matched the last id before sending_done flipped and be parked in
      // recv()); half-closing tells the daemon "no more requests", so once the
      // last response is written it closes the connection and the receiver's
      // EOF path ends the wait.
      client.shutdown_write();
      receiver.join();
      local.sent = id;

      const std::lock_guard<std::mutex> lock(merge_mutex);
      total.sent += local.sent;
      total.ok += local.ok;
      total.shed += local.shed;
      total.timeout += local.timeout;
      total.other += local.other;
      total.ok_latency_us.insert(total.ok_latency_us.end(),
                                 local.ok_latency_us.begin(),
                                 local.ok_latency_us.end());
    });
  }
  for (auto& t : threads) t.join();
  total.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
  std::sort(total.ok_latency_us.begin(), total.ok_latency_us.end());
  return total;
}

void run() {
  banner("serve_daemon",
         "resident daemon under open-loop load: latency, shedding, reload");
  Reporter reporter("serve_daemon");

  const model::FittedModel fitted = fit_model();
  const auto model_path =
      std::filesystem::temp_directory_path() / "cwgl_bench_daemon.cwgl";
  model::save_model(fitted, model_path);

  serve::DaemonConfig cfg;
  cfg.endpoint.tcp_port = 0;  // ephemeral loopback
  cfg.model_path = model_path.string();
  cfg.worker_threads = 4;
  cfg.max_inflight = 64;
  cfg.admission_wait = 0ms;
  cfg.max_batch = 16;
  cfg.service_delay = 2000us;  // capacity ~ workers / delay = 2000 jobs/s
  serve::Daemon daemon(std::make_shared<const serve::Classifier>(fitted), cfg);
  daemon.start();
  serve::Endpoint ep;
  ep.tcp_port = daemon.tcp_port();
  std::cout << "daemon on tcp:" << ep.tcp_port << "  workers "
            << cfg.worker_threads << "  service_delay 2000us  max_inflight "
            << cfg.max_inflight << "\n";

  // --- capacity: closed-loop saturation -----------------------------------
  const LoadResult cap = closed_loop(ep, 8, 600ms);
  const double capacity = cap.ok_per_second();
  reporter.set("capacity_jobs_per_s", capacity, "jobs/s");
  std::cout << "capacity (closed-loop, 8 clients): "
            << static_cast<std::size_t>(capacity) << " jobs/s\n";

  // --- sustained: open-loop well under capacity ---------------------------
  const double sustained_rate = 0.25 * capacity;
  LoadResult sus = open_loop(ep, sustained_rate, 1000ms, 2);
  reporter.set("sustained_offered_jobs_per_s", sustained_rate, "jobs/s");
  reporter.set("sustained_jobs_per_s", sus.ok_per_second(), "jobs/s");
  reporter.set("sustained_shed_fraction", sus.shed_fraction(), "fraction");
  reporter.set("sustained_p50_us", percentile(sus.ok_latency_us, 0.50), "us");
  reporter.set("sustained_p99_us", percentile(sus.ok_latency_us, 0.99), "us");
  reporter.set("sustained_p999_us", percentile(sus.ok_latency_us, 0.999), "us");
  std::cout << "sustained @ " << static_cast<std::size_t>(sustained_rate)
            << " offered/s: " << static_cast<std::size_t>(sus.ok_per_second())
            << " ok/s   shed " << sus.shed_fraction() << "   p50 "
            << percentile(sus.ok_latency_us, 0.50) << " us   p99 "
            << percentile(sus.ok_latency_us, 0.99) << " us   p999 "
            << percentile(sus.ok_latency_us, 0.999) << " us\n";

  // --- overload: open-loop at 3x capacity ---------------------------------
  // Admission control must shed (typed!) rather than queue unboundedly, and
  // the requests it DOES accept must keep a bounded p99 — the queue depth
  // (max_inflight) over capacity caps their wait.
  const double overload_rate = 3.0 * capacity;
  LoadResult over = open_loop(ep, overload_rate, 600ms, 2);
  reporter.set("overload_offered_jobs_per_s", overload_rate, "jobs/s");
  reporter.set("overload_shed_fraction", over.shed_fraction(), "fraction");
  reporter.set("overload_accepted_p99_us",
               percentile(over.ok_latency_us, 0.99), "us");
  std::cout << "overload @ " << static_cast<std::size_t>(overload_rate)
            << " offered/s: shed " << over.shed_fraction()
            << "   accepted p99 " << percentile(over.ok_latency_us, 0.99)
            << " us   (answered " << (over.ok + over.shed + over.timeout)
            << "/" << over.sent << ")\n";

  // --- reload under sustained traffic -------------------------------------
  // Three hot swaps while the generator runs; a swap that drops or fails a
  // single in-flight request shows up as a non-ok here or in the daemon's
  // error counter.
  const serve::DaemonStats before = daemon.stats();
  std::thread swapper([&] {
    for (int i = 0; i < 3; ++i) {
      std::this_thread::sleep_for(150ms);
      std::string error;
      if (!daemon.reload_now(model_path.string(), &error)) {
        std::cerr << "reload failed: " << error << "\n";
      }
    }
  });
  LoadResult rel = open_loop(ep, sustained_rate, 800ms, 2);
  swapper.join();
  const serve::DaemonStats after = daemon.stats();
  const double reload_errors = static_cast<double>(
      (after.errors - before.errors) + rel.other + rel.timeout);
  reporter.set("reloads_completed",
               static_cast<double>(after.reloads - before.reloads), "count");
  reporter.set("reload_during_traffic_errors", reload_errors, "count");
  std::cout << "reload under load: " << (after.reloads - before.reloads)
            << " swaps, " << reload_errors << " errors, "
            << static_cast<std::size_t>(rel.ok_per_second())
            << " ok/s throughout\n";

  daemon.request_drain();
  const int exit_code = daemon.wait();
  std::cout << "drained (exit " << exit_code << ")\n";

  // --- telemetry: sustained load with the telemetry plane enabled ---------
  // A second daemon with the same knobs runs the periodic Prometheus file
  // exporter plus JSON structured logging; the throughput delta against the
  // plain sustained phase is the telemetry tax check.sh gates at <2%.
  const auto prom_path =
      std::filesystem::temp_directory_path() / "cwgl_bench_daemon.prom";
  const auto log_path =
      std::filesystem::temp_directory_path() / "cwgl_bench_daemon.log";
  obs::Logger logger;
  {
    obs::Logger::Options opt;
    opt.level = obs::LogLevel::Info;
    opt.json = true;
    logger.open(log_path.string(), opt, nullptr);
  }
  serve::DaemonConfig tcfg = cfg;
  tcfg.telemetry_path = prom_path.string();
  tcfg.telemetry_interval = 200ms;
  tcfg.logger = &logger;
  serve::Daemon telemetry_daemon(
      std::make_shared<const serve::Classifier>(fitted), tcfg);
  telemetry_daemon.start();
  serve::Endpoint tep;
  tep.tcp_port = telemetry_daemon.tcp_port();
  const LoadResult tel = open_loop(tep, sustained_rate, 1000ms, 2);
  const double telemetry_overhead_pct =
      sus.ok_per_second() <= 0.0
          ? 0.0
          : std::max(0.0, (sus.ok_per_second() - tel.ok_per_second()) /
                              sus.ok_per_second() * 100.0);
  telemetry_daemon.request_drain();
  const int tel_exit = telemetry_daemon.wait();  // final export in wait()
  const serve::DaemonStats tstats = telemetry_daemon.stats();
  reporter.set("telemetry_sustained_jobs_per_s", tel.ok_per_second(),
               "jobs/s");
  reporter.set("telemetry_overhead_pct", telemetry_overhead_pct, "percent");
  reporter.set("telemetry_exports_completed",
               static_cast<double>(tstats.telemetry_exports), "count");
  // Both daemons must drain cleanly; a nonzero code from either trips the
  // drain_exit_code max-bar.
  reporter.set("drain_exit_code", static_cast<double>(exit_code + tel_exit),
               "count");
  std::cout << "telemetry @ " << static_cast<std::size_t>(sustained_rate)
            << " offered/s: " << static_cast<std::size_t>(tel.ok_per_second())
            << " ok/s   overhead " << telemetry_overhead_pct << " %   exports "
            << tstats.telemetry_exports << " (exit " << tel_exit << ")\n";

  // Flight-recorder attribution across the whole run, via the interpolated
  // quantile estimates the stats endpoint serves (Histogram's bit-width
  // buckets make the raw p50/p99 power-of-two upper bounds).
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  for (const auto& h : snap.histograms) {
    if (h.name == "serve.daemon.queue_wait_us") {
      reporter.set("queue_wait_p50_est_us", h.p50_est, "us");
    } else if (h.name == "serve.daemon.compute_us") {
      reporter.set("compute_p50_est_us", h.p50_est, "us");
      reporter.set("compute_p99_est_us", h.p99_est, "us");
    }
  }

  std::filesystem::remove(prom_path);
  std::filesystem::remove(log_path);
  std::filesystem::remove(model_path);
  std::cout << "wrote " << reporter.output_path() << "\n";
}

}  // namespace
}  // namespace cwgl::bench

int main() {
  cwgl::bench::run();
  return 0;
}

// A6 — extension: does the paper's topology clustering actually help
// scheduling? (Sections I and VIII position the characterization as input
// to "better decisions in job scheduling".)
//
// We simulate a co-located cluster on a characterized workload and compare:
//   fifo                — arrival order (baseline)
//   critical-path-first — HEFT-style list scheduling (needs per-task ranks)
//   shortest-job-first  — oracle: exact per-job remaining work
//   group-hint          — ONLY the WL-cluster group of each job + the
//                         group's mean work profile (the paper's proposal)
//
// Expected shape: group-hint recovers most of the oracle SJF's mean-JCT
// advantage over FIFO while using no per-job measurements.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hpp"
#include "core/clustering.hpp"
#include "core/similarity.hpp"
#include "sched/simulator.hpp"
#include "util/strings.hpp"

using namespace cwgl;

namespace {

struct Fixture {
  std::vector<sched::SimJob> jobs;
  std::vector<sched::GroupProfile> profiles;
};

Fixture make_fixture(std::size_t sample_size = 200) {
  const trace::Trace data = bench::make_trace(20000);
  core::PipelineConfig cfg;
  cfg.sample_size = sample_size;
  cfg.sampling = core::SamplingMode::Natural;
  const auto sample = core::CharacterizationPipeline(cfg).build_sample(data);

  util::ThreadPool pool;
  const auto similarity = core::SimilarityAnalysis::compute(sample, {}, &pool);
  core::ClusteringOptions cluster_options;
  const auto clustering =
      core::ClusteringAnalysis::compute(similarity.gram, sample, cluster_options);

  Fixture f;
  f.jobs = sched::jobs_from_dags(sample, /*inter_arrival=*/0.5);
  sched::attach_hints(f.jobs, clustering.labels);
  f.profiles = sched::profiles_from_groups(sample, clustering.labels,
                                           cluster_options.clusters);
  return f;
}

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("A6", "scheduling with topology-cluster hints vs baselines");
  const Fixture f = make_fixture();
  sched::SimulatorConfig sim_cfg;
  sim_cfg.machines = 2;
  const sched::Simulator sim(sim_cfg);

  const sched::FifoPolicy fifo;
  const sched::CriticalPathFirstPolicy cpf;
  const sched::ShortestJobFirstPolicy sjf;
  const sched::GroupHintPolicy hint;

  std::cout << util::pad_right("policy", 22) << util::pad_left("makespan", 10)
            << util::pad_left("mean JCT", 10) << util::pad_left("p95 JCT", 10)
            << util::pad_left("mean wait", 11) << util::pad_left("util", 7)
            << "\n";
  double fifo_jct = 0.0, sjf_jct = 0.0, hint_jct = 0.0;
  for (const sched::SchedulingPolicy* policy :
       std::initializer_list<const sched::SchedulingPolicy*>{&fifo, &cpf, &sjf,
                                                             &hint}) {
    const auto r = sim.run(f.jobs, *policy, f.profiles);
    std::cout << util::pad_right(std::string(policy->name()), 22)
              << util::pad_left(util::format_double(r.makespan, 0), 10)
              << util::pad_left(util::format_double(r.mean_jct, 1), 10)
              << util::pad_left(util::format_double(r.p95_jct, 1), 10)
              << util::pad_left(util::format_double(r.mean_wait, 1), 11)
              << util::pad_left(util::format_double(r.mean_utilization, 2), 7)
              << "\n";
    if (policy == &fifo) fifo_jct = r.mean_jct;
    if (policy == &sjf) sjf_jct = r.mean_jct;
    if (policy == &hint) hint_jct = r.mean_jct;
  }
  if (fifo_jct > sjf_jct) {
    const double recovered =
        (fifo_jct - hint_jct) / (fifo_jct - sjf_jct);
    std::cout << "\ngroup-hint recovers "
              << util::format_double(100.0 * recovered, 1)
              << "% of the oracle SJF mean-JCT gain over FIFO using only the"
                 " WL cluster label\n";
  }
}

void BM_SimulateFifo(benchmark::State& state) {
  const Fixture f = make_fixture(static_cast<std::size_t>(state.range(0)));
  sched::SimulatorConfig cfg;
  cfg.machines = 2;
  const sched::Simulator sim(cfg);
  const sched::FifoPolicy fifo;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(f.jobs, fifo, f.profiles));
  }
}
BENCHMARK(BM_SimulateFifo)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_SimulateGroupHint(benchmark::State& state) {
  const Fixture f = make_fixture(static_cast<std::size_t>(state.range(0)));
  sched::SimulatorConfig cfg;
  cfg.machines = 2;
  const sched::Simulator sim(cfg);
  const sched::GroupHintPolicy hint;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(f.jobs, hint, f.profiles));
  }
}
BENCHMARK(BM_SimulateGroupHint)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("sched_policies");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Online-serving throughput: fit a WL/cluster model once, then measure
// batched classification of incoming job DAGs against the frozen snapshot —
// jobs/s plus p50/p90 per-job latency, serial vs pooled. This is the bench
// behind bench/baselines/BENCH_serve.json, which check.sh's serve-smoke
// pass diffs structurally on every run.

#include <cstddef>
#include <iostream>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "model/fit.hpp"
#include "serve/classifier.hpp"
#include "serve/engine.hpp"
#include "trace/filter.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::bench {
namespace {

serve::Classifier fit_classifier() {
  const trace::Trace data = make_trace(2000, kMasterSeed);
  core::PipelineConfig cfg;
  cfg.sample_size = 100;
  core::FittedFeatures fitted;
  const auto result =
      core::CharacterizationPipeline(cfg).run(data, nullptr, &fitted);
  return serve::Classifier(
      model::build_model(result, std::move(fitted), cfg));
}

void run() {
  banner("serve", "online classification against a fitted model snapshot");
  Reporter reporter("serve");

  const serve::Classifier classifier = fit_classifier();
  const trace::Trace incoming = make_trace(4000, kMasterSeed + 1);
  const std::vector<core::JobDag> jobs =
      core::build_all_dag_jobs(incoming, trace::SamplingCriteria{});
  std::cout << "model: " << classifier.model().num_clusters()
            << " clusters, " << classifier.dictionary_size()
            << " WL signatures; incoming batch: " << jobs.size()
            << " DAG jobs\n";

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  util::ThreadPool pool(hw);

  serve::BatchStats serial{};
  reporter.time("classify_serial",
                [&] { serial = serve::classify_batch(classifier, jobs); });
  serve::BatchStats pooled{};
  reporter.time("classify_pooled", [&] {
    pooled = serve::classify_batch(classifier, jobs, &pool);
  });

  reporter.set("jobs_per_second_serial", serial.jobs_per_second, "jobs/s");
  reporter.set("jobs_per_second_pooled", pooled.jobs_per_second, "jobs/s");
  reporter.set("p50_latency_us", pooled.p50_latency_us, "us");
  reporter.set("p90_latency_us", pooled.p90_latency_us, "us");
  reporter.set("oov_job_fraction",
               jobs.empty() ? 0.0
                            : static_cast<double>(pooled.oov_jobs) /
                                  static_cast<double>(jobs.size()),
               "fraction");

  std::cout << "serial: " << static_cast<std::size_t>(serial.jobs_per_second)
            << " jobs/s   pooled(" << hw
            << "): " << static_cast<std::size_t>(pooled.jobs_per_second)
            << " jobs/s   p50 " << pooled.p50_latency_us << " us   p90 "
            << pooled.p90_latency_us << " us\n";
  std::cout << "wrote " << reporter.output_path() << "\n";
}

}  // namespace
}  // namespace cwgl::bench

int main() {
  cwgl::bench::run();
  return 0;
}

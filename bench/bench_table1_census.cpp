// T1 — the whole-trace statistics quoted in the paper's text:
//   Section II-B: ~50% of batch jobs have dependencies and consume 70-80%
//   of batch resources.
//   Section V-B: 58% straight chains, 37% inverted triangles among DAG jobs.
//   Section IV-B: the experiment set spans 17 distinct sizes in 2..31.

#include <benchmark/benchmark.h>

#include <iostream>
#include <set>

#include "bench/common.hpp"
#include "core/characterization.hpp"
#include "core/report_text.hpp"
#include "core/topology_census.hpp"

using namespace cwgl;

namespace {

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("T1", "whole-trace census (Sections II-B, IV-B, V-B)");
  const trace::Trace data = bench::make_trace(20000);
  const auto census = core::TraceCensus::compute(data);
  core::print_trace_census(std::cout, census);
  std::cout << "  (paper: ~50% of jobs, 70-80% of resources)\n\n";

  const auto jobs = core::build_all_dag_jobs(data, trace::SamplingCriteria{});
  const auto patterns = core::PatternCensus::compute(jobs);
  core::print_pattern_census(std::cout, patterns);
  std::cout << "  (paper: straight chain 58%, inverted triangle 37%)\n\n";

  // Recurring topologies (Section IV-C: small jobs repeat).
  const auto topo = core::TopologyCensus::compute(jobs);
  std::cout << "distinct topologies among " << topo.total_jobs
            << " DAG jobs: " << topo.distinct_topologies << " ("
            << 100.0 * topo.recurring_fraction
            << "% of jobs share a recurring topology)\n";
  if (!topo.rows.empty()) {
    std::cout << "most common topology: " << topo.rows[0].count << " jobs of "
              << topo.rows[0].size << " tasks\n";
  }
  std::cout << "\n";

  const auto sample = bench::make_experiment_set(20000, 100);
  std::set<int> sizes;
  int lo = 1 << 30, hi = 0;
  for (const auto& job : sample) {
    sizes.insert(job.size());
    lo = std::min(lo, job.size());
    hi = std::max(hi, job.size());
  }
  std::cout << "experiment set: " << sample.size() << " jobs, "
            << sizes.size() << " distinct sizes in " << lo << ".." << hi
            << "  (paper: 17 sizes in 2..31)\n";
}

void BM_TraceCensus(benchmark::State& state) {
  const trace::Trace data =
      bench::make_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::TraceCensus::compute(data));
  }
}
BENCHMARK(BM_TraceCensus)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_PatternCensus(benchmark::State& state) {
  const trace::Trace data = bench::make_trace(10000);
  const auto jobs = core::build_all_dag_jobs(data, trace::SamplingCriteria{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PatternCensus::compute(jobs));
  }
  state.counters["jobs"] = static_cast<double>(jobs.size());
}
BENCHMARK(BM_PatternCensus)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("table1_census");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Fig 5 — job features after node conflation: the same per-size-group
// features as Fig 4, computed on the conflated DAGs.
//
// Paper shape to reproduce: the distribution shifts toward smaller groups
// while per-group critical paths are preserved (conflation merges parallel
// clones, never serial stages).

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hpp"
#include "core/characterization.hpp"
#include "core/report_text.hpp"
#include "graph/algorithms.hpp"

using namespace cwgl;

namespace {

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("Fig 5", "job features after node conflation");
  const auto sample = bench::make_experiment_set();
  std::vector<core::JobDag> conflated;
  conflated.reserve(sample.size());
  std::size_t depth_preserved = 0;
  for (const auto& job : sample) {
    conflated.push_back(core::conflate_job(job));
    depth_preserved += graph::critical_path_length(conflated.back().dag) ==
                       graph::critical_path_length(job.dag);
  }
  const auto report = core::StructuralReport::compute(conflated);
  core::print_structural_report(std::cout, report,
                                "Fig 5: job features after node conflation");
  std::cout << "\njobs whose critical path survived conflation: "
            << depth_preserved << "/" << sample.size() << "\n";
}

void BM_ConflateThenFeatures(benchmark::State& state) {
  const auto sample = bench::make_experiment_set();
  for (auto _ : state) {
    std::vector<core::JobDag> conflated;
    conflated.reserve(sample.size());
    for (const auto& job : sample) conflated.push_back(core::conflate_job(job));
    benchmark::DoNotOptimize(core::StructuralReport::compute(conflated));
  }
}
BENCHMARK(BM_ConflateThenFeatures)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("fig5_features_after");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

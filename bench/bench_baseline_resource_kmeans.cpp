// A7 — baseline: resource-statistics k-means (related work [14]) vs the
// paper's topology-based spectral clustering.
//
// The paper's thesis is that topology carries grouping signal that resource
// statistics miss. We measure both clusterings on the same experiment set:
// mutual agreement (ARI/NMI), and which one yields structurally purer
// groups (normalized within-group dispersion of critical path and width —
// lower is purer).
//
// Expected shape: low mutual agreement (they capture different signals);
// topology clustering is far purer structurally.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hpp"
#include "cluster/metrics.hpp"
#include "core/baseline.hpp"
#include "core/clustering.hpp"
#include "core/similarity.hpp"
#include "util/strings.hpp"

using namespace cwgl;

namespace {

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("A7", "resource-feature k-means [14] vs topology clustering");
  const auto sample = bench::make_experiment_set();
  util::ThreadPool pool;
  const auto similarity = core::SimilarityAnalysis::compute(sample, {}, &pool);
  const auto topology =
      core::ClusteringAnalysis::compute(similarity.gram, sample, {});
  const auto resource = core::resource_kmeans(sample, 5);

  std::cout << "agreement topology vs resource clustering: ARI "
            << util::format_double(
                   cluster::adjusted_rand_index(topology.labels, resource.labels), 3)
            << ", NMI "
            << util::format_double(cluster::normalized_mutual_information(
                                       topology.labels, resource.labels),
                                   3)
            << "\n\n";

  std::cout << util::pad_right("clustering", 14)
            << util::pad_left("disp(critical path)", 21)
            << util::pad_left("disp(max width)", 17) << "   (lower = purer)\n";
  std::cout << util::pad_right("topology", 14)
            << util::pad_left(
                   util::format_double(
                       core::structural_dispersion(sample, topology.labels, false), 3),
                   21)
            << util::pad_left(
                   util::format_double(
                       core::structural_dispersion(sample, topology.labels, true), 3),
                   17)
            << "\n";
  std::cout << util::pad_right("resource[14]", 14)
            << util::pad_left(
                   util::format_double(
                       core::structural_dispersion(sample, resource.labels, false), 3),
                   21)
            << util::pad_left(
                   util::format_double(
                       core::structural_dispersion(sample, resource.labels, true), 3),
                   17)
            << "\n";
}

void BM_ResourceKmeans(benchmark::State& state) {
  const auto sample = bench::make_experiment_set();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::resource_kmeans(sample, 5));
  }
}
BENCHMARK(BM_ResourceKmeans)->Unit(benchmark::kMillisecond);

void BM_TopologyClustering(benchmark::State& state) {
  const auto sample = bench::make_experiment_set();
  for (auto _ : state) {
    const auto similarity = core::SimilarityAnalysis::compute(sample);
    benchmark::DoNotOptimize(
        core::ClusteringAnalysis::compute(similarity.gram, sample, {}));
  }
}
BENCHMARK(BM_TopologyClustering)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("baseline_resource_kmeans");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Fig 8 — representative job DAGs of the five clustering groups.
//
// The paper displays one hand-picked job per group; we extract each group's
// medoid (most central member under the WL similarity) and print it in
// GraphViz form together with its structural signature.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hpp"
#include "core/clustering.hpp"
#include "core/similarity.hpp"
#include "graph/algorithms.hpp"
#include "graph/dot.hpp"
#include "graph/patterns.hpp"

using namespace cwgl;

namespace {

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("Fig 8", "representative job per clustering group (medoids)");
  const auto sample = bench::make_experiment_set();
  util::ThreadPool pool;
  const auto similarity = core::SimilarityAnalysis::compute(sample, {}, &pool);
  const auto clustering =
      core::ClusteringAnalysis::compute(similarity.gram, sample, {});

  for (const auto& group : clustering.groups) {
    if (group.population == 0) continue;
    const core::JobDag& medoid = sample[group.medoid];
    std::cout << "\nGroup " << group.letter() << " representative: "
              << medoid.job_name << " — " << medoid.size() << " tasks, depth "
              << graph::critical_path_length(medoid.dag) << ", width "
              << graph::max_width(medoid.dag) << ", shape "
              << graph::to_string(graph::classify_shape(medoid.dag)) << "\n";
    std::cout << graph::to_dot(medoid.dag, medoid.vertex_names(),
                               std::string("group_") + group.letter());
  }
}

void BM_MedoidExtraction(benchmark::State& state) {
  const auto sample = bench::make_experiment_set();
  const auto similarity = core::SimilarityAnalysis::compute(sample);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ClusteringAnalysis::compute(similarity.gram, sample, {}));
  }
}
BENCHMARK(BM_MedoidExtraction)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("fig8_representatives");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// A1 — ablation: WL iteration depth h.
//
// The paper fixes a small h without sweeping it. This bench sweeps h in
// 0..6 and reports (a) how the clustering changes w.r.t. the h=3 reference
// (ARI) and its silhouette, (b) kernel-matrix build time. Expected shape:
// quality saturates after h ~ critical-path depth (2..8 here); cost grows
// linearly with h.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hpp"
#include "cluster/metrics.hpp"
#include "core/clustering.hpp"
#include "core/similarity.hpp"
#include "util/strings.hpp"

using namespace cwgl;

namespace {

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("A1", "ablation: WL iteration depth h (paper fixes h; we sweep)");
  const auto sample = bench::make_experiment_set();
  util::ThreadPool pool;

  core::SimilarityOptions reference_options;
  reference_options.wl.iterations = 3;
  const auto reference = core::ClusteringAnalysis::compute(
      core::SimilarityAnalysis::compute(sample, reference_options, &pool).gram,
      sample, {});

  std::cout << util::pad_left("h", 3) << util::pad_left("ARI vs h=3", 12)
            << util::pad_left("silhouette", 12)
            << util::pad_left("mean offdiag", 14) << "\n";
  for (int h = 0; h <= 6; ++h) {
    core::SimilarityOptions options;
    options.wl.iterations = h;
    const auto sim = core::SimilarityAnalysis::compute(sample, options, &pool);
    const auto clustering =
        core::ClusteringAnalysis::compute(sim.gram, sample, {});
    const double ari =
        cluster::adjusted_rand_index(clustering.labels, reference.labels);
    std::cout << util::pad_left(std::to_string(h), 3)
              << util::pad_left(util::format_double(ari, 3), 12)
              << util::pad_left(util::format_double(clustering.silhouette, 3), 12)
              << util::pad_left(
                     util::format_double(sim.stats(sample).mean_offdiag, 3), 14)
              << "\n";
  }
}

void BM_WlDepth(benchmark::State& state) {
  const auto sample = bench::make_experiment_set();
  core::SimilarityOptions options;
  options.wl.iterations = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SimilarityAnalysis::compute(sample, options));
  }
}
BENCHMARK(BM_WlDepth)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("ablation_wl_depth");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Streaming ingest throughput: the per-character CsvReader baseline vs the
// block-buffered zero-copy CsvScanner, parse-only and end-to-end (rows ->
// job groups -> JobDags), serial and with parsing overlapped with DAG
// construction on a thread pool. The acceptance bar for the ingest layer is
// scanner rows/s >= 5x the CsvReader baseline on the synthetic trace.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "bench/common.hpp"
#include "core/ingest.hpp"
#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"
#include "obs/tracer.hpp"
#include "trace/io.hpp"
#include "util/csv.hpp"
#include "util/csv_scanner.hpp"
#include "util/strings.hpp"

using namespace cwgl;

namespace {

std::string make_task_csv(std::size_t num_jobs) {
  const trace::Trace data = bench::make_trace(num_jobs);
  std::ostringstream out;
  trace::write_batch_task_csv(out, data.tasks);
  return out.str();
}

struct RunResult {
  double ms = 0.0;
  std::size_t rows = 0;
};

void print_row(const char* label, const RunResult& r, std::size_t bytes,
               double baseline_ms) {
  const double seconds = r.ms / 1000.0;
  std::cout << util::pad_right(label, 26)
            << util::pad_left(util::format_double(r.ms, 1), 10)
            << util::pad_left(
                   util::format_double(
                       static_cast<double>(r.rows) / seconds / 1e6, 2),
                   10)
            << util::pad_left(
                   util::format_double(
                       static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds,
                       1),
                   10)
            << util::pad_left(util::format_double(baseline_ms / r.ms, 2), 9)
            << "\n";
}

/// Least-noise estimate on a shared box: the fastest of `reps` runs.
template <typename Fn>
RunResult best_of(int reps, Fn&& fn) {
  RunResult best;
  for (int i = 0; i < reps; ++i) {
    const RunResult r = fn();
    if (i == 0 || r.ms < best.ms) best = r;
  }
  return best;
}

// The CSV layer itself: every record split into a full set of fields —
// owning strings from the reader, zero-copy views from the scanner.
RunResult run_csv_reader_scan(const std::string& csv) {
  std::istringstream in(csv);
  RunResult r;
  obs::Stopwatch timer;
  util::CsvReader reader(in);
  std::vector<std::string> fields;
  std::size_t chars = 0;
  while (reader.next(fields)) {
    for (const auto& f : fields) chars += f.size();
    ++r.rows;
  }
  benchmark::DoNotOptimize(chars);
  r.ms = timer.millis();
  return r;
}

RunResult run_csv_scanner_scan(const std::string& csv) {
  std::istringstream in(csv);
  RunResult r;
  obs::Stopwatch timer;
  util::CsvScanner scanner(in);
  std::size_t chars = 0;
  while (const auto record = scanner.next()) {
    for (const auto& f : *record) chars += f.size();
    ++r.rows;
  }
  benchmark::DoNotOptimize(chars);
  r.ms = timer.millis();
  return r;
}

RunResult run_csv_reader(const std::string& csv) {
  std::istringstream in(csv);
  RunResult r;
  obs::Stopwatch timer;
  util::CsvReader reader(in);
  std::vector<std::string> fields;
  while (reader.next(fields)) {
    benchmark::DoNotOptimize(trace::TaskRecord::from_fields(fields));
    ++r.rows;
  }
  r.ms = timer.millis();
  return r;
}

RunResult run_csv_scanner(const std::string& csv) {
  std::istringstream in(csv);
  RunResult r;
  obs::Stopwatch timer;
  util::CsvScanner scanner(in);
  while (const auto record = scanner.next()) {
    benchmark::DoNotOptimize(trace::TaskRecord::from_fields(*record));
    ++r.rows;
  }
  r.ms = timer.millis();
  return r;
}

RunResult run_stream_dags(const std::string& csv, util::ThreadPool* pool) {
  std::istringstream in(csv);
  RunResult r;
  core::IngestStats stats;
  obs::Stopwatch timer;
  benchmark::DoNotOptimize(core::stream_dag_jobs(in, {}, pool, &stats));
  r.ms = timer.millis();
  r.rows = stats.stream.rows;
  return r;
}

// Acceptance check for the observability layer: metrics are compiled into
// every ingest stage, so their *idle* cost (timing gate closed, tracer
// stopped — "no sink attached") must stay under 2% of a serial ingest run.
// Two measurements feed that number: per-op microbenches of the idle
// primitives (a Span against a stopped tracer, a Counter add), and the
// registry's own event counts for one run, which bound how much of the run
// was spent in instrumentation. Both land in BENCH_ingest.json.
void print_overhead(bench::Reporter& reporter, const std::string& csv) {
  auto& registry = obs::MetricsRegistry::global();
  registry.set_timing_enabled(false);
  obs::Tracer::global().stop();

  constexpr int kOps = 1 << 20;
  obs::Stopwatch span_watch;
  for (int i = 0; i < kOps; ++i) {
    obs::Span span("bench.overhead.noop");
    benchmark::DoNotOptimize(&span);
  }
  const double span_ns = span_watch.micros() * 1000.0 / kOps;

  auto& probe = registry.counter("bench.overhead.probe");
  obs::Stopwatch counter_watch;
  for (int i = 0; i < kOps; ++i) probe.add();
  benchmark::DoNotOptimize(probe.value());
  const double counter_ns = counter_watch.micros() * 1000.0 / kOps;

  // Serial ingest executes O(1) instrument operations per run by design:
  // the scanner batches its row/byte/quarantine tallies into one flush at
  // EOF, stream_dag_jobs adds its six stream counters and two DAG counters
  // once, and the whole run opens a single span. 32 ops is a generous
  // ceiling (pooled mode adds a span plus a few queue/pool updates per
  // batch, still far below it), so ceiling x measured per-op idle cost
  // bounds the instrumentation share of the measured run.
  const RunResult run = best_of(3, [&] { return run_stream_dags(csv, nullptr); });
  const double ops_ceiling = 32.0;
  const double overhead_ns = ops_ceiling * std::max(counter_ns, span_ns);
  const double overhead_pct = 100.0 * overhead_ns / (run.ms * 1e6);

  std::cout << "\nidle observability overhead (no sink attached)\n"
            << "  span (tracer stopped):  "
            << util::format_double(span_ns, 1) << " ns/op\n"
            << "  counter add (relaxed):  "
            << util::format_double(counter_ns, 1) << " ns/op\n"
            << "  share of serial ingest: "
            << util::format_double(overhead_pct, 4)
            << "% (bound at 32 ops/run; acceptance bar: <2%)\n";

  reporter.set("span_idle_ns", span_ns, "ns");
  reporter.set("counter_add_ns", counter_ns, "ns");
  reporter.set("idle_overhead_pct", overhead_pct, "%");
}

void print_figure(bench::Reporter& reporter) {
  bench::banner("I1", "streaming ingest: CsvReader baseline vs CsvScanner");
  const std::string csv = make_task_csv(30000);
  std::cout << "input: " << csv.size() / (1024 * 1024) << " MiB of batch_task.csv ("
            << std::count(csv.begin(), csv.end(), '\n') << " rows)\n\n";
  std::cout << util::pad_right("path", 26) << util::pad_left("ms", 10)
            << util::pad_left("Mrows/s", 10) << util::pad_left("MB/s", 10)
            << util::pad_left("speedup", 9) << "\n";

  // Best-of-3 on every path: the box is shared, and a single load spike on
  // either side would swing the ratio by more than the margin it measures.
  const RunResult scan_base = best_of(3, [&] { return run_csv_reader_scan(csv); });
  print_row("CsvReader.next (baseline)", scan_base, csv.size(), scan_base.ms);
  const RunResult scan_new = best_of(3, [&] { return run_csv_scanner_scan(csv); });
  print_row("CsvScanner.next", scan_new, csv.size(), scan_base.ms);
  const RunResult baseline = best_of(3, [&] { return run_csv_reader(csv); });
  print_row("CsvReader + from_fields", baseline, csv.size(), scan_base.ms);
  const RunResult scanner = best_of(3, [&] { return run_csv_scanner(csv); });
  print_row("CsvScanner + from_fields", scanner, csv.size(), scan_base.ms);
  const RunResult serial = run_stream_dags(csv, nullptr);
  print_row("stream_dag_jobs serial", serial, csv.size(), scan_base.ms);
  util::ThreadPool pool(4);
  const RunResult pooled = run_stream_dags(csv, &pool);
  print_row("stream_dag_jobs pooled(4)", pooled, csv.size(), scan_base.ms);

  // The acceptance metric is the CSV layer the scanner replaced: both sides
  // turn the byte stream into one full set of fields per row. The schema
  // decode (from_fields) is identical code on both sides and is reported
  // separately above so the end-to-end picture stays visible.
  const double scan_ratio = scan_base.ms / scan_new.ms;
  const double decode_ratio = baseline.ms / scanner.ms;
  std::cout << "\nscanner vs reader rows/s ratio: "
            << util::format_double(scan_ratio, 1)
            << "x (acceptance bar: 5x); incl. shared schema decode: "
            << util::format_double(decode_ratio, 1) << "x\n";

  reporter.set("csv_reader_scan_ms", scan_base.ms);
  reporter.set("csv_scanner_scan_ms", scan_new.ms);
  reporter.set("csv_reader_decode_ms", baseline.ms);
  reporter.set("csv_scanner_decode_ms", scanner.ms);
  reporter.set("stream_serial_ms", serial.ms);
  reporter.set("stream_pooled_ms", pooled.ms);
  reporter.set("scanner_speedup", scan_ratio, "x");
  reporter.set("scanner_mrows_per_s",
               static_cast<double>(scan_new.rows) / (scan_new.ms / 1000.0) / 1e6,
               "Mrows/s");

  print_overhead(reporter, csv);
}

void BM_CsvReaderParse(benchmark::State& state) {
  const std::string csv = make_task_csv(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_csv_reader(csv));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(csv.size()));
}
BENCHMARK(BM_CsvReaderParse)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_CsvScannerParse(benchmark::State& state) {
  const std::string csv = make_task_csv(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_csv_scanner(csv));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(csv.size()));
}
BENCHMARK(BM_CsvScannerParse)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_StreamDagJobs(benchmark::State& state) {
  const std::string csv = make_task_csv(10000);
  const auto threads = static_cast<unsigned>(state.range(0));
  std::optional<util::ThreadPool> pool;
  if (threads > 0) pool.emplace(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_stream_dags(csv, pool ? &*pool : nullptr));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(csv.size()));
}
BENCHMARK(BM_StreamDagJobs)->Arg(0)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("ingest");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

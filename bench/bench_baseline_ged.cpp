// A4 — baseline: exact graph edit distance vs the WL kernel.
//
// Section V-C motivates kernels by the exponential cost of edit distance.
// This bench makes that claim a measurement: pairwise comparison time for
// growing job sizes under exact A* GED vs the WL kernel, plus how well the
// two similarity notions agree where GED is feasible.
//
// Expected shape: GED time explodes past ~10 tasks while WL stays flat;
// rankings agree strongly on small jobs.

#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "kernel/ged.hpp"
#include "kernel/wl.hpp"
#include "trace/generator.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "obs/stopwatch.hpp"

using namespace cwgl;

namespace {

std::vector<kernel::LabeledGraph> jobs_of_size(int n, std::size_t count,
                                               std::uint64_t seed) {
  util::Xoshiro256StarStar rng(seed);
  static constexpr graph::ShapePattern kShapes[] = {
      graph::ShapePattern::StraightChain, graph::ShapePattern::InvertedTriangle,
      graph::ShapePattern::Diamond, graph::ShapePattern::Trapezium};
  std::vector<kernel::LabeledGraph> out;
  for (std::size_t i = 0; i < count; ++i) {
    kernel::LabeledGraph g;
    g.graph = trace::synthesize_shape(kShapes[i % 4], n, rng);
    g.labels.resize(n);
    for (int v = 0; v < n; ++v) {
      g.labels[v] = g.graph.in_degree(v) == 0 ? 'M'
                    : g.graph.out_degree(v) == 0 ? 'R'
                                                 : 'J';
    }
    out.push_back(std::move(g));
  }
  return out;
}

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("A4", "baseline: exact GED vs WL kernel cost and agreement");
  std::cout << util::pad_left("size", 6) << util::pad_left("pairs", 7)
            << util::pad_left("GED ms/pair", 13)
            << util::pad_left("WL ms/pair", 12)
            << util::pad_left("corr(simGED,simWL)", 20) << "\n";
  for (int n = 2; n <= 9; ++n) {
    const auto graphs = jobs_of_size(n, 6, 1000 + n);
    std::vector<double> ged_sims, wl_sims;
    obs::Stopwatch ged_timer;
    std::size_t pairs = 0;
    bool ged_exhausted = false;
    kernel::GedOptions ged_options;
    ged_options.max_expansions = 500000;
    for (std::size_t i = 0; i < graphs.size() && !ged_exhausted; ++i) {
      for (std::size_t j = i + 1; j < graphs.size(); ++j) {
        try {
          ged_sims.push_back(
              kernel::ged_similarity(graphs[i], graphs[j], ged_options));
        } catch (const util::Error&) {
          ged_exhausted = true;
          break;
        }
        ++pairs;
      }
    }
    const double ged_ms = ged_timer.millis();
    obs::Stopwatch wl_timer;
    std::size_t wl_pairs = 0;
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      for (std::size_t j = i + 1; j < graphs.size(); ++j) {
        if (wl_pairs < pairs) {
          wl_sims.push_back(
              kernel::wl_subtree_similarity(graphs[i], graphs[j]));
        }
        ++wl_pairs;
      }
    }
    const double wl_ms = wl_timer.millis();
    const double corr = util::pearson(ged_sims, wl_sims);
    std::cout << util::pad_left(std::to_string(n), 6)
              << util::pad_left(std::to_string(pairs), 7)
              << util::pad_left(
                     pairs ? util::format_double(ged_ms / pairs, 3) : "-", 13)
              << util::pad_left(
                     pairs ? util::format_double(wl_ms / pairs, 3) : "-", 12)
              << util::pad_left(util::format_double(corr, 3), 20)
              << (ged_exhausted ? "  (GED budget exhausted)" : "") << "\n";
  }
}

void BM_GedPair(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto graphs = jobs_of_size(n, 2, 2000 + n);
  kernel::GedOptions options;
  options.max_expansions = 5'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernel::graph_edit_distance(graphs[0], graphs[1], options));
  }
}
BENCHMARK(BM_GedPair)->DenseRange(2, 8)->Unit(benchmark::kMicrosecond);

void BM_WlPair(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto graphs = jobs_of_size(n, 2, 2000 + n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel::wl_subtree_kernel(graphs[0], graphs[1]));
  }
}
BENCHMARK(BM_WlPair)->DenseRange(2, 8)->Arg(16)->Arg(31)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("baseline_ged");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

#pragma once

// Shared fixtures for the figure-reproduction benches. Every bench uses the
// same master seed so the printed "paper figure" tables are mutually
// consistent across binaries, and every bench emits a uniform
// BENCH_<name>.json (schema cwgl-bench-v1) via bench::Reporter so runs are
// comparable across commits with scripts/bench_diff.py.
//
// Environment knobs (all optional):
//   CWGL_BENCH_JOBS  caps every make_trace/make_experiment_set job count —
//                    check.sh's bench-smoke pass uses a tiny cap so the
//                    figures run in seconds on any box.
//   CWGL_BENCH_REPS  overrides each Reporter::time() rep count.
//   CWGL_BENCH_OUT   directory for BENCH_<name>.json (default: cwd).

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/stopwatch.hpp"
#include "trace/generator.hpp"

namespace cwgl::bench {

constexpr std::uint64_t kMasterSeed = 42;

/// Numeric environment knob with a default.
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  return (end != nullptr && *end == '\0' && v > 0)
             ? static_cast<std::size_t>(v)
             : fallback;
}

/// Applies the CWGL_BENCH_JOBS cap (smoke runs shrink every figure).
inline std::size_t scaled_jobs(std::size_t num_jobs) {
  const std::size_t cap = env_size("CWGL_BENCH_JOBS", 0);
  return cap == 0 ? num_jobs : std::min(num_jobs, cap);
}

/// The synthetic stand-in for the paper's production trace.
inline trace::Trace make_trace(std::size_t num_jobs,
                               std::uint64_t seed = kMasterSeed,
                               bool instances = false) {
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_jobs = scaled_jobs(num_jobs);
  cfg.emit_instances = instances;
  return trace::TraceGenerator(cfg).generate();
}

/// The paper's 100-job experiment set drawn from a 20k-job trace.
inline std::vector<core::JobDag> make_experiment_set(
    std::size_t trace_jobs = 20000, std::size_t sample_size = 100) {
  const trace::Trace data = make_trace(trace_jobs);
  core::PipelineConfig cfg;
  cfg.sample_size = sample_size;
  return core::CharacterizationPipeline(cfg).build_sample(data);
}

/// Section header so `for b in bench/*; do $b; done` output reads as a
/// figure-by-figure report.
inline void banner(const char* experiment_id, const char* description) {
  std::cout << "\n############################################################\n"
            << "# " << experiment_id << ": " << description << "\n"
            << "############################################################\n";
}

/// Machine-readable result sink: one per bench binary. Collects named
/// metrics — rep series (median/p90/min/max over repetitions, timed with the
/// one obs::Stopwatch every bench shares) or plain scalars — and writes
/// BENCH_<name>.json on destruction:
///
///   {"schema": "cwgl-bench-v1", "bench": "<name>",
///    "machine": {"hardware_concurrency": N, "pointer_bits": 64,
///                "compiler": "...", "assertions": true|false},
///    "metrics": {"<metric>": {"unit": "ms", "reps": R,
///                             "median": .., "p90": .., "min": .., "max": ..}}}
///
/// scripts/bench_diff.py joins two such files on metric name and compares
/// medians.
class Reporter {
 public:
  explicit Reporter(std::string name) : name_(std::move(name)) {}
  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;
  ~Reporter() { write(); }

  /// Records a repetition series (values in `unit`).
  void series(const std::string& metric, std::vector<double> values,
              const std::string& unit = "ms") {
    if (values.empty()) return;
    std::sort(values.begin(), values.end());
    Metric m;
    m.name = metric;
    m.unit = unit;
    m.reps = values.size();
    m.min = values.front();
    m.max = values.back();
    m.median = values[(values.size() - 1) / 2];
    m.p90 = values[(values.size() - 1) * 9 / 10];
    upsert(std::move(m));
  }

  /// Records a scalar (a ratio, a count, a derived percentage).
  void set(const std::string& metric, double value,
           const std::string& unit = "ms") {
    series(metric, std::vector<double>{value}, unit);
  }

  /// Times `fn()` `reps` times (CWGL_BENCH_REPS overrides), records the
  /// series in milliseconds, and returns the median.
  template <typename Fn>
  double time(const std::string& metric, Fn&& fn, int reps = 3) {
    reps = static_cast<int>(env_size(
        "CWGL_BENCH_REPS", static_cast<std::size_t>(std::max(1, reps))));
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
      obs::Stopwatch watch;
      fn();
      samples.push_back(watch.millis());
    }
    std::sort(samples.begin(), samples.end());
    const double median = samples[(samples.size() - 1) / 2];
    series(metric, std::move(samples));
    return median;
  }

  /// Where the JSON lands ($CWGL_BENCH_OUT or cwd).
  std::string output_path() const {
    const char* dir = std::getenv("CWGL_BENCH_OUT");
    const std::string prefix =
        (dir == nullptr || *dir == '\0') ? std::string() : std::string(dir) + "/";
    return prefix + "BENCH_" + name_ + ".json";
  }

  /// Writes the JSON now (also called by the destructor; idempotent in
  /// effect — later writes just overwrite with the same or richer content).
  void write() const {
    std::ofstream out(output_path());
    if (!out) {
      std::cerr << "bench: cannot write " << output_path() << "\n";
      return;
    }
    out << "{\"schema\":\"cwgl-bench-v1\",\"bench\":\"" << name_ << "\",";
    out << "\"machine\":{\"hardware_concurrency\":"
        << std::thread::hardware_concurrency()
        << ",\"pointer_bits\":" << 8 * sizeof(void*) << ",\"compiler\":\""
#if defined(__VERSION__)
        << compiler_string()
#else
        << "unknown"
#endif
        << "\",\"assertions\":"
#if defined(NDEBUG)
        << "false"
#else
        << "true"
#endif
        << "},\"metrics\":{";
    bool first = true;
    for (const auto& m : metrics_) {
      if (!first) out << ",";
      first = false;
      out << "\"" << m.name << "\":{\"unit\":\"" << m.unit
          << "\",\"reps\":" << m.reps << ",\"median\":" << m.median
          << ",\"p90\":" << m.p90 << ",\"min\":" << m.min
          << ",\"max\":" << m.max << "}";
    }
    out << "}}\n";
  }

 private:
  struct Metric {
    std::string name;
    std::string unit;
    std::size_t reps = 0;
    double median = 0.0;
    double p90 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  void upsert(Metric m) {
    for (auto& existing : metrics_) {
      if (existing.name == m.name) {
        existing = std::move(m);
        return;
      }
    }
    metrics_.push_back(std::move(m));
  }

  static std::string compiler_string() {
#if defined(__VERSION__)
    std::string v = __VERSION__;
    for (char& c : v) {
      if (c == '"' || c == '\\') c = ' ';
    }
    return v;
#else
    return "unknown";
#endif
  }

  std::string name_;
  std::vector<Metric> metrics_;
};

}  // namespace cwgl::bench

#pragma once

// Shared fixtures for the figure-reproduction benches. Every bench uses the
// same master seed so the printed "paper figure" tables are mutually
// consistent across binaries.

#include <cstddef>
#include <iostream>
#include <vector>

#include "core/pipeline.hpp"
#include "trace/generator.hpp"

namespace cwgl::bench {

constexpr std::uint64_t kMasterSeed = 42;

/// The synthetic stand-in for the paper's production trace.
inline trace::Trace make_trace(std::size_t num_jobs,
                               std::uint64_t seed = kMasterSeed,
                               bool instances = false) {
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_jobs = num_jobs;
  cfg.emit_instances = instances;
  return trace::TraceGenerator(cfg).generate();
}

/// The paper's 100-job experiment set drawn from a 20k-job trace.
inline std::vector<core::JobDag> make_experiment_set(
    std::size_t trace_jobs = 20000, std::size_t sample_size = 100) {
  const trace::Trace data = make_trace(trace_jobs);
  core::PipelineConfig cfg;
  cfg.sample_size = sample_size;
  return core::CharacterizationPipeline(cfg).build_sample(data);
}

/// Section header so `for b in bench/*; do $b; done` output reads as a
/// figure-by-figure report.
inline void banner(const char* experiment_id, const char* description) {
  std::cout << "\n############################################################\n"
            << "# " << experiment_id << ": " << description << "\n"
            << "############################################################\n";
}

}  // namespace cwgl::bench

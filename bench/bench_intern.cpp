// Shape interning (core::ShapeStore): how much of a cloud trace's analysis
// cost the paper's shape redundancy eliminates. Three measurements:
//   1. dedup ratio — distinct shapes / jobs over the whole trace (the
//      redundancy headline; tiny for production-like workloads),
//   2. intern throughput — jobs/s through the sharded intern table,
//   3. featurize+Gram speedup — WL featurization + Gram matrix computed
//      once per DISTINCT shape and expanded, vs once per job directly.
// The acceptance bar for the interned pipeline is a >= 5x featurize+Gram
// speedup on the 50k-job paper-mix trace (the direct side is measured on a
// bounded working set: its Gram is quadratic in jobs, which is the point).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <span>
#include <vector>

#include "bench/common.hpp"
#include "core/ingest.hpp"
#include "core/pipeline.hpp"
#include "core/shape_store.hpp"
#include "core/similarity.hpp"
#include "obs/stopwatch.hpp"
#include "util/strings.hpp"

using namespace cwgl;

namespace {

/// Least-noise estimate on a shared box: the fastest of `reps` runs.
template <typename Fn>
double best_ms_of(int reps, Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    const double ms = fn();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

double run_intern_all(std::span<const core::JobDag> jobs,
                      core::ShapeStore::Stats* stats) {
  obs::Stopwatch watch;
  core::ShapeStore store;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    benchmark::DoNotOptimize(store.intern(jobs[i], i));
  }
  const double ms = watch.millis();
  if (stats != nullptr) *stats = store.stats();
  return ms;
}

double run_direct_featurize_gram(std::span<const core::JobDag> jobs,
                                 const core::SimilarityOptions& options) {
  obs::Stopwatch watch;
  const auto sim = core::SimilarityAnalysis::compute(jobs, options);
  benchmark::DoNotOptimize(sim.gram(0, 0));
  return watch.millis();
}

/// The interned analysis path: interning the working set, then WL
/// featurization + Gram over the distinct shapes only. This IS what the
/// interned pipeline's clustering consumes — the count-weighted stages take
/// the shape-level Gram plus multiplicities directly; no per-job expansion
/// sits on the analysis path. `expansion_ms`, measured separately, is the
/// optional O(n^2) copy back to a per-job matrix for report compatibility.
double run_interned_featurize_gram(std::span<const core::JobDag> jobs,
                                   const core::SimilarityOptions& options,
                                   std::size_t* distinct,
                                   double* expansion_ms) {
  obs::Stopwatch watch;
  core::ShapeStore store;
  std::vector<const core::ShapeStore::Node*> handles;
  handles.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    handles.push_back(store.intern(jobs[i], i));
  }
  const core::ShapeStore::FrozenView view = store.freeze_with_ids();
  std::vector<std::uint32_t> shape_of;
  shape_of.reserve(handles.size());
  for (const auto* node : handles) shape_of.push_back(view.id_of.at(node));

  const auto sim = core::SimilarityAnalysis::compute(view.table.exemplars,
                                                     options);
  benchmark::DoNotOptimize(sim.gram(0, 0));
  const double analysis_ms = watch.millis();

  if (expansion_ms != nullptr) {
    obs::Stopwatch expand_watch;
    const std::size_t n = jobs.size();
    linalg::Matrix gram(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        gram(i, j) = sim.gram(shape_of[i], shape_of[j]);
      }
    }
    benchmark::DoNotOptimize(gram(n - 1, n - 1));
    *expansion_ms = expand_watch.millis();
  }
  if (distinct != nullptr) *distinct = view.table.size();
  return analysis_ms;
}

void print_figure(bench::Reporter& reporter) {
  bench::banner("I2", "shape interning: dedup ratio + featurize/Gram speedup");
  const trace::Trace data = bench::make_trace(50000);
  const std::vector<core::JobDag> dags =
      core::build_all_dag_jobs(data, trace::SamplingCriteria{});
  std::cout << "input: " << dags.size() << " DAG jobs\n\n";

  // 1+2: dedup ratio and intern throughput over the whole trace.
  core::ShapeStore::Stats stats;
  const double intern_ms =
      best_ms_of(3, [&] { return run_intern_all(dags, &stats); });
  const double jobs_per_s =
      static_cast<double>(stats.total_jobs) / (intern_ms / 1000.0);
  std::cout << "intern table:  " << stats.distinct_shapes << " distinct of "
            << stats.total_jobs << " jobs (ratio "
            << util::format_double(stats.distinct_ratio(), 4) << "), "
            << stats.hash_collisions << " hash collisions\n"
            << "intern rate:   "
            << util::format_double(jobs_per_s / 1e6, 2) << " Mjobs/s ("
            << util::format_double(intern_ms, 1) << " ms)\n";

  // 3: featurize+Gram on a bounded working set. The direct side is O(W^2)
  // Gram dot products; W is capped so the bench terminates on any box, and
  // the reported speedup is a FLOOR for larger traces (the interned side
  // scales with distinct shapes, which grow sublinearly).
  const std::size_t working = std::min<std::size_t>(dags.size(), 2500);
  const std::span<const core::JobDag> working_set =
      std::span(dags).first(working);
  const core::SimilarityOptions options;
  const double direct_ms = best_ms_of(
      2, [&] { return run_direct_featurize_gram(working_set, options); });
  std::size_t distinct = 0;
  double expansion_ms = 0.0;
  const double interned_ms = best_ms_of(2, [&] {
    return run_interned_featurize_gram(working_set, options, &distinct,
                                       &expansion_ms);
  });
  const double speedup = interned_ms > 0.0 ? direct_ms / interned_ms : 0.0;

  std::cout << "\nfeaturize+Gram on " << working << " jobs ("
            << distinct << " distinct shapes)\n"
            << "  direct:      " << util::format_double(direct_ms, 1) << " ms\n"
            << "  interned:    " << util::format_double(interned_ms, 1)
            << " ms (interning + per-shape featurize/Gram — what the\n"
            << "               count-weighted clustering consumes)\n"
            << "  speedup:     " << util::format_double(speedup, 1)
            << "x (acceptance bar: 5x)\n"
            << "  expansion:   " << util::format_double(expansion_ms, 1)
            << " ms extra for the optional per-job report matrix\n";

  reporter.set("dag_jobs", static_cast<double>(dags.size()), "jobs");
  reporter.set("distinct_shapes", static_cast<double>(stats.distinct_shapes),
               "shapes");
  reporter.set("distinct_shape_ratio", stats.distinct_ratio(), "ratio");
  reporter.set("intern_ms", intern_ms);
  reporter.set("intern_jobs_per_s", jobs_per_s, "jobs/s");
  reporter.set("gram_working_set", static_cast<double>(working), "jobs");
  reporter.set("direct_featurize_gram_ms", direct_ms);
  reporter.set("interned_featurize_gram_ms", interned_ms);
  reporter.set("gram_expansion_ms", expansion_ms);
  reporter.set("intern_speedup", speedup, "x");
}

void BM_InternTrace(benchmark::State& state) {
  const trace::Trace data =
      bench::make_trace(static_cast<std::size_t>(state.range(0)));
  const std::vector<core::JobDag> dags =
      core::build_all_dag_jobs(data, trace::SamplingCriteria{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_intern_all(dags, nullptr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dags.size()));
}
BENCHMARK(BM_InternTrace)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_InternedFeaturizeGram(benchmark::State& state) {
  const trace::Trace data = bench::make_trace(5000);
  const std::vector<core::JobDag> dags =
      core::build_all_dag_jobs(data, trace::SamplingCriteria{});
  const std::size_t working =
      std::min<std::size_t>(dags.size(), static_cast<std::size_t>(state.range(0)));
  const core::SimilarityOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_interned_featurize_gram(
        std::span(dags).first(working), options, nullptr, nullptr));
  }
}
BENCHMARK(BM_InternedFeaturizeGram)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("intern");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

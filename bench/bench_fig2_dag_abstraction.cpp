// Fig 2 — job-level abstraction of DAG batch workload.
//
// Prints a sample of job DAGs in GraphViz form (the paper's visual) plus the
// aggregate vertex/edge volume of the abstraction, and times trace-to-DAG
// construction, which is the substrate of every other figure.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hpp"
#include "core/job_dag.hpp"
#include "graph/dot.hpp"
#include "trace/filter.hpp"

using namespace cwgl;

namespace {

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("Fig 2", "job-level abstraction of DAG batch workload");
  const auto sample = bench::make_experiment_set(20000, 100);

  std::size_t vertices = 0, edges = 0;
  for (const auto& job : sample) {
    vertices += static_cast<std::size_t>(job.size());
    edges += static_cast<std::size_t>(job.dag.num_edges());
  }
  std::cout << "abstraction over " << sample.size() << " sampled jobs: "
            << vertices << " task vertices, " << edges
            << " dependency edges\n\n";
  std::cout << "first three job DAGs (render with graphviz dot):\n";
  for (std::size_t i = 0; i < 3 && i < sample.size(); ++i) {
    std::cout << graph::to_dot(sample[i].dag, sample[i].vertex_names(),
                               sample[i].job_name);
  }
}

void BM_BuildJobDags(benchmark::State& state) {
  const trace::Trace data =
      bench::make_trace(static_cast<std::size_t>(state.range(0)));
  const trace::TraceIndex index(data);
  std::size_t built = 0;
  for (auto _ : state) {
    built = 0;
    for (const auto& group : index.jobs()) {
      std::vector<trace::TaskRecord> records;
      for (std::size_t i : group.tasks) records.push_back(data.tasks[i]);
      if (auto job = core::build_job_dag(group.job_name, records)) {
        benchmark::DoNotOptimize(job->dag.num_edges());
        ++built;
      }
    }
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(index.jobs().size()), benchmark::Counter::kIsRate);
  state.counters["dags_built"] = static_cast<double>(built);
}
BENCHMARK(BM_BuildJobDags)->Arg(2000)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("fig2_dag_abstraction");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Fig 7 — similarity score map formed by pairwise WL comparison of batch
// job DAGs (100x100, cosine-normalized to [0,1]).
//
// Paper shape to reproduce: a red diagonal (self-similarity 1); smaller
// graphs with short tails and low parallelism score systematically higher
// pairwise similarity than large ones.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hpp"
#include "core/report_text.hpp"
#include "core/similarity.hpp"
#include "linalg/eigen.hpp"

using namespace cwgl;

namespace {

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("Fig 7", "pairwise WL similarity map of the experiment set");
  const auto sample = bench::make_experiment_set();
  util::ThreadPool pool;
  const auto analysis = core::SimilarityAnalysis::compute(sample, {}, &pool);

  core::print_similarity_summary(std::cout, analysis.stats(sample));
  std::cout << "matrix is symmetric: "
            << (analysis.gram.is_symmetric(1e-12) ? "yes" : "NO") << "\n";
  std::cout << "matrix is PSD (valid kernel): "
            << (linalg::is_positive_semidefinite(analysis.gram, 1e-7) ? "yes"
                                                                      : "NO")
            << "\n\n";
  std::cout << "full similarity matrix (CSV rows, the Fig 7 heat map data):\n";
  core::print_similarity_matrix(std::cout, analysis);
}

void BM_SimilarityMap(benchmark::State& state) {
  const auto sample = bench::make_experiment_set(
      20000, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SimilarityAnalysis::compute(sample));
  }
  state.counters["pairs"] =
      static_cast<double>(sample.size() * (sample.size() + 1) / 2);
}
BENCHMARK(BM_SimilarityMap)->Arg(50)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("fig7_similarity");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

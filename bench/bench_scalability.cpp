// A5 — scalability of the graph-learning pipeline: kernel-matrix build time
// vs corpus size (quadratic pair count, near-linear featurization), thread
// scaling of the Gram stage, and end-to-end pipeline time vs trace size.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hpp"
#include "core/pipeline.hpp"
#include "kernel/gram.hpp"
#include "kernel/wl.hpp"
#include "util/strings.hpp"
#include "obs/stopwatch.hpp"

using namespace cwgl;

namespace {

void print_figure(bench::Reporter& reporter) {
  bench::banner("A5", "scalability: corpus size, threads, end-to-end pipeline");
  std::cout << util::pad_left("corpus", 8) << util::pad_left("gram ms", 10)
            << util::pad_left("ms/pair", 10) << "\n";
  for (std::size_t n : {25u, 50u, 100u, 200u, 400u}) {
    const auto sample = bench::make_experiment_set(20000, n);
    std::vector<kernel::LabeledGraph> corpus;
    for (const auto& job : sample) corpus.push_back(job.to_labeled());
    kernel::WlSubtreeFeaturizer featurizer;
    obs::Stopwatch timer;
    const auto gram = kernel::gram_matrix(featurizer, corpus);
    const double ms = timer.millis();
    const double pairs =
        static_cast<double>(corpus.size() * (corpus.size() + 1)) / 2.0;
    std::cout << util::pad_left(std::to_string(corpus.size()), 8)
              << util::pad_left(util::format_double(ms, 1), 10)
              << util::pad_left(util::format_double(ms / pairs, 4), 10) << "\n";
    reporter.set("gram_" + std::to_string(corpus.size()) + "_ms", ms);
  }

  // Differential: the concurrent featurization path (sharded dictionary +
  // pooled featurize/dot) against the serial reference. "max|diff|" is the
  // elementwise deviation between the two Gram matrices — the determinism
  // contract requires <= 1e-12. The gram_par_* metrics feed bench_diff's
  // --min-bar speedup gate, so they always run >= 5 paired reps (serial and
  // pooled interleaved, per-rep speedup ratios) even under the smoke pass's
  // CWGL_BENCH_REPS=1 — a single rep made the gate flaky.
  std::cout << "\nserial vs parallel gram (4 threads, featurization + dots)\n"
            << util::pad_left("corpus", 8) << util::pad_left("serial ms", 11)
            << util::pad_left("par ms", 10) << util::pad_left("speedup", 9)
            << util::pad_left("max|diff|", 12) << "\n";
  util::ThreadPool pool(4);
  const std::size_t par_reps =
      std::max<std::size_t>(5, bench::env_size("CWGL_BENCH_REPS", 5));
  for (std::size_t n : {100u, 250u, 500u}) {
    const auto sample = bench::make_experiment_set(20000, n);
    std::vector<kernel::LabeledGraph> corpus;
    for (const auto& job : sample) corpus.push_back(job.to_labeled());

    std::vector<double> serial_series, pooled_series, speedup_series;
    double max_diff = 0.0;
    for (std::size_t rep = 0; rep < par_reps; ++rep) {
      // Fresh featurizers each rep: the dictionary grows while interning,
      // so a reused one would time a different (all-hit) workload.
      kernel::WlSubtreeFeaturizer serial_f;
      obs::Stopwatch serial_timer;
      const auto serial = kernel::gram_matrix(serial_f, corpus);
      const double serial_ms = serial_timer.millis();

      kernel::WlSubtreeFeaturizer parallel_f;
      obs::Stopwatch parallel_timer;
      const auto parallel = kernel::gram_matrix(parallel_f, corpus, {}, &pool);
      const double parallel_ms = parallel_timer.millis();

      serial_series.push_back(serial_ms);
      pooled_series.push_back(parallel_ms);
      speedup_series.push_back(serial_ms / parallel_ms);
      max_diff = std::max(max_diff, serial.max_abs_diff(parallel));
    }
    const auto median = [](std::vector<double> v) {
      std::sort(v.begin(), v.end());
      return v[(v.size() - 1) / 2];
    };
    const double serial_med = median(serial_series);
    const double pooled_med = median(pooled_series);
    std::cout << util::pad_left(std::to_string(corpus.size()), 8)
              << util::pad_left(util::format_double(serial_med, 1), 11)
              << util::pad_left(util::format_double(pooled_med, 1), 10)
              << util::pad_left(util::format_double(median(speedup_series), 2), 9)
              << util::pad_left(util::format_double(max_diff, 15), 19)
              << "\n";
    const std::string prefix = "gram_par_" + std::to_string(corpus.size());
    reporter.series(prefix + "_serial_ms", serial_series);
    reporter.series(prefix + "_pooled_ms", pooled_series);
    reporter.series(prefix + "_speedup", speedup_series, "x");
  }
}

void BM_GramVsCorpusSize(benchmark::State& state) {
  const auto sample = bench::make_experiment_set(
      20000, static_cast<std::size_t>(state.range(0)));
  std::vector<kernel::LabeledGraph> corpus;
  for (const auto& job : sample) corpus.push_back(job.to_labeled());
  for (auto _ : state) {
    kernel::WlSubtreeFeaturizer featurizer;
    benchmark::DoNotOptimize(kernel::gram_matrix(featurizer, corpus));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GramVsCorpusSize)->RangeMultiplier(2)->Range(25, 400)
    ->Complexity(benchmark::oNSquared)->Unit(benchmark::kMillisecond);

void BM_GramThreads(benchmark::State& state) {
  const auto sample = bench::make_experiment_set(20000, 200);
  std::vector<kernel::LabeledGraph> corpus;
  for (const auto& job : sample) corpus.push_back(job.to_labeled());
  util::ThreadPool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    kernel::WlSubtreeFeaturizer featurizer;
    benchmark::DoNotOptimize(kernel::gram_matrix(featurizer, corpus, {}, &pool));
  }
}
BENCHMARK(BM_GramThreads)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_EndToEndPipeline(benchmark::State& state) {
  const trace::Trace data =
      bench::make_trace(static_cast<std::size_t>(state.range(0)));
  core::PipelineConfig cfg;
  cfg.sample_size = 100;
  const core::CharacterizationPipeline pipeline(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.run(data));
  }
}
BENCHMARK(BM_EndToEndPipeline)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("scalability");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// A9 — extension: batch execution under online/offline co-location.
//
// Section II-B: online services have priority; under resource competition
// batch tasks are "suspended or killed" and rescheduled. This bench runs
// the characterized workload against a diurnal online load and reports how
// batch JCT, preemptions and utilization respond to the co-location
// intensity, and whether the topology-group-hint policy still helps when
// capacity is volatile.
//
// Expected shape: JCT and preemptions grow with the online share; the
// group-hint ordering retains an advantage over FIFO throughout.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hpp"
#include "core/clustering.hpp"
#include "core/similarity.hpp"
#include "sched/simulator.hpp"
#include "util/strings.hpp"

using namespace cwgl;

namespace {

struct Fixture {
  std::vector<sched::SimJob> jobs;
  std::vector<sched::GroupProfile> profiles;
};

Fixture make_fixture() {
  const trace::Trace data = bench::make_trace(20000);
  core::PipelineConfig cfg;
  cfg.sample_size = 150;
  cfg.sampling = core::SamplingMode::Natural;
  const auto sample = core::CharacterizationPipeline(cfg).build_sample(data);
  util::ThreadPool pool;
  const auto similarity = core::SimilarityAnalysis::compute(sample, {}, &pool);
  core::ClusteringOptions cluster_options;
  const auto clustering =
      core::ClusteringAnalysis::compute(similarity.gram, sample, cluster_options);
  Fixture f;
  f.jobs = sched::jobs_from_dags(sample, /*inter_arrival=*/1.0);
  sched::attach_hints(f.jobs, clustering.labels);
  f.profiles = sched::profiles_from_groups(sample, clustering.labels,
                                           cluster_options.clusters);
  return f;
}

sched::SimulatorConfig cluster_with_online(double base_fraction) {
  sched::SimulatorConfig cfg;
  cfg.machines = 3;
  if (base_fraction > 0.0) {
    cfg.online.enabled = true;
    cfg.online.base_fraction = base_fraction;
    cfg.online.amplitude = std::min(0.2, 0.9 - base_fraction);
    cfg.online.period = 3600.0;
    cfg.online.tick_interval = 60.0;
  }
  return cfg;
}

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("A9", "batch under online/offline co-location (Section II-B)");
  const Fixture f = make_fixture();
  const sched::FifoPolicy fifo;
  const sched::GroupHintPolicy hint;

  std::cout << util::pad_left("online", 8) << util::pad_left("policy", 13)
            << util::pad_left("mean JCT", 10) << util::pad_left("p95 JCT", 10)
            << util::pad_left("preempt", 9) << util::pad_left("batch util", 12)
            << "\n";
  for (double base : {0.0, 0.2, 0.4, 0.6}) {
    const sched::Simulator sim(cluster_with_online(base));
    for (const sched::SchedulingPolicy* policy :
         std::initializer_list<const sched::SchedulingPolicy*>{&fifo, &hint}) {
      const auto r = sim.run(f.jobs, *policy, f.profiles);
      std::cout << util::pad_left(util::format_double(100.0 * base, 0) + "%", 8)
                << util::pad_left(std::string(policy->name()), 13)
                << util::pad_left(util::format_double(r.mean_jct, 1), 10)
                << util::pad_left(util::format_double(r.p95_jct, 1), 10)
                << util::pad_left(std::to_string(r.preemptions), 9)
                << util::pad_left(util::format_double(r.mean_utilization, 2), 12)
                << "\n";
    }
  }
}

void BM_ColocatedSimulation(benchmark::State& state) {
  const Fixture f = make_fixture();
  const sched::Simulator sim(
      cluster_with_online(static_cast<double>(state.range(0)) / 100.0));
  const sched::FifoPolicy fifo;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(f.jobs, fifo, f.profiles));
  }
}
BENCHMARK(BM_ColocatedSimulation)->Arg(0)->Arg(40)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("colocation");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

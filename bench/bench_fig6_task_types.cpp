// Fig 6 — distribution of Map/Join/Reduce tasks per job, plus the inferred
// programming model (map-reduce / map-join-reduce / multi-stage).
//
// Paper shape to reproduce: depth<=2 jobs are fundamental Map-Reduce; most
// jobs with joins are Map-Join-Reduce; chain-structured jobs deploy more R
// than M tasks except the very small ones.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hpp"
#include "core/characterization.hpp"
#include "core/report_text.hpp"
#include "graph/patterns.hpp"

using namespace cwgl;

namespace {

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("Fig 6", "distribution of Map-Join-Reduce tasks");
  const auto sample = bench::make_experiment_set();
  const auto report = core::TaskTypeReport::compute(sample);
  core::print_task_type_report(std::cout, report);

  // The paper's chain observation, measured on this set.
  std::size_t chains = 0, chains_more_r = 0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    if (graph::classify_shape(sample[i].dag) !=
        graph::ShapePattern::StraightChain) {
      continue;
    }
    ++chains;
    const auto& row = report.rows[i];
    if (row.size >= 4) chains_more_r += row.r_tasks > row.m_tasks;
  }
  std::cout << "\nchain-structured jobs: " << chains
            << "; of those with >=4 tasks, R > M in " << chains_more_r
            << " (paper: R deployed more than M except tiny jobs)\n";
}

void BM_TaskTypeReport(benchmark::State& state) {
  const auto sample = bench::make_experiment_set();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::TaskTypeReport::compute(sample));
  }
}
BENCHMARK(BM_TaskTypeReport)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("fig6_task_types");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// A3 — ablation: node conflation on/off ahead of graph learning.
//
// The paper conflates to "improve the efficiency of estimating the DAG
// job's structure". This bench measures both halves of that claim on the
// same experiment set: how much smaller the kernels' inputs get (and the
// gram-matrix build speedup), and how much the clustering changes (ARI
// between raw and conflated pipelines).

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hpp"
#include "cluster/metrics.hpp"
#include "core/clustering.hpp"
#include "core/similarity.hpp"
#include "util/strings.hpp"
#include "obs/stopwatch.hpp"

using namespace cwgl;

namespace {

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("A3", "ablation: conflation on/off before graph learning");
  const auto sample = bench::make_experiment_set();
  std::vector<core::JobDag> conflated;
  conflated.reserve(sample.size());
  std::size_t raw_vertices = 0, merged_vertices = 0;
  for (const auto& job : sample) {
    conflated.push_back(core::conflate_job(job));
    raw_vertices += static_cast<std::size_t>(job.size());
    merged_vertices += static_cast<std::size_t>(conflated.back().size());
  }
  std::cout << "kernel input vertices: raw " << raw_vertices << " -> conflated "
            << merged_vertices << " ("
            << util::format_double(
                   100.0 * (1.0 - static_cast<double>(merged_vertices) /
                                      static_cast<double>(raw_vertices)),
                   1)
            << "% reduction)\n";

  obs::Stopwatch timer;
  const auto raw_sim = core::SimilarityAnalysis::compute(sample);
  const double raw_ms = timer.millis();
  timer.reset();
  const auto merged_sim = core::SimilarityAnalysis::compute(conflated);
  const double merged_ms = timer.millis();

  const auto raw_clusters =
      core::ClusteringAnalysis::compute(raw_sim.gram, sample, {});
  const auto merged_clusters =
      core::ClusteringAnalysis::compute(merged_sim.gram, conflated, {});
  const double ari = cluster::adjusted_rand_index(raw_clusters.labels,
                                                  merged_clusters.labels);

  std::cout << "gram build: raw " << util::format_double(raw_ms, 2)
            << " ms, conflated " << util::format_double(merged_ms, 2)
            << " ms\n";
  std::cout << "clustering agreement raw vs conflated (ARI): "
            << util::format_double(ari, 3) << "\n";
  std::cout << "silhouette: raw "
            << util::format_double(raw_clusters.silhouette, 3) << ", conflated "
            << util::format_double(merged_clusters.silhouette, 3) << "\n";
}

void BM_SimilarityRaw(benchmark::State& state) {
  const auto sample = bench::make_experiment_set();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SimilarityAnalysis::compute(sample));
  }
}
BENCHMARK(BM_SimilarityRaw)->Unit(benchmark::kMillisecond);

void BM_SimilarityConflated(benchmark::State& state) {
  const auto sample = bench::make_experiment_set();
  std::vector<core::JobDag> conflated;
  for (const auto& job : sample) conflated.push_back(core::conflate_job(job));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SimilarityAnalysis::compute(conflated));
  }
}
BENCHMARK(BM_SimilarityConflated)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("ablation_conflation");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

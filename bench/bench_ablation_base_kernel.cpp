// A2 — ablation: base kernel choice. Eq. (1) of the paper admits any base
// kernel; we compare the WL subtree kernel against vertex-histogram,
// edge-histogram and shortest-path featurizations on the same experiment
// set: clustering agreement with the WL reference, silhouette, and cost.
//
// Expected shape: vertex-histogram is cheapest and least structural;
// shortest-path approaches WL quality at higher cost; WL wins the
// quality/cost tradeoff — the reason the paper adopts it.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "bench/common.hpp"
#include "cluster/metrics.hpp"
#include "core/clustering.hpp"
#include "core/similarity.hpp"
#include "kernel/base_kernels.hpp"
#include "kernel/gram.hpp"
#include "kernel/wl.hpp"
#include "util/strings.hpp"
#include "obs/stopwatch.hpp"

using namespace cwgl;

namespace {

std::vector<kernel::LabeledGraph> to_corpus(std::span<const core::JobDag> jobs) {
  std::vector<kernel::LabeledGraph> corpus;
  for (const auto& job : jobs) corpus.push_back(job.to_labeled());
  return corpus;
}

std::unique_ptr<kernel::Featurizer> make_featurizer(int which) {
  switch (which) {
    case 0: return std::make_unique<kernel::WlSubtreeFeaturizer>();
    case 1: return std::make_unique<kernel::VertexHistogramFeaturizer>();
    case 2: return std::make_unique<kernel::EdgeHistogramFeaturizer>();
    default: return std::make_unique<kernel::ShortestPathFeaturizer>();
  }
}

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("A2", "ablation: base kernel choice (Eq. 1 admits any)");
  const auto sample = bench::make_experiment_set();
  const auto corpus = to_corpus(sample);

  kernel::WlSubtreeFeaturizer wl_ref;
  const auto reference_gram = kernel::gram_matrix(wl_ref, corpus);
  const auto reference =
      core::ClusteringAnalysis::compute(reference_gram, sample, {});

  std::cout << util::pad_right("kernel", 18) << util::pad_left("ARI vs WL", 11)
            << util::pad_left("silhouette", 12) << util::pad_left("build ms", 10)
            << "\n";
  for (int which = 0; which < 4; ++which) {
    auto featurizer = make_featurizer(which);
    obs::Stopwatch timer;
    const auto gram = kernel::gram_matrix(*featurizer, corpus);
    const double ms = timer.millis();
    const auto clustering = core::ClusteringAnalysis::compute(gram, sample, {});
    const double ari =
        cluster::adjusted_rand_index(clustering.labels, reference.labels);
    std::cout << util::pad_right(std::string(featurizer->name()), 18)
              << util::pad_left(util::format_double(ari, 3), 11)
              << util::pad_left(util::format_double(clustering.silhouette, 3), 12)
              << util::pad_left(util::format_double(ms, 2), 10) << "\n";
  }
}

void BM_BaseKernelGram(benchmark::State& state) {
  const auto sample = bench::make_experiment_set();
  const auto corpus = to_corpus(sample);
  for (auto _ : state) {
    auto featurizer = make_featurizer(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(kernel::gram_matrix(*featurizer, corpus));
  }
}
BENCHMARK(BM_BaseKernelGram)
    ->Arg(0)  // wl-subtree
    ->Arg(1)  // vertex-histogram
    ->Arg(2)  // edge-histogram
    ->Arg(3)  // shortest-path
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("ablation_base_kernel");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

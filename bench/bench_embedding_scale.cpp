// A8 — extension: hashed WL embeddings (graph2vec-style) as the scale-out
// path. The paper's Gram-matrix pipeline is O(n^2) in the number of jobs;
// the trace has ~4M. Signed feature hashing of WL colors gives corpus-
// independent O(n) embeddings whose cosine approximates the exact kernel,
// so k-means can replace spectral clustering at scale.
//
// Expected shape: clustering agreement (ARI vs the exact spectral
// reference) stays high while cost grows linearly instead of
// quadratically; the crossover appears within a few hundred jobs.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hpp"
#include "cluster/kmeans.hpp"
#include "cluster/metrics.hpp"
#include "core/clustering.hpp"
#include "core/similarity.hpp"
#include "kernel/embedding.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "obs/stopwatch.hpp"

using namespace cwgl;

namespace {

std::vector<kernel::LabeledGraph> to_corpus(std::span<const core::JobDag> jobs) {
  std::vector<kernel::LabeledGraph> corpus;
  for (const auto& job : jobs) corpus.push_back(job.to_labeled());
  return corpus;
}

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("A8", "hashed WL embeddings vs exact gram + spectral");
  std::cout << util::pad_left("jobs", 6) << util::pad_left("gram+spectral ms", 18)
            << util::pad_left("embed+kmeans ms", 17)
            << util::pad_left("ARI agreement", 15) << "\n";
  for (std::size_t n : {50u, 100u, 200u, 400u}) {
    const auto sample = bench::make_experiment_set(20000, n);
    const auto corpus = to_corpus(sample);

    obs::Stopwatch exact_timer;
    const auto similarity = core::SimilarityAnalysis::compute(sample);
    const auto spectral =
        core::ClusteringAnalysis::compute(similarity.gram, sample, {});
    const double exact_ms = exact_timer.millis();

    obs::Stopwatch embed_timer;
    kernel::EmbeddingConfig cfg;
    cfg.wl.iterations = 1;  // match the pipeline's paper-faithful depth
    cfg.dimensions = 256;
    const auto embeddings = kernel::wl_embedding_matrix(corpus, cfg);
    cluster::KMeansOptions km_options;
    km_options.seed = 11;
    const auto km = cluster::kmeans(embeddings, 5, km_options);
    const double embed_ms = embed_timer.millis();

    const double ari = cluster::adjusted_rand_index(spectral.labels, km.labels);
    std::cout << util::pad_left(std::to_string(sample.size()), 6)
              << util::pad_left(util::format_double(exact_ms, 1), 18)
              << util::pad_left(util::format_double(embed_ms, 1), 17)
              << util::pad_left(util::format_double(ari, 3), 15) << "\n";
  }

  // Embeddings are pure per-graph functions, so pooled rows must match the
  // serial matrix bitwise while scaling with cores.
  std::cout << "\nserial vs parallel embedding (4 threads)\n"
            << util::pad_left("jobs", 6) << util::pad_left("serial ms", 11)
            << util::pad_left("par ms", 10) << util::pad_left("speedup", 9)
            << util::pad_left("max|diff|", 12) << "\n";
  util::ThreadPool pool(4);
  for (std::size_t n : {200u, 400u, 800u}) {
    const auto sample = bench::make_experiment_set(20000, n);
    const auto corpus = to_corpus(sample);
    kernel::EmbeddingConfig cfg;
    cfg.wl.iterations = 1;
    cfg.dimensions = 256;

    obs::Stopwatch serial_timer;
    const auto serial = kernel::wl_embedding_matrix(corpus, cfg);
    const double serial_ms = serial_timer.millis();

    obs::Stopwatch parallel_timer;
    const auto parallel = kernel::wl_embedding_matrix(corpus, cfg, &pool);
    const double parallel_ms = parallel_timer.millis();

    std::cout << util::pad_left(std::to_string(corpus.size()), 6)
              << util::pad_left(util::format_double(serial_ms, 1), 11)
              << util::pad_left(util::format_double(parallel_ms, 1), 10)
              << util::pad_left(util::format_double(serial_ms / parallel_ms, 2), 9)
              << util::pad_left(util::format_double(serial.max_abs_diff(parallel), 15), 19)
              << "\n";
  }
}

void BM_EmbedCorpus(benchmark::State& state) {
  const auto sample = bench::make_experiment_set(
      20000, static_cast<std::size_t>(state.range(0)));
  const auto corpus = to_corpus(sample);
  kernel::EmbeddingConfig cfg;
  cfg.dimensions = 256;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel::wl_embedding_matrix(corpus, cfg));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EmbedCorpus)->RangeMultiplier(2)->Range(50, 400)
    ->Complexity(benchmark::oN)->Unit(benchmark::kMillisecond);

void BM_EmbedSingleJob(benchmark::State& state) {
  const auto sample = bench::make_experiment_set(20000, 50);
  const auto corpus = to_corpus(sample);
  kernel::EmbeddingConfig cfg;
  cfg.dimensions = 256;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel::wl_embed(corpus[i % corpus.size()], cfg));
    ++i;
  }
}
BENCHMARK(BM_EmbedSingleJob)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("embedding_scale");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Fig 3 — size of DAG jobs before and after node conflation.
//
// Paper shape to reproduce: sizes decay with a long tail; after conflation
// the distribution shifts left (the ratio of smaller jobs increases).

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hpp"
#include "core/characterization.hpp"
#include "core/report_text.hpp"

using namespace cwgl;

namespace {

void print_figure(bench::Reporter& reporter) {
  (void)reporter;
  bench::banner("Fig 3", "size of DAG jobs before and after node conflation");
  // The figure covers the filtered workload at scale, not just 100 samples.
  const trace::Trace data = bench::make_trace(20000);
  const auto jobs = core::build_all_dag_jobs(data, trace::SamplingCriteria{});
  std::cout << "filtered DAG jobs: " << jobs.size() << "\n\n";
  const auto report = core::ConflationReport::compute(jobs);
  core::print_conflation_report(std::cout, report);

  const double small_before = report.before.fraction(2) + report.before.fraction(3);
  const double small_after = report.after.fraction(2) + report.after.fraction(3);
  std::cout << "share of jobs with <=3 tasks: before "
            << 100.0 * small_before << "%, after " << 100.0 * small_after
            << "%  (paper: ratio of smaller jobs increases)\n";
}

void BM_ConflateWorkload(benchmark::State& state) {
  const trace::Trace data =
      bench::make_trace(static_cast<std::size_t>(state.range(0)));
  const auto jobs = core::build_all_dag_jobs(data, trace::SamplingCriteria{});
  for (auto _ : state) {
    for (const auto& job : jobs) {
      benchmark::DoNotOptimize(core::conflate_job(job).size());
    }
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConflateWorkload)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("fig3_conflation");
  obs::Stopwatch figure_watch;
  print_figure(reporter);
  reporter.set("figure_total_ms", figure_watch.millis());
  reporter.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

#!/usr/bin/env bash
# CI gate: build the tree and run the full ctest suite three ways —
#   plain        no instrumentation (the tier-1 configuration)
#   asan-ubsan   AddressSanitizer + UndefinedBehaviorSanitizer
#   tsan         ThreadSanitizer (exercises the sharded label dictionary,
#                pooled featurization, and the work-helping thread pool
#                under the race detector)
# — then rebuild with -DCWGL_FAILPOINTS=ON and run the fault passes:
#   faults        full suite with the failpoint registry compiled in
#   faults-asan   fault-relevant tests under ASan/UBSan (injected faults
#                 must not leak or touch freed memory on error paths)
#   faults-tsan   fault-relevant tests under TSan (queue close / worker
#                 failure shutdown ordering under the race detector)
# — and finally the bench-smoke pass: bench_ingest + bench_scalability on
#   tiny inputs (CWGL_BENCH_JOBS=500), each emitting BENCH_<name>.json,
#   structurally compared against the committed bench/baselines/ files with
#   scripts/bench_diff.py (deltas informational; a missing metric or broken
#   schema fails the pass)
# — plus the serve-smoke pass: cwgl fit -> predict -> serve-bench on the
#   bundled example trace, and bench_serve diffed against
#   bench/baselines/BENCH_serve.json
# — plus the serve-daemon-smoke pass: fit a snapshot, run the resident
#   `cwgl serve` daemon on a unix socket, round-trip ping/classify through
#   `cwgl client`, verify a corrupt reload is rejected while the old model
#   keeps serving, drain cleanly, then run bench_serve_daemon and gate
#   BENCH_serve_daemon.json: --min-bar on sustained throughput, completed
#   reloads, and completed telemetry exports; --max-bar on the sustained
#   shed fraction, reload errors, the drain exit code, and the telemetry
#   overhead (exporter + logging must cost < 2% sustained throughput)
# — plus the fulltrace-smoke pass: `cwgl characterize --full` (both the
#   mini-batch and landmark backends) on a generated multi-thousand-job
#   trace with a hard ARI >= 0.8 gate against the exact sampled pipeline,
#   a `fit --full` -> `predict` round-trip, and bench_full_cluster diffed
#   against bench/baselines/BENCH_full_cluster.json with --min-bar floors
#   on both agreement ARIs
# — plus the telemetry-smoke pass: a live daemon with the full telemetry
#   plane on (periodic Prometheus exporter, JSON structured logging, span
#   tracer) answers ping/health/stats/trace, a hot reload bumps the
#   generation the endpoints report, the exported .prom file carries the
#   request counter, every structured log line parses as JSON, and drain
#   exits 0.
#
# Usage: scripts/check.sh [jobs]
# Build dirs are build-check-<name>; set CWGL_CHECK_KEEP=1 to keep them.

set -euo pipefail
cd "$(dirname "$0")/.."

# Repo hygiene: build trees must never be committed. This list is empty when
# .gitignore is doing its job; a non-empty match fails fast before the slow
# build/test configurations run.
if git ls-files -- 'build*/' | grep -q .; then
  echo "check.sh: FAILED — tracked files under build*/ (build trees must not be committed):" >&2
  git ls-files -- 'build*/' | head -20 >&2
  exit 1
fi

JOBS="${1:-$(nproc)}"
FAILED=()

run_config() {
  local name="$1" sanitize="$2" failpoints="${3:-OFF}" filter="${4:-}"
  local build_dir="build-check-${name}"
  echo
  echo "=== [${name}] configure (CWGL_SANITIZE='${sanitize}' CWGL_FAILPOINTS=${failpoints}) ==="
  cmake -B "${build_dir}" -S . \
    -DCWGL_SANITIZE="${sanitize}" \
    -DCWGL_FAILPOINTS="${failpoints}" \
    -DCWGL_BUILD_BENCHMARKS=OFF \
    -DCWGL_BUILD_EXAMPLES=OFF
  echo "=== [${name}] build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== [${name}] ctest ==="
  local ctest_args=(--test-dir "${build_dir}" --output-on-failure -j "${JOBS}")
  [[ -n "${filter}" ]] && ctest_args+=(-R "${filter}")
  if ! ctest "${ctest_args[@]}"; then
    FAILED+=("${name}")
  fi
  if [[ "${CWGL_CHECK_KEEP:-0}" != "1" ]]; then
    rm -rf "${build_dir}"
  fi
}

# Tests that exercise injected faults, quarantine, and shutdown ordering —
# the subset worth re-running under sanitizers with failpoints compiled in.
# ModelFormat/GoldenModel ride along so the every-bit-flip corruption loop
# and the model.write/model.read failpoints run under ASan/UBSan and TSan.
# ParallelFor/GramTiling/SparseDot cover the work-balanced tiled Gram path:
# weighted chunking, pooled-vs-serial differentials, and the galloping dot
# all re-run with race and UB detection on.
#  Daemon/Protocol cover the serving daemon: overload shedding, deadline
# expiry, hot reload, signal-driven drain, and the serve.accept/serve.batch/
# serve.reload failpoints all rerun under both sanitizers.
#  ClusterAtScale/MiniBatchKMeans/LandmarkSpectral/FullTrace cover the
# scalable clustering engine: the cluster.scale failpoint's landmark ->
# mini-batch degradation and both backends rerun under both sanitizers.
FAULT_FILTER='Failpoint|FaultInjection|Diagnostics|StreamDagJobs|StreamShapeJobs|CsvScanner|BoundedQueue|ThreadPool|ParallelFor|GramTiling|SparseDot|Spectral|ModelFormat|GoldenModel|ShapeStore|Daemon|Protocol|ClusterAtScale|MiniBatchKMeans|LandmarkSpectral|FullTrace'

# Smoke the machine-readable bench pipeline end to end: tiny-input runs of
# the two benches with committed baselines must produce cwgl-bench-v1 JSON
# whose metric set still matches bench/baselines/. Timing deltas are
# informational — the committed numbers came from some other box.
run_bench_smoke() {
  local name="bench-smoke" build_dir="build-check-bench-smoke"
  echo
  echo "=== [${name}] configure (benchmarks ON) ==="
  cmake -B "${build_dir}" -S . \
    -DCWGL_BUILD_BENCHMARKS=ON \
    -DCWGL_BUILD_EXAMPLES=OFF
  echo "=== [${name}] build ==="
  cmake --build "${build_dir}" -j "${JOBS}" --target bench_ingest bench_intern bench_scalability
  echo "=== [${name}] run + diff ==="
  local out="${build_dir}/bench-out"
  mkdir -p "${out}"
  local ok=1
  local b
  for b in ingest intern scalability; do
    if ! CWGL_BENCH_JOBS=500 CWGL_BENCH_REPS=1 CWGL_BENCH_OUT="${out}" \
        "${build_dir}/bench/bench_${b}" "--benchmark_filter=^\$"; then
      echo "bench_${b} failed" >&2
      ok=0
      continue
    fi
    # The pooled-Gram speedup is a hard bar on multi-core machines (the
    # committed baseline host has 1 core, where a 4-thread pool can only
    # timeslice — there the ratio is informational, like the time deltas).
    local diff_args=()
    if [[ "${b}" == "scalability" ]] && (($(nproc) > 1)); then
      diff_args+=(--min-bar 'gram_par_*_speedup=1.0')
    fi
    if ! python3 scripts/bench_diff.py "${diff_args[@]}" \
        "bench/baselines/BENCH_${b}.json" "${out}/BENCH_${b}.json"; then
      ok=0
    fi
  done
  ((ok)) || FAILED+=("${name}")
  if [[ "${CWGL_CHECK_KEEP:-0}" != "1" ]]; then
    rm -rf "${build_dir}"
  fi
}

# Model store + serving smoke: fit a snapshot on the bundled example trace,
# classify the committed probe jobs against it, and run the serving bench —
# the full `cwgl fit -> predict -> serve-bench` sequence a deployment would
# use. BENCH_serve.json is structurally diffed against the committed
# baseline (timing deltas informational, like bench-smoke).
run_serve_smoke() {
  local name="serve-smoke" build_dir="build-check-serve-smoke"
  echo
  echo "=== [${name}] configure ==="
  cmake -B "${build_dir}" -S . \
    -DCWGL_BUILD_BENCHMARKS=ON \
    -DCWGL_BUILD_EXAMPLES=OFF
  echo "=== [${name}] build ==="
  cmake --build "${build_dir}" -j "${JOBS}" --target cwgl bench_serve
  echo "=== [${name}] fit + predict + serve-bench ==="
  local cwgl="${build_dir}/src/cli/cwgl"
  local out="${build_dir}/serve-out"
  mkdir -p "${out}"
  local ok=1
  if ! "${cwgl}" fit --trace tests/data/example_trace --sample 60 \
      --clusters 4 --out "${out}/model.cwgl"; then
    echo "serve-smoke: fit failed" >&2
    ok=0
  fi
  if ((ok)) && ! "${cwgl}" predict --model "${out}/model.cwgl" \
      tests/data/probe_jobs.csv --json > "${out}/predict.json"; then
    echo "serve-smoke: predict failed" >&2
    ok=0
  fi
  if ((ok)) && ! "${cwgl}" serve-bench --model "${out}/model.cwgl" \
      --jobs 200 --repeat 1 --json > "${out}/serve_bench.json"; then
    echo "serve-smoke: serve-bench failed" >&2
    ok=0
  fi
  if ((ok)); then
    if ! CWGL_BENCH_JOBS=500 CWGL_BENCH_REPS=1 CWGL_BENCH_OUT="${out}" \
        "${build_dir}/bench/bench_serve"; then
      echo "serve-smoke: bench_serve failed" >&2
      ok=0
    elif ! python3 scripts/bench_diff.py \
        "bench/baselines/BENCH_serve.json" "${out}/BENCH_serve.json"; then
      ok=0
    fi
  fi
  ((ok)) || FAILED+=("${name}")
  if [[ "${CWGL_CHECK_KEEP:-0}" != "1" ]]; then
    rm -rf "${build_dir}"
  fi
}

# Resident-daemon smoke: the full deployment lifecycle against a real
# `cwgl serve` process on a unix socket — fit, serve, classify round-trip,
# corrupt-reload rejection (old model keeps serving), good reload, graceful
# drain with exit 0 — then the open-loop load bench with hard bars: sustained
# throughput and completed reloads from below, shed fraction / reload errors /
# drain exit code from above.
run_serve_daemon_smoke() {
  local name="serve-daemon-smoke" build_dir="build-check-serve-daemon-smoke"
  echo
  echo "=== [${name}] configure ==="
  cmake -B "${build_dir}" -S . \
    -DCWGL_BUILD_BENCHMARKS=ON \
    -DCWGL_BUILD_EXAMPLES=OFF
  echo "=== [${name}] build ==="
  cmake --build "${build_dir}" -j "${JOBS}" --target cwgl bench_serve_daemon
  echo "=== [${name}] daemon lifecycle ==="
  local cwgl="${build_dir}/src/cli/cwgl"
  local out="${build_dir}/daemon-out"
  mkdir -p "${out}"
  local sock="${out}/daemon.sock"
  local ok=1
  if ! "${cwgl}" fit --trace tests/data/example_trace --sample 60 \
      --clusters 4 --out "${out}/model.cwgl"; then
    echo "${name}: fit failed" >&2
    ok=0
  fi
  local daemon_pid=""
  if ((ok)); then
    "${cwgl}" serve --model "${out}/model.cwgl" --socket "${sock}" \
      --metrics="${out}/daemon_metrics.json" &
    daemon_pid=$!
    local i
    for i in $(seq 1 100); do
      [[ -S "${sock}" ]] && break
      sleep 0.1
    done
    if [[ ! -S "${sock}" ]]; then
      echo "${name}: daemon never bound ${sock}" >&2
      ok=0
    fi
  fi
  if ((ok)) && ! "${cwgl}" client --socket "${sock}" --ping; then
    echo "${name}: ping failed" >&2
    ok=0
  fi
  if ((ok)) && ! "${cwgl}" client --socket "${sock}" --job smoke_job \
      --tasks M1,M2_1,R3_2; then
    echo "${name}: classify round-trip failed" >&2
    ok=0
  fi
  if ((ok)); then
    # A corrupt snapshot must be rejected (typed error -> client exits
    # non-zero) while the old model keeps answering.
    echo "not a model" > "${out}/corrupt.cwgl"
    if "${cwgl}" client --socket "${sock}" --reload="${out}/corrupt.cwgl" \
        > /dev/null 2>&1; then
      echo "${name}: corrupt reload was accepted" >&2
      ok=0
    fi
  fi
  if ((ok)) && ! "${cwgl}" client --socket "${sock}" --job smoke_job \
      --tasks M1,M2_1,R3_2 > /dev/null; then
    echo "${name}: daemon stopped serving after rejected reload" >&2
    ok=0
  fi
  if ((ok)) && ! "${cwgl}" client --socket "${sock}" \
      --reload="${out}/model.cwgl" > /dev/null; then
    echo "${name}: good reload failed" >&2
    ok=0
  fi
  if ((ok)) && ! "${cwgl}" client --socket "${sock}" --drain; then
    echo "${name}: drain request failed" >&2
    ok=0
  fi
  if [[ -n "${daemon_pid}" ]]; then
    local deadline=$((SECONDS + 30))
    while kill -0 "${daemon_pid}" 2>/dev/null && ((SECONDS < deadline)); do
      sleep 0.2
    done
    if kill -0 "${daemon_pid}" 2>/dev/null; then
      echo "${name}: daemon did not exit after drain" >&2
      kill -9 "${daemon_pid}" 2>/dev/null || true
      wait "${daemon_pid}" 2>/dev/null || true
      ok=0
    else
      local rc=0
      wait "${daemon_pid}" || rc=$?
      if ((rc != 0)); then
        echo "${name}: daemon exited ${rc} (want 0 after clean drain)" >&2
        ok=0
      fi
    fi
  fi
  if ((ok)); then
    echo "=== [${name}] load bench + gates ==="
    if ! CWGL_BENCH_JOBS=500 CWGL_BENCH_REPS=1 CWGL_BENCH_OUT="${out}" \
        "${build_dir}/bench/bench_serve_daemon"; then
      echo "${name}: bench_serve_daemon failed" >&2
      ok=0
    elif ! python3 scripts/bench_diff.py \
        --min-bar 'sustained_jobs_per_s=50' \
        --min-bar 'reloads_completed=3' \
        --min-bar 'telemetry_exports_completed=1' \
        --max-bar 'sustained_shed_fraction=0.05' \
        --max-bar 'reload_during_traffic_errors=0' \
        --max-bar 'drain_exit_code=0' \
        --max-bar 'telemetry_overhead_pct=2.0' \
        "bench/baselines/BENCH_serve_daemon.json" \
        "${out}/BENCH_serve_daemon.json"; then
      ok=0
    fi
  fi
  ((ok)) || FAILED+=("${name}")
  if [[ "${CWGL_CHECK_KEEP:-0}" != "1" ]]; then
    rm -rf "${build_dir}"
  fi
}

# Full-trace clustering smoke: `cwgl characterize --full` on a generated
# multi-thousand-job trace must reproduce the exact sampled pipeline's
# partition at ARI >= 0.8 for BOTH backends (mini-batch and landmark), a
# full-trace fit must classify the committed probe jobs (`fit --full` ->
# `predict` round-trip, per-section snapshot sizes present in the fit JSON),
# and bench_full_cluster is gated against its committed baseline with hard
# --min-bar floors on both agreement ARIs.
run_fulltrace_smoke() {
  local name="fulltrace-smoke" build_dir="build-check-fulltrace-smoke"
  echo
  echo "=== [${name}] configure ==="
  cmake -B "${build_dir}" -S . \
    -DCWGL_BUILD_BENCHMARKS=ON \
    -DCWGL_BUILD_EXAMPLES=OFF
  echo "=== [${name}] build ==="
  cmake --build "${build_dir}" -j "${JOBS}" --target cwgl bench_full_cluster
  echo "=== [${name}] characterize --full (both backends) + ARI gate ==="
  local cwgl="${build_dir}/src/cli/cwgl"
  local out="${build_dir}/fulltrace-out"
  mkdir -p "${out}"
  local ok=1
  local method
  for method in minibatch landmark; do
    if ! "${cwgl}" characterize --full="${method}" --jobs 20000 --json \
        > "${out}/full_${method}.json"; then
      echo "${name}: characterize --full=${method} failed" >&2
      ok=0
      continue
    fi
    if ! python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
method = sys.argv[2]
assert doc["schema"] == "cwgl-full-v1", doc.get("schema")
assert doc["method"] == method, (doc["method"], method)
agreement = doc["agreement"]
jobs, ari = agreement["jobs"], agreement["ari"]
assert jobs > 0, "agreement validation did not run"
if ari < 0.8:
    raise SystemExit(f"{method}: ARI {ari:.3f} < 0.8 vs the exact subsample")
shapes = doc["distinct_shapes"]
total = doc["jobs"]
print(f"  {method}: {total} jobs, {shapes} shapes, ARI {ari:.3f} on {jobs} jobs")
' "${out}/full_${method}.json" "${method}"; then
      echo "${name}: ${method} agreement gate failed" >&2
      ok=0
    fi
  done
  if ((ok)); then
    echo "=== [${name}] fit --full -> predict round-trip ==="
    if ! "${cwgl}" fit --full --jobs 20000 --json \
        --out "${out}/full_model.cwgl" > "${out}/fit.json"; then
      echo "${name}: fit --full failed" >&2
      ok=0
    elif ! python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["full"] is True
assert doc["self_check"]["ok"] is True, doc["self_check"]
sections = doc["snapshot"]["sections"]
for key in ("conf", "dict", "prof", "reps", "shpc", "total"):
    assert sections[key] > 0, (key, sections)
assert doc["snapshot"]["bytes"] == sections["total"]
' "${out}/fit.json"; then
      echo "${name}: fit --full JSON missing sections/self-check" >&2
      ok=0
    elif ! "${cwgl}" predict --model "${out}/full_model.cwgl" \
        tests/data/probe_jobs.csv --json > "${out}/predict.json"; then
      echo "${name}: predict against the full-trace model failed" >&2
      ok=0
    fi
  fi
  if ((ok)); then
    echo "=== [${name}] bench_full_cluster + ARI floors ==="
    if ! CWGL_BENCH_JOBS=20000 CWGL_BENCH_REPS=1 CWGL_BENCH_OUT="${out}" \
        "${build_dir}/bench/bench_full_cluster" "--benchmark_filter=^\$"; then
      echo "${name}: bench_full_cluster failed" >&2
      ok=0
    elif ! python3 scripts/bench_diff.py \
        --min-bar 'agreement_ari_*=0.8' \
        --max-bar 'landmark_degraded=0' \
        "bench/baselines/BENCH_full_cluster.json" \
        "${out}/BENCH_full_cluster.json"; then
      ok=0
    fi
  fi
  ((ok)) || FAILED+=("${name}")
  if [[ "${CWGL_CHECK_KEEP:-0}" != "1" ]]; then
    rm -rf "${build_dir}"
  fi
}

# Telemetry-plane smoke: a live daemon with every observability surface on —
# periodic Prometheus file exporter, JSON structured logging, span tracer —
# answers the ping/health/stats/trace introspection requests; a hot reload
# bumps the generation those endpoints report; the exporter publishes a valid
# text-exposition file (atomic tmp+rename, so a partial file is never seen);
# every structured log line parses as JSON; drain exits 0.
run_telemetry_smoke() {
  local name="telemetry-smoke" build_dir="build-check-telemetry-smoke"
  echo
  echo "=== [${name}] configure ==="
  cmake -B "${build_dir}" -S . \
    -DCWGL_BUILD_BENCHMARKS=OFF \
    -DCWGL_BUILD_EXAMPLES=OFF
  echo "=== [${name}] build ==="
  cmake --build "${build_dir}" -j "${JOBS}" --target cwgl
  echo "=== [${name}] live daemon introspection ==="
  local cwgl="${build_dir}/src/cli/cwgl"
  local out="${build_dir}/telemetry-out"
  mkdir -p "${out}"
  local sock="${out}/daemon.sock"
  local prom="${out}/metrics.prom"
  local log="${out}/daemon.log"
  local ok=1
  if ! "${cwgl}" fit --trace tests/data/example_trace --sample 60 \
      --clusters 4 --out "${out}/model.cwgl"; then
    echo "${name}: fit failed" >&2
    ok=0
  fi
  local daemon_pid=""
  if ((ok)); then
    "${cwgl}" serve --model "${out}/model.cwgl" --socket "${sock}" \
      --telemetry-out "${prom}" --telemetry-interval 1 \
      --log="${log}" --log-json --trace-buffer 4096 &
    daemon_pid=$!
    local i
    for i in $(seq 1 100); do
      [[ -S "${sock}" ]] && break
      sleep 0.1
    done
    if [[ ! -S "${sock}" ]]; then
      echo "${name}: daemon never bound ${sock}" >&2
      ok=0
    fi
  fi
  if ((ok)) && ! "${cwgl}" client --socket "${sock}" --ping \
      | grep -q '^generation 1$'; then
    echo "${name}: ping did not report generation 1" >&2
    ok=0
  fi
  if ((ok)) && ! "${cwgl}" client --socket "${sock}" --health \
      | grep -q '"ready":true'; then
    echo "${name}: health did not report ready" >&2
    ok=0
  fi
  if ((ok)); then
    local i
    for i in $(seq 1 5); do
      if ! "${cwgl}" client --socket "${sock}" --job "smoke_${i}" \
          --tasks M1,M2_1,R3_2 > /dev/null; then
        echo "${name}: classify ${i} failed" >&2
        ok=0
        break
      fi
    done
  fi
  if ((ok)) && ! "${cwgl}" client --socket "${sock}" --stats --prometheus \
      | grep -q '^# TYPE cwgl_serve_daemon_requests_total counter$'; then
    echo "${name}: --stats --prometheus missing the request counter" >&2
    ok=0
  fi
  if ((ok)) && ! "${cwgl}" client --socket "${sock}" --trace \
      | grep -q '"enabled":true'; then
    echo "${name}: trace drain did not report an armed tracer" >&2
    ok=0
  fi
  if ((ok)) && ! "${cwgl}" client --socket "${sock}" \
      --reload="${out}/model.cwgl" > /dev/null; then
    echo "${name}: reload failed" >&2
    ok=0
  fi
  if ((ok)) && ! "${cwgl}" client --socket "${sock}" --ping \
      | grep -q '^generation 2$'; then
    echo "${name}: ping did not report generation 2 after reload" >&2
    ok=0
  fi
  if ((ok)); then
    # The periodic exporter (1s interval) must publish the snapshot file.
    local i
    for i in $(seq 1 100); do
      [[ -f "${prom}" ]] && break
      sleep 0.1
    done
    if ! grep -q 'cwgl_serve_daemon_requests_total' "${prom}" 2>/dev/null; then
      echo "${name}: exporter file missing or lacks the request counter" >&2
      ok=0
    fi
  fi
  if ((ok)) && ! "${cwgl}" client --socket "${sock}" --drain; then
    echo "${name}: drain request failed" >&2
    ok=0
  fi
  if [[ -n "${daemon_pid}" ]]; then
    local deadline=$((SECONDS + 30))
    while kill -0 "${daemon_pid}" 2>/dev/null && ((SECONDS < deadline)); do
      sleep 0.2
    done
    if kill -0 "${daemon_pid}" 2>/dev/null; then
      echo "${name}: daemon did not exit after drain" >&2
      kill -9 "${daemon_pid}" 2>/dev/null || true
      wait "${daemon_pid}" 2>/dev/null || true
      ok=0
    else
      local rc=0
      wait "${daemon_pid}" || rc=$?
      if ((rc != 0)); then
        echo "${name}: daemon exited ${rc} (want 0 after clean drain)" >&2
        ok=0
      fi
    fi
  fi
  if ((ok)) && ! python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    lines = [line for line in f if line.strip()]
if not lines:
    raise SystemExit("structured log is empty")
for line in lines:
    json.loads(line)
' "${log}"; then
    echo "${name}: structured log lines are not valid JSON" >&2
    ok=0
  fi
  ((ok)) || FAILED+=("${name}")
  if [[ "${CWGL_CHECK_KEEP:-0}" != "1" ]]; then
    rm -rf "${build_dir}"
  fi
}

run_config plain ""
run_config asan-ubsan "address,undefined"
run_config tsan "thread"
run_config faults "" ON
run_config faults-asan "address,undefined" ON "${FAULT_FILTER}"
run_config faults-tsan "thread" ON "${FAULT_FILTER}"
run_bench_smoke
run_serve_smoke
run_serve_daemon_smoke
run_fulltrace_smoke
run_telemetry_smoke

echo
if ((${#FAILED[@]})); then
  echo "check.sh: FAILED configurations: ${FAILED[*]}"
  exit 1
fi
echo "check.sh: all configurations passed (plain, asan-ubsan, tsan, faults, faults-asan, faults-tsan, bench-smoke, serve-smoke, serve-daemon-smoke, fulltrace-smoke, telemetry-smoke)"

#!/usr/bin/env python3
"""Render the paper's figures from `cwgl characterize --json` output.

Usage:
    build/src/cli/cwgl characterize --jobs 20000 --sample 100 --json > run.json
    python3 scripts/plot_figures.py run.json out_dir/

Produces PNGs mirroring the paper's evaluation figures:
    fig3_conflation.png   job sizes before/after node conflation
    fig4_features.png     per-size max critical path and max width (before)
    fig5_features.png     same, after conflation
    fig6_task_types.png   per-job M/J/R composition
    fig7_similarity.png   the WL similarity heat map
    fig9_groups.png       cluster-group populations and distributions
"""

import json
import pathlib
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib is required: pip install matplotlib")
        return 1

    data = json.loads(pathlib.Path(sys.argv[1]).read_text())
    out_dir = pathlib.Path(sys.argv[2])
    out_dir.mkdir(parents=True, exist_ok=True)

    # Fig 3 — sizes before/after conflation.
    before = {row["size"]: row["count"] for row in data["fig3"]["before"]}
    after = {row["size"]: row["count"] for row in data["fig3"]["after"]}
    sizes = sorted(set(before) | set(after))
    fig, ax = plt.subplots(figsize=(8, 4))
    width = 0.4
    ax.bar([s - width / 2 for s in sizes], [before.get(s, 0) for s in sizes],
           width, label="before conflation")
    ax.bar([s + width / 2 for s in sizes], [after.get(s, 0) for s in sizes],
           width, label="after conflation")
    ax.set_xlabel("job size (tasks)")
    ax.set_ylabel("jobs")
    ax.set_title("Fig 3: size of DAG jobs before and after node conflation")
    ax.legend()
    fig.savefig(out_dir / "fig3_conflation.png", dpi=150, bbox_inches="tight")
    plt.close(fig)

    # Figs 4/5 — per-size structural features.
    for key, name, title in (("fig4", "fig4_features.png", "before"),
                             ("fig5", "fig5_features.png", "after")):
        groups = data[key]["groups"]
        xs = [g["size"] for g in groups]
        fig, (ax1, ax2, ax3) = plt.subplots(3, 1, figsize=(8, 8), sharex=True)
        ax1.bar(xs, [g["count"] for g in groups])
        ax1.set_ylabel("jobs")
        ax2.plot(xs, [g["max_critical_path"] for g in groups], "o-")
        ax2.set_ylabel("max critical path")
        ax3.plot(xs, [g["max_width"] for g in groups], "s-")
        ax3.set_ylabel("max width")
        ax3.set_xlabel("job size (tasks)")
        fig.suptitle(f"Fig {key[3]}: job features {title} node conflation")
        fig.savefig(out_dir / name, dpi=150, bbox_inches="tight")
        plt.close(fig)

    # Fig 6 — M/J/R composition per job.
    rows = data["fig6"]["rows"]
    fig, ax = plt.subplots(figsize=(10, 4))
    idx = range(len(rows))
    bottom = [0] * len(rows)
    for field, label in (("m", "M"), ("j", "J"), ("r", "R")):
        vals = [r[field] for r in rows]
        ax.bar(idx, vals, bottom=bottom, label=label)
        bottom = [b + v for b, v in zip(bottom, vals)]
    ax.set_xlabel("job (sample index)")
    ax.set_ylabel("tasks")
    ax.set_title("Fig 6: distribution of Map-Join-Reduce tasks")
    ax.legend()
    fig.savefig(out_dir / "fig6_task_types.png", dpi=150, bbox_inches="tight")
    plt.close(fig)

    # Fig 7 — similarity heat map.
    matrix = data["fig7"]["matrix"]
    fig, ax = plt.subplots(figsize=(6, 5))
    im = ax.imshow(matrix, cmap="jet", vmin=0.0, vmax=1.0)
    fig.colorbar(im, ax=ax, label="WL similarity")
    ax.set_title("Fig 7: pairwise similarity score map")
    fig.savefig(out_dir / "fig7_similarity.png", dpi=150, bbox_inches="tight")
    plt.close(fig)

    # Fig 9 — group properties.
    groups = data["fig9"]["groups"]
    names = [g["group"] for g in groups]
    fig, axes = plt.subplots(2, 2, figsize=(10, 7))
    axes[0][0].bar(names, [g["population"] for g in groups])
    axes[0][0].set_title("(a) population")
    for ax, metric, title in ((axes[0][1], "size", "(b) job size"),
                              (axes[1][0], "critical_path", "(c) critical path"),
                              (axes[1][1], "parallelism", "(d) parallelism")):
        means = [g[metric]["mean"] for g in groups]
        mins = [g[metric]["min"] for g in groups]
        maxs = [g[metric]["max"] for g in groups]
        ax.errorbar(names, means,
                    yerr=[[m - lo for m, lo in zip(means, mins)],
                          [hi - m for m, hi in zip(means, maxs)]],
                    fmt="o", capsize=4)
        ax.set_title(title)
    fig.suptitle("Fig 9: properties of job DAGs in cluster groups")
    fig.savefig(out_dir / "fig9_groups.png", dpi=150, bbox_inches="tight")
    plt.close(fig)

    print(f"wrote figures to {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Compare two cwgl-bench-v1 result files metric by metric.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--max-regress PCT]
                  [--min-bar GLOB=VALUE ...] [--max-bar GLOB=VALUE ...]

Both files are BENCH_<name>.json as written by bench::Reporter
(bench/common.hpp): {"schema": "cwgl-bench-v1", "bench": ..., "machine":
{...}, "metrics": {name: {unit, reps, median, p90, min, max}}}.

Exit codes:
    0  compared fine (deltas are informational by default)
    1  --max-regress given and a time-unit metric regressed past the bar,
       --min-bar given and a matching metric's median fell below it, or
       --max-bar given and a matching metric's median rose above it
    2  structural problem: unreadable file, wrong schema, a baseline
       metric missing from the current run, or a --min-bar/--max-bar glob
       that matches no current metric — the comparison is not meaningful

Metrics present in the current run but absent from the baseline are the
opposite of a structural problem: they warn on stderr and never affect
the exit code, so a new bench metric can land together with its
refreshed baseline in the same PR.

Deltas are computed on medians. Percentages are signed so that positive
means "current is slower/bigger than baseline". Only time-unit metrics
(ms/us/ns) count against --max-regress; ratios and throughputs are
reported but never gate, since "bigger" is better for those.

--min-bar is the inverse gate for bigger-is-better metrics: GLOB=VALUE
(repeatable, fnmatch glob over metric names) fails the run when any
CURRENT metric matching GLOB has median < VALUE. check.sh uses it to hold
gram_par_*_speedup >= 1.0 on multi-core machines.

--max-bar is the mirror image — an absolute ceiling for
smaller-is-better metrics that are not time-units (so --max-regress
cannot gate them): fails the run when any CURRENT metric matching GLOB
has median > VALUE. check.sh's serve-daemon-smoke pass uses it to cap
the daemon's shed fraction under sustained load and to demand zero
reload-attributable errors.

Stdlib only — runnable anywhere Python 3 exists, no pip involved.
"""

import argparse
import fnmatch
import json
import sys

SCHEMA = "cwgl-bench-v1"
TIME_UNITS = {"ms", "us", "ns", "s"}


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        print(
            f"bench_diff: {path}: expected schema {SCHEMA!r}, "
            f"got {doc.get('schema')!r}",
            file=sys.stderr,
        )
        sys.exit(2)
    if not isinstance(doc.get("metrics"), dict):
        print(f"bench_diff: {path}: no metrics object", file=sys.stderr)
        sys.exit(2)
    return doc


def main():
    parser = argparse.ArgumentParser(
        description="Diff two cwgl-bench-v1 result files."
    )
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--max-regress",
        type=float,
        default=None,
        metavar="PCT",
        help="fail (exit 1) if any time-unit metric's median regresses "
        "by more than PCT percent",
    )
    parser.add_argument(
        "--min-bar",
        action="append",
        default=[],
        metavar="GLOB=VALUE",
        help="fail (exit 1) if any current metric whose name matches GLOB "
        "has median < VALUE; exit 2 if GLOB matches nothing (repeatable)",
    )
    parser.add_argument(
        "--max-bar",
        action="append",
        default=[],
        metavar="GLOB=VALUE",
        help="fail (exit 1) if any current metric whose name matches GLOB "
        "has median > VALUE; exit 2 if GLOB matches nothing (repeatable)",
    )
    args = parser.parse_args()

    def parse_bars(specs, flag):
        bars = []
        for spec in specs:
            glob, sep, value = spec.rpartition("=")
            try:
                if not sep:
                    raise ValueError("missing '='")
                bars.append((glob, float(value)))
            except ValueError as e:
                print(
                    f"bench_diff: bad {flag} {spec!r} (want GLOB=VALUE): {e}",
                    file=sys.stderr,
                )
                sys.exit(2)
        return bars

    bars = parse_bars(args.min_bar, "--min-bar")
    ceilings = parse_bars(args.max_bar, "--max-bar")

    base = load(args.baseline)
    curr = load(args.current)

    if base.get("bench") != curr.get("bench"):
        print(
            f"bench_diff: comparing different benches: "
            f"{base.get('bench')!r} vs {curr.get('bench')!r}",
            file=sys.stderr,
        )
        sys.exit(2)

    if base.get("machine") != curr.get("machine"):
        print(
            "note: machine fingerprints differ — absolute deltas reflect "
            "hardware as much as code"
        )

    missing = sorted(set(base["metrics"]) - set(curr["metrics"]))
    if missing:
        print(
            f"bench_diff: current run is missing {len(missing)} baseline "
            f"metric(s): {', '.join(missing)}",
            file=sys.stderr,
        )
        sys.exit(2)

    extra = sorted(set(curr["metrics"]) - set(base["metrics"]))
    if extra:
        # Never a failure: a metric the current run adds is how new bench
        # metrics land together with their refreshed baseline in one PR.
        print(
            f"bench_diff: warning: current adds {len(extra)} metric(s) not "
            f"in baseline (not gated): {', '.join(extra)}",
            file=sys.stderr,
        )

    print(f"bench: {base.get('bench')}")
    header = f"{'metric':<28}{'unit':>8}{'baseline':>12}{'current':>12}{'delta':>9}"
    print(header)
    print("-" * len(header))

    regressions = []
    for name in sorted(base["metrics"]):
        b = base["metrics"][name]
        c = curr["metrics"][name]
        unit = b.get("unit", "")
        b_med = float(b.get("median", 0.0))
        c_med = float(c.get("median", 0.0))
        if b_med != 0.0:
            pct = 100.0 * (c_med - b_med) / b_med
            delta = f"{pct:+.1f}%"
        else:
            pct = 0.0
            delta = "n/a"
        flag = ""
        if (
            args.max_regress is not None
            and unit in TIME_UNITS
            and b_med != 0.0
            and pct > args.max_regress
        ):
            regressions.append((name, pct))
            flag = "  << regression"
        print(f"{name:<28}{unit:>8}{b_med:>12.4g}{c_med:>12.4g}{delta:>9}{flag}")

    def matching(glob, flag):
        matched = [n for n in sorted(curr["metrics"]) if fnmatch.fnmatch(n, glob)]
        if not matched:
            print(
                f"bench_diff: {flag} {glob!r} matches no current metric",
                file=sys.stderr,
            )
            sys.exit(2)
        return matched

    below_bar = []
    for glob, value in bars:
        for name in matching(glob, "--min-bar"):
            median = float(curr["metrics"][name].get("median", 0.0))
            if median < value:
                below_bar.append((name, median, value))

    above_ceiling = []
    for glob, value in ceilings:
        for name in matching(glob, "--max-bar"):
            median = float(curr["metrics"][name].get("median", 0.0))
            if median > value:
                above_ceiling.append((name, median, value))

    failed = False
    if regressions:
        print(
            f"bench_diff: {len(regressions)} metric(s) regressed past "
            f"{args.max_regress}%: "
            + ", ".join(f"{n} ({p:+.1f}%)" for n, p in regressions),
            file=sys.stderr,
        )
        failed = True
    if below_bar:
        print(
            f"bench_diff: {len(below_bar)} metric(s) below --min-bar: "
            + ", ".join(f"{n} ({m:.4g} < {v:g})" for n, m, v in below_bar),
            file=sys.stderr,
        )
        failed = True
    if above_ceiling:
        print(
            f"bench_diff: {len(above_ceiling)} metric(s) above --max-bar: "
            + ", ".join(f"{n} ({m:.4g} > {v:g})" for n, m, v in above_ceiling),
            file=sys.stderr,
        )
        failed = True
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()

#include "linalg/solve.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace cwgl::linalg {

Matrix cholesky(const Matrix& a, double jitter) {
  if (!a.is_symmetric(1e-9)) {
    throw util::InvalidArgument("cholesky: matrix is not symmetric");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      if (i == j) sum += jitter;
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          throw util::InvalidArgument("cholesky: matrix is not positive definite");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

std::vector<double> solve_spd(const Matrix& a, std::span<const double> b,
                              double jitter) {
  if (a.rows() != b.size()) {
    throw util::InvalidArgument("solve_spd: dimension mismatch");
  }
  const Matrix l = cholesky(a, jitter);
  const std::size_t n = a.rows();
  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

std::vector<double> solve_least_squares(const Matrix& a, std::span<const double> b,
                                        double ridge) {
  if (a.rows() != b.size() || a.rows() == 0 || a.cols() == 0) {
    throw util::InvalidArgument("solve_least_squares: dimension mismatch");
  }
  const std::size_t d = a.cols();
  Matrix ata(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      double sum = 0.0;
      for (std::size_t r = 0; r < a.rows(); ++r) sum += a(r, i) * a(r, j);
      ata(i, j) = sum;
      ata(j, i) = sum;
    }
  }
  std::vector<double> atb(d, 0.0);
  for (std::size_t i = 0; i < d; ++i) {
    double sum = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r) sum += a(r, i) * b[r];
    atb[i] = sum;
  }
  // Ridge scaled by the largest diagonal entry keeps conditioning sane
  // regardless of feature scaling.
  double scale = 0.0;
  for (std::size_t i = 0; i < d; ++i) scale = std::max(scale, ata(i, i));
  return solve_spd(ata, atb, ridge * std::max(1.0, scale));
}

}  // namespace cwgl::linalg

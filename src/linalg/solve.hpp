#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace cwgl::linalg {

/// Cholesky factorization A = L L^T of a symmetric positive-definite
/// matrix; returns the lower-triangular L. Throws InvalidArgument if A is
/// not symmetric or not positive definite (within `jitter` on the
/// diagonal — a tiny ridge that keeps nearly-singular normal equations
/// solvable).
Matrix cholesky(const Matrix& a, double jitter = 0.0);

/// Solves A x = b for symmetric positive-definite A via Cholesky.
std::vector<double> solve_spd(const Matrix& a, std::span<const double> b,
                              double jitter = 0.0);

/// Linear least squares: argmin_x ||A x - b||^2 (+ ridge * ||x||^2) via the
/// normal equations A^T A x = A^T b. The ridge (default tiny) regularizes
/// collinear feature columns. A is n x d with n >= 1, b has n entries.
std::vector<double> solve_least_squares(const Matrix& a, std::span<const double> b,
                                        double ridge = 1e-9);

}  // namespace cwgl::linalg

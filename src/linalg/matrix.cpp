#include "linalg/matrix.hpp"

#include <cmath>

#include "util/error.hpp"

namespace cwgl::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) {
      throw util::InvalidArgument("Matrix::from_rows: ragged rows");
    }
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw util::InvalidArgument("Matrix::multiply: dimension mismatch");
  }
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) {
    throw util::InvalidArgument("Matrix::multiply: vector dimension mismatch");
  }
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const auto rr = row(r);
    for (std::size_t c = 0; c < cols_; ++c) acc += rr[c] * x[c];
    y[r] = acc;
  }
  return y;
}

double Matrix::frobenius_norm() const noexcept {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_abs_diff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw util::InvalidArgument("Matrix::max_abs_diff: shape mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

bool Matrix::is_symmetric(double tol) const noexcept {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

}  // namespace cwgl::linalg

#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace cwgl::linalg {

/// Full eigendecomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in ascending order.
  std::vector<double> values;
  /// Column k of `vectors` is the unit eigenvector for values[k].
  Matrix vectors;
  /// False when the solver hit its sweep budget before reaching `tol`. The
  /// result is still the best available approximation (every Jacobi/subspace
  /// step is orthogonal, so it cannot be wildly wrong) — callers that need
  /// certainty check this and degrade to a stronger solver.
  bool converged = true;
};

/// Cyclic Jacobi eigensolver for real symmetric matrices.
///
/// Rotates away off-diagonal mass sweep by sweep until the off-diagonal
/// Frobenius norm falls below `tol` (relative to the matrix norm) or
/// `max_sweeps` is reached. O(n^3) per sweep with typically 6–10 sweeps —
/// ideal at the n <= 1000 scale of job-similarity matrices, and
/// unconditionally stable (every transform is orthogonal).
///
/// Throws InvalidArgument if `a` is not symmetric within 1e-9.
EigenDecomposition jacobi_eigen(const Matrix& a, double tol = 1e-12,
                                int max_sweeps = 64);

/// True if symmetric `a` is positive semi-definite within `tol`
/// (smallest eigenvalue >= -tol * max(1, |largest eigenvalue|)).
bool is_positive_semidefinite(const Matrix& a, double tol = 1e-8);

/// The k smallest eigenpairs of a symmetric matrix, by subspace (block
/// power) iteration on the spectrally shifted matrix sigma*I - A, where
/// sigma is a Gershgorin upper bound on A's spectrum. O(k n^2) per sweep —
/// the scale-out path for spectral clustering when the full O(n^3) Jacobi
/// decomposition is too expensive (n in the thousands).
///
/// `values` ascend; column j of `vectors` is the unit eigenvector of
/// values[j]. Deterministic (seeded start). Throws InvalidArgument unless
/// 1 <= k <= n and `a` is symmetric.
EigenDecomposition smallest_eigenpairs(const Matrix& a, int k,
                                       int max_sweeps = 600, double tol = 1e-10);

}  // namespace cwgl::linalg

#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "util/error.hpp"

namespace cwgl::linalg {

namespace {

double off_diagonal_norm(const Matrix& a) {
  double acc = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = r + 1; c < a.cols(); ++c) {
      acc += 2.0 * a(r, c) * a(r, c);
    }
  }
  return std::sqrt(acc);
}

}  // namespace

EigenDecomposition jacobi_eigen(const Matrix& input, double tol, int max_sweeps) {
  if (!input.is_symmetric(1e-9)) {
    throw util::InvalidArgument("jacobi_eigen: matrix is not symmetric");
  }
  const std::size_t n = input.rows();
  Matrix a = input;
  Matrix v = Matrix::identity(n);
  const double scale = std::max(1.0, a.frobenius_norm());

  bool converged = false;
  for (int sweep = 0; sweep <= max_sweeps; ++sweep) {
    if (off_diagonal_norm(a) <= tol * scale) {
      converged = true;
      break;
    }
    if (sweep == max_sweeps) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Classic stable rotation computation (Golub & Van Loan 8.4).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenDecomposition out;
  out.converged = converged;
  out.values.resize(n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return diag[x] < diag[y]; });
  out.vectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = diag[order[k]];
    for (std::size_t r = 0; r < n; ++r) out.vectors(r, k) = v(r, order[k]);
  }
  return out;
}

namespace {

/// Modified Gram-Schmidt over the columns of v (in place). Columns that
/// collapse numerically are replaced by deterministic pseudo-random
/// directions and re-orthogonalized.
void orthonormalize_columns(Matrix& v, std::uint64_t salt) {
  const std::size_t n = v.rows();
  const std::size_t k = v.cols();
  std::uint64_t state = 0x9e3779b97f4a7c15ULL ^ salt;
  const auto next_pseudo = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) * 0x1.0p-53 - 0.5;
  };
  for (std::size_t c = 0; c < k; ++c) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      for (std::size_t p = 0; p < c; ++p) {
        double dot = 0.0;
        for (std::size_t r = 0; r < n; ++r) dot += v(r, c) * v(r, p);
        for (std::size_t r = 0; r < n; ++r) v(r, c) -= dot * v(r, p);
      }
      double norm = 0.0;
      for (std::size_t r = 0; r < n; ++r) norm += v(r, c) * v(r, c);
      norm = std::sqrt(norm);
      if (norm > 1e-12) {
        for (std::size_t r = 0; r < n; ++r) v(r, c) /= norm;
        break;
      }
      for (std::size_t r = 0; r < n; ++r) v(r, c) = next_pseudo();
    }
  }
}

}  // namespace

EigenDecomposition smallest_eigenpairs(const Matrix& a, int k, int max_sweeps,
                                       double tol) {
  if (!a.is_symmetric(1e-9)) {
    throw util::InvalidArgument("smallest_eigenpairs: matrix is not symmetric");
  }
  const std::size_t n = a.rows();
  if (k < 1 || static_cast<std::size_t>(k) > n) {
    throw util::InvalidArgument("smallest_eigenpairs: need 1 <= k <= n");
  }
  // Small problems or fat subspaces: the full decomposition is cheaper.
  if (n <= 32 || static_cast<std::size_t>(k) * 2 >= n) {
    const auto full = jacobi_eigen(a);
    EigenDecomposition out;
    out.converged = full.converged;
    out.values.assign(full.values.begin(), full.values.begin() + k);
    out.vectors = Matrix(n, k);
    for (std::size_t r = 0; r < n; ++r) {
      for (int c = 0; c < k; ++c) out.vectors(r, c) = full.vectors(r, c);
    }
    return out;
  }

  // Tight upper bound on lambda_max(A) via power iteration: a tight shift
  // keeps the power ratios of B = sigma I - A away from 1 (the Gershgorin
  // bound can overshoot by ~n for dense matrices, stalling convergence).
  std::vector<double> power(n, 1.0 / std::sqrt(static_cast<double>(n)));
  double lambda_max = 0.0;
  for (int it = 0; it < 60; ++it) {
    auto next = a.multiply(std::span<const double>(power));
    double norm = 0.0;
    for (double x : next) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-300) break;
    for (auto& x : next) x /= norm;
    double rayleigh = 0.0;
    const auto an = a.multiply(std::span<const double>(next));
    for (std::size_t r = 0; r < n; ++r) rayleigh += next[r] * an[r];
    lambda_max = std::max(lambda_max, std::abs(rayleigh));
    power = std::move(next);
  }
  const double sigma = lambda_max * 1.1 + 1.0;

  // B = sigma I - A; its TOP eigenpairs are A's bottom ones.
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      b(i, j) = (i == j ? sigma : 0.0) - a(i, j);
    }
  }

  // Iterate an ENLARGED guard subspace: convergence of the k-th pair is
  // then governed by the gap to eigenvalue m+1, not k+1.
  const int m = static_cast<int>(
      std::min(n, static_cast<std::size_t>(2 * k + 8)));
  Matrix v(n, m);
  orthonormalize_columns(v, /*salt=*/static_cast<std::uint64_t>(k));
  std::vector<double> prev(k, 0.0);
  int settled = 0;
  bool converged = false;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    Matrix w = b.multiply(v);
    orthonormalize_columns(w, static_cast<std::uint64_t>(sweep) + 7);
    // Rayleigh-Ritz on the subspace: T = W^T B W.
    const Matrix bw = b.multiply(w);
    Matrix t(m, m);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < m; ++j) {
        double dot = 0.0;
        for (std::size_t r = 0; r < n; ++r) dot += w(r, i) * bw(r, j);
        t(i, j) = dot;
      }
    }
    for (int i = 0; i < m; ++i) {
      for (int j = i + 1; j < m; ++j) {
        const double mean = 0.5 * (t(i, j) + t(j, i));
        t(i, j) = mean;
        t(j, i) = mean;
      }
    }
    const auto ritz = jacobi_eigen(t);
    // Rotate onto Ritz vectors ordered by DESCENDING theta (ascending A).
    Matrix rotated(n, m);
    for (std::size_t r = 0; r < n; ++r) {
      for (int c = 0; c < m; ++c) {
        double acc = 0.0;
        for (int q = 0; q < m; ++q) {
          acc += w(r, q) * ritz.vectors(q, m - 1 - c);
        }
        rotated(r, c) = acc;
      }
    }
    v = std::move(rotated);
    std::vector<double> current(k);
    for (int c = 0; c < k; ++c) current[c] = sigma - ritz.values[m - 1 - c];
    double delta = 0.0;
    for (int c = 0; c < k; ++c) {
      delta = std::max(delta, std::abs(current[c] - prev[c]));
    }
    prev = current;
    // Ritz values converge roughly quadratically in the subspace angle, so
    // they stabilize before the eigenVECTORS do; require several
    // consecutive converged sweeps to let the vectors catch up.
    static constexpr int kSettleSweeps = 5;
    if (delta <= tol * std::max(1.0, std::abs(sigma))) {
      if (++settled >= kSettleSweeps) {
        converged = true;
        break;
      }
    } else {
      settled = 0;
    }
  }

  EigenDecomposition out;
  out.converged = converged;
  out.values = prev;
  out.vectors = Matrix(n, k);
  for (std::size_t r = 0; r < n; ++r) {
    for (int c = 0; c < k; ++c) out.vectors(r, c) = v(r, c);
  }
  return out;
}

bool is_positive_semidefinite(const Matrix& a, double tol) {
  if (a.rows() == 0) return true;
  const auto eig = jacobi_eigen(a);
  const double largest = std::max(1.0, std::abs(eig.values.back()));
  return eig.values.front() >= -tol * largest;
}

}  // namespace cwgl::linalg

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cwgl::linalg {

/// Dense row-major matrix of doubles.
///
/// Sized for the paper's workloads (kernel/Laplacian matrices of a few
/// hundred rows); operations are straightforward O(n^3)/O(n^2) loops with
/// contiguous storage, which at this scale beats anything fancier.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// Builds from nested initializer-like data; every row must have `cols`
  /// entries (throws InvalidArgument otherwise).
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Contiguous view of row `r`.
  std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  /// Raw storage (row-major).
  std::span<const double> data() const noexcept { return data_; }

  Matrix transposed() const;

  /// Matrix product; dimensions must agree (throws InvalidArgument).
  Matrix multiply(const Matrix& other) const;

  /// y = A x; x.size() must equal cols (throws InvalidArgument).
  std::vector<double> multiply(std::span<const double> x) const;

  /// Frobenius norm.
  double frobenius_norm() const noexcept;

  /// max |a_ij - b_ij|; matrices must be same shape (throws InvalidArgument).
  double max_abs_diff(const Matrix& other) const;

  /// True if square and |a_ij - a_ji| <= tol everywhere.
  bool is_symmetric(double tol = 1e-12) const noexcept;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace cwgl::linalg

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/job_dag.hpp"

namespace cwgl::sched {

/// A task instance to simulate: demand + duration derived from trace
/// metadata.
struct SimTask {
  double cpu = 0.0;        ///< CPU demand while running (100 == one core)
  double mem = 0.0;        ///< memory demand
  double duration = 1.0;   ///< seconds of service time
};

/// A job submitted to the simulated cluster.
struct SimJob {
  std::string name;
  double arrival = 0.0;             ///< submission time (seconds)
  graph::Digraph dag;               ///< task precedence
  std::vector<SimTask> tasks;       ///< aligned with dag vertices
  int hint_group = -1;              ///< cluster-group hint (-1 = none)
};

/// Converts characterized JobDags into simulator jobs. Task demand is
/// plan_cpu x instance_num (the job fans that many instances out), memory
/// is plan_mem, duration comes from the trace timestamps with `fallback`
/// seconds where timestamps are unusable. Arrivals are spaced by
/// `inter_arrival` seconds in input order.
std::vector<SimJob> jobs_from_dags(std::span<const core::JobDag> dags,
                                   double inter_arrival,
                                   double fallback_duration = 60.0);

/// Attaches cluster-group hints (one label per job) to an existing workload.
void attach_hints(std::vector<SimJob>& jobs, std::span<const int> labels);

}  // namespace cwgl::sched

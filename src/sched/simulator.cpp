#include "sched/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "graph/algorithms.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace cwgl::sched {

std::vector<double> upward_ranks(const SimJob& job) {
  const auto order = graph::topological_sort(job.dag);
  if (!order) throw util::GraphError("upward_ranks: job DAG has a cycle");
  std::vector<double> rank(job.tasks.size(), 0.0);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const int v = *it;
    double best_child = 0.0;
    for (int w : job.dag.successors(v)) best_child = std::max(best_child, rank[w]);
    rank[v] = job.tasks[v].duration + best_child;
  }
  return rank;
}

std::vector<GroupProfile> profiles_from_groups(std::span<const core::JobDag> dags,
                                               std::span<const int> labels,
                                               int num_groups) {
  if (dags.size() != labels.size()) {
    throw util::InvalidArgument("profiles_from_groups: dags/labels size mismatch");
  }
  std::vector<GroupProfile> profiles(num_groups);
  std::vector<std::size_t> counts(num_groups, 0);
  std::vector<double> depth_sum(num_groups, 0.0), width_sum(num_groups, 0.0),
      work_sum(num_groups, 0.0);
  for (std::size_t i = 0; i < dags.size(); ++i) {
    const int g = labels[i];
    if (g < 0 || g >= num_groups) {
      throw util::InvalidArgument("profiles_from_groups: label out of range");
    }
    ++counts[g];
    depth_sum[g] += graph::critical_path_length(dags[i].dag);
    width_sum[g] += graph::max_width(dags[i].dag);
    double work = 0.0;
    for (const core::TaskMeta& t : dags[i].tasks) {
      const double duration =
          t.duration() > 0 ? static_cast<double>(t.duration()) : 60.0;
      work += t.plan_cpu * std::max(1, t.instance_num) * duration;
    }
    work_sum[g] += work;
  }
  for (int g = 0; g < num_groups; ++g) {
    if (counts[g] == 0) continue;
    const double n = static_cast<double>(counts[g]);
    profiles[g].expected_depth = depth_sum[g] / n;
    profiles[g].expected_width = width_sum[g] / n;
    profiles[g].expected_work = work_sum[g] / n;
  }
  return profiles;
}

namespace {

struct RunningTask {
  double start = 0.0;
  double finish = 0.0;
  std::size_t job = 0;
  int vertex = 0;
  std::size_t machine = 0;
  double cpu = 0.0;
  double mem = 0.0;
};

constexpr double kEps = 1e-12;

}  // namespace

Simulator::Simulator(SimulatorConfig config) : config_(config) {
  if (config_.machines == 0) {
    throw util::InvalidArgument("Simulator: need at least one machine");
  }
  if (config_.online.enabled) {
    const OnlineLoadModel& o = config_.online;
    if (o.period <= 0.0 || o.tick_interval <= 0.0) {
      throw util::InvalidArgument("Simulator: online period/tick must be > 0");
    }
    if (o.base_fraction < 0.0 || o.base_fraction + o.amplitude >= 1.0) {
      throw util::InvalidArgument(
          "Simulator: online reservation must leave batch headroom (< 1)");
    }
  }
}

SimulationResult Simulator::run(std::span<const SimJob> jobs,
                                const SchedulingPolicy& policy,
                                std::span<const GroupProfile> profiles) const {
  SimulationResult result;
  result.jobs.resize(jobs.size());
  if (jobs.empty()) return result;

  // Precompute ranks and validate DAGs up front.
  std::vector<std::vector<double>> ranks;
  ranks.reserve(jobs.size());
  for (const SimJob& job : jobs) ranks.push_back(upward_ranks(job));

  PolicyContext ctx;
  ctx.jobs = jobs;
  ctx.task_rank = ranks;
  ctx.profiles = profiles;

  ClusterState cluster(config_.machines, config_.cpu_capacity,
                       config_.mem_capacity);

  const OnlineLoadModel& online = config_.online;
  // The largest demand guaranteed to fit an empty machine even at the
  // diurnal PEAK of the online reservation; larger demands are clamped so
  // no batch task can starve regardless of when dispatch happens.
  const double peak_fraction =
      online.enabled
          ? std::min(0.99, online.base_fraction + std::max(0.0, online.amplitude))
          : 0.0;
  const double batch_cpu_limit = config_.cpu_capacity * (1.0 - peak_fraction);

  const auto reservation_at = [&](std::size_t m, double t) {
    const double phase =
        online.phase + online.phase_spread * static_cast<double>(m);
    const double fraction =
        online.base_fraction +
        online.amplitude *
            std::sin(2.0 * std::numbers::pi * (t + phase) / online.period);
    return config_.cpu_capacity * std::clamp(fraction, 0.0, 0.99);
  };

  // Arrival order by time (stable on index).
  std::vector<std::size_t> arrival_order(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) arrival_order[i] = i;
  std::sort(arrival_order.begin(), arrival_order.end(),
            [&](std::size_t a, std::size_t b) {
              return jobs[a].arrival != jobs[b].arrival
                         ? jobs[a].arrival < jobs[b].arrival
                         : a < b;
            });

  std::vector<RunningTask> running;
  std::vector<ReadyTask> ready;
  std::vector<std::vector<int>> pending_parents(jobs.size());
  std::vector<std::size_t> remaining_tasks(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    pending_parents[j].resize(jobs[j].tasks.size());
    for (int v = 0; v < jobs[j].dag.num_vertices(); ++v) {
      pending_parents[j][v] = jobs[j].dag.in_degree(v);
    }
    remaining_tasks[j] = jobs[j].tasks.size();
    result.jobs[j].arrival = jobs[j].arrival;
    result.jobs[j].first_start = -1.0;
  }

  std::size_t next_arrival = 0;
  const double first_arrival = jobs[arrival_order[0]].arrival;
  double prev_time = first_arrival;
  double busy_integral = 0.0;
  double busy_cpu = 0.0;
  double last_finish = first_arrival;
  double next_tick = online.enabled ? first_arrival : 0.0;

  if (online.enabled) {
    for (std::size_t m = 0; m < config_.machines; ++m) {
      cluster.set_online_reserved(m, reservation_at(m, first_arrival));
    }
    next_tick = first_arrival + online.tick_interval;
  }

  const auto dispatch = [&](double time) {
    policy.prioritize(ready, ctx);
    std::vector<ReadyTask> still_waiting;
    still_waiting.reserve(ready.size());
    for (const ReadyTask& t : ready) {
      const SimTask& task = jobs[t.job].tasks[t.vertex];
      double cpu = task.cpu;
      double mem = task.mem;
      if (cpu > batch_cpu_limit || mem > config_.mem_capacity) {
        cpu = std::min(cpu, batch_cpu_limit);
        mem = std::min(mem, config_.mem_capacity);
        ++result.oversized_tasks;
      }
      const int machine = config_.best_fit ? cluster.place_best_fit(cpu, mem)
                                           : cluster.place_first_fit(cpu, mem);
      if (machine < 0) {
        still_waiting.push_back(t);
        continue;
      }
      if (result.jobs[t.job].first_start < 0.0) {
        result.jobs[t.job].first_start = time;
      }
      busy_cpu += cpu;
      running.push_back({time, time + std::max(1e-9, task.duration), t.job,
                         t.vertex, static_cast<std::size_t>(machine), cpu, mem});
    }
    ready = std::move(still_waiting);
  };

  const auto advance_to = [&](double time) {
    busy_integral += busy_cpu * (time - prev_time);
    prev_time = time;
  };

  /// Kills the youngest-started batch tasks on machine `m` until its
  /// overcommit clears; killed tasks lose progress and re-enter `ready`.
  const auto preempt_machine = [&](std::size_t m, double time) {
    while (cluster.machine(m).overcommit() > kEps) {
      int victim = -1;
      for (int i = 0; i < static_cast<int>(running.size()); ++i) {
        if (running[i].machine != m) continue;
        if (victim < 0 || running[i].start > running[victim].start ||
            (running[i].start == running[victim].start &&
             running[i].job > running[victim].job)) {
          victim = i;
        }
      }
      if (victim < 0) break;  // nothing left to preempt (pure online overload)
      const RunningTask killed = running[victim];
      running.erase(running.begin() + victim);
      cluster.release(m, killed.cpu, killed.mem);
      busy_cpu -= killed.cpu;
      ++result.preemptions;
      ready.push_back({killed.job, killed.vertex, time});
    }
  };

  const auto work_pending = [&]() {
    return next_arrival < jobs.size() || !running.empty() || !ready.empty();
  };

  while (work_pending()) {
    // Next event: arrival, completion, or online tick.
    double t = std::numeric_limits<double>::max();
    if (next_arrival < jobs.size()) {
      t = std::min(t, jobs[arrival_order[next_arrival]].arrival);
    }
    for (const RunningTask& r : running) t = std::min(t, r.finish);
    // Ticks only matter while anything can still change.
    if (online.enabled && (!running.empty() || !ready.empty() ||
                           next_arrival < jobs.size())) {
      t = std::min(t, next_tick);
    }
    if (t == std::numeric_limits<double>::max()) {
      // Only ready tasks remain and no event can free resources: with the
      // trough clamp this cannot happen, but guard against infinite loops.
      throw util::Error("Simulator: deadlock — ready tasks can never be placed");
    }
    advance_to(t);

    // Completions at time t.
    for (std::size_t i = 0; i < running.size();) {
      if (running[i].finish <= t + kEps) {
        const RunningTask done = running[i];
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
        cluster.release(done.machine, done.cpu, done.mem);
        busy_cpu -= done.cpu;
        ++result.tasks_executed;
        const SimJob& job = jobs[done.job];
        if (--remaining_tasks[done.job] == 0) {
          result.jobs[done.job].finish = done.finish;
          last_finish = std::max(last_finish, done.finish);
        }
        for (int w : job.dag.successors(done.vertex)) {
          if (--pending_parents[done.job][w] == 0) {
            ready.push_back({done.job, w, t});
          }
        }
      } else {
        ++i;
      }
    }

    // Arrivals at time t.
    while (next_arrival < jobs.size() &&
           jobs[arrival_order[next_arrival]].arrival <= t + kEps) {
      const std::size_t j = arrival_order[next_arrival++];
      for (int v = 0; v < jobs[j].dag.num_vertices(); ++v) {
        if (pending_parents[j][v] == 0) ready.push_back({j, v, t});
      }
      if (jobs[j].tasks.empty()) result.jobs[j].finish = t;
    }

    // Online-load re-evaluation at time t.
    if (online.enabled && t + kEps >= next_tick) {
      for (std::size_t m = 0; m < config_.machines; ++m) {
        cluster.set_online_reserved(m, reservation_at(m, t));
        preempt_machine(m, t);
      }
      while (next_tick <= t + kEps) next_tick += online.tick_interval;
    }

    dispatch(t);
  }

  // Aggregate metrics.
  result.makespan = last_finish - first_arrival;
  std::vector<double> jcts, waits;
  for (const JobOutcome& o : result.jobs) {
    jcts.push_back(o.completion_time());
    waits.push_back(o.first_start >= 0.0 ? o.first_start - o.arrival : 0.0);
  }
  const auto jct = util::describe(jcts);
  result.mean_jct = jct.mean;
  result.p95_jct = util::Quantiles(jcts).p95();
  result.mean_wait = util::describe(waits).mean;
  const double span = last_finish - first_arrival;
  result.mean_utilization =
      span > 0.0 ? busy_integral / (cluster.total_cpu() * span) : 0.0;
  return result;
}

}  // namespace cwgl::sched

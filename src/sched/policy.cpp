#include "sched/policy.hpp"

#include <algorithm>
#include <limits>

namespace cwgl::sched {

namespace {

/// Deterministic final tie-break shared by all policies.
bool id_less(const ReadyTask& a, const ReadyTask& b) {
  return a.job != b.job ? a.job < b.job : a.vertex < b.vertex;
}

/// Total remaining work (cpu-seconds) of a job: sum over all tasks. Exact
/// knowledge — only the oracle SJF policy uses it.
double job_total_work(const SimJob& job) {
  double work = 0.0;
  for (const SimTask& t : job.tasks) work += t.cpu * t.duration;
  return work;
}

}  // namespace

void FifoPolicy::prioritize(std::vector<ReadyTask>& ready,
                            const PolicyContext& ctx) const {
  std::sort(ready.begin(), ready.end(),
            [&](const ReadyTask& a, const ReadyTask& b) {
              const double aa = ctx.jobs[a.job].arrival;
              const double ba = ctx.jobs[b.job].arrival;
              if (aa != ba) return aa < ba;
              if (a.ready_since != b.ready_since) {
                return a.ready_since < b.ready_since;
              }
              return id_less(a, b);
            });
}

void CriticalPathFirstPolicy::prioritize(std::vector<ReadyTask>& ready,
                                         const PolicyContext& ctx) const {
  std::sort(ready.begin(), ready.end(),
            [&](const ReadyTask& a, const ReadyTask& b) {
              const double ra = ctx.task_rank[a.job][a.vertex];
              const double rb = ctx.task_rank[b.job][b.vertex];
              if (ra != rb) return ra > rb;  // longest path to exit first
              return id_less(a, b);
            });
}

void ShortestJobFirstPolicy::prioritize(std::vector<ReadyTask>& ready,
                                        const PolicyContext& ctx) const {
  std::sort(ready.begin(), ready.end(),
            [&](const ReadyTask& a, const ReadyTask& b) {
              const double wa = job_total_work(ctx.jobs[a.job]);
              const double wb = job_total_work(ctx.jobs[b.job]);
              if (wa != wb) return wa < wb;
              return id_less(a, b);
            });
}

void GroupHintPolicy::prioritize(std::vector<ReadyTask>& ready,
                                 const PolicyContext& ctx) const {
  const auto predicted_work = [&](const ReadyTask& t) {
    const int g = ctx.jobs[t.job].hint_group;
    if (g < 0 || static_cast<std::size_t>(g) >= ctx.profiles.size()) {
      return std::numeric_limits<double>::max();  // unhinted jobs go last
    }
    return ctx.profiles[g].expected_work;
  };
  std::sort(ready.begin(), ready.end(),
            [&](const ReadyTask& a, const ReadyTask& b) {
              const double wa = predicted_work(a);
              const double wb = predicted_work(b);
              if (wa != wb) return wa < wb;  // predicted-short jobs first
              // Within a group, favor deep chains (critical path) first.
              const double ra = ctx.task_rank[a.job][a.vertex];
              const double rb = ctx.task_rank[b.job][b.vertex];
              if (ra != rb) return ra > rb;
              return id_less(a, b);
            });
}

}  // namespace cwgl::sched

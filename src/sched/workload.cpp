#include "sched/workload.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace cwgl::sched {

std::vector<SimJob> jobs_from_dags(std::span<const core::JobDag> dags,
                                   double inter_arrival,
                                   double fallback_duration) {
  std::vector<SimJob> jobs;
  jobs.reserve(dags.size());
  double clock = 0.0;
  for (const core::JobDag& dag : dags) {
    SimJob job;
    job.name = dag.job_name;
    job.arrival = clock;
    clock += inter_arrival;
    job.dag = dag.dag;
    job.tasks.reserve(dag.tasks.size());
    for (const core::TaskMeta& meta : dag.tasks) {
      SimTask task;
      task.cpu = meta.plan_cpu * std::max(1, meta.instance_num);
      task.mem = meta.plan_mem;
      const auto trace_duration = meta.duration();
      task.duration = trace_duration > 0 ? static_cast<double>(trace_duration)
                                         : fallback_duration;
      job.tasks.push_back(task);
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void attach_hints(std::vector<SimJob>& jobs, std::span<const int> labels) {
  if (labels.size() != jobs.size()) {
    throw util::InvalidArgument("attach_hints: labels size != jobs size");
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i].hint_group = labels[i];
}

}  // namespace cwgl::sched

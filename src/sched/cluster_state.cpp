#include "sched/cluster_state.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace cwgl::sched {

ClusterState::ClusterState(std::size_t machines, double cpu_capacity,
                           double mem_capacity) {
  if (machines == 0 || cpu_capacity <= 0.0 || mem_capacity <= 0.0) {
    throw util::InvalidArgument("ClusterState: need machines and capacities > 0");
  }
  machines_.resize(machines);
  for (Machine& m : machines_) {
    m.cpu_capacity = cpu_capacity;
    m.mem_capacity = mem_capacity;
  }
  total_cpu_ = cpu_capacity * static_cast<double>(machines);
}

int ClusterState::place_first_fit(double cpu, double mem) {
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    if (machines_[m].fits(cpu, mem)) {
      machines_[m].cpu_used += cpu;
      machines_[m].mem_used += mem;
      return static_cast<int>(m);
    }
  }
  return -1;
}

int ClusterState::place_best_fit(double cpu, double mem) {
  int best = -1;
  double best_slack = std::numeric_limits<double>::max();
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    if (!machines_[m].fits(cpu, mem)) continue;
    const double slack = machines_[m].cpu_free() - cpu;
    if (slack < best_slack) {
      best_slack = slack;
      best = static_cast<int>(m);
    }
  }
  if (best >= 0) {
    machines_[best].cpu_used += cpu;
    machines_[best].mem_used += mem;
  }
  return best;
}

void ClusterState::release(std::size_t m, double cpu, double mem) {
  if (m >= machines_.size()) {
    throw util::InvalidArgument("ClusterState::release: machine out of range");
  }
  machines_[m].cpu_used -= cpu;
  machines_[m].mem_used -= mem;
  if (machines_[m].cpu_used < -1e-6 || machines_[m].mem_used < -1e-6) {
    throw util::InvalidArgument("ClusterState::release: negative usage (double release?)");
  }
  if (machines_[m].cpu_used < 0.0) machines_[m].cpu_used = 0.0;
  if (machines_[m].mem_used < 0.0) machines_[m].mem_used = 0.0;
}

void ClusterState::set_online_reserved(std::size_t m, double cpu) {
  if (m >= machines_.size()) {
    throw util::InvalidArgument("ClusterState::set_online_reserved: machine out of range");
  }
  machines_[m].cpu_online_reserved =
      std::clamp(cpu, 0.0, machines_[m].cpu_capacity);
}

double ClusterState::cpu_utilization() const noexcept {
  double used = 0.0;
  for (const Machine& m : machines_) used += m.cpu_used;
  return total_cpu_ > 0.0 ? used / total_cpu_ : 0.0;
}

}  // namespace cwgl::sched

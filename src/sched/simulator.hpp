#pragma once

#include <span>
#include <vector>

#include "sched/cluster_state.hpp"
#include "sched/policy.hpp"
#include "sched/workload.hpp"

namespace cwgl::sched {

/// Diurnal online-service load co-located with batch (Section II: online
/// jobs have priority; on resource competition batch tasks are "suspended
/// or killed ... then rescheduled to run on other nodes").
struct OnlineLoadModel {
  bool enabled = false;
  /// Mean fraction of every machine's CPU held by online services.
  double base_fraction = 0.3;
  /// Diurnal swing: reservation(t) = base + amplitude * sin(2 pi t/period).
  double amplitude = 0.2;
  double period = 86400.0;      ///< seconds; one day
  double phase = 0.0;           ///< shifts each machine's peak
  double phase_spread = 3600.0; ///< per-machine phase stagger (load diversity)
  double tick_interval = 300.0; ///< how often reservations are re-evaluated
};

/// Simulated-cluster shape and placement strategy.
struct SimulatorConfig {
  std::size_t machines = 40;
  double cpu_capacity = 9600.0;  ///< per machine; 96 cores in trace units
  double mem_capacity = 100.0;
  bool best_fit = false;         ///< best-fit instead of first-fit placement
  OnlineLoadModel online;        ///< co-located online load (off by default)
};

/// Per-job outcome of a simulation.
struct JobOutcome {
  double arrival = 0.0;
  double first_start = 0.0;  ///< when its first task began service
  double finish = 0.0;       ///< when its last task completed
  double completion_time() const noexcept { return finish - arrival; }
};

/// Aggregate outcome of a simulation run.
struct SimulationResult {
  double makespan = 0.0;          ///< last completion - first arrival
  double mean_jct = 0.0;          ///< mean job completion time
  double p95_jct = 0.0;
  double mean_wait = 0.0;         ///< mean (first_start - arrival)
  double mean_utilization = 0.0;  ///< time-averaged batch CPU utilization
  std::size_t tasks_executed = 0;   ///< completions (preempted attempts excluded)
  std::size_t oversized_tasks = 0;  ///< tasks clamped to one machine's capacity
  std::size_t preemptions = 0;      ///< batch tasks killed by online-load spikes
  std::vector<JobOutcome> jobs;
};

/// Discrete-event simulator of DAG batch jobs on a co-located cluster.
///
/// Events are job arrivals, task completions and (when the online-load
/// model is enabled) periodic reservation re-evaluations. At every event
/// time the policy orders the ready queue and tasks are packed onto
/// machines until resources run out; a task occupies (cpu, mem) on one
/// machine for its duration. Tasks whose demand exceeds the batch share of
/// a machine are clamped (and counted). When an online-load spike
/// overcommits a machine, its most recently started batch tasks are killed
/// (progress lost) and re-queued — the trace's Failed/rescheduled behavior.
/// The simulation is fully deterministic.
class Simulator {
 public:
  explicit Simulator(SimulatorConfig config = {});

  /// Runs `jobs` under `policy`. `profiles` feed GroupHintPolicy-style
  /// policies through the PolicyContext (may be empty).
  SimulationResult run(std::span<const SimJob> jobs,
                       const SchedulingPolicy& policy,
                       std::span<const GroupProfile> profiles = {}) const;

  const SimulatorConfig& config() const noexcept { return config_; }

 private:
  SimulatorConfig config_;
};

/// Upward rank per task (seconds of critical path to exit, inclusive) —
/// the priority metric of list schedulers. Exposed for tests.
std::vector<double> upward_ranks(const SimJob& job);

/// Derives per-group scheduling profiles from characterized jobs and their
/// cluster labels — the bridge from the paper's clustering to the
/// simulator's GroupHintPolicy.
std::vector<GroupProfile> profiles_from_groups(std::span<const core::JobDag> dags,
                                               std::span<const int> labels,
                                               int num_groups);

}  // namespace cwgl::sched

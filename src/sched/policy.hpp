#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "sched/workload.hpp"

namespace cwgl::sched {

/// A task whose dependencies are satisfied and that awaits resources.
struct ReadyTask {
  std::size_t job = 0;      ///< index into the submitted job list
  int vertex = 0;           ///< task vertex within the job's DAG
  double ready_since = 0.0; ///< when it became runnable
};

/// Per-cluster-group scheduling profile derived from the paper's
/// characterization: what a scheduler can assume about a job the moment it
/// is classified, before running anything.
struct GroupProfile {
  double expected_depth = 1.0;  ///< mean critical path of the group
  double expected_width = 1.0;  ///< mean maximum parallelism of the group
  double expected_work = 0.0;   ///< mean total cpu x duration of the group
};

/// Read-only state handed to policies at every dispatch round.
struct PolicyContext {
  std::span<const SimJob> jobs;
  /// task_rank[job][vertex] = upward rank (critical-path-to-exit length in
  /// seconds, including the task itself).
  std::span<const std::vector<double>> task_rank;
  /// Profiles indexed by SimJob::hint_group (may be empty).
  std::span<const GroupProfile> profiles;
  double now = 0.0;
};

/// Strategy deciding which ready tasks get resources first. Implementations
/// must produce a deterministic total order (ties broken by job/vertex).
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  virtual std::string_view name() const noexcept = 0;
  /// Reorders `ready` in place; earlier entries are offered resources first.
  virtual void prioritize(std::vector<ReadyTask>& ready,
                          const PolicyContext& ctx) const = 0;
};

/// Arrival-order FIFO — the baseline every paper-adjacent scheduler beats.
class FifoPolicy final : public SchedulingPolicy {
 public:
  std::string_view name() const noexcept override { return "fifo"; }
  void prioritize(std::vector<ReadyTask>& ready,
                  const PolicyContext& ctx) const override;
};

/// Largest upward rank first (HEFT-style list scheduling): tasks on long
/// dependency chains run before easily-parallelized stragglers.
class CriticalPathFirstPolicy final : public SchedulingPolicy {
 public:
  std::string_view name() const noexcept override { return "critical-path-first"; }
  void prioritize(std::vector<ReadyTask>& ready,
                  const PolicyContext& ctx) const override;
};

/// Shortest remaining-work job first, with exact per-job knowledge —
/// an oracle upper bound for what job-size-aware ordering can achieve.
class ShortestJobFirstPolicy final : public SchedulingPolicy {
 public:
  std::string_view name() const noexcept override { return "shortest-job-first"; }
  void prioritize(std::vector<ReadyTask>& ready,
                  const PolicyContext& ctx) const override;
};

/// The paper's pitch: order jobs by the *predicted* work of their cluster
/// group (no per-job measurement needed — only the WL classification).
/// Jobs without a hint fall back to FIFO order after hinted ones.
class GroupHintPolicy final : public SchedulingPolicy {
 public:
  std::string_view name() const noexcept override { return "group-hint"; }
  void prioritize(std::vector<ReadyTask>& ready,
                  const PolicyContext& ctx) const override;
};

}  // namespace cwgl::sched

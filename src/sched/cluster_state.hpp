#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cwgl::sched {

/// One server in the simulated co-located cluster (Fig. 1's infrastructure
/// layer). Capacities use trace units: cpu 100 == one core, mem is the
/// normalized percentage scale of the trace.
struct Machine {
  double cpu_capacity = 9600.0;  ///< 96 cores, the Alibaba server shape
  double mem_capacity = 100.0;
  double cpu_used = 0.0;         ///< batch usage
  double mem_used = 0.0;
  /// CPU held by co-located online services (latency-critical, never
  /// yields to batch). Batch tasks only see what is left.
  double cpu_online_reserved = 0.0;

  double cpu_free() const noexcept {
    return cpu_capacity - cpu_used - cpu_online_reserved;
  }
  double mem_free() const noexcept { return mem_capacity - mem_used; }

  bool fits(double cpu, double mem) const noexcept {
    return cpu <= cpu_free() + 1e-9 && mem <= mem_free() + 1e-9;
  }

  /// Batch demand above capacity after an online-reservation increase —
  /// the amount that must be preempted to restore feasibility.
  double overcommit() const noexcept {
    const double excess = cpu_used + cpu_online_reserved - cpu_capacity;
    return excess > 0.0 ? excess : 0.0;
  }
};

/// The cluster's machines plus placement bookkeeping.
class ClusterState {
 public:
  /// `machines` homogeneous servers of the given shape.
  ClusterState(std::size_t machines, double cpu_capacity, double mem_capacity);

  std::size_t size() const noexcept { return machines_.size(); }
  const Machine& machine(std::size_t m) const { return machines_[m]; }

  /// First-fit placement: returns the lowest machine index that can host
  /// the demand and reserves it, or -1 if nothing fits.
  int place_first_fit(double cpu, double mem);

  /// Best-fit placement: the feasible machine with the least spare CPU
  /// after placement (tightest packing), or -1.
  int place_best_fit(double cpu, double mem);

  /// Releases a previous reservation on machine `m`.
  void release(std::size_t m, double cpu, double mem);

  /// Sets the online-service CPU reservation of machine `m` (clamped to
  /// [0, capacity]). May push the machine into overcommit; the simulator
  /// preempts batch tasks to resolve that.
  void set_online_reserved(std::size_t m, double cpu);

  /// Aggregate BATCH CPU utilization in [0,1] (reservations excluded).
  double cpu_utilization() const noexcept;

  /// Total CPU capacity across machines.
  double total_cpu() const noexcept { return total_cpu_; }

 private:
  std::vector<Machine> machines_;
  double total_cpu_ = 0.0;
};

}  // namespace cwgl::sched

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/schema.hpp"
#include "util/stats.hpp"

namespace cwgl::trace {

/// Instance-level (batch_instance) characterization: where instances ran,
/// how skewed machine load is, how retries behave, and how actual resource
/// usage compares to the plan — the "machines/containers" half of the
/// trace the job-level analysis abstracts away.
struct InstanceCensus {
  std::size_t instances = 0;
  std::size_t machines_used = 0;

  /// Instances per machine: mean/max capture placement skew.
  util::Distribution per_machine_instances;
  /// Share of instance time on the busiest 10% of machines (hot-spot
  /// indicator; 0.1 == perfectly balanced).
  double top_decile_share = 0.0;

  /// Retry behaviour (seq_no/total_seq_no): fraction of instances that are
  /// re-executions, and the worst retry count observed.
  double retry_fraction = 0.0;
  int max_total_seq_no = 1;

  /// Actual-vs-plan usage ratios (cpu_avg / plan, aggregated per task via
  /// matched task records). In production these sit well below 1 —
  /// over-provisioning is the co-location headroom.
  util::Distribution cpu_usage_ratio;
  util::Distribution mem_usage_ratio;

  /// Computes from a trace carrying instance records. Task records are
  /// used to resolve plans; instances without a matching task contribute
  /// to counts but not to usage ratios.
  static InstanceCensus compute(const Trace& trace);
};

}  // namespace cwgl::trace

#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cwgl::trace {

/// Decoded form of a dependency-encoded batch task name.
///
/// The Alibaba v2018 trace encodes each DAG task's direct dependencies in
/// its name: `<TYPE><IDX>[_<DEP>]*`, e.g.
///   "M1"         — Map task 1, no dependencies
///   "R2_1"       — Reduce task 2, depends on task 1
///   "J4_2_3"     — Join task 4, depends on tasks 2 and 3
///   "R5_4_3_2_1" — Reduce task 5, depends on tasks 4, 3, 2 and 1
/// Names that do not follow this grammar (e.g. "task_Zxg3Fh", independent
/// single-task jobs) carry no dependency information.
struct TaskName {
  char type = '?';         ///< leading letter: 'M' (Map/Merge), 'R', 'J', ...
  int index = 0;           ///< the task's own 1-based index within the job
  std::vector<int> deps;   ///< direct dependency indices, in name order

  friend bool operator==(const TaskName&, const TaskName&) = default;
};

/// Decodes a DAG task name; nullopt if the name does not match the grammar
/// (which is how non-DAG tasks are recognized, per Section IV-A).
///
/// Grammar accepted: one or more ASCII letters (the FIRST letter is the
/// type), then a positive integer index, then zero or more "_<positive
/// integer>" dependency suffixes. Anything else — including the trace's
/// "task_..." independent tasks — returns nullopt.
std::optional<TaskName> parse_task_name(std::string_view name);

/// Re-encodes a TaskName into trace spelling. Inverse of parse_task_name
/// for all names produced by this library.
std::string encode_task_name(const TaskName& t);

/// Convenience: encode from parts.
std::string encode_task_name(char type, int index, std::span<const int> deps);

/// True if the name parses as a DAG task name.
bool is_dag_task_name(std::string_view name);

}  // namespace cwgl::trace

#pragma once

#include <filesystem>
#include <functional>
#include <iosfwd>
#include <string>
#include <span>
#include <vector>

#include "trace/schema.hpp"

namespace cwgl::util {
class Diagnostics;
}

namespace cwgl::trace {

/// How trace readers treat damaged input.
///
/// Strict (lenient == false) raises a typed util::ParseError at the first
/// structurally damaged record — the validation posture. Lenient quarantines
/// the record into `diagnostics` (when provided) and keeps going — the
/// production posture, because real cluster traces contain truncated files,
/// unterminated quotes, and shuffled columns.
struct TraceReadOptions {
  bool lenient = true;
  util::Diagnostics* diagnostics = nullptr;
};

/// Writes `batch_task.csv` rows (no header, like the real trace).
void write_batch_task_csv(std::ostream& out, std::span<const TaskRecord> tasks);

/// Writes `batch_instance.csv` rows (no header).
void write_batch_instance_csv(std::ostream& out,
                              std::span<const InstanceRecord> instances);

/// Reads batch_task rows; malformed rows are counted into `*skipped` (when
/// non-null) and dropped, mirroring how production traces must be consumed.
/// Under `options.lenient` CSV-level damage (unterminated quotes) is also
/// quarantined; strict mode throws util::ParseError on it.
std::vector<TaskRecord> read_batch_task_csv(std::istream& in,
                                            std::size_t* skipped = nullptr,
                                            const TraceReadOptions& options = {});

/// Reads batch_instance rows with the same tolerance.
std::vector<InstanceRecord> read_batch_instance_csv(
    std::istream& in, std::size_t* skipped = nullptr,
    const TraceReadOptions& options = {});

/// Writes `<dir>/batch_task.csv` and `<dir>/batch_instance.csv`
/// (creates `dir` if needed). Throws util::Error on I/O failure.
void write_trace(const Trace& trace, const std::filesystem::path& dir);

/// Reads a trace directory written by `write_trace` (the instance file is
/// optional, matching partial downloads of the real trace). `*skipped`
/// counts malformed rows plus (lenient mode) quarantined CSV records.
Trace read_trace(const std::filesystem::path& dir, std::size_t* skipped = nullptr,
                 const TraceReadOptions& options = {});

/// Statistics of a streaming pass.
struct StreamStats {
  std::size_t rows = 0;          ///< well-formed task rows visited
  std::size_t malformed = 0;     ///< rows dropped
  std::size_t jobs = 0;          ///< job groups emitted
  std::size_t fragmented = 0;    ///< jobs whose rows were NOT contiguous
};

/// Streams batch_task rows grouped by job WITHOUT materializing the trace —
/// required for the real 270 GB files. Rows of one job are assumed
/// contiguous (true of the released trace); if a job name reappears after
/// its group was emitted, the re-occurrence is emitted as a separate group
/// and counted in `StreamStats::fragmented` so callers can detect unsorted
/// input. `fn` returning false stops the stream early.
StreamStats for_each_job_in_task_csv(
    std::istream& in,
    const std::function<bool(const std::string& job_name,
                             const std::vector<TaskRecord>& tasks)>& fn);

/// Move-based variant of `for_each_job_in_task_csv`: ownership of each job
/// group transfers to `fn`, so a consumer can forward groups to worker
/// threads without copying (the streaming ingest's reader thread does).
/// Same grouping, early-stop, and StreamStats semantics.
///
/// Failure posture follows `options`: lenient (default) quarantines
/// malformed rows and CSV damage into `options.diagnostics`; strict throws
/// util::ParseError naming the first offending record.
StreamStats consume_jobs_in_task_csv(
    std::istream& in,
    const std::function<bool(std::string&& job_name,
                             std::vector<TaskRecord>&& tasks)>& fn,
    const TraceReadOptions& options = {});

}  // namespace cwgl::trace

#include "trace/io.hpp"

#include <fstream>
#include <unordered_set>

#include "util/csv.hpp"
#include "util/csv_scanner.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace cwgl::trace {

namespace {

util::CsvScanPolicy scan_policy(const TraceReadOptions& options) {
  return util::CsvScanPolicy{options.lenient, options.diagnostics};
}

/// Reassembles a row preview ("f0,f1,...") for error messages and samples.
std::string row_preview(std::span<const std::string_view> fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    out += fields[i];
    if (out.size() > 120) {
      out.resize(120);
      out += "...";
      break;
    }
  }
  return out;
}

}  // namespace

void write_batch_task_csv(std::ostream& out, std::span<const TaskRecord> tasks) {
  for (const TaskRecord& t : tasks) {
    const auto fields = t.to_fields();
    util::write_csv_record(out, fields);
  }
}

void write_batch_instance_csv(std::ostream& out,
                              std::span<const InstanceRecord> instances) {
  for (const InstanceRecord& r : instances) {
    const auto fields = r.to_fields();
    util::write_csv_record(out, fields);
  }
}

std::vector<TaskRecord> read_batch_task_csv(std::istream& in,
                                            std::size_t* skipped,
                                            const TraceReadOptions& options) {
  std::vector<TaskRecord> out;
  std::size_t bad = 0;
  util::CsvScanner scanner(in, util::CsvScanner::kDefaultBlockSize,
                           scan_policy(options));
  while (const auto fields = scanner.next()) {
    if (auto rec = TaskRecord::from_fields(*fields)) {
      out.push_back(std::move(*rec));
    } else {
      ++bad;
      if (!options.lenient) {
        throw util::ParseError("batch_task.csv record " +
                               std::to_string(scanner.record_number()) +
                               ": malformed row: " + row_preview(*fields));
      }
      if (options.diagnostics != nullptr) {
        options.diagnostics->record("ingest", "malformed-row",
                                    row_preview(*fields));
      }
    }
  }
  if (skipped) *skipped = bad + scanner.quarantined();
  return out;
}

std::vector<InstanceRecord> read_batch_instance_csv(
    std::istream& in, std::size_t* skipped, const TraceReadOptions& options) {
  std::vector<InstanceRecord> out;
  std::size_t bad = 0;
  util::CsvScanner scanner(in, util::CsvScanner::kDefaultBlockSize,
                           scan_policy(options));
  while (const auto fields = scanner.next()) {
    if (auto rec = InstanceRecord::from_fields(*fields)) {
      out.push_back(std::move(*rec));
    } else {
      ++bad;
      if (!options.lenient) {
        throw util::ParseError("batch_instance.csv record " +
                               std::to_string(scanner.record_number()) +
                               ": malformed row: " + row_preview(*fields));
      }
      if (options.diagnostics != nullptr) {
        options.diagnostics->record("ingest", "malformed-instance-row",
                                    row_preview(*fields));
      }
    }
  }
  if (skipped) *skipped = bad + scanner.quarantined();
  return out;
}

namespace {

/// Flushes and verifies the stream; ofstream swallows write errors (short
/// writes on a full disk just set badbit), so without this check a
/// truncated file would be reported as success.
void finish_file(std::ofstream& out, const std::filesystem::path& path) {
  out.flush();
  if (!out) {
    throw util::Error("write_trace: I/O error writing " + path.string() +
                      " (disk full or device error; file may be truncated)");
  }
}

}  // namespace

void write_trace(const Trace& trace, const std::filesystem::path& dir) {
  CWGL_FAILPOINT("io.write_trace");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw util::Error("write_trace: cannot create " + dir.string());
  {
    const auto path = dir / "batch_task.csv";
    std::ofstream out(path);
    if (!out) throw util::Error("write_trace: cannot open " + path.string());
    write_batch_task_csv(out, trace.tasks);
    finish_file(out, path);
  }
  {
    const auto path = dir / "batch_instance.csv";
    std::ofstream out(path);
    if (!out) throw util::Error("write_trace: cannot open " + path.string());
    write_batch_instance_csv(out, trace.instances);
    finish_file(out, path);
  }
}

Trace read_trace(const std::filesystem::path& dir, std::size_t* skipped,
                 const TraceReadOptions& options) {
  CWGL_FAILPOINT("io.read_trace");
  Trace trace;
  std::size_t bad_tasks = 0, bad_instances = 0;
  {
    const auto path = dir / "batch_task.csv";
    std::ifstream in(path);
    if (!in) throw util::Error("read_trace: cannot open " + path.string());
    trace.tasks = read_batch_task_csv(in, &bad_tasks, options);
    if (in.bad()) {
      throw util::Error("read_trace: I/O error while reading " + path.string());
    }
  }
  // The instance file is optional (partial downloads of the real trace), but
  // "absent" is the only tolerated failure: a file that exists yet cannot be
  // opened or dies mid-stream must raise, not silently yield a partial trace.
  if (const auto path = dir / "batch_instance.csv";
      std::filesystem::exists(path)) {
    std::ifstream in(path);
    if (!in) {
      throw util::Error("read_trace: " + path.string() +
                        " exists but cannot be opened");
    }
    trace.instances = read_batch_instance_csv(in, &bad_instances, options);
    if (in.bad()) {
      throw util::Error("read_trace: I/O error while reading " + path.string());
    }
  }
  if (skipped) *skipped = bad_tasks + bad_instances;
  return trace;
}

StreamStats for_each_job_in_task_csv(
    std::istream& in,
    const std::function<bool(const std::string& job_name,
                             const std::vector<TaskRecord>& tasks)>& fn) {
  return consume_jobs_in_task_csv(
      in, [&fn](std::string&& job, std::vector<TaskRecord>&& tasks) {
        return fn(job, tasks);
      });
}

StreamStats consume_jobs_in_task_csv(
    std::istream& in,
    const std::function<bool(std::string&& job_name,
                             std::vector<TaskRecord>&& tasks)>& fn,
    const TraceReadOptions& options) {
  StreamStats stats;
  std::string current_job;
  std::vector<TaskRecord> group;
  std::unordered_set<std::string> seen_jobs;
  bool stopped = false;

  const auto flush = [&]() -> bool {
    if (group.empty()) return true;
    ++stats.jobs;
    if (!seen_jobs.insert(current_job).second) ++stats.fragmented;
    const bool keep_going = fn(std::string(current_job), std::move(group));
    group.clear();
    return keep_going;
  };

  util::CsvScanner scanner(in, util::CsvScanner::kDefaultBlockSize,
                           scan_policy(options));
  while (const auto fields = scanner.next()) {
    auto rec = TaskRecord::from_fields(*fields);
    if (!rec) {
      ++stats.malformed;
      if (!options.lenient) {
        throw util::ParseError("batch_task.csv record " +
                               std::to_string(scanner.record_number()) +
                               ": malformed row: " + row_preview(*fields));
      }
      if (options.diagnostics != nullptr) {
        options.diagnostics->record("ingest", "malformed-row",
                                    row_preview(*fields));
      }
      continue;
    }
    ++stats.rows;
    if (rec->job_name != current_job) {
      if (!flush()) {
        stopped = true;
        break;
      }
      current_job = rec->job_name;
    }
    group.push_back(std::move(*rec));
  }
  stats.malformed += scanner.quarantined();
  if (!stopped) flush();
  return stats;
}

}  // namespace cwgl::trace

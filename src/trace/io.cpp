#include "trace/io.hpp"

#include <fstream>
#include <unordered_set>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace cwgl::trace {

void write_batch_task_csv(std::ostream& out, std::span<const TaskRecord> tasks) {
  for (const TaskRecord& t : tasks) {
    const auto fields = t.to_fields();
    util::write_csv_record(out, fields);
  }
}

void write_batch_instance_csv(std::ostream& out,
                              std::span<const InstanceRecord> instances) {
  for (const InstanceRecord& r : instances) {
    const auto fields = r.to_fields();
    util::write_csv_record(out, fields);
  }
}

std::vector<TaskRecord> read_batch_task_csv(std::istream& in, std::size_t* skipped) {
  std::vector<TaskRecord> out;
  std::size_t bad = 0;
  util::for_each_csv_record(in, [&](const std::vector<std::string>& fields) {
    if (auto rec = TaskRecord::from_fields(fields)) {
      out.push_back(std::move(*rec));
    } else {
      ++bad;
    }
    return true;
  });
  if (skipped) *skipped = bad;
  return out;
}

std::vector<InstanceRecord> read_batch_instance_csv(std::istream& in,
                                                    std::size_t* skipped) {
  std::vector<InstanceRecord> out;
  std::size_t bad = 0;
  util::for_each_csv_record(in, [&](const std::vector<std::string>& fields) {
    if (auto rec = InstanceRecord::from_fields(fields)) {
      out.push_back(std::move(*rec));
    } else {
      ++bad;
    }
    return true;
  });
  if (skipped) *skipped = bad;
  return out;
}

void write_trace(const Trace& trace, const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw util::Error("write_trace: cannot create " + dir.string());
  {
    std::ofstream out(dir / "batch_task.csv");
    if (!out) throw util::Error("write_trace: cannot open batch_task.csv");
    write_batch_task_csv(out, trace.tasks);
  }
  {
    std::ofstream out(dir / "batch_instance.csv");
    if (!out) throw util::Error("write_trace: cannot open batch_instance.csv");
    write_batch_instance_csv(out, trace.instances);
  }
}

Trace read_trace(const std::filesystem::path& dir, std::size_t* skipped) {
  Trace trace;
  std::size_t bad_tasks = 0, bad_instances = 0;
  {
    std::ifstream in(dir / "batch_task.csv");
    if (!in) throw util::Error("read_trace: cannot open batch_task.csv in " + dir.string());
    trace.tasks = read_batch_task_csv(in, &bad_tasks);
  }
  if (std::ifstream in(dir / "batch_instance.csv"); in) {
    trace.instances = read_batch_instance_csv(in, &bad_instances);
  }
  if (skipped) *skipped = bad_tasks + bad_instances;
  return trace;
}

StreamStats for_each_job_in_task_csv(
    std::istream& in,
    const std::function<bool(const std::string& job_name,
                             const std::vector<TaskRecord>& tasks)>& fn) {
  StreamStats stats;
  std::string current_job;
  std::vector<TaskRecord> group;
  std::unordered_set<std::string> seen_jobs;
  bool stopped = false;

  const auto flush = [&]() -> bool {
    if (group.empty()) return true;
    ++stats.jobs;
    if (!seen_jobs.insert(current_job).second) ++stats.fragmented;
    const bool keep_going = fn(current_job, group);
    group.clear();
    return keep_going;
  };

  util::for_each_csv_record(in, [&](const std::vector<std::string>& fields) {
    auto rec = TaskRecord::from_fields(fields);
    if (!rec) {
      ++stats.malformed;
      return true;
    }
    ++stats.rows;
    if (rec->job_name != current_job) {
      if (!flush()) {
        stopped = true;
        return false;
      }
      current_job = rec->job_name;
    }
    group.push_back(std::move(*rec));
    return true;
  });
  if (!stopped) flush();
  return stats;
}

}  // namespace cwgl::trace

#include "trace/instance_census.hpp"

#include <algorithm>
#include <unordered_map>

namespace cwgl::trace {

InstanceCensus InstanceCensus::compute(const Trace& trace) {
  InstanceCensus census;
  census.instances = trace.instances.size();
  if (trace.instances.empty()) return census;

  // Plans by (job, task) for usage ratios.
  std::unordered_map<std::string, const TaskRecord*> plan;
  plan.reserve(trace.tasks.size());
  for (const TaskRecord& t : trace.tasks) {
    plan.emplace(t.job_name + "/" + t.task_name, &t);
  }

  std::unordered_map<std::string, double> machine_time;
  std::unordered_map<std::string, std::size_t> machine_count;
  std::vector<double> cpu_ratios, mem_ratios;
  std::size_t retries = 0;
  for (const InstanceRecord& r : trace.instances) {
    const double duration =
        r.end_time > r.start_time && r.start_time > 0
            ? static_cast<double>(r.end_time - r.start_time)
            : 0.0;
    machine_time[r.machine_id] += duration;
    ++machine_count[r.machine_id];
    if (r.seq_no > 1 || r.total_seq_no > 1) ++retries;
    census.max_total_seq_no = std::max(census.max_total_seq_no, r.total_seq_no);
    const auto it = plan.find(r.job_name + "/" + r.task_name);
    if (it != plan.end()) {
      if (it->second->plan_cpu > 0.0) {
        cpu_ratios.push_back(r.cpu_avg / it->second->plan_cpu);
      }
      if (it->second->plan_mem > 0.0) {
        mem_ratios.push_back(r.mem_avg / it->second->plan_mem);
      }
    }
  }

  census.machines_used = machine_count.size();
  std::vector<double> counts;
  counts.reserve(machine_count.size());
  for (const auto& [machine, count] : machine_count) {
    counts.push_back(static_cast<double>(count));
  }
  census.per_machine_instances = util::describe(counts);

  // Hot-spot share: instance-time on the busiest 10% of machines.
  std::vector<double> times;
  times.reserve(machine_time.size());
  double total_time = 0.0;
  for (const auto& [machine, time] : machine_time) {
    times.push_back(time);
    total_time += time;
  }
  std::sort(times.rbegin(), times.rend());
  const std::size_t decile = std::max<std::size_t>(1, times.size() / 10);
  double hot = 0.0;
  for (std::size_t i = 0; i < decile; ++i) hot += times[i];
  census.top_decile_share = total_time > 0.0 ? hot / total_time : 0.0;

  census.retry_fraction =
      static_cast<double>(retries) / static_cast<double>(trace.instances.size());
  census.cpu_usage_ratio = util::describe(cpu_ratios);
  census.mem_usage_ratio = util::describe(mem_ratios);
  return census;
}

}  // namespace cwgl::trace

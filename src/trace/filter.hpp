#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "trace/schema.hpp"

namespace cwgl::trace {

/// All tasks of one job, as indices into a Trace's task vector.
struct JobGroup {
  std::string job_name;
  std::vector<std::size_t> tasks;
};

/// Groups a trace's task records by job, preserving first-seen job order
/// (the generator emits jobs contiguously; real traces nearly do).
class TraceIndex {
 public:
  explicit TraceIndex(const Trace& trace);

  const std::vector<JobGroup>& jobs() const noexcept { return groups_; }
  const Trace& trace() const noexcept { return *trace_; }

 private:
  const Trace* trace_;
  std::vector<JobGroup> groups_;
};

/// Integrity (Section IV-B): every task of the job terminated successfully —
/// jobs cut off by the window (Running/Waiting) or killed (Failed/Cancelled/
/// Interrupted) are rejected so DAGs are structurally complete.
bool passes_integrity(const Trace& trace, const JobGroup& job);

/// Availability (Section IV-B): temporal and resource records are usable —
/// every task has start_time > 0, end_time >= start_time, and positive
/// planned resources, so durations and demand are trustworthy.
bool passes_availability(const Trace& trace, const JobGroup& job);

/// True if the job is a dependency DAG: at least two tasks, every task name
/// follows the dependency grammar, and at least one task declares a parent.
bool is_dag_job(const Trace& trace, const JobGroup& job);

/// Criteria bundle for select_jobs.
struct SamplingCriteria {
  bool require_integrity = true;
  bool require_availability = true;
  bool require_dag = true;
  int min_tasks = 2;
  int max_tasks = std::numeric_limits<int>::max();
};

/// Span-based variants of the criteria for callers that hold one job's rows
/// directly (the streaming ingest) instead of indices into a full Trace.
/// Semantically identical to the TraceIndex-based predicates above.
bool passes_integrity(std::span<const TaskRecord> tasks);
bool passes_availability(std::span<const TaskRecord> tasks);
bool is_dag_job(std::span<const TaskRecord> tasks);

/// All criteria at once over one job's rows.
bool passes_criteria(std::span<const TaskRecord> tasks,
                     const SamplingCriteria& criteria);

/// Returns indices into `index.jobs()` of jobs satisfying all criteria.
std::vector<std::size_t> select_jobs(const TraceIndex& index,
                                     const SamplingCriteria& criteria);

/// Variability sampling (Section IV-B): draws up to `count` jobs from
/// `candidates` in two stages — first one representative of every distinct
/// job size (topological-scale coverage, the paper's 17 size types), then a
/// uniform draw from the remaining candidates so the sample otherwise
/// follows the workload's natural, bottom-heavy size distribution.
/// Deterministic in `seed`.
std::vector<std::size_t> variability_sample(const TraceIndex& index,
                                            std::span<const std::size_t> candidates,
                                            std::size_t count, std::uint64_t seed);

/// Plain uniform sample without replacement — follows the workload's
/// natural size distribution with no coverage guarantee. Used to reproduce
/// population-share figures (the dominant small-job cluster group) where
/// stratification would distort group sizes. Deterministic in `seed`.
std::vector<std::size_t> natural_sample(std::span<const std::size_t> candidates,
                                        std::size_t count, std::uint64_t seed);

}  // namespace cwgl::trace

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/patterns.hpp"
#include "trace/schema.hpp"
#include "util/rng.hpp"

namespace cwgl::trace {

/// Mixture weights over DAG-job shapes. Defaults reproduce the frequencies
/// the paper reports for the Alibaba 2018 trace: 58% straight chains, 37%
/// inverted triangles, with diamond / hourglass / trapezium / combination
/// splitting the remainder (Section V-B). Weights need not sum to 1.
struct ShapeMix {
  double chain = 0.58;
  double inverted_triangle = 0.37;
  double diamond = 0.020;
  double hourglass = 0.008;
  double trapezium = 0.013;
  double combination = 0.009;
};

/// Knobs of the synthetic Alibaba-v2018-schema workload generator.
///
/// The defaults are calibrated so that the *measured* aggregate statistics
/// of a generated trace reproduce those the paper reports for the real
/// trace: ~50% of batch jobs carry dependencies and those consume 70–80% of
/// batch resources; DAG sizes span 2–31 tasks with decaying frequency;
/// shape frequencies per `ShapeMix`.
struct GeneratorConfig {
  std::uint64_t seed = 42;           ///< master seed; all output is a pure function of this config
  std::size_t num_jobs = 10000;      ///< total batch jobs (DAG + independent)
  double dag_fraction = 0.5;         ///< fraction of jobs that are dependency DAGs
  ShapeMix shapes;                   ///< shape mixture for DAG jobs
  int min_tasks = 2;                 ///< smallest DAG job
  int max_tasks = 31;                ///< largest DAG job (paper's experiment range)
  double size_geometric_p = 0.30;    ///< geometric decay of DAG sizes
  /// Probability that a DAG job is a "recurrent tiny job" at its shape's
  /// minimum size (+1 occasionally). Production workloads are strongly
  /// bottom-heavy — the paper notes small jobs "appear repetitively" and its
  /// dominant cluster group is >90% jobs of fewer than three tasks.
  double p_tiny = 0.45;
  /// Maximum DAG depth (levels). The paper observes critical paths of 2..8
  /// even for 31-task jobs — large jobs grow in parallelism, not depth.
  /// Straight chains are therefore capped at this many tasks.
  int max_depth = 8;
  double p_running = 0.015;          ///< job cut off by the trace window (integrity violation)
  double p_failed = 0.020;           ///< job with a Failed task
  double p_cancelled = 0.010;        ///< job with a Cancelled task
  double p_missing_start = 0.010;    ///< job with a zeroed start_time (availability violation)
  double p_extra_dep = 0.06;         ///< chance of a redundant transitive dependency per eligible task
  std::int64_t window_start = 0;     ///< trace epoch, seconds
  std::int64_t window_end = 8 * 86400;  ///< 8-day window like the real trace
  double mean_task_duration = 120.0;    ///< seconds; lognormal body
  double duration_sigma = 1.0;          ///< lognormal shape
  double dag_instance_boost = 1.2;   ///< DAG tasks fan out this many x more instances
                                     ///< (default calibrated so DAG jobs take ~75% of resources)
  double mean_instances = 4.0;       ///< mean instances per independent task
  int num_machines = 4000;           ///< machine-id space for instances
  double p_instance_retry = 0.05;    ///< chance an instance is a re-execution (seq_no > 1)
  bool emit_instances = true;        ///< batch_instance rows are ~10x; disable for huge runs
  bool diurnal_arrivals = true;      ///< sinusoidal day/night arrival intensity
};

/// A generated job with both the ground-truth structure (for tests and
/// calibration) and the serialized trace records.
struct GeneratedJob {
  std::string job_name;
  bool is_dag = false;
  /// Shape drawn from the mixture; only meaningful when is_dag.
  graph::ShapePattern intended_shape = graph::ShapePattern::SingleTask;
  /// Ground-truth topology; vertex i corresponds to tasks[i] for DAG jobs.
  graph::Digraph dag;
  /// Ground-truth task type per vertex ('M', 'R', 'J') for DAG jobs.
  std::vector<char> vertex_types;
  std::vector<TaskRecord> tasks;
  std::vector<InstanceRecord> instances;
};

/// Deterministic synthetic workload generator.
///
/// Each job is generated from an independent RNG stream derived from
/// (seed, job index), so any subset of jobs can be regenerated in any order
/// (or in parallel) with identical results.
class TraceGenerator {
 public:
  explicit TraceGenerator(GeneratorConfig cfg);

  const GeneratorConfig& config() const noexcept { return cfg_; }

  /// Generates job `job_index` (0-based) in isolation.
  GeneratedJob generate_job(std::size_t job_index) const;

  /// Generates all jobs.
  std::vector<GeneratedJob> generate_jobs() const;

  /// Generates and flattens all jobs into the two-file trace form.
  Trace generate() const;

 private:
  GeneratorConfig cfg_;
};

/// Synthesizes the longest-path level widths for a target shape with exactly
/// `n` vertices and at most `max_depth` levels (chains ignore the cap —
/// their depth IS their size). Falls back to simpler shapes when `n` is too
/// small for the requested one (diamond needs 4+, hourglass 5+,
/// trapezium/combination 3+). Exposed for tests and custom workloads.
std::vector<int> synthesize_widths(graph::ShapePattern shape, int n,
                                   util::Xoshiro256StarStar& rng,
                                   int max_depth = 8);

/// Wires a DAG realizing exactly the given width profile: every vertex at
/// level L>0 has at least one predecessor at level L-1, so the longest-path
/// profile of the result equals `widths`. Vertices are numbered level by
/// level. Exposed for tests.
graph::Digraph synthesize_dag(std::span<const int> widths,
                              util::Xoshiro256StarStar& rng);

/// Convenience: widths + wiring in one call.
graph::Digraph synthesize_shape(graph::ShapePattern shape, int n,
                                util::Xoshiro256StarStar& rng,
                                int max_depth = 8);

}  // namespace cwgl::trace

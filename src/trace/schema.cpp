#include "trace/schema.hpp"

#include "util/strings.hpp"

namespace cwgl::trace {

std::string_view to_string(Status s) noexcept {
  switch (s) {
    case Status::Waiting: return "Waiting";
    case Status::Running: return "Running";
    case Status::Terminated: return "Terminated";
    case Status::Failed: return "Failed";
    case Status::Cancelled: return "Cancelled";
    case Status::Interrupted: return "Interrupted";
    case Status::Unknown: return "Unknown";
  }
  return "Unknown";
}

std::vector<std::string> TaskRecord::to_fields() const {
  return {task_name,
          std::to_string(instance_num),
          job_name,
          std::to_string(task_type),
          std::string(to_string(status)),
          std::to_string(start_time),
          std::to_string(end_time),
          util::format_double(plan_cpu, 2),
          util::format_double(plan_mem, 2)};
}

std::optional<TaskRecord> TaskRecord::from_fields(
    std::span<const std::string_view> f) {
  if (f.size() != 9) return std::nullopt;
  const auto inst = util::to_int(f[1]);
  const auto type = util::to_int(f[3]);
  const auto start = util::to_int(f[5]);
  const auto end = util::to_int(f[6]);
  const auto cpu = util::to_double(f[7]);
  const auto mem = util::to_double(f[8]);
  if (!inst || !type || !start || !end || !cpu || !mem) return std::nullopt;
  // Built directly inside the returned optional (NRVO) — this runs once per
  // row on the streaming-ingest hot path and TaskRecord holds two strings,
  // so a move out of a local would cost measurably.
  std::optional<TaskRecord> out(std::in_place);
  TaskRecord& r = *out;
  r.task_name = f[0];
  r.instance_num = static_cast<int>(*inst);
  r.job_name = f[2];
  r.task_type = static_cast<int>(*type);
  r.status = parse_status(f[4]);
  r.start_time = *start;
  r.end_time = *end;
  r.plan_cpu = *cpu;
  r.plan_mem = *mem;
  return out;
}

std::optional<TaskRecord> TaskRecord::from_fields(
    const std::vector<std::string>& f) {
  const std::vector<std::string_view> views(f.begin(), f.end());
  return from_fields(std::span<const std::string_view>(views));
}

std::vector<std::string> InstanceRecord::to_fields() const {
  return {instance_name,
          task_name,
          job_name,
          std::to_string(task_type),
          std::string(to_string(status)),
          std::to_string(start_time),
          std::to_string(end_time),
          machine_id,
          std::to_string(seq_no),
          std::to_string(total_seq_no),
          util::format_double(cpu_avg, 2),
          util::format_double(cpu_max, 2),
          util::format_double(mem_avg, 2),
          util::format_double(mem_max, 2)};
}

std::optional<InstanceRecord> InstanceRecord::from_fields(
    std::span<const std::string_view> f) {
  if (f.size() != 14) return std::nullopt;
  const auto type = util::to_int(f[3]);
  const auto start = util::to_int(f[5]);
  const auto end = util::to_int(f[6]);
  const auto seq = util::to_int(f[8]);
  const auto total = util::to_int(f[9]);
  const auto cpu_a = util::to_double(f[10]);
  const auto cpu_m = util::to_double(f[11]);
  const auto mem_a = util::to_double(f[12]);
  const auto mem_m = util::to_double(f[13]);
  if (!type || !start || !end || !seq || !total || !cpu_a || !cpu_m || !mem_a ||
      !mem_m) {
    return std::nullopt;
  }
  // In-place construction (NRVO) for the same hot-path reason as TaskRecord.
  std::optional<InstanceRecord> out(std::in_place);
  InstanceRecord& r = *out;
  r.instance_name = f[0];
  r.task_name = f[1];
  r.job_name = f[2];
  r.task_type = static_cast<int>(*type);
  r.status = parse_status(f[4]);
  r.start_time = *start;
  r.end_time = *end;
  r.machine_id = f[7];
  r.seq_no = static_cast<int>(*seq);
  r.total_seq_no = static_cast<int>(*total);
  r.cpu_avg = *cpu_a;
  r.cpu_max = *cpu_m;
  r.mem_avg = *mem_a;
  r.mem_max = *mem_m;
  return out;
}

std::optional<InstanceRecord> InstanceRecord::from_fields(
    const std::vector<std::string>& f) {
  const std::vector<std::string_view> views(f.begin(), f.end());
  return from_fields(std::span<const std::string_view>(views));
}

}  // namespace cwgl::trace

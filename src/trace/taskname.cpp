#include "trace/taskname.hpp"

#include <limits>

#include "util/strings.hpp"

namespace cwgl::trace {

std::optional<TaskName> parse_task_name(std::string_view name) {
  if (name.empty()) return std::nullopt;
  std::size_t i = 0;
  while (i < name.size() &&
         ((name[i] >= 'A' && name[i] <= 'Z') || (name[i] >= 'a' && name[i] <= 'z'))) {
    ++i;
  }
  if (i == 0 || i == name.size()) return std::nullopt;  // no letters or no digits
  // "task_..." style independent names contain an underscore straight after
  // the letters; the grammar requires digits first, so they fail below.
  TaskName t;
  t.type = name[0];

  const auto parse_int_run = [&](std::size_t& pos) -> std::optional<int> {
    const std::size_t start = pos;
    while (pos < name.size() && name[pos] >= '0' && name[pos] <= '9') ++pos;
    if (pos == start) return std::nullopt;
    const auto value = util::to_int(name.substr(start, pos - start));
    // The range check matters: without it "M5000000000" would silently
    // truncate through the int cast instead of being rejected.
    if (!value || *value <= 0 || *value > std::numeric_limits<int>::max()) {
      return std::nullopt;
    }
    return static_cast<int>(*value);
  };

  const auto idx = parse_int_run(i);
  if (!idx) return std::nullopt;
  t.index = *idx;
  while (i < name.size()) {
    if (name[i] != '_') return std::nullopt;
    ++i;
    const auto dep = parse_int_run(i);
    if (!dep) return std::nullopt;
    t.deps.push_back(*dep);
  }
  return t;
}

std::string encode_task_name(const TaskName& t) {
  std::string out(1, t.type);
  out += std::to_string(t.index);
  for (int d : t.deps) {
    out += '_';
    out += std::to_string(d);
  }
  return out;
}

std::string encode_task_name(char type, int index, std::span<const int> deps) {
  TaskName t;
  t.type = type;
  t.index = index;
  t.deps.assign(deps.begin(), deps.end());
  return encode_task_name(t);
}

bool is_dag_task_name(std::string_view name) {
  return parse_task_name(name).has_value();
}

}  // namespace cwgl::trace

#include "trace/filter.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "trace/taskname.hpp"
#include "util/rng.hpp"

namespace cwgl::trace {

TraceIndex::TraceIndex(const Trace& trace) : trace_(&trace) {
  std::unordered_map<std::string, std::size_t> position;
  position.reserve(trace.tasks.size() / 2);
  for (std::size_t i = 0; i < trace.tasks.size(); ++i) {
    const std::string& job = trace.tasks[i].job_name;
    const auto [it, inserted] = position.emplace(job, groups_.size());
    if (inserted) {
      groups_.push_back(JobGroup{job, {}});
    }
    groups_[it->second].tasks.push_back(i);
  }
}

namespace {

bool record_terminated(const TaskRecord& t) {
  return t.status == Status::Terminated;
}

bool record_available(const TaskRecord& t) {
  return t.start_time > 0 && t.end_time >= t.start_time && t.plan_cpu > 0.0 &&
         t.plan_mem > 0.0 && t.instance_num > 0;
}

}  // namespace

bool passes_integrity(const Trace& trace, const JobGroup& job) {
  return std::all_of(job.tasks.begin(), job.tasks.end(), [&](std::size_t i) {
    return record_terminated(trace.tasks[i]);
  });
}

bool passes_availability(const Trace& trace, const JobGroup& job) {
  return std::all_of(job.tasks.begin(), job.tasks.end(), [&](std::size_t i) {
    return record_available(trace.tasks[i]);
  });
}

bool is_dag_job(const Trace& trace, const JobGroup& job) {
  if (job.tasks.size() < 2) return false;
  bool any_dep = false;
  for (std::size_t i : job.tasks) {
    const auto parsed = parse_task_name(trace.tasks[i].task_name);
    if (!parsed) return false;
    any_dep = any_dep || !parsed->deps.empty();
  }
  return any_dep;
}

bool passes_integrity(std::span<const TaskRecord> tasks) {
  return std::all_of(tasks.begin(), tasks.end(), record_terminated);
}

bool passes_availability(std::span<const TaskRecord> tasks) {
  return std::all_of(tasks.begin(), tasks.end(), record_available);
}

bool is_dag_job(std::span<const TaskRecord> tasks) {
  if (tasks.size() < 2) return false;
  bool any_dep = false;
  for (const TaskRecord& t : tasks) {
    const auto parsed = parse_task_name(t.task_name);
    if (!parsed) return false;
    any_dep = any_dep || !parsed->deps.empty();
  }
  return any_dep;
}

bool passes_criteria(std::span<const TaskRecord> tasks,
                     const SamplingCriteria& criteria) {
  const int size = static_cast<int>(tasks.size());
  if (size < criteria.min_tasks || size > criteria.max_tasks) return false;
  if (criteria.require_integrity && !passes_integrity(tasks)) return false;
  if (criteria.require_availability && !passes_availability(tasks)) return false;
  if (criteria.require_dag && !is_dag_job(tasks)) return false;
  return true;
}

std::vector<std::size_t> select_jobs(const TraceIndex& index,
                                     const SamplingCriteria& criteria) {
  std::vector<std::size_t> out;
  const Trace& trace = index.trace();
  for (std::size_t j = 0; j < index.jobs().size(); ++j) {
    const JobGroup& job = index.jobs()[j];
    const int size = static_cast<int>(job.tasks.size());
    if (size < criteria.min_tasks || size > criteria.max_tasks) continue;
    if (criteria.require_integrity && !passes_integrity(trace, job)) continue;
    if (criteria.require_availability && !passes_availability(trace, job)) continue;
    if (criteria.require_dag && !is_dag_job(trace, job)) continue;
    out.push_back(j);
  }
  return out;
}

std::vector<std::size_t> variability_sample(const TraceIndex& index,
                                            std::span<const std::size_t> candidates,
                                            std::size_t count, std::uint64_t seed) {
  util::Xoshiro256StarStar rng(seed);
  // Stage 1 — coverage: one representative per distinct job size, so the
  // sample spans every topological scale the data offers (the paper's
  // experiment set covers 17 sizes).
  std::map<std::size_t, std::vector<std::size_t>> by_size;
  for (std::size_t j : candidates) {
    by_size[index.jobs()[j].tasks.size()].push_back(j);
  }
  std::vector<std::size_t> picked;
  picked.reserve(count);
  std::vector<char> taken(candidates.size(), 0);
  std::map<std::size_t, std::size_t> candidate_slot;  // candidate -> slot
  for (std::size_t s = 0; s < candidates.size(); ++s) candidate_slot[candidates[s]] = s;

  for (auto& [size, bucket] : by_size) {
    if (picked.size() == count) break;
    const std::size_t pick =
        bucket[static_cast<std::size_t>(rng.uniform_u64(0, bucket.size() - 1))];
    picked.push_back(pick);
    taken[candidate_slot[pick]] = 1;
  }

  // Stage 2 — natural fill: the remainder is drawn uniformly from the
  // unpicked candidates, so the sample otherwise follows the workload's own
  // (bottom-heavy) size distribution; this is what makes the dominant
  // cluster group a small-chain group, as in the paper's Fig. 9.
  std::vector<std::size_t> rest;
  rest.reserve(candidates.size());
  for (std::size_t s = 0; s < candidates.size(); ++s) {
    if (!taken[s]) rest.push_back(candidates[s]);
  }
  rng.shuffle(rest);
  for (std::size_t r = 0; picked.size() < count && r < rest.size(); ++r) {
    picked.push_back(rest[r]);
  }
  return picked;
}

std::vector<std::size_t> natural_sample(std::span<const std::size_t> candidates,
                                        std::size_t count, std::uint64_t seed) {
  util::Xoshiro256StarStar rng(seed);
  std::vector<std::size_t> pool(candidates.begin(), candidates.end());
  rng.shuffle(pool);
  if (pool.size() > count) pool.resize(count);
  return pool;
}

}  // namespace cwgl::trace

#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>

#include "graph/algorithms.hpp"
#include "trace/taskname.hpp"
#include "util/error.hpp"

namespace cwgl::trace {

using graph::Digraph;
using graph::Edge;
using graph::ShapePattern;
using util::Xoshiro256StarStar;

namespace {

/// Distributes `extra` units over `eligible` positions of `w`, where a
/// position stays eligible while `can_take(j)` holds. Deterministic given rng.
template <typename CanTake>
void sprinkle(std::vector<int>& w, int extra, Xoshiro256StarStar& rng,
              CanTake can_take) {
  std::vector<std::size_t> eligible;
  while (extra > 0) {
    eligible.clear();
    for (std::size_t j = 0; j < w.size(); ++j) {
      if (can_take(j)) eligible.push_back(j);
    }
    if (eligible.empty()) break;
    const std::size_t j =
        eligible[static_cast<std::size_t>(rng.uniform_u64(0, eligible.size() - 1))];
    ++w[j];
    --extra;
  }
}

std::vector<int> chain_widths(int n) { return std::vector<int>(n, 1); }

std::vector<int> triangle_widths(int n, Xoshiro256StarStar& rng, int max_depth) {
  // Non-increasing, last == 1, first > 1. Needs n >= 3.
  const int depth = rng.uniform_int(2, std::min(n - 1, std::max(2, max_depth)));
  std::vector<int> w(depth, 1);
  w[0] = 2;  // guarantee first > last
  sprinkle(w, n - depth - 1, rng, [&](std::size_t j) {
    if (j + 1 == w.size()) return false;                 // keep the apex at 1
    return j == 0 || w[j] + 1 <= w[j - 1];               // stay non-increasing
  });
  return w;
}

std::vector<int> diamond_widths(int n, Xoshiro256StarStar& rng, int max_depth) {
  // 1 ... 1 with a unimodal bulge. Needs n >= 4.
  const int depth = rng.uniform_int(3, std::min(n - 1, std::max(3, max_depth)));
  const int interior = depth - 2;
  std::vector<int> bulge(interior, 1);
  sprinkle(bulge, n - depth, rng, [](std::size_t) { return true; });
  // Rearrange the bulge into a unimodal "tent": smallest values outside-in.
  std::sort(bulge.begin(), bulge.end());
  std::vector<int> tent(interior, 0);
  std::size_t lo = 0, hi = static_cast<std::size_t>(interior) - 1;
  for (std::size_t k = 0; k < bulge.size(); ++k) {
    if (k % 2 == 0) {
      tent[lo++] = bulge[k];
    } else {
      tent[hi--] = bulge[k];
    }
  }
  std::vector<int> w;
  w.push_back(1);
  w.insert(w.end(), tent.begin(), tent.end());
  w.push_back(1);
  return w;
}

std::vector<int> hourglass_widths(int n, Xoshiro256StarStar& rng) {
  // (a, 1, b), a,b >= 2. Needs n >= 5.
  const int a = rng.uniform_int(2, n - 3);
  const int b = n - 1 - a;
  return {a, 1, b};
}

std::vector<int> trapezium_widths(int n, Xoshiro256StarStar& rng, int max_depth) {
  // Non-decreasing, last > first, first == 1. Needs n >= 3.
  const int depth = rng.uniform_int(2, std::min(n - 1, std::max(2, max_depth)));
  std::vector<int> w(depth, 1);
  w[depth - 1] = 2;  // guarantee last > first
  sprinkle(w, n - depth - 1, rng, [&](std::size_t j) {
    if (j == 0) return false;                             // keep the head at 1
    return j + 1 == w.size() || w[j] + 1 <= w[j + 1];     // stay non-decreasing
  });
  return w;
}

std::vector<int> combination_widths(int n, Xoshiro256StarStar& rng) {
  // Double bump (1, a, 1, b[, 1]) — violates every single-shape rule.
  // Needs n >= 6.
  const bool tail_one = n >= 7 && rng.bernoulli(0.5);
  const int budget = n - (tail_one ? 3 : 2);
  const int a = rng.uniform_int(2, budget - 2);
  const int b = budget - a;
  std::vector<int> w{1, a, 1, b};
  if (tail_one) w.push_back(1);
  return w;
}

}  // namespace

std::vector<int> synthesize_widths(ShapePattern shape, int n,
                                   Xoshiro256StarStar& rng, int max_depth) {
  if (n < 1) throw util::InvalidArgument("synthesize_widths: n must be >= 1");
  if (n == 1) return {1};
  // Fall back to the closest shape that fits in n vertices.
  switch (shape) {
    case ShapePattern::SingleTask:
    case ShapePattern::StraightChain:
      return chain_widths(n);
    case ShapePattern::InvertedTriangle:
      return n >= 3 ? triangle_widths(n, rng, max_depth) : chain_widths(n);
    case ShapePattern::Diamond:
      return n >= 4 ? diamond_widths(n, rng, max_depth)
                    : synthesize_widths(ShapePattern::InvertedTriangle, n, rng,
                                        max_depth);
    case ShapePattern::Hourglass:
      return n >= 5 ? hourglass_widths(n, rng)
                    : synthesize_widths(ShapePattern::Diamond, n, rng, max_depth);
    case ShapePattern::Trapezium:
      return n >= 3 ? trapezium_widths(n, rng, max_depth) : chain_widths(n);
    case ShapePattern::Combination:
      return n >= 6 ? combination_widths(n, rng)
                    : synthesize_widths(ShapePattern::InvertedTriangle, n, rng,
                                        max_depth);
  }
  return chain_widths(n);
}

Digraph synthesize_dag(std::span<const int> widths, Xoshiro256StarStar& rng) {
  int n = 0;
  std::vector<int> level_start;
  for (int w : widths) {
    if (w <= 0) throw util::InvalidArgument("synthesize_dag: widths must be positive");
    level_start.push_back(n);
    n += w;
  }
  level_start.push_back(n);

  std::vector<Edge> edges;
  std::vector<int> out_degree(n, 0);
  for (std::size_t lv = 1; lv < widths.size(); ++lv) {
    const int prev_begin = level_start[lv - 1];
    const int prev_width = widths[lv - 1];
    const int cur_begin = level_start[lv];
    for (int c = 0; c < widths[lv]; ++c) {
      const int child = cur_begin + c;
      // Every child takes 1–2 distinct parents from the previous level, so
      // its longest-path level is exactly `lv`.
      int nparents = 1;
      if (prev_width > 1 && rng.bernoulli(0.3)) nparents = 2;
      const auto picks = rng.sample_without_replacement(
          static_cast<std::size_t>(prev_width), static_cast<std::size_t>(nparents));
      for (std::size_t p : picks) {
        const int parent = prev_begin + static_cast<int>(p);
        edges.push_back({parent, child});
        ++out_degree[parent];
      }
    }
    // Orphan parents (no child yet) would become premature sinks and distort
    // the intended shape: attach each to a random child in this level.
    for (int p = 0; p < prev_width; ++p) {
      const int parent = prev_begin + p;
      if (out_degree[parent] == 0) {
        const int child = cur_begin + rng.uniform_int(0, widths[lv] - 1);
        edges.push_back({parent, child});
        ++out_degree[parent];
      }
    }
  }
  return Digraph(n, edges);
}

Digraph synthesize_shape(ShapePattern shape, int n, Xoshiro256StarStar& rng,
                         int max_depth) {
  const auto widths = synthesize_widths(shape, n, rng, max_depth);
  return synthesize_dag(widths, rng);
}

namespace {

constexpr char kBase62[] =
    "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";

std::string random_token(Xoshiro256StarStar& rng, int len) {
  std::string out;
  out.reserve(len);
  for (int i = 0; i < len; ++i) out += kBase62[rng.uniform_int(0, 61)];
  return out;
}

/// Assigns a task type given the (already typed) predecessors. Sources are
/// Maps; convergent stages are Joins or Reduces; a stage directly after a
/// Reduce is occasionally a Merge (typed 'M' like the trace does) —
/// realizing the Map-Reduce-Merge mode of Yang et al. that the paper lists
/// among its three observed programming models.
char type_for_vertex(const Digraph& g, int v, std::span<const char> types,
                     Xoshiro256StarStar& rng) {
  if (g.in_degree(v) == 0) return 'M';
  bool after_reduce = false;
  for (int p : g.predecessors(v)) {
    if (types[p] == 'R') after_reduce = true;
  }
  if (after_reduce && rng.bernoulli(0.10)) return 'M';  // merge stage
  if (g.out_degree(v) == 0) return 'R';
  if (g.in_degree(v) >= 2 && rng.bernoulli(0.6)) return 'J';
  return 'R';
}

/// Random topological order: indices 1..n with every parent numbered before
/// its children, mirroring how the trace numbers tasks.
std::vector<int> random_topo_index(const Digraph& g, Xoshiro256StarStar& rng) {
  const int n = g.num_vertices();
  std::vector<int> indeg(n), index(n, 0);
  std::vector<int> ready;
  for (int v = 0; v < n; ++v) {
    indeg[v] = g.in_degree(v);
    if (indeg[v] == 0) ready.push_back(v);
  }
  int next = 1;
  while (!ready.empty()) {
    const std::size_t pick =
        static_cast<std::size_t>(rng.uniform_u64(0, ready.size() - 1));
    const int v = ready[pick];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));
    index[v] = next++;
    for (int w : g.successors(v)) {
      if (--indeg[w] == 0) ready.push_back(w);
    }
  }
  return index;
}

enum class JobFate { Normal, Running, Failed, Cancelled, MissingStart };

}  // namespace

TraceGenerator::TraceGenerator(GeneratorConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.num_jobs == 0) throw util::InvalidArgument("TraceGenerator: num_jobs == 0");
  if (cfg_.min_tasks < 2 || cfg_.max_tasks < cfg_.min_tasks) {
    throw util::InvalidArgument("TraceGenerator: need 2 <= min_tasks <= max_tasks");
  }
  if (cfg_.window_end <= cfg_.window_start) {
    throw util::InvalidArgument("TraceGenerator: empty trace window");
  }
}

GeneratedJob TraceGenerator::generate_job(std::size_t job_index) const {
  Xoshiro256StarStar rng(util::hash_combine(cfg_.seed, job_index));
  GeneratedJob job;
  job.job_name = "j_" + std::to_string(1000000 + job_index);
  job.is_dag = rng.bernoulli(cfg_.dag_fraction);

  // --- topology -----------------------------------------------------------
  int n = 0;
  if (job.is_dag) {
    const ShapeMix& m = cfg_.shapes;
    const double weights[] = {m.chain, m.inverted_triangle, m.diamond,
                              m.hourglass, m.trapezium, m.combination};
    static constexpr ShapePattern kShapes[] = {
        ShapePattern::StraightChain, ShapePattern::InvertedTriangle,
        ShapePattern::Diamond,       ShapePattern::Hourglass,
        ShapePattern::Trapezium,     ShapePattern::Combination};
    job.intended_shape = kShapes[rng.discrete(weights)];
    // Each shape needs a minimum vertex count to be realizable; drawing the
    // size from a floor at that minimum keeps the realized shape frequencies
    // matched to the configured mixture (no silent chain fallbacks).
    int shape_min = 2;
    switch (job.intended_shape) {
      case ShapePattern::InvertedTriangle: shape_min = 3; break;
      case ShapePattern::Diamond: shape_min = 4; break;
      case ShapePattern::Hourglass: shape_min = 5; break;
      case ShapePattern::Trapezium: shape_min = 3; break;
      case ShapePattern::Combination: shape_min = 6; break;
      default: shape_min = 2; break;
    }
    // Chains are depth-bound (the paper's critical paths stay in 2..8, so
    // long jobs widen instead of deepening); other shapes use the full range.
    const int size_cap = job.intended_shape == ShapePattern::StraightChain
                             ? std::min(cfg_.max_tasks, cfg_.max_depth)
                             : cfg_.max_tasks;
    const int size_floor = std::min(std::max(cfg_.min_tasks, shape_min), size_cap);
    if (rng.bernoulli(cfg_.p_tiny)) {
      // Recurrent tiny job: the shape at (or one above) its minimum size.
      n = std::min(size_cap, size_floor + (rng.bernoulli(0.35) ? 1 : 0));
    } else {
      n = rng.truncated_geometric(size_floor, size_cap, cfg_.size_geometric_p);
    }
    job.dag = synthesize_shape(job.intended_shape, n, rng, cfg_.max_depth);
    job.intended_shape = graph::classify_shape(job.dag);
  } else {
    n = 1 + rng.truncated_geometric(0, 2, 0.6);
    job.dag = Digraph(n, {});
  }

  // --- redundant transitive dependencies (DAG jobs only) -------------------
  if (job.is_dag && cfg_.p_extra_dep > 0.0) {
    const auto levels = graph::longest_path_levels(job.dag);
    std::vector<Edge> extra;
    for (int v = 0; v < n; ++v) {
      if (levels[v] < 2 || !rng.bernoulli(cfg_.p_extra_dep)) continue;
      // Pick an extra upstream dependency at least two levels up; such an
      // edge keeps the graph acyclic and leaves every level unchanged.
      std::vector<int> candidates;
      for (int u = 0; u < n; ++u) {
        if (levels[u] <= levels[v] - 2 && !job.dag.has_edge(u, v)) {
          candidates.push_back(u);
        }
      }
      if (candidates.empty()) continue;
      const int u = candidates[static_cast<std::size_t>(
          rng.uniform_u64(0, candidates.size() - 1))];
      extra.push_back({u, v});
    }
    if (!extra.empty()) {
      auto all = job.dag.edges();
      all.insert(all.end(), extra.begin(), extra.end());
      job.dag = Digraph(n, all);
    }
  }

  // --- types and names ------------------------------------------------------
  job.vertex_types.resize(n);
  std::vector<std::string> names(n);
  if (job.is_dag) {
    // Vertices are numbered level by level, so every predecessor is typed
    // before its children — type_for_vertex can see upstream stages.
    for (int v = 0; v < n; ++v) {
      job.vertex_types[v] = type_for_vertex(job.dag, v, job.vertex_types, rng);
    }
    const auto index = random_topo_index(job.dag, rng);
    for (int v = 0; v < n; ++v) {
      std::vector<int> deps;
      for (int p : job.dag.predecessors(v)) deps.push_back(index[p]);
      std::sort(deps.rbegin(), deps.rend());  // trace lists deps descending
      names[v] = encode_task_name(job.vertex_types[v], index[v], deps);
    }
  } else {
    for (int v = 0; v < n; ++v) {
      job.vertex_types[v] = 't';
      names[v] = "task_" + random_token(rng, 10);
    }
  }

  // --- schedule -------------------------------------------------------------
  const double window = static_cast<double>(cfg_.window_end - cfg_.window_start);
  double arrival = 0.0;
  for (int tries = 0; tries < 16; ++tries) {
    arrival = rng.uniform_real(0.0, window);
    if (!cfg_.diurnal_arrivals) break;
    const double intensity =
        (1.0 + 0.5 * std::sin(2.0 * std::numbers::pi * arrival / 86400.0)) / 1.5;
    if (rng.bernoulli(intensity)) break;
  }
  const double sigma = cfg_.duration_sigma;
  std::vector<double> start(n, 0.0), finish(n, 0.0);
  const auto order = graph::topological_sort(job.dag);
  for (int v : *order) {
    double ready = arrival;
    for (int p : job.dag.predecessors(v)) ready = std::max(ready, finish[p]);
    start[v] = ready + rng.uniform_real(0.0, 5.0);
    const double dur = cfg_.mean_task_duration *
                       std::exp(rng.normal(0.0, sigma) - sigma * sigma / 2.0);
    finish[v] = start[v] + std::max(1.0, dur);
  }

  // --- fate -----------------------------------------------------------------
  const double fate_weights[] = {
      1.0 - cfg_.p_running - cfg_.p_failed - cfg_.p_cancelled - cfg_.p_missing_start,
      cfg_.p_running, cfg_.p_failed, cfg_.p_cancelled, cfg_.p_missing_start};
  const auto fate = static_cast<JobFate>(rng.discrete(fate_weights));

  std::vector<Status> status(n, Status::Terminated);
  const auto levels = graph::longest_path_levels(job.dag);
  switch (fate) {
    case JobFate::Normal:
      break;
    case JobFate::Running: {
      // The trace window closed mid-job: the last tasks never finished.
      double cut = arrival;
      for (int v = 0; v < n; ++v) cut = std::max(cut, finish[v]);
      cut = arrival + (cut - arrival) * rng.uniform_real(0.3, 0.9);
      for (int v = 0; v < n; ++v) {
        if (start[v] > cut) {
          status[v] = Status::Waiting;
        } else if (finish[v] > cut) {
          status[v] = Status::Running;
        }
      }
      break;
    }
    case JobFate::Failed:
    case JobFate::Cancelled: {
      const int victim = rng.uniform_int(0, n - 1);
      status[victim] = fate == JobFate::Failed ? Status::Failed : Status::Cancelled;
      for (int v = 0; v < n; ++v) {
        if (levels[v] > levels[victim]) status[v] = Status::Waiting;
      }
      break;
    }
    case JobFate::MissingStart:
      break;  // handled below via zeroed start_time
  }

  // --- task records -----------------------------------------------------------
  const double inst_mean =
      cfg_.mean_instances * (job.is_dag ? cfg_.dag_instance_boost : 1.0);
  const int missing_victim =
      fate == JobFate::MissingStart ? rng.uniform_int(0, n - 1) : -1;
  job.tasks.reserve(n);
  for (int v = 0; v < n; ++v) {
    TaskRecord t;
    t.task_name = names[v];
    t.job_name = job.job_name;
    t.task_type = 1;
    t.status = status[v];
    t.instance_num = std::max(
        1, rng.truncated_geometric(1, 500, 1.0 / std::max(1.0, inst_mean)));
    static constexpr double kCpuPlans[] = {50.0, 100.0, 100.0, 200.0};
    t.plan_cpu = kCpuPlans[rng.uniform_int(0, 3)];
    t.plan_mem = rng.uniform_real(0.1, 2.0);
    const auto clock = [&](double s) {
      return cfg_.window_start + static_cast<std::int64_t>(s);
    };
    switch (status[v]) {
      case Status::Terminated:
      case Status::Failed:
      case Status::Cancelled:
        t.start_time = clock(start[v]);
        t.end_time = clock(finish[v]);
        break;
      case Status::Running:
        t.start_time = clock(start[v]);
        t.end_time = 0;
        break;
      default:
        t.start_time = 0;
        t.end_time = 0;
        break;
    }
    if (v == missing_victim) t.start_time = 0;  // availability violation
    job.tasks.push_back(std::move(t));
  }

  // --- instance records --------------------------------------------------------
  if (cfg_.emit_instances) {
    for (int v = 0; v < n; ++v) {
      const TaskRecord& t = job.tasks[v];
      for (int i = 0; i < t.instance_num; ++i) {
        InstanceRecord r;
        r.instance_name = "inst_" + job.job_name + "_" + std::to_string(v + 1) +
                          "_" + std::to_string(i + 1);
        r.task_name = t.task_name;
        r.job_name = t.job_name;
        r.task_type = t.task_type;
        r.status = t.status;
        r.machine_id = "m_" + std::to_string(rng.uniform_int(1, cfg_.num_machines));
        if (rng.bernoulli(cfg_.p_instance_retry)) {
          // Re-executed instance (preempted/failed attempt before this one).
          r.total_seq_no = rng.uniform_int(2, 4);
          r.seq_no = r.total_seq_no;  // the surviving attempt is the last
        } else {
          r.seq_no = 1;
          r.total_seq_no = 1;
        }
        if (t.start_time > 0 && t.end_time > t.start_time) {
          const auto span = static_cast<double>(t.end_time - t.start_time);
          const double s = rng.uniform_real(0.0, span * 0.3);
          const double e = span - rng.uniform_real(0.0, span * 0.3);
          r.start_time = t.start_time + static_cast<std::int64_t>(s);
          r.end_time = t.start_time + static_cast<std::int64_t>(std::max(s + 1.0, e));
        } else {
          r.start_time = t.start_time;
          r.end_time = 0;
        }
        r.cpu_avg = t.plan_cpu * rng.uniform_real(0.3, 0.9);
        r.cpu_max = std::min(t.plan_cpu, r.cpu_avg * rng.uniform_real(1.0, 1.5));
        r.mem_avg = t.plan_mem * rng.uniform_real(0.4, 0.9);
        r.mem_max = std::min(t.plan_mem, r.mem_avg * rng.uniform_real(1.0, 1.3));
        job.instances.push_back(std::move(r));
      }
    }
  }
  return job;
}

std::vector<GeneratedJob> TraceGenerator::generate_jobs() const {
  std::vector<GeneratedJob> jobs;
  jobs.reserve(cfg_.num_jobs);
  for (std::size_t i = 0; i < cfg_.num_jobs; ++i) jobs.push_back(generate_job(i));
  return jobs;
}

Trace TraceGenerator::generate() const {
  Trace trace;
  for (std::size_t i = 0; i < cfg_.num_jobs; ++i) {
    GeneratedJob job = generate_job(i);
    for (auto& t : job.tasks) trace.tasks.push_back(std::move(t));
    for (auto& r : job.instances) trace.instances.push_back(std::move(r));
  }
  return trace;
}

}  // namespace cwgl::trace

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cwgl::trace {

/// Task/instance lifecycle states used by the Alibaba cluster-trace-v2018.
enum class Status {
  Waiting,      ///< submitted, not yet scheduled
  Running,      ///< executing when the trace window closed
  Terminated,   ///< finished successfully
  Failed,       ///< finished unsuccessfully
  Cancelled,    ///< killed before completion (e.g. resource competition)
  Interrupted,  ///< preempted by higher-priority (online) services
  Unknown,      ///< anything the parser does not recognize
};

/// Parses the trace's status spelling ("Terminated", ...); unknown text maps
/// to Status::Unknown rather than throwing, matching the tolerant way trace
/// consumers must treat production data. Inline with first-character
/// dispatch: this sits on the per-row hot path of the streaming CSV ingest.
inline Status parse_status(std::string_view text) noexcept {
  if (text.empty()) return Status::Unknown;
  switch (text.front()) {
    case 'W': return text == "Waiting" ? Status::Waiting : Status::Unknown;
    case 'R': return text == "Running" ? Status::Running : Status::Unknown;
    case 'T':
      return text == "Terminated" ? Status::Terminated : Status::Unknown;
    case 'F': return text == "Failed" ? Status::Failed : Status::Unknown;
    case 'C':
      return text == "Cancelled" ? Status::Cancelled : Status::Unknown;
    case 'I':
      return text == "Interrupted" ? Status::Interrupted : Status::Unknown;
    default: return Status::Unknown;
  }
}

/// Canonical trace spelling of a status.
std::string_view to_string(Status s) noexcept;

/// One row of `batch_task.csv` (Alibaba cluster-trace-v2018 column order:
/// task_name, instance_num, job_name, task_type, status, start_time,
/// end_time, plan_cpu, plan_mem).
struct TaskRecord {
  std::string task_name;     ///< dependency-encoded name, e.g. "R5_4_3_2_1"
  int instance_num = 0;      ///< number of instances fanned out for the task
  std::string job_name;      ///< parent job id, e.g. "j_1001388"
  int task_type = 1;         ///< opaque numeric type tag from the trace
  Status status = Status::Terminated;
  std::int64_t start_time = 0;  ///< seconds since trace epoch; 0 = missing
  std::int64_t end_time = 0;    ///< seconds since trace epoch; 0 = missing
  double plan_cpu = 0.0;     ///< requested CPU, 100 == one core
  double plan_mem = 0.0;     ///< requested memory, normalized percentage

  /// Serializes to the nine CSV fields in trace column order.
  std::vector<std::string> to_fields() const;

  /// Parses from CSV fields; returns nullopt if the row has the wrong arity
  /// or un-parseable numerics (malformed rows exist in production traces
  /// and are skipped, not fatal). The span overload is the zero-copy hot
  /// path used by the streaming ingest (views need only outlive the call).
  static std::optional<TaskRecord> from_fields(
      std::span<const std::string_view> f);
  static std::optional<TaskRecord> from_fields(const std::vector<std::string>& f);
};

/// One row of `batch_instance.csv` (column order: instance_name, task_name,
/// job_name, task_type, status, start_time, end_time, machine_id, seq_no,
/// total_seq_no, cpu_avg, cpu_max, mem_avg, mem_max).
struct InstanceRecord {
  std::string instance_name;
  std::string task_name;
  std::string job_name;
  int task_type = 1;
  Status status = Status::Terminated;
  std::int64_t start_time = 0;
  std::int64_t end_time = 0;
  std::string machine_id;   ///< e.g. "m_1932"
  int seq_no = 1;           ///< retry sequence number of this instance
  int total_seq_no = 1;     ///< total retries observed
  double cpu_avg = 0.0;     ///< average CPU used, 100 == one core
  double cpu_max = 0.0;
  double mem_avg = 0.0;     ///< average memory used, normalized percentage
  double mem_max = 0.0;

  /// Serializes to the fourteen CSV fields in trace column order.
  std::vector<std::string> to_fields() const;

  /// Parses from CSV fields; nullopt on malformed rows. The span overload
  /// is the zero-copy hot path.
  static std::optional<InstanceRecord> from_fields(
      std::span<const std::string_view> f);
  static std::optional<InstanceRecord> from_fields(const std::vector<std::string>& f);
};

/// An in-memory trace: the two batch files of the v2018 release.
struct Trace {
  std::vector<TaskRecord> tasks;
  std::vector<InstanceRecord> instances;
};

}  // namespace cwgl::trace

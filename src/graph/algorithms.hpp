#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace cwgl::graph {

/// Kahn topological order, or nullopt if the graph contains a cycle.
std::optional<std::vector<int>> topological_sort(const Digraph& g);

/// True iff the graph is acyclic (self-loops count as cycles).
bool is_dag(const Digraph& g);

/// Vertices with in-degree zero, ascending ("input" tasks).
std::vector<int> sources(const Digraph& g);

/// Vertices with out-degree zero, ascending ("output" tasks).
std::vector<int> sinks(const Digraph& g);

/// Longest-path layering: level[v] = length (in edges) of the longest path
/// from any source to v; sources sit at level 0. Throws GraphError on a
/// cyclic input. This is the paper's notion of the "level" of a task.
std::vector<int> longest_path_levels(const Digraph& g);

/// The paper's "critical path": the number of VERTICES on the longest
/// directed path (a 2-task chain has critical path 2). Equals
/// max(longest_path_levels)+1; 0 for the empty graph.
int critical_path_length(const Digraph& g);

/// One concrete longest path as a vertex sequence (empty for empty graph).
std::vector<int> critical_path(const Digraph& g);

/// Number of vertices on each longest-path level (index = level).
std::vector<int> width_profile(const Digraph& g);

/// The paper's "maximum width" / degree of parallelism: the largest level
/// population. 0 for the empty graph.
int max_width(const Digraph& g);

/// Weakly connected components; each inner vector lists member vertices
/// ascending, components ordered by smallest member.
std::vector<std::vector<int>> weakly_connected_components(const Digraph& g);

/// True iff the graph is weakly connected (vacuously true when n <= 1).
bool is_weakly_connected(const Digraph& g);

/// BFS hop distances from `src` (-1 where unreachable). When `undirected`
/// is true, edges are traversed both ways (used by the shortest-path
/// kernel so that parallel branches still relate).
std::vector<int> bfs_distances(const Digraph& g, int src, bool undirected = false);

/// Removes every edge implied by transitivity. DAG-only (throws GraphError
/// otherwise). O(V * E) via reachability propagation — fine for job-sized
/// graphs.
Digraph transitive_reduction(const Digraph& g);

/// Per-vertex reachable-set sizes, i.e. |descendants(v)| excluding v.
/// DAG-only. Used by characterization reports to gauge fan-out influence.
std::vector<int> descendant_counts(const Digraph& g);

}  // namespace cwgl::graph

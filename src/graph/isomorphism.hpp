#pragma once

#include <span>

#include "graph/digraph.hpp"

namespace cwgl::graph {

/// Exact labeled-digraph isomorphism test by backtracking search with
/// degree/label pruning. Exponential worst case — intended for job-sized
/// graphs (tens of vertices; throws InvalidArgument above 32) and for
/// validating the WL `canonical_hash`. Empty label spans mean "uniformly
/// labeled"; otherwise one label per vertex.
bool are_isomorphic(const Digraph& a, std::span<const int> labels_a,
                    const Digraph& b, std::span<const int> labels_b);

}  // namespace cwgl::graph

#include "graph/digraph.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace cwgl::graph {

namespace {

/// Builds one CSR side (offsets + sorted unique targets) from edges keyed by
/// `key` with value `val`.
void build_csr(int n, std::span<const Edge> edges, bool by_source,
               std::vector<int>& offsets, std::vector<int>& targets) {
  offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges) {
    const int key = by_source ? e.from : e.to;
    ++offsets[key + 1];
  }
  for (int v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  targets.resize(edges.size());
  std::vector<int> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges) {
    const int key = by_source ? e.from : e.to;
    const int val = by_source ? e.to : e.from;
    targets[cursor[key]++] = val;
  }
  for (int v = 0; v < n; ++v) {
    std::sort(targets.begin() + offsets[v], targets.begin() + offsets[v + 1]);
  }
}

}  // namespace

Digraph::Digraph(int num_vertices, std::span<const Edge> edges) : n_(num_vertices) {
  if (num_vertices < 0) {
    throw util::GraphError("Digraph: negative vertex count");
  }
  std::vector<Edge> unique_edges(edges.begin(), edges.end());
  for (const Edge& e : unique_edges) {
    if (e.from < 0 || e.from >= n_ || e.to < 0 || e.to >= n_) {
      throw util::GraphError("Digraph: edge (" + std::to_string(e.from) + "," +
                             std::to_string(e.to) + ") outside [0," +
                             std::to_string(n_) + ")");
    }
  }
  std::sort(unique_edges.begin(), unique_edges.end(),
            [](const Edge& a, const Edge& b) {
              return a.from != b.from ? a.from < b.from : a.to < b.to;
            });
  unique_edges.erase(std::unique(unique_edges.begin(), unique_edges.end()),
                     unique_edges.end());
  build_csr(n_, unique_edges, /*by_source=*/true, succ_off_, succ_);
  build_csr(n_, unique_edges, /*by_source=*/false, pred_off_, pred_);
}

bool Digraph::has_edge(int from, int to) const noexcept {
  if (from < 0 || from >= n_ || to < 0 || to >= n_) return false;
  const auto row = successors(from);
  return std::binary_search(row.begin(), row.end(), to);
}

std::vector<Edge> Digraph::edges() const {
  std::vector<Edge> out;
  out.reserve(succ_.size());
  for (int v = 0; v < n_; ++v) {
    for (int w : successors(v)) out.push_back({v, w});
  }
  return out;
}

void DigraphBuilder::reserve_vertices(int n) {
  if (n > n_) n_ = n;
}

int DigraphBuilder::add_vertex() { return n_++; }

void DigraphBuilder::add_edge(int from, int to) {
  if (from < 0 || from >= n_ || to < 0 || to >= n_) {
    throw util::GraphError("DigraphBuilder: edge endpoint outside current vertex set");
  }
  edges_.push_back({from, to});
}

Digraph DigraphBuilder::build() const { return Digraph(n_, edges_); }

}  // namespace cwgl::graph

#include "graph/patterns.hpp"

#include <algorithm>
#include <vector>

#include "graph/algorithms.hpp"

namespace cwgl::graph {

std::string_view to_string(ShapePattern p) noexcept {
  switch (p) {
    case ShapePattern::SingleTask: return "single-task";
    case ShapePattern::StraightChain: return "straight-chain";
    case ShapePattern::InvertedTriangle: return "inverted-triangle";
    case ShapePattern::Diamond: return "diamond";
    case ShapePattern::Hourglass: return "hourglass";
    case ShapePattern::Trapezium: return "trapezium";
    case ShapePattern::Combination: return "combination";
  }
  return "unknown";
}

ShapePattern classify_shape(const Digraph& g) {
  if (g.num_vertices() <= 1) return ShapePattern::SingleTask;
  const std::vector<int> w = width_profile(g);
  if (w.size() == 1) {
    // All vertices at level 0: an edgeless bag of tasks — composite.
    return ShapePattern::Combination;
  }
  const int first = w.front();
  const int last = w.back();
  const bool all_ones = std::all_of(w.begin(), w.end(), [](int x) { return x == 1; });
  if (all_ones) return ShapePattern::StraightChain;

  const bool non_increasing = std::is_sorted(w.rbegin(), w.rend());
  if (non_increasing && first > last) return ShapePattern::InvertedTriangle;

  int interior_max = 0;
  int interior_min = g.num_vertices() + 1;
  for (std::size_t i = 1; i + 1 < w.size(); ++i) {
    interior_max = std::max(interior_max, w[i]);
    interior_min = std::min(interior_min, w[i]);
  }

  // Unimodal: non-decreasing up to some peak, non-increasing after it.
  const auto unimodal = [&] {
    std::size_t i = 1;
    while (i < w.size() && w[i] >= w[i - 1]) ++i;
    while (i < w.size() && w[i] <= w[i - 1]) ++i;
    return i == w.size();
  };
  // Anti-unimodal: non-increasing down to a waist, non-decreasing after.
  const auto anti_unimodal = [&] {
    std::size_t i = 1;
    while (i < w.size() && w[i] <= w[i - 1]) ++i;
    while (i < w.size() && w[i] >= w[i - 1]) ++i;
    return i == w.size();
  };

  if (first == 1 && last == 1 && interior_max > 1 && unimodal()) {
    return ShapePattern::Diamond;
  }

  const bool non_decreasing = std::is_sorted(w.begin(), w.end());
  if (non_decreasing && last > first) return ShapePattern::Trapezium;

  if (first > 1 && last > 1 && w.size() > 2 && interior_min < std::min(first, last) &&
      anti_unimodal()) {
    return ShapePattern::Hourglass;
  }
  return ShapePattern::Combination;
}

}  // namespace cwgl::graph

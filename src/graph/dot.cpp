#include "graph/dot.hpp"

#include "util/error.hpp"

namespace cwgl::graph {

namespace {
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}
}  // namespace

std::string to_dot(const Digraph& g, std::span<const std::string> labels,
                   std::string_view graph_name) {
  if (!labels.empty() && static_cast<int>(labels.size()) != g.num_vertices()) {
    throw util::InvalidArgument("to_dot: labels size != vertex count");
  }
  std::string out = "digraph \"" + escape(graph_name) + "\" {\n";
  out += "  rankdir=TB;\n  node [shape=ellipse];\n";
  for (int v = 0; v < g.num_vertices(); ++v) {
    out += "  n" + std::to_string(v);
    if (!labels.empty()) {
      out += " [label=\"" + escape(labels[v]) + "\"]";
    }
    out += ";\n";
  }
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (int w : g.successors(v)) {
      out += "  n" + std::to_string(v) + " -> n" + std::to_string(w) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace cwgl::graph

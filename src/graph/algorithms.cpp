#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace cwgl::graph {

std::optional<std::vector<int>> topological_sort(const Digraph& g) {
  const int n = g.num_vertices();
  std::vector<int> indeg(n);
  for (int v = 0; v < n; ++v) indeg[v] = g.in_degree(v);
  std::vector<int> order;
  order.reserve(n);
  // Min-index first so the order is deterministic and stable for tests.
  std::priority_queue<int, std::vector<int>, std::greater<>> ready;
  for (int v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push(v);
  }
  while (!ready.empty()) {
    const int v = ready.top();
    ready.pop();
    order.push_back(v);
    for (int w : g.successors(v)) {
      if (--indeg[w] == 0) ready.push(w);
    }
  }
  if (static_cast<int>(order.size()) != n) return std::nullopt;
  return order;
}

bool is_dag(const Digraph& g) { return topological_sort(g).has_value(); }

std::vector<int> sources(const Digraph& g) {
  std::vector<int> out;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (g.in_degree(v) == 0) out.push_back(v);
  }
  return out;
}

std::vector<int> sinks(const Digraph& g) {
  std::vector<int> out;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) == 0) out.push_back(v);
  }
  return out;
}

std::vector<int> longest_path_levels(const Digraph& g) {
  const auto order = topological_sort(g);
  if (!order) throw util::GraphError("longest_path_levels: graph has a cycle");
  std::vector<int> level(g.num_vertices(), 0);
  for (int v : *order) {
    for (int w : g.successors(v)) {
      level[w] = std::max(level[w], level[v] + 1);
    }
  }
  return level;
}

int critical_path_length(const Digraph& g) {
  if (g.num_vertices() == 0) return 0;
  const auto levels = longest_path_levels(g);
  return *std::max_element(levels.begin(), levels.end()) + 1;
}

std::vector<int> critical_path(const Digraph& g) {
  if (g.num_vertices() == 0) return {};
  const auto levels = longest_path_levels(g);
  int tail = 0;
  for (int v = 1; v < g.num_vertices(); ++v) {
    if (levels[v] > levels[tail]) tail = v;
  }
  std::vector<int> path{tail};
  // Walk backwards: a predecessor on the critical path sits one level up.
  while (levels[path.back()] > 0) {
    const int v = path.back();
    for (int p : g.predecessors(v)) {
      if (levels[p] == levels[v] - 1) {
        path.push_back(p);
        break;
      }
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<int> width_profile(const Digraph& g) {
  if (g.num_vertices() == 0) return {};
  const auto levels = longest_path_levels(g);
  const int depth = *std::max_element(levels.begin(), levels.end()) + 1;
  std::vector<int> widths(depth, 0);
  for (int lv : levels) ++widths[lv];
  return widths;
}

int max_width(const Digraph& g) {
  const auto widths = width_profile(g);
  return widths.empty() ? 0 : *std::max_element(widths.begin(), widths.end());
}

std::vector<std::vector<int>> weakly_connected_components(const Digraph& g) {
  const int n = g.num_vertices();
  std::vector<int> comp(n, -1);
  std::vector<std::vector<int>> components;
  std::vector<int> stack;
  for (int start = 0; start < n; ++start) {
    if (comp[start] != -1) continue;
    const int id = static_cast<int>(components.size());
    components.emplace_back();
    stack.push_back(start);
    comp[start] = id;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      components[id].push_back(v);
      for (int w : g.successors(v)) {
        if (comp[w] == -1) {
          comp[w] = id;
          stack.push_back(w);
        }
      }
      for (int w : g.predecessors(v)) {
        if (comp[w] == -1) {
          comp[w] = id;
          stack.push_back(w);
        }
      }
    }
    std::sort(components[id].begin(), components[id].end());
  }
  return components;
}

bool is_weakly_connected(const Digraph& g) {
  return g.num_vertices() <= 1 || weakly_connected_components(g).size() == 1;
}

std::vector<int> bfs_distances(const Digraph& g, int src, bool undirected) {
  const int n = g.num_vertices();
  if (src < 0 || src >= n) {
    throw util::GraphError("bfs_distances: source vertex out of range");
  }
  std::vector<int> dist(n, -1);
  std::queue<int> frontier;
  dist[src] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const int v = frontier.front();
    frontier.pop();
    auto visit = [&](int w) {
      if (dist[w] == -1) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
    };
    for (int w : g.successors(v)) visit(w);
    if (undirected) {
      for (int w : g.predecessors(v)) visit(w);
    }
  }
  return dist;
}

namespace {

/// Bitset reachability: reach[v] marks every vertex reachable from v
/// (excluding v unless on a cycle; inputs here are DAGs).
std::vector<std::vector<bool>> reachability(const Digraph& g,
                                            std::span<const int> topo) {
  const int n = g.num_vertices();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const int v = *it;
    for (int w : g.successors(v)) {
      reach[v][w] = true;
      for (int x = 0; x < n; ++x) {
        if (reach[w][x]) reach[v][x] = true;
      }
    }
  }
  return reach;
}

}  // namespace

Digraph transitive_reduction(const Digraph& g) {
  const auto order = topological_sort(g);
  if (!order) throw util::GraphError("transitive_reduction: graph has a cycle");
  const auto reach = reachability(g, *order);
  std::vector<Edge> kept;
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (int w : g.successors(v)) {
      // (v,w) is redundant iff some other successor u of v reaches w.
      bool redundant = false;
      for (int u : g.successors(v)) {
        if (u != w && reach[u][w]) {
          redundant = true;
          break;
        }
      }
      if (!redundant) kept.push_back({v, w});
    }
  }
  return Digraph(g.num_vertices(), kept);
}

std::vector<int> descendant_counts(const Digraph& g) {
  const auto order = topological_sort(g);
  if (!order) throw util::GraphError("descendant_counts: graph has a cycle");
  const auto reach = reachability(g, *order);
  std::vector<int> counts(g.num_vertices(), 0);
  for (int v = 0; v < g.num_vertices(); ++v) {
    counts[v] = static_cast<int>(std::count(reach[v].begin(), reach[v].end(), true));
  }
  return counts;
}

}  // namespace cwgl::graph

#pragma once

#include <span>
#include <vector>

namespace cwgl::graph {

/// A directed edge between vertex indices.
struct Edge {
  int from = 0;
  int to = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Immutable directed graph in compressed-sparse-row form.
///
/// Both successor and predecessor adjacency are materialized (the DAG
/// algorithms need O(1) access to each), sorted ascending, with duplicate
/// edges removed. Vertices are dense integers [0, n). The representation is
/// compact and cache-friendly per the job sizes in cloud traces (tens of
/// vertices) while scaling to millions of graphs.
class Digraph {
 public:
  /// Empty graph.
  Digraph() = default;

  /// Builds from an edge list. Throws GraphError if any endpoint is outside
  /// [0, num_vertices). Self-loops are preserved (they simply make the
  /// graph non-acyclic and are reported by `is_dag`).
  Digraph(int num_vertices, std::span<const Edge> edges);

  int num_vertices() const noexcept { return n_; }
  int num_edges() const noexcept { return static_cast<int>(succ_.size()); }

  /// Ascending successor (out-neighbor) list of `v`.
  std::span<const int> successors(int v) const noexcept {
    return {succ_.data() + succ_off_[v], succ_.data() + succ_off_[v + 1]};
  }

  /// Ascending predecessor (in-neighbor) list of `v`.
  std::span<const int> predecessors(int v) const noexcept {
    return {pred_.data() + pred_off_[v], pred_.data() + pred_off_[v + 1]};
  }

  int out_degree(int v) const noexcept { return succ_off_[v + 1] - succ_off_[v]; }
  int in_degree(int v) const noexcept { return pred_off_[v + 1] - pred_off_[v]; }

  /// Binary search over the successor row.
  bool has_edge(int from, int to) const noexcept;

  /// Reconstructs the (deduplicated, sorted) edge list.
  std::vector<Edge> edges() const;

  friend bool operator==(const Digraph&, const Digraph&) = default;

 private:
  int n_ = 0;
  std::vector<int> succ_off_{0};
  std::vector<int> succ_;
  std::vector<int> pred_off_{0};
  std::vector<int> pred_;
};

/// Incremental construction helper for code that discovers vertices/edges
/// on the fly (e.g. the trace-to-DAG builder).
class DigraphBuilder {
 public:
  /// Ensures at least `n` vertices exist.
  void reserve_vertices(int n);

  /// Appends a fresh vertex, returning its index.
  int add_vertex();

  /// Records an edge; endpoints must already exist (throws GraphError).
  void add_edge(int from, int to);

  int num_vertices() const noexcept { return n_; }

  /// Finalizes into an immutable Digraph (duplicates collapse).
  Digraph build() const;

 private:
  int n_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace cwgl::graph

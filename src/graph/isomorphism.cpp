#include "graph/isomorphism.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace cwgl::graph {

namespace {

/// Invariant per vertex used for pruning: (label, in-degree, out-degree).
struct Signature {
  int label;
  int in_degree;
  int out_degree;
  friend bool operator==(const Signature&, const Signature&) = default;
  friend auto operator<=>(const Signature&, const Signature&) = default;
};

std::vector<Signature> signatures(const Digraph& g, std::span<const int> labels) {
  std::vector<Signature> out;
  out.reserve(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) {
    out.push_back({labels.empty() ? 0 : labels[v], g.in_degree(v), g.out_degree(v)});
  }
  return out;
}

/// Backtracking mapper: assigns vertices of `a` in order; a candidate must
/// match the signature and be edge-consistent with every assigned vertex.
bool extend(const Digraph& a, const Digraph& b,
            const std::vector<Signature>& sig_a,
            const std::vector<Signature>& sig_b, std::vector<int>& map,
            std::vector<bool>& used, int v) {
  const int n = a.num_vertices();
  if (v == n) return true;
  for (int w = 0; w < n; ++w) {
    if (used[w] || sig_a[v] != sig_b[w]) continue;
    bool consistent = true;
    for (int u = 0; u < v && consistent; ++u) {
      consistent = a.has_edge(u, v) == b.has_edge(map[u], w) &&
                   a.has_edge(v, u) == b.has_edge(w, map[u]);
    }
    if (a.has_edge(v, v) != b.has_edge(w, w)) consistent = false;
    if (!consistent) continue;
    map[v] = w;
    used[w] = true;
    if (extend(a, b, sig_a, sig_b, map, used, v + 1)) return true;
    used[w] = false;
  }
  return false;
}

}  // namespace

bool are_isomorphic(const Digraph& a, std::span<const int> labels_a,
                    const Digraph& b, std::span<const int> labels_b) {
  if (!labels_a.empty() && static_cast<int>(labels_a.size()) != a.num_vertices()) {
    throw util::InvalidArgument("are_isomorphic: labels_a size mismatch");
  }
  if (!labels_b.empty() && static_cast<int>(labels_b.size()) != b.num_vertices()) {
    throw util::InvalidArgument("are_isomorphic: labels_b size mismatch");
  }
  if (a.num_vertices() > 32 || b.num_vertices() > 32) {
    throw util::InvalidArgument("are_isomorphic: graphs too large (>32 vertices)");
  }
  if (a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges()) {
    return false;
  }
  auto sig_a = signatures(a, labels_a);
  auto sig_b = signatures(b, labels_b);
  // Multiset invariant check before searching.
  auto sorted_a = sig_a;
  auto sorted_b = sig_b;
  std::sort(sorted_a.begin(), sorted_a.end());
  std::sort(sorted_b.begin(), sorted_b.end());
  if (sorted_a != sorted_b) return false;

  std::vector<int> map(a.num_vertices(), -1);
  std::vector<bool> used(a.num_vertices(), false);
  return extend(a, b, sig_a, sig_b, map, used, 0);
}

}  // namespace cwgl::graph

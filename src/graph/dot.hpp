#pragma once

#include <span>
#include <string>
#include <string_view>

#include "graph/digraph.hpp"

namespace cwgl::graph {

/// Renders a GraphViz `digraph` description. `labels` may be empty (vertex
/// indices are used) or exactly one string per vertex. Quotes and
/// backslashes in labels are escaped.
std::string to_dot(const Digraph& g, std::span<const std::string> labels,
                   std::string_view graph_name = "job");

}  // namespace cwgl::graph

#include "graph/canonical.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace cwgl::graph {

namespace {

std::uint64_t mix(std::uint64_t x) noexcept {
  util::SplitMix64 sm(x);
  return sm();
}

/// Hash of a sorted multiset of hashes (order-independent by pre-sorting).
std::uint64_t hash_multiset(std::vector<std::uint64_t>& values) {
  std::sort(values.begin(), values.end());
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t v : values) h = util::hash_combine(h, v);
  return h;
}

}  // namespace

std::uint64_t canonical_hash(const Digraph& g, std::span<const int> labels,
                             int iterations) {
  const int n = g.num_vertices();
  if (!labels.empty() && static_cast<int>(labels.size()) != n) {
    throw util::InvalidArgument("canonical_hash: labels size != vertex count");
  }
  if (n == 0) return 0x5ca1ab1e;
  if (iterations < 0) iterations = n;

  std::vector<std::uint64_t> color(n);
  for (int v = 0; v < n; ++v) {
    color[v] = mix(labels.empty() ? 0x1234 : static_cast<std::uint64_t>(labels[v]) + 0x1000);
  }
  std::vector<std::uint64_t> next(n);
  std::vector<std::uint64_t> bucket;
  for (int it = 0; it < iterations; ++it) {
    for (int v = 0; v < n; ++v) {
      bucket.clear();
      for (int w : g.predecessors(v)) bucket.push_back(color[w]);
      const std::uint64_t in_hash = hash_multiset(bucket);
      bucket.clear();
      for (int w : g.successors(v)) bucket.push_back(color[w]);
      const std::uint64_t out_hash = hash_multiset(bucket);
      next[v] = mix(util::hash_combine(color[v],
                                       util::hash_combine(mix(in_hash), out_hash)));
    }
    color.swap(next);
  }
  std::vector<std::uint64_t> all(color.begin(), color.end());
  return util::hash_combine(static_cast<std::uint64_t>(n), hash_multiset(all));
}

}  // namespace cwgl::graph

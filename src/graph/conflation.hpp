#pragma once

#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace cwgl::graph {

/// Result of merging structurally equivalent sibling tasks (Section IV-C of
/// the paper: "node conflation").
struct ConflationResult {
  /// The conflated graph.
  Digraph graph;
  /// mapping[v] = index in `graph` that original vertex v collapsed into.
  std::vector<int> mapping;
  /// representative[c] = smallest original vertex merged into c.
  std::vector<int> representative;
  /// multiplicity[c] = number of original vertices merged into c (>= 1).
  std::vector<int> multiplicity;
  /// label[c] = label of the merged vertex (labels must agree within a group).
  std::vector<int> labels;
};

/// Merges vertices that are interchangeable clones: identical label,
/// identical predecessor set and identical successor set. Applied to
/// fixpoint, because merging a layer of parents can make their children
/// equivalent in turn (e.g. a 4-map/2-reduce job collapses to M -> R).
///
/// Requires a DAG (throws GraphError otherwise). `labels` must have one
/// entry per vertex; use a constant vector for unlabeled conflation.
ConflationResult conflate(const Digraph& g, std::span<const int> labels);

}  // namespace cwgl::graph

#pragma once

#include <string_view>

#include "graph/digraph.hpp"

namespace cwgl::graph {

/// The paper's shape taxonomy for job DAGs (Section V-B).
enum class ShapePattern {
  SingleTask,        ///< one vertex, no structure to classify
  StraightChain,     ///< every level has width 1 (58% of DAG jobs)
  InvertedTriangle,  ///< convergent: widths non-increasing, first > last (37%)
  Diamond,           ///< single entry + single exit with a wider middle
  Hourglass,         ///< wide ends, narrow waist
  Trapezium,         ///< divergent: widths non-decreasing, last > first
  Combination,       ///< anything composite (e.g. triangle head + chain tail)
};

/// Human-readable name of a pattern.
std::string_view to_string(ShapePattern p) noexcept;

/// Classifies the shape of a DAG from its longest-path width profile.
///
/// Rules, applied in order to the level widths w0..wL:
///  1. n == 1                                   -> SingleTask
///  2. all widths == 1                          -> StraightChain
///  3. non-increasing and w0 > wL               -> InvertedTriangle
///  4. w0 == wL == 1, interior max > 1, profile unimodal -> Diamond
///  5. non-decreasing and wL > w0               -> Trapezium
///  6. w0 > 1, wL > 1, waist < min(w0, wL), profile anti-unimodal -> Hourglass
///  7. otherwise                                -> Combination
///
/// Throws GraphError on a cyclic input. Disconnected DAGs (parallel
/// independent pipelines in one job) classify as Combination unless they
/// satisfy an earlier rule on the merged profile.
ShapePattern classify_shape(const Digraph& g);

}  // namespace cwgl::graph

#pragma once

#include <cstdint>
#include <span>

#include "graph/digraph.hpp"

namespace cwgl::graph {

/// Isomorphism-invariant 64-bit hash of a labeled digraph, computed by
/// iterated Weisfeiler–Lehman-style color refinement with directed
/// neighborhoods (in- and out-multisets hashed separately) followed by an
/// order-independent combination of the final colors.
///
/// Equal hashes are a strong (not complete) indicator of isomorphism —
/// WL refinement distinguishes all trees and virtually all sparse DAGs of
/// trace-job scale; collisions would require WL-equivalent non-isomorphic
/// graphs AND a 64-bit hash collision. Used to deduplicate recurring job
/// topologies. Vertex order never affects the result.
///
/// `labels` may be empty (treated as uniformly labeled) or one per vertex.
/// `iterations` defaults to the vertex count, which reaches stable colors.
std::uint64_t canonical_hash(const Digraph& g, std::span<const int> labels,
                             int iterations = -1);

}  // namespace cwgl::graph

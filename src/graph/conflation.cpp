#include "graph/conflation.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "graph/algorithms.hpp"
#include "util/error.hpp"

namespace cwgl::graph {

namespace {

/// One conflation round. Returns true if anything merged.
/// `mapping` is updated to compose with the new merge, and `g`, `labels`,
/// `multiplicity`, `representative` are rebuilt in place.
bool conflate_round(Digraph& g, std::vector<int>& labels,
                    std::vector<int>& multiplicity,
                    std::vector<int>& representative, std::vector<int>& mapping) {
  const int n = g.num_vertices();
  // Signature = (label, predecessor set, successor set).
  struct Sig {
    int label;
    std::vector<int> preds;
    std::vector<int> succs;
    bool operator<(const Sig& o) const {
      if (label != o.label) return label < o.label;
      if (preds != o.preds) return preds < o.preds;
      return succs < o.succs;
    }
  };
  std::map<Sig, std::vector<int>> groups;
  for (int v = 0; v < n; ++v) {
    Sig s{labels[v],
          {g.predecessors(v).begin(), g.predecessors(v).end()},
          {g.successors(v).begin(), g.successors(v).end()}};
    groups[std::move(s)].push_back(v);
  }
  if (static_cast<int>(groups.size()) == n) return false;

  // Assign new ids in order of each group's smallest member so vertex
  // numbering stays stable and deterministic.
  std::vector<std::pair<int, const std::vector<int>*>> ordered;
  ordered.reserve(groups.size());
  for (const auto& [sig, members] : groups) {
    ordered.emplace_back(members.front(), &members);
  }
  std::sort(ordered.begin(), ordered.end());

  std::vector<int> old_to_new(n, -1);
  std::vector<int> new_labels, new_mult, new_repr;
  new_labels.reserve(ordered.size());
  new_mult.reserve(ordered.size());
  new_repr.reserve(ordered.size());
  for (std::size_t c = 0; c < ordered.size(); ++c) {
    int mult = 0;
    int repr = representative[ordered[c].second->front()];
    for (int v : *ordered[c].second) {
      old_to_new[v] = static_cast<int>(c);
      mult += multiplicity[v];
      repr = std::min(repr, representative[v]);
    }
    new_labels.push_back(labels[ordered[c].second->front()]);
    new_mult.push_back(mult);
    new_repr.push_back(repr);
  }

  std::vector<Edge> new_edges;
  for (const Edge& e : g.edges()) {
    const int a = old_to_new[e.from];
    const int b = old_to_new[e.to];
    if (a != b) new_edges.push_back({a, b});
  }
  g = Digraph(static_cast<int>(ordered.size()), new_edges);
  labels = std::move(new_labels);
  multiplicity = std::move(new_mult);
  representative = std::move(new_repr);
  for (int& m : mapping) m = old_to_new[m];
  return true;
}

}  // namespace

ConflationResult conflate(const Digraph& g, std::span<const int> labels) {
  if (static_cast<int>(labels.size()) != g.num_vertices()) {
    throw util::InvalidArgument("conflate: labels size != vertex count");
  }
  if (!is_dag(g)) throw util::GraphError("conflate: input graph has a cycle");

  ConflationResult r;
  r.graph = g;
  r.labels.assign(labels.begin(), labels.end());
  r.multiplicity.assign(g.num_vertices(), 1);
  r.representative.resize(g.num_vertices());
  std::iota(r.representative.begin(), r.representative.end(), 0);
  r.mapping.resize(g.num_vertices());
  std::iota(r.mapping.begin(), r.mapping.end(), 0);

  while (conflate_round(r.graph, r.labels, r.multiplicity, r.representative,
                        r.mapping)) {
  }
  return r;
}

}  // namespace cwgl::graph

#pragma once

#include <span>
#include <vector>

#include "cluster/kmeans.hpp"
#include "linalg/matrix.hpp"

namespace cwgl::cluster {

/// Options for spectral clustering.
struct SpectralOptions {
  KMeansOptions kmeans;  ///< final k-means stage over the embedding
  /// Above this many items the bottom-k eigenvectors come from the partial
  /// subspace-iteration solver (O(k n^2) per sweep) instead of the full
  /// O(n^3) Jacobi decomposition. In partial mode `SpectralResult::
  /// eigenvalues` holds only the k computed values. 0 forces partial mode.
  std::size_t partial_eigen_threshold = 512;
};

/// Result of a spectral clustering run.
struct SpectralResult {
  std::vector<int> labels;            ///< cluster id per item
  std::vector<double> eigenvalues;    ///< ascending spectrum of L_sym
  linalg::Matrix embedding;           ///< n x k row-normalized eigenvector matrix
};

/// Ng–Jordan–Weiss normalized spectral clustering over a similarity matrix.
///
/// Steps: symmetrize W (average with its transpose), build
/// L_sym = I - D^{-1/2} W D^{-1/2}, take the k eigenvectors of the smallest
/// eigenvalues, row-normalize, k-means in the embedded space. Negative
/// similarities are clamped to zero; isolated rows (zero degree) embed at
/// the origin.
///
/// Throws InvalidArgument if `similarity` is not square or k is out of
/// range.
SpectralResult spectral_cluster(const linalg::Matrix& similarity, int k,
                                const SpectralOptions& options = {});

/// Eigengap heuristic: given the ascending spectrum of L_sym, the suggested
/// cluster count is the k (in [1, max_k]) maximizing
/// eigenvalues[k] - eigenvalues[k-1].
int eigengap_k(std::span<const double> eigenvalues, int max_k);

}  // namespace cwgl::cluster

#pragma once

#include <span>
#include <vector>

#include "cluster/kmeans.hpp"
#include "linalg/matrix.hpp"

namespace cwgl::util {
class Diagnostics;
}

namespace cwgl::cluster {

/// Options for spectral clustering.
struct SpectralOptions {
  KMeansOptions kmeans;  ///< final k-means stage over the embedding
  /// Above this many items the bottom-k eigenvectors come from the partial
  /// subspace-iteration solver (O(k n^2) per sweep) instead of the full
  /// O(n^3) Jacobi decomposition. In partial mode `SpectralResult::
  /// eigenvalues` holds only the k computed values. 0 forces partial mode.
  std::size_t partial_eigen_threshold = 512;
  /// Sweep budget for the partial solver before it is declared
  /// non-converged and the dense Jacobi fallback kicks in.
  int partial_max_sweeps = 600;
  /// Strict (default): non-finite or materially non-symmetric similarity
  /// entries throw util::InvalidArgument — garbage must not silently steer
  /// the Laplacian. Lenient: non-finite entries are clamped to 0 and
  /// asymmetry is averaged away, both reported into `diagnostics`.
  bool lenient = false;
  /// Hard ceiling on the dense path: above this many items the O(n^2)
  /// Laplacian + eigensolve would silently burn memory and hours, so the
  /// call throws util::InvalidArgument pointing at the scalable path
  /// (`cwgl characterize --full` / cluster_at_scale). 0 disables the guard.
  std::size_t max_dense_items = 2000;
  /// Optional sink for degradations (clamped entries, eigen fallback).
  util::Diagnostics* diagnostics = nullptr;
};

/// Result of a spectral clustering run.
struct SpectralResult {
  std::vector<int> labels;            ///< cluster id per item
  std::vector<double> eigenvalues;    ///< ascending spectrum of L_sym
  linalg::Matrix embedding;           ///< n x k row-normalized eigenvector matrix
  /// True when the partial eigensolver failed to converge within its sweep
  /// budget and the result came from the dense Jacobi fallback instead.
  bool eigen_fallback = false;
  /// Non-finite similarity entries clamped to 0 (lenient mode only).
  std::size_t clamped_entries = 0;
};

/// Ng–Jordan–Weiss normalized spectral clustering over a similarity matrix.
///
/// Steps: symmetrize W (average with its transpose), build
/// L_sym = I - D^{-1/2} W D^{-1/2}, take the k eigenvectors of the smallest
/// eigenvalues, row-normalize, k-means in the embedded space. Negative
/// similarities are clamped to zero; isolated rows (zero degree) embed at
/// the origin.
///
/// Throws InvalidArgument if `similarity` is not square or k is out of
/// range — and, under the default strict posture, if entries are non-finite
/// or the matrix is asymmetric beyond numerical noise (see SpectralOptions::
/// lenient for the degrade-and-report alternative).
SpectralResult spectral_cluster(const linalg::Matrix& similarity, int k,
                                const SpectralOptions& options = {});

/// Eigengap heuristic: given the ascending spectrum of L_sym, the suggested
/// cluster count is the k (in [1, max_k]) maximizing
/// eigenvalues[k] - eigenvalues[k-1].
int eigengap_k(std::span<const double> eigenvalues, int max_k);

/// Weighted spectral clustering: row/column t of `similarity` stands for
/// `weights[t]` identical items (e.g. one distinct job shape with its
/// multiplicity). Mathematically equivalent to `spectral_cluster` on the
/// expanded similarity matrix: the expansion's normalized affinity
/// D^{-1/2} W D^{-1/2} has, for identical items, eigenvectors that are
/// constant within each identity class, and restricting to one row per
/// class yields M(t,u) = sqrt(w_t w_u) S(t,u) / sqrt(d_t d_u) with weighted
/// degrees d_t = sum_u w_u S(t,u) — the matrix this function diagonalizes.
/// Its spectrum is the expanded spectrum minus (N - n) copies of the
/// eigenvalue 1; row-normalizing the eigenvectors cancels the per-class
/// 1/sqrt(w_t) scaling, so the embedding rows equal the expanded run's
/// embedding rows exactly and k-means sees the same point set, weighted.
///
/// `eigenvalues` holds the n-item weighted spectrum (append N - n ones to
/// reproduce the expanded spectrum for the eigengap heuristic). Always
/// strict: non-finite or asymmetric input throws (options.lenient is
/// ignored). Weights must be finite and > 0; the final stage is
/// `kmeans_weighted`, so label caveats from there apply.
SpectralResult spectral_cluster_weighted(const linalg::Matrix& similarity,
                                         std::span<const double> weights,
                                         int k,
                                         const SpectralOptions& options = {});

}  // namespace cwgl::cluster

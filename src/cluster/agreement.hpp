#pragma once

#include <cstddef>
#include <span>

namespace cwgl::cluster {

/// How well two clusterings of the same items agree — the validation
/// artifact the full-trace path reports against the exact sampled pipeline.
struct AgreementReport {
  std::size_t items = 0;  ///< jobs compared (0 = no validation ran)
  int clusters_a = 0;     ///< distinct labels in the first assignment
  int clusters_b = 0;     ///< distinct labels in the second assignment
  double ari = 0.0;       ///< adjusted Rand index (1 = identical partitions)
  double nmi = 0.0;       ///< normalized mutual information, in [0, 1]
};

/// Computes ARI + NMI between two assignments of the same items. Empty
/// inputs yield an all-zero report (items == 0). Throws InvalidArgument if
/// the assignments differ in length.
AgreementReport measure_agreement(std::span<const int> a,
                                  std::span<const int> b);

}  // namespace cwgl::cluster

#include "cluster/scale.hpp"

#include <cmath>
#include <string>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace cwgl::cluster {

std::string_view to_string(ScaleMethod method) noexcept {
  switch (method) {
    case ScaleMethod::MiniBatch:
      return "minibatch";
    case ScaleMethod::Landmark:
      return "landmark";
  }
  return "minibatch";
}

bool parse_scale_method(std::string_view text, ScaleMethod& out) noexcept {
  if (text == "minibatch") {
    out = ScaleMethod::MiniBatch;
    return true;
  }
  if (text == "landmark") {
    out = ScaleMethod::Landmark;
    return true;
  }
  return false;
}

namespace {

ScaleResult run_minibatch(std::span<const kernel::SparseVector> points,
                          std::span<const double> weights, std::size_t dims,
                          const ScaleOptions& opt) {
  MiniBatchOptions mb = opt.minibatch;
  mb.seed = util::hash_combine(opt.seed, 0x6d696e69ULL);  // "mini"
  MiniBatchResult r = minibatch_kmeans(points, weights, dims, opt.clusters, mb);
  ScaleResult out;
  out.labels = std::move(r.labels);
  out.method = ScaleMethod::MiniBatch;
  out.inertia = r.inertia;
  out.iterations = r.batches;
  return out;
}

ScaleResult run_landmark(std::span<const kernel::SparseVector> points,
                         std::span<const double> weights, std::size_t dims,
                         const ScaleOptions& opt) {
  LandmarkOptions lm = opt.landmark;
  lm.seed = util::hash_combine(opt.seed, 0x6c616e64ULL);  // "land"
  lm.kmeans.seed = util::hash_combine(opt.seed, 0x6b6d6e73ULL);  // "kmns"
  LandmarkResult r =
      landmark_spectral_cluster(points, weights, dims, opt.clusters, lm);
  ScaleResult out;
  out.labels = std::move(r.labels);
  out.method = ScaleMethod::Landmark;
  out.inertia = r.inertia;
  out.landmarks = r.landmarks.size();
  out.embedding_dims = r.dims;
  out.iterations = r.kmeans_iterations;
  return out;
}

}  // namespace

ScaleResult cluster_at_scale(std::span<const kernel::SparseVector> points,
                             std::span<const double> weights, std::size_t dims,
                             const ScaleOptions& opt) {
  const std::size_t n = points.size();
  if (opt.clusters < 1 || static_cast<std::size_t>(opt.clusters) > n) {
    throw util::InvalidArgument("cluster_at_scale: need 1 <= clusters <= n");
  }
  if (weights.size() != n) {
    throw util::InvalidArgument(
        "cluster_at_scale: one weight per vector required");
  }
  // Deep validation (ids, finiteness) happens in the chosen backend; both
  // raise InvalidArgument before doing any work, and those errors are NOT
  // treated as degradable — only runtime failures of the landmark solver
  // are. The checks above cover everything the backends disagree on.

  auto& registry = obs::MetricsRegistry::global();
  registry.counter("cluster.scale.runs").add();
  registry.counter("cluster.scale.shapes").add(static_cast<std::uint64_t>(n));
  obs::Counter& degraded_counter = registry.counter("cluster.scale.degraded");
  obs::Span span("cluster.scale");
  span.arg("points", n);
  span.arg("k", static_cast<std::uint64_t>(opt.clusters));
  span.arg("landmark_method",
           static_cast<std::uint64_t>(opt.method == ScaleMethod::Landmark));

  if (opt.method == ScaleMethod::Landmark) {
    try {
      CWGL_FAILPOINT("cluster.scale");
      ScaleResult out = run_landmark(points, weights, dims, opt);
      span.arg("landmarks", out.landmarks);
      return out;
    } catch (const util::InvalidArgument&) {
      throw;  // caller bug, not a numeric failure — never mask it
    } catch (const util::Error& e) {
      // Landmark eigensolve failed (or an injected `cluster.scale` fault
      // fired): degrade to mini-batch instead of failing the whole run,
      // the same posture the exact path's eigensolver fallback takes.
      if (opt.diagnostics != nullptr) {
        opt.diagnostics->record("cluster.scale", "landmark-degraded",
                                e.what());
      }
      degraded_counter.add();
      span.arg("degraded", std::uint64_t{1});
      ScaleResult out = run_minibatch(points, weights, dims, opt);
      out.degraded = true;
      return out;
    }
  }
  return run_minibatch(points, weights, dims, opt);
}

}  // namespace cwgl::cluster

#include "cluster/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "util/error.hpp"

namespace cwgl::cluster {

double silhouette_score(const linalg::Matrix& distances,
                        std::span<const int> labels) {
  const std::size_t n = labels.size();
  if (distances.rows() != n || distances.cols() != n) {
    throw util::InvalidArgument("silhouette_score: matrix/labels size mismatch");
  }
  const auto sizes = cluster_sizes(labels);
  std::size_t populated = 0;
  for (std::size_t s : sizes) populated += (s > 0);
  if (populated < 2) return 0.0;

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sizes[labels[i]] <= 1) continue;  // singleton scores 0
    // Mean distance to own cluster (a) and nearest other cluster (b).
    std::vector<double> sum(sizes.size(), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) sum[labels[j]] += distances(i, j);
    }
    const double a =
        sum[labels[i]] / static_cast<double>(sizes[labels[i]] - 1);
    double b = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < sizes.size(); ++c) {
      if (static_cast<int>(c) == labels[i] || sizes[c] == 0) continue;
      b = std::min(b, sum[c] / static_cast<double>(sizes[c]));
    }
    const double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(n);
}

double silhouette_score_weighted(const linalg::Matrix& distances,
                                 std::span<const double> weights,
                                 std::span<const int> labels) {
  const std::size_t n = labels.size();
  if (distances.rows() != n || distances.cols() != n) {
    throw util::InvalidArgument(
        "silhouette_score_weighted: matrix/labels size mismatch");
  }
  if (weights.size() != n) {
    throw util::InvalidArgument(
        "silhouette_score_weighted: one weight per item required");
  }
  for (double w : weights) {
    if (!std::isfinite(w) || w <= 0.0) {
      throw util::InvalidArgument(
          "silhouette_score_weighted: weights must be positive");
    }
  }
  const auto sizes = cluster_sizes(labels);
  std::vector<double> mass(sizes.size(), 0.0);
  double total_mass = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mass[labels[i]] += weights[i];
    total_mass += weights[i];
  }
  std::size_t populated = 0;
  for (double m : mass) populated += (m > 0.0);
  if (populated < 2) return 0.0;

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (mass[labels[i]] <= 1.0) continue;  // singleton scores 0
    // Distance mass from one copy of item i to every cluster; own-cluster
    // excludes the copy itself (its distance to co-copies is
    // distances(i, i), subtracted once — 0 for a true metric).
    std::vector<double> sum(sizes.size(), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      sum[labels[j]] += weights[j] * distances(i, j);
    }
    const double a = (sum[labels[i]] - distances(i, i)) /
                     (mass[labels[i]] - 1.0);
    double b = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < sizes.size(); ++c) {
      if (static_cast<int>(c) == labels[i] || mass[c] <= 0.0) continue;
      b = std::min(b, sum[c] / mass[c]);
    }
    const double denom = std::max(a, b);
    total += denom > 0.0 ? weights[i] * (b - a) / denom : 0.0;
  }
  return total / total_mass;
}

namespace {

double choose2(double x) { return x * (x - 1.0) / 2.0; }

}  // namespace

double adjusted_rand_index(std::span<const int> a, std::span<const int> b) {
  if (a.size() != b.size()) {
    throw util::InvalidArgument("adjusted_rand_index: size mismatch");
  }
  const std::size_t n = a.size();
  if (n < 2) return 1.0;
  std::map<std::pair<int, int>, std::size_t> contingency;
  std::map<int, std::size_t> rows, cols;
  for (std::size_t i = 0; i < n; ++i) {
    ++contingency[{a[i], b[i]}];
    ++rows[a[i]];
    ++cols[b[i]];
  }
  double index = 0.0;
  for (const auto& [key, count] : contingency) index += choose2(static_cast<double>(count));
  double sum_rows = 0.0, sum_cols = 0.0;
  for (const auto& [key, count] : rows) sum_rows += choose2(static_cast<double>(count));
  for (const auto& [key, count] : cols) sum_cols += choose2(static_cast<double>(count));
  const double expected = sum_rows * sum_cols / choose2(static_cast<double>(n));
  const double max_index = 0.5 * (sum_rows + sum_cols);
  const double denom = max_index - expected;
  if (std::abs(denom) < 1e-15) return 1.0;  // both partitions trivial
  return (index - expected) / denom;
}

double normalized_mutual_information(std::span<const int> a,
                                     std::span<const int> b) {
  if (a.size() != b.size()) {
    throw util::InvalidArgument("normalized_mutual_information: size mismatch");
  }
  const double n = static_cast<double>(a.size());
  if (a.empty()) return 1.0;
  std::map<std::pair<int, int>, double> joint;
  std::map<int, double> pa, pb;
  for (std::size_t i = 0; i < a.size(); ++i) {
    joint[{a[i], b[i]}] += 1.0;
    pa[a[i]] += 1.0;
    pb[b[i]] += 1.0;
  }
  double mi = 0.0;
  for (const auto& [key, count] : joint) {
    const double pxy = count / n;
    const double px = pa[key.first] / n;
    const double py = pb[key.second] / n;
    mi += pxy * std::log(pxy / (px * py));
  }
  double ha = 0.0, hb = 0.0;
  for (const auto& [key, count] : pa) ha -= (count / n) * std::log(count / n);
  for (const auto& [key, count] : pb) hb -= (count / n) * std::log(count / n);
  const double denom = 0.5 * (ha + hb);
  if (denom < 1e-15) return 1.0;  // both partitions are single clusters
  return std::max(0.0, mi / denom);
}

double purity(std::span<const int> predicted, std::span<const int> truth) {
  if (predicted.size() != truth.size()) {
    throw util::InvalidArgument("purity: size mismatch");
  }
  if (predicted.empty()) return 1.0;
  std::map<int, std::map<int, std::size_t>> per_cluster;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    ++per_cluster[predicted[i]][truth[i]];
  }
  std::size_t correct = 0;
  for (const auto& [cluster, classes] : per_cluster) {
    std::size_t best = 0;
    for (const auto& [cls, count] : classes) best = std::max(best, count);
    correct += best;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

int cluster_count(std::span<const int> labels) {
  std::set<int> ids(labels.begin(), labels.end());
  return static_cast<int>(ids.size());
}

std::vector<std::size_t> cluster_sizes(std::span<const int> labels) {
  int max_id = -1;
  for (int l : labels) max_id = std::max(max_id, l);
  std::vector<std::size_t> sizes(static_cast<std::size_t>(max_id + 1), 0);
  for (int l : labels) {
    if (l < 0) throw util::InvalidArgument("cluster_sizes: negative label");
    ++sizes[l];
  }
  return sizes;
}

}  // namespace cwgl::cluster

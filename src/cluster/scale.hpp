#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "cluster/landmark.hpp"
#include "cluster/minibatch_kmeans.hpp"
#include "kernel/types.hpp"
#include "util/diagnostics.hpp"

namespace cwgl::cluster {

/// Which scalable clustering backend drives a full-trace run.
enum class ScaleMethod {
  MiniBatch,  ///< mini-batch k-means directly on sparse features
  Landmark,   ///< Nystrom landmark spectral embedding + weighted k-means
};

std::string_view to_string(ScaleMethod method) noexcept;

/// Parses "minibatch" / "landmark"; returns false on anything else.
bool parse_scale_method(std::string_view text, ScaleMethod& out) noexcept;

/// Options for clustering a full trace's distinct shapes.
struct ScaleOptions {
  ScaleMethod method = ScaleMethod::MiniBatch;
  int clusters = 5;
  /// Seeds both backends (each derives its own stream from it).
  std::uint64_t seed = 11;
  MiniBatchOptions minibatch;
  LandmarkOptions landmark;
  /// Optional sink for degradation records (landmark -> minibatch falls).
  util::Diagnostics* diagnostics = nullptr;
};

/// Result of a scalable clustering run.
struct ScaleResult {
  std::vector<int> labels;   ///< cluster id per input vector, in [0, k)
  ScaleMethod method = ScaleMethod::MiniBatch;  ///< backend that produced labels
  /// True when the requested backend failed (eigensolve non-convergence,
  /// degenerate spectrum, injected `cluster.scale` fault) and the run fell
  /// back to mini-batch instead of erroring.
  bool degraded = false;
  double inertia = 0.0;
  std::size_t landmarks = 0;       ///< landmark path only
  std::size_t embedding_dims = 0;  ///< landmark path only
  int iterations = 0;              ///< batches (minibatch) / k-means iters
};

/// Clusters n weighted sparse feature vectors without ever materializing an
/// n x n Gram — the learning stage behind `cwgl characterize --full`.
/// Dispatches on `options.method`; a failing landmark run degrades to
/// mini-batch (recorded in diagnostics + `cluster.scale.degraded`) rather
/// than failing the pipeline, matching the eigensolver fallback posture of
/// the exact path. Failpoint: `cluster.scale` (fires before the landmark
/// attempt). Deterministic in `options.seed`. Throws InvalidArgument on
/// bad weights, ids outside [0, dims), or k outside [1, n].
ScaleResult cluster_at_scale(std::span<const kernel::SparseVector> points,
                             std::span<const double> weights, std::size_t dims,
                             const ScaleOptions& options = {});

}  // namespace cwgl::cluster

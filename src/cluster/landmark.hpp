#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cluster/kmeans.hpp"
#include "kernel/types.hpp"
#include "linalg/matrix.hpp"

namespace cwgl::cluster {

/// Options for landmark (Nystrom) spectral clustering.
struct LandmarkOptions {
  /// Landmark budget m; the actual count is min(landmarks, n). The
  /// eigensolve is O(m^3), so keep m in the hundreds.
  std::size_t landmarks = 256;
  /// Embedding dimensionality r; 0 means "use k". Capped by the number of
  /// usable (positive) eigenvalues of the landmark Gram.
  std::size_t embedding_dims = 0;
  /// Eigenvalues below eigenvalue_floor * lambda_max are dropped — their
  /// 1/sqrt(lambda) scaling would amplify noise.
  double eigenvalue_floor = 1e-8;
  /// Final k-means over the embedded rows.
  KMeansOptions kmeans;
  /// Landmark sampling seed (kmeans has its own, inside `kmeans`).
  std::uint64_t seed = 1;
};

/// Result of a landmark spectral clustering run.
struct LandmarkResult {
  std::vector<int> labels;            ///< cluster id per input vector
  std::vector<std::size_t> landmarks; ///< chosen vector indices, ascending
  std::size_t dims = 0;               ///< embedding dimensions actually used
  double inertia = 0.0;               ///< k-means inertia in the embedding
  int kmeans_iterations = 0;
};

/// Nystrom approximation of spectral clustering over a sparse-feature
/// corpus: sample m landmarks weight-proportionally without replacement,
/// eigensolve the m x m landmark kernel exactly (Jacobi), project every
/// vector into the top-r eigenspace (phi(x) = Lambda^{-1/2} U^T k_x),
/// row-normalize, and run the exact weighted k-means there. Total cost
/// O(m^3 + n * m * nnz) — no n x n Gram is ever formed.
///
/// `points` should be L2-normalized (cosine kernel) for the spectral
/// analogy to hold; ids must lie in [0, dims). Deterministic in
/// `options.seed` + `options.kmeans.seed`. Throws InvalidArgument on bad
/// arguments and util::Error when the landmark eigensolve fails to
/// converge or yields no positive spectrum — callers that must not fail
/// catch and fall back to mini-batch (see cluster_at_scale).
LandmarkResult landmark_spectral_cluster(
    std::span<const kernel::SparseVector> points,
    std::span<const double> weights, std::size_t dims, int k,
    const LandmarkOptions& options = {});

}  // namespace cwgl::cluster

#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace cwgl::cluster {

/// Mean silhouette coefficient over all points, computed from a pairwise
/// distance matrix and an assignment. Points in singleton clusters score 0
/// by convention. Returns 0 when fewer than 2 clusters are populated.
double silhouette_score(const linalg::Matrix& distances, std::span<const int> labels);

/// Silhouette of the expanded sample in which item i occurs `weights[i]`
/// times, computed from the compact distance matrix. Copies of the same
/// item have identical distances to everything and distance 0 to each
/// other, so every copy shares one silhouette value; this evaluates that
/// value per distinct item and averages with multiplicity. Weighted
/// cluster populations <= 1 score 0 (the singleton convention). Weights
/// must be positive and finite.
double silhouette_score_weighted(const linalg::Matrix& distances,
                                 std::span<const double> weights,
                                 std::span<const int> labels);

/// Adjusted Rand Index between two assignments of the same items; 1 for
/// identical partitions (up to relabeling), ~0 for independent ones,
/// negative for adversarial ones.
double adjusted_rand_index(std::span<const int> a, std::span<const int> b);

/// Normalized mutual information (arithmetic-mean normalization) between
/// two assignments; in [0,1], 1 for identical partitions.
double normalized_mutual_information(std::span<const int> a, std::span<const int> b);

/// Purity of `predicted` against `truth`: fraction of items whose cluster's
/// majority truth-class matches their own. In (0,1].
double purity(std::span<const int> predicted, std::span<const int> truth);

/// Number of distinct cluster ids present in an assignment.
int cluster_count(std::span<const int> labels);

/// Population of each cluster id in [0, cluster ids' max]; absent ids get 0.
std::vector<std::size_t> cluster_sizes(std::span<const int> labels);

}  // namespace cwgl::cluster

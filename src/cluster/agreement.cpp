#include "cluster/agreement.hpp"

#include "cluster/metrics.hpp"
#include "util/error.hpp"

namespace cwgl::cluster {

AgreementReport measure_agreement(std::span<const int> a,
                                  std::span<const int> b) {
  if (a.size() != b.size()) {
    throw util::InvalidArgument(
        "measure_agreement: assignments must have equal length");
  }
  AgreementReport r;
  r.items = a.size();
  if (r.items == 0) return r;
  r.clusters_a = cluster_count(a);
  r.clusters_b = cluster_count(b);
  r.ari = adjusted_rand_index(a, b);
  r.nmi = normalized_mutual_information(a, b);
  return r;
}

}  // namespace cwgl::cluster

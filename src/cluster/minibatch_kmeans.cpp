#include "cluster/minibatch_kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cwgl::cluster {

namespace {

/// ||x - c||^2 for a sparse x against a dense center row, given the
/// precomputed squared norms of both: ||x||^2 + ||c||^2 - 2 x.c.
double sparse_dense_sq_dist(const kernel::SparseVector& x, double x_sq,
                            std::span<const double> center, double center_sq) {
  double dot = 0.0;
  for (const auto& [id, value] : x.items) {
    dot += value * center[static_cast<std::size_t>(id)];
  }
  const double d = x_sq + center_sq - 2.0 * dot;
  return d > 0.0 ? d : 0.0;
}

double dense_row_sq(std::span<const double> row) {
  double acc = 0.0;
  for (double v : row) acc += v * v;
  return acc;
}

int nearest_center(const kernel::SparseVector& x, double x_sq,
                   const linalg::Matrix& centers,
                   std::span<const double> center_sq, double* dist_out) {
  double best = std::numeric_limits<double>::max();
  int best_c = 0;
  for (std::size_t c = 0; c < centers.rows(); ++c) {
    const double d = sparse_dense_sq_dist(x, x_sq, centers.row(c), center_sq[c]);
    if (d < best) {
      best = d;
      best_c = static_cast<int>(c);
    }
  }
  if (dist_out != nullptr) *dist_out = best;
  return best_c;
}

/// Weight-proportional draw via binary search over the cumulative weights —
/// O(log n) per draw where rng.discrete would rescan all weights.
std::size_t draw_weighted(std::span<const double> cumulative,
                          util::Xoshiro256StarStar& rng) {
  const double total = cumulative.back();
  const double u = rng.uniform01() * total;
  const auto it = std::upper_bound(cumulative.begin(), cumulative.end(), u);
  const std::size_t i = static_cast<std::size_t>(it - cumulative.begin());
  return std::min(i, cumulative.size() - 1);
}

/// Weighted k-means++ over sparse rows: same distribution as the dense
/// kmeanspp_init_weighted, with D^2 computed by sparse-sparse dots.
void seed_centers(std::span<const kernel::SparseVector> points,
                  std::span<const double> weights,
                  std::span<const double> point_sq, int k,
                  util::Xoshiro256StarStar& rng, linalg::Matrix& centers) {
  const std::size_t n = points.size();
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  std::vector<double> scores(n, 0.0);
  std::vector<std::size_t> picks;
  picks.reserve(static_cast<std::size_t>(k));
  picks.push_back(rng.discrete(weights));
  for (int centroid = 1; centroid < k; ++centroid) {
    const std::size_t prev = picks.back();
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double dot = points[i].dot(points[prev]);
      const double d = std::max(0.0, point_sq[i] + point_sq[prev] - 2.0 * dot);
      min_dist[i] = std::min(min_dist[i], d);
      scores[i] = weights[i] * min_dist[i];
      total += scores[i];
    }
    picks.push_back(total > 0.0 ? rng.discrete(scores) : rng.discrete(weights));
  }
  for (int c = 0; c < k; ++c) {
    for (const auto& [id, value] : points[picks[static_cast<std::size_t>(c)]].items) {
      centers(static_cast<std::size_t>(c), static_cast<std::size_t>(id)) = value;
    }
  }
}

MiniBatchResult run_restart(std::span<const kernel::SparseVector> points,
                            std::span<const double> weights,
                            std::span<const double> point_sq,
                            std::span<const double> cumulative, std::size_t dims,
                            int k, const MiniBatchOptions& opt,
                            util::Xoshiro256StarStar& rng) {
  const std::size_t n = points.size();
  MiniBatchResult r;
  r.centers = linalg::Matrix(static_cast<std::size_t>(k), dims);
  seed_centers(points, weights, point_sq, k, rng, r.centers);

  std::vector<double> center_sq(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) {
    center_sq[static_cast<std::size_t>(c)] = dense_row_sq(r.centers.row(c));
  }

  // Mini-batch SGD phase (Sculley): draw a weighted batch, assign against
  // frozen centers, then apply per-center gradient steps.
  std::vector<double> learned_mass(static_cast<std::size_t>(k), 0.0);
  std::vector<std::size_t> batch(opt.batch_size);
  std::vector<int> batch_label(opt.batch_size);
  for (int step = 0; step < opt.max_batches; ++step) {
    r.batches = step + 1;
    for (std::size_t b = 0; b < opt.batch_size; ++b) {
      batch[b] = draw_weighted(cumulative, rng);
      batch_label[b] = nearest_center(points[batch[b]], point_sq[batch[b]],
                                      r.centers, center_sq, nullptr);
    }
    double movement = 0.0;
    for (std::size_t b = 0; b < opt.batch_size; ++b) {
      const std::size_t i = batch[b];
      const std::size_t c = static_cast<std::size_t>(batch_label[b]);
      // Each draw represents one expanded point, so the step weight is 1;
      // multiplicity already shaped the draw distribution.
      learned_mass[c] += 1.0;
      const double eta = 1.0 / learned_mass[c];
      auto row = r.centers.row(c);
      const double shrink = 1.0 - eta;
      double before_sq = center_sq[c];
      for (double& v : row) v *= shrink;
      for (const auto& [id, value] : points[i].items) {
        row[static_cast<std::size_t>(id)] += eta * value;
      }
      center_sq[c] = dense_row_sq(row);
      // Movement bound: ||c' - c||^2 = eta^2 ||x - c||^2; cheap via norms.
      const double approx =
          eta * eta * std::max(0.0, point_sq[i] + before_sq);
      movement += approx;
    }
    if (movement < opt.tol) break;
  }

  // Polish phase: a few exact weighted Lloyd steps over ALL rows.
  double prev_inertia = std::numeric_limits<double>::max();
  std::vector<int> labels(n, 0);
  std::vector<double> dists(n, 0.0);
  for (int it = 0; it <= opt.refine_iterations; ++it) {
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      labels[i] = nearest_center(points[i], point_sq[i], r.centers, center_sq,
                                 &dists[i]);
      inertia += weights[i] * dists[i];
    }
    r.inertia = inertia;
    // The final pass (or refine_iterations == 0) stops after assignment so
    // labels and centers stay consistent.
    if (it == opt.refine_iterations) break;
    r.refine_iterations = it + 1;

    linalg::Matrix sums(static_cast<std::size_t>(k), dims);
    std::vector<double> mass(static_cast<std::size_t>(k), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = static_cast<std::size_t>(labels[i]);
      mass[c] += weights[i];
      auto row = sums.row(c);
      for (const auto& [id, value] : points[i].items) {
        row[static_cast<std::size_t>(id)] += weights[i] * value;
      }
    }
    for (int c = 0; c < k; ++c) {
      const std::size_t cc = static_cast<std::size_t>(c);
      auto row = r.centers.row(cc);
      if (mass[cc] == 0.0) {
        // Empty cluster: re-seed from the row farthest from its center.
        std::size_t worst = 0;
        double worst_dist = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          if (dists[i] > worst_dist) {
            worst_dist = dists[i];
            worst = i;
          }
        }
        std::fill(row.begin(), row.end(), 0.0);
        for (const auto& [id, value] : points[worst].items) {
          row[static_cast<std::size_t>(id)] = value;
        }
      } else {
        auto srow = sums.row(cc);
        for (std::size_t j = 0; j < dims; ++j) row[j] = srow[j] / mass[cc];
      }
      center_sq[cc] = dense_row_sq(row);
    }
    if (prev_inertia - r.inertia < 1e-12) break;
    prev_inertia = r.inertia;
  }

  // Guarantee the returned labels cover all k clusters when possible:
  // re-seed each empty center from the row farthest from its assignment and
  // reassign, bounded at k rounds (each round fills at least one cluster).
  for (int round = 0; round < k; ++round) {
    std::vector<double> mass(static_cast<std::size_t>(k), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      mass[static_cast<std::size_t>(labels[i])] += weights[i];
    }
    int empty = -1;
    for (int c = 0; c < k; ++c) {
      if (mass[static_cast<std::size_t>(c)] == 0.0) {
        empty = c;
        break;
      }
    }
    if (empty < 0) break;
    std::size_t worst = 0;
    double worst_dist = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (dists[i] > worst_dist) {
        worst_dist = dists[i];
        worst = i;
      }
    }
    auto row = r.centers.row(static_cast<std::size_t>(empty));
    std::fill(row.begin(), row.end(), 0.0);
    for (const auto& [id, value] : points[worst].items) {
      row[static_cast<std::size_t>(id)] = value;
    }
    center_sq[static_cast<std::size_t>(empty)] = dense_row_sq(row);
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      labels[i] = nearest_center(points[i], point_sq[i], r.centers, center_sq,
                                 &dists[i]);
      inertia += weights[i] * dists[i];
    }
    r.inertia = inertia;
  }
  r.labels = std::move(labels);
  return r;
}

}  // namespace

MiniBatchResult minibatch_kmeans(std::span<const kernel::SparseVector> points,
                                 std::span<const double> weights,
                                 std::size_t dims, int k,
                                 const MiniBatchOptions& opt) {
  const std::size_t n = points.size();
  if (k < 1 || static_cast<std::size_t>(k) > n) {
    throw util::InvalidArgument("minibatch_kmeans: need 1 <= k <= n");
  }
  if (weights.size() != n) {
    throw util::InvalidArgument(
        "minibatch_kmeans: one weight per vector required");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(weights[i]) || weights[i] <= 0.0) {
      throw util::InvalidArgument("minibatch_kmeans: weights must be positive");
    }
    for (const auto& [id, value] : points[i].items) {
      if (id < 0 || static_cast<std::size_t>(id) >= dims) {
        throw util::InvalidArgument(
            "minibatch_kmeans: feature id out of range at vector " +
            std::to_string(i));
      }
      if (!std::isfinite(value)) {
        throw util::InvalidArgument(
            "minibatch_kmeans: non-finite feature value at vector " +
            std::to_string(i));
      }
    }
  }
  if (opt.batch_size == 0) {
    throw util::InvalidArgument("minibatch_kmeans: batch_size must be >= 1");
  }

  auto& registry = obs::MetricsRegistry::global();
  obs::Counter& batches = registry.counter("cluster.scale.minibatch.batches");
  obs::Counter& restarts = registry.counter("cluster.scale.minibatch.restarts");
  obs::Span span("cluster.minibatch_kmeans");
  span.arg("points", n);
  span.arg("k", static_cast<std::uint64_t>(k));

  std::vector<double> point_sq(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double norm = points[i].norm();
    point_sq[i] = norm * norm;
  }
  std::vector<double> cumulative(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += weights[i];
    cumulative[i] = acc;
  }

  MiniBatchResult best;
  best.inertia = std::numeric_limits<double>::max();
  std::uint64_t total_batches = 0;
  for (int restart = 0; restart < std::max(1, opt.restarts); ++restart) {
    util::Xoshiro256StarStar rng(
        util::hash_combine(opt.seed, static_cast<std::uint64_t>(restart)));
    MiniBatchResult r = run_restart(points, weights, point_sq, cumulative,
                                    dims, k, opt, rng);
    restarts.add();
    batches.add(static_cast<std::uint64_t>(r.batches));
    total_batches += static_cast<std::uint64_t>(r.batches);
    if (r.inertia < best.inertia) best = std::move(r);
  }
  span.arg("batches", total_batches);
  return best;
}

}  // namespace cwgl::cluster

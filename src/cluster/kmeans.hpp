#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace cwgl::cluster {

/// Result of a k-means run.
struct KMeansResult {
  std::vector<int> labels;   ///< cluster id per row, in [0, k)
  linalg::Matrix centers;    ///< k x d centroids
  double inertia = 0.0;      ///< sum of squared distances to assigned centers
  int iterations = 0;        ///< Lloyd iterations executed
};

/// Options for k-means.
struct KMeansOptions {
  int max_iterations = 300;
  double tol = 1e-7;       ///< stop when inertia improves by less than tol
  int restarts = 8;        ///< independent k-means++ restarts; best kept
  std::uint64_t seed = 1;  ///< all restarts derive deterministically from this
};

/// Lloyd's k-means with k-means++ seeding over the rows of `data` (n x d).
///
/// Deterministic in `options.seed`. Empty clusters are re-seeded from the
/// point farthest from its center. Throws InvalidArgument if k < 1 or
/// k > n.
KMeansResult kmeans(const linalg::Matrix& data, int k,
                    const KMeansOptions& options = {});

}  // namespace cwgl::cluster

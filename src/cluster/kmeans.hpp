#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace cwgl::cluster {

/// Result of a k-means run.
struct KMeansResult {
  std::vector<int> labels;   ///< cluster id per row, in [0, k)
  linalg::Matrix centers;    ///< k x d centroids
  double inertia = 0.0;      ///< sum of squared distances to assigned centers
  int iterations = 0;        ///< Lloyd iterations executed
};

/// Options for k-means.
struct KMeansOptions {
  int max_iterations = 300;
  double tol = 1e-7;       ///< stop when inertia improves by less than tol
  int restarts = 8;        ///< independent k-means++ restarts; best kept
  std::uint64_t seed = 1;  ///< all restarts derive deterministically from this
};

/// Lloyd's k-means with k-means++ seeding over the rows of `data` (n x d).
///
/// Deterministic in `options.seed`. Empty clusters are re-seeded from the
/// point farthest from its center. Throws InvalidArgument if k < 1 or
/// k > n.
KMeansResult kmeans(const linalg::Matrix& data, int k,
                    const KMeansOptions& options = {});

/// Weighted k-means: row i of `data` stands for `weights[i]` identical
/// points. Mathematically equivalent to `kmeans` on the expanded data set —
/// k-means++ picks rows with probability proportional to weight x D^2,
/// centroids are weighted means, inertia is the weighted sum of squared
/// distances — but runs on n distinct rows instead of sum(weights) points.
///
/// The RNG draw sequence differs from the expanded run (the sample spaces
/// have different sizes), so per-seed results are not bitwise-comparable to
/// `kmeans`; on well-separated data both converge to the same partition.
/// Weights must be finite and > 0. Throws InvalidArgument on bad weights or
/// if k < 1 or k > n.
KMeansResult kmeans_weighted(const linalg::Matrix& data,
                             std::span<const double> weights, int k,
                             const KMeansOptions& options = {});

}  // namespace cwgl::cluster

#include "cluster/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <string>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cwgl::cluster {

namespace {

double sq_dist(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

linalg::Matrix kmeanspp_init(const linalg::Matrix& data, int k,
                             util::Xoshiro256StarStar& rng) {
  const std::size_t n = data.rows();
  linalg::Matrix centers(k, data.cols());
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());

  std::size_t first = static_cast<std::size_t>(rng.uniform_u64(0, n - 1));
  for (std::size_t c = 0; c < data.cols(); ++c) centers(0, c) = data(first, c);
  for (int centroid = 1; centroid < k; ++centroid) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      min_dist[i] =
          std::min(min_dist[i], sq_dist(data.row(i), centers.row(centroid - 1)));
      total += min_dist[i];
    }
    // Degenerate embedding (all points coincide with chosen centers): the
    // D^2 weights vanish and `discrete` would deterministically pick index
    // 0. Re-seed uniformly instead so duplicate data still yields a usable
    // (if arbitrary) clustering rather than k copies of one point's center.
    const std::size_t pick = total > 0.0
                                 ? rng.discrete(min_dist)
                                 : static_cast<std::size_t>(
                                       rng.uniform_u64(0, n - 1));
    for (std::size_t c = 0; c < data.cols(); ++c) {
      centers(centroid, c) = data(pick, c);
    }
  }
  return centers;
}

KMeansResult lloyd(const linalg::Matrix& data, int k, const KMeansOptions& opt,
                   util::Xoshiro256StarStar& rng) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  KMeansResult r;
  r.centers = kmeanspp_init(data, k, rng);
  r.labels.assign(n, 0);
  double prev_inertia = std::numeric_limits<double>::max();

  for (int it = 0; it < opt.max_iterations; ++it) {
    r.iterations = it + 1;
    // Assignment step.
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      int best_c = 0;
      for (int c = 0; c < k; ++c) {
        const double dist = sq_dist(data.row(i), r.centers.row(c));
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      r.labels[i] = best_c;
      inertia += best;
    }
    r.inertia = inertia;

    // Update step.
    linalg::Matrix sums(k, d);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const int c = r.labels[i];
      ++counts[c];
      for (std::size_t j = 0; j < d; ++j) sums(c, j) += data(i, j);
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster from the point farthest from its center.
        std::size_t worst = 0;
        double worst_dist = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double dist = sq_dist(data.row(i), r.centers.row(r.labels[i]));
          if (dist > worst_dist) {
            worst_dist = dist;
            worst = i;
          }
        }
        for (std::size_t j = 0; j < d; ++j) r.centers(c, j) = data(worst, j);
        continue;
      }
      for (std::size_t j = 0; j < d; ++j) {
        r.centers(c, j) = sums(c, j) / static_cast<double>(counts[c]);
      }
    }
    if (prev_inertia - inertia < opt.tol) break;
    prev_inertia = inertia;
  }
  return r;
}

linalg::Matrix kmeanspp_init_weighted(const linalg::Matrix& data,
                                      std::span<const double> weights, int k,
                                      util::Xoshiro256StarStar& rng) {
  const std::size_t n = data.rows();
  linalg::Matrix centers(k, data.cols());
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  std::vector<double> scores(n, 0.0);

  // The expanded-sample uniform first pick lands on row i with probability
  // proportional to its multiplicity.
  const std::size_t first = rng.discrete(weights);
  for (std::size_t c = 0; c < data.cols(); ++c) centers(0, c) = data(first, c);
  for (int centroid = 1; centroid < k; ++centroid) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      min_dist[i] =
          std::min(min_dist[i], sq_dist(data.row(i), centers.row(centroid - 1)));
      scores[i] = weights[i] * min_dist[i];
      total += scores[i];
    }
    // Same degenerate-embedding fallback as the unweighted init, with the
    // uniform re-seed replaced by its weighted counterpart.
    const std::size_t pick =
        total > 0.0 ? rng.discrete(scores) : rng.discrete(weights);
    for (std::size_t c = 0; c < data.cols(); ++c) {
      centers(centroid, c) = data(pick, c);
    }
  }
  return centers;
}

KMeansResult lloyd_weighted(const linalg::Matrix& data,
                            std::span<const double> weights, int k,
                            const KMeansOptions& opt,
                            util::Xoshiro256StarStar& rng) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  KMeansResult r;
  r.centers = kmeanspp_init_weighted(data, weights, k, rng);
  r.labels.assign(n, 0);
  double prev_inertia = std::numeric_limits<double>::max();

  for (int it = 0; it < opt.max_iterations; ++it) {
    r.iterations = it + 1;
    // Assignment step: nearest center is weight-independent; the inertia
    // counts each row once per represented point.
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      int best_c = 0;
      for (int c = 0; c < k; ++c) {
        const double dist = sq_dist(data.row(i), r.centers.row(c));
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      r.labels[i] = best_c;
      inertia += weights[i] * best;
    }
    r.inertia = inertia;

    // Update step: weighted centroid per cluster.
    linalg::Matrix sums(k, d);
    std::vector<double> mass(k, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const int c = r.labels[i];
      mass[c] += weights[i];
      for (std::size_t j = 0; j < d; ++j) {
        sums(c, j) += weights[i] * data(i, j);
      }
    }
    for (int c = 0; c < k; ++c) {
      if (mass[c] == 0.0) {
        // Re-seed an empty cluster from the row farthest from its center
        // (the same row the expanded run would pick: multiplicity does not
        // change which point is farthest).
        std::size_t worst = 0;
        double worst_dist = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double dist = sq_dist(data.row(i), r.centers.row(r.labels[i]));
          if (dist > worst_dist) {
            worst_dist = dist;
            worst = i;
          }
        }
        for (std::size_t j = 0; j < d; ++j) r.centers(c, j) = data(worst, j);
        continue;
      }
      for (std::size_t j = 0; j < d; ++j) {
        r.centers(c, j) = sums(c, j) / mass[c];
      }
    }
    if (prev_inertia - inertia < opt.tol) break;
    prev_inertia = inertia;
  }
  return r;
}

void validate_points(const linalg::Matrix& data, int k, const char* what) {
  if (k < 1 || static_cast<std::size_t>(k) > data.rows()) {
    throw util::InvalidArgument(std::string(what) + ": need 1 <= k <= n");
  }
  for (std::size_t i = 0; i < data.rows(); ++i) {
    for (std::size_t j = 0; j < data.cols(); ++j) {
      if (!std::isfinite(data(i, j))) {
        throw util::InvalidArgument(
            std::string(what) + ": non-finite value at (" + std::to_string(i) +
            ", " + std::to_string(j) + ")");
      }
    }
  }
}

}  // namespace

KMeansResult kmeans(const linalg::Matrix& data, int k, const KMeansOptions& opt) {
  validate_points(data, k, "kmeans");
  auto& registry = obs::MetricsRegistry::global();
  obs::Counter& iterations = registry.counter("cluster.kmeans.iterations");
  obs::Counter& restarts = registry.counter("cluster.kmeans.restarts");
  obs::Span span("cluster.kmeans");
  span.arg("points", data.rows());
  span.arg("k", static_cast<std::uint64_t>(k));
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  std::uint64_t total_iterations = 0;
  for (int restart = 0; restart < std::max(1, opt.restarts); ++restart) {
    util::Xoshiro256StarStar rng(
        util::hash_combine(opt.seed, static_cast<std::uint64_t>(restart)));
    KMeansResult r = lloyd(data, k, opt, rng);
    restarts.add();
    iterations.add(static_cast<std::uint64_t>(r.iterations));
    total_iterations += static_cast<std::uint64_t>(r.iterations);
    if (r.inertia < best.inertia) best = std::move(r);
  }
  span.arg("iterations", total_iterations);
  return best;
}

KMeansResult kmeans_weighted(const linalg::Matrix& data,
                             std::span<const double> weights, int k,
                             const KMeansOptions& opt) {
  validate_points(data, k, "kmeans_weighted");
  if (weights.size() != data.rows()) {
    throw util::InvalidArgument("kmeans_weighted: one weight per row required");
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (!std::isfinite(weights[i]) || weights[i] <= 0.0) {
      throw util::InvalidArgument("kmeans_weighted: weights must be positive");
    }
  }
  auto& registry = obs::MetricsRegistry::global();
  obs::Counter& iterations = registry.counter("cluster.kmeans.iterations");
  obs::Counter& restarts = registry.counter("cluster.kmeans.restarts");
  obs::Span span("cluster.kmeans_weighted");
  span.arg("points", data.rows());
  span.arg("k", static_cast<std::uint64_t>(k));
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  std::uint64_t total_iterations = 0;
  for (int restart = 0; restart < std::max(1, opt.restarts); ++restart) {
    util::Xoshiro256StarStar rng(
        util::hash_combine(opt.seed, static_cast<std::uint64_t>(restart)));
    KMeansResult r = lloyd_weighted(data, weights, k, opt, rng);
    restarts.add();
    iterations.add(static_cast<std::uint64_t>(r.iterations));
    total_iterations += static_cast<std::uint64_t>(r.iterations);
    if (r.inertia < best.inertia) best = std::move(r);
  }
  span.arg("iterations", total_iterations);
  return best;
}

}  // namespace cwgl::cluster

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "kernel/types.hpp"
#include "linalg/matrix.hpp"

namespace cwgl::cluster {

/// Options for mini-batch k-means over sparse feature vectors.
struct MiniBatchOptions {
  /// Rows drawn (with replacement, weight-proportionally) per batch.
  std::size_t batch_size = 256;
  /// Mini-batch SGD steps per restart.
  int max_batches = 200;
  /// Stop a restart early once the squared center movement of a batch
  /// falls below this.
  double tol = 1e-9;
  /// Full weighted Lloyd iterations run after the mini-batch phase to
  /// polish the centers against ALL rows. A handful of passes is what
  /// closes the gap to the exact batch solution; 0 disables polishing.
  int refine_iterations = 10;
  /// Independent restarts (seeding + batches + refine); best inertia kept.
  int restarts = 3;
  /// All restarts derive deterministically from this.
  std::uint64_t seed = 1;
};

/// Result of a mini-batch k-means run.
struct MiniBatchResult {
  std::vector<int> labels;   ///< cluster id per input vector, in [0, k)
  linalg::Matrix centers;    ///< k x dims dense centroids
  double inertia = 0.0;      ///< weighted sum of squared distances
  int batches = 0;           ///< mini-batch steps executed (best restart)
  int refine_iterations = 0; ///< Lloyd polish steps executed (best restart)
};

/// Mini-batch k-means (Sculley, WWW 2010) over sparse feature vectors,
/// count-weighted: vector i stands for `weights[i]` identical points, so
/// batch draws are weight-proportional and centroid updates use per-center
/// learning rates eta = w / v_c. Never materializes an n x n Gram — memory
/// is O(k * dims + nnz), time is O(batches * batch_size * k * nnz/row).
///
/// `points` need not be normalized, but feature ids must lie in
/// [0, dims). Deterministic in `options.seed`. Empty clusters surviving
/// the final assignment are re-seeded from the row farthest from its
/// center (the same rule the exact weighted Lloyd path uses). Throws
/// InvalidArgument on bad weights, ids out of range, or k outside [1, n].
MiniBatchResult minibatch_kmeans(std::span<const kernel::SparseVector> points,
                                 std::span<const double> weights,
                                 std::size_t dims, int k,
                                 const MiniBatchOptions& options = {});

}  // namespace cwgl::cluster

#include "cluster/landmark.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "linalg/eigen.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cwgl::cluster {

namespace {

/// m weight-proportional draws without replacement: each draw zeroes the
/// picked weight and rescans. O(m * n), fine for m in the hundreds.
std::vector<std::size_t> sample_landmarks(std::span<const double> weights,
                                          std::size_t m,
                                          util::Xoshiro256StarStar& rng) {
  std::vector<double> remaining(weights.begin(), weights.end());
  std::vector<std::size_t> picks;
  picks.reserve(m);
  for (std::size_t draw = 0; draw < m; ++draw) {
    double total = 0.0;
    for (double w : remaining) total += w;
    std::size_t pick;
    if (total > 0.0) {
      pick = rng.discrete(remaining);
    } else {
      // All mass consumed (more landmarks than positively weighted rows
      // cannot happen — weights are validated positive — but guard anyway).
      pick = static_cast<std::size_t>(
          rng.uniform_u64(0, remaining.size() - 1));
    }
    remaining[pick] = 0.0;
    picks.push_back(pick);
  }
  std::sort(picks.begin(), picks.end());
  return picks;
}

}  // namespace

LandmarkResult landmark_spectral_cluster(
    std::span<const kernel::SparseVector> points,
    std::span<const double> weights, std::size_t dims, int k,
    const LandmarkOptions& opt) {
  const std::size_t n = points.size();
  if (k < 1 || static_cast<std::size_t>(k) > n) {
    throw util::InvalidArgument("landmark_spectral_cluster: need 1 <= k <= n");
  }
  if (weights.size() != n) {
    throw util::InvalidArgument(
        "landmark_spectral_cluster: one weight per vector required");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(weights[i]) || weights[i] <= 0.0) {
      throw util::InvalidArgument(
          "landmark_spectral_cluster: weights must be positive");
    }
    for (const auto& [id, value] : points[i].items) {
      if (id < 0 || static_cast<std::size_t>(id) >= dims) {
        throw util::InvalidArgument(
            "landmark_spectral_cluster: feature id out of range at vector " +
            std::to_string(i));
      }
      if (!std::isfinite(value)) {
        throw util::InvalidArgument(
            "landmark_spectral_cluster: non-finite feature value at vector " +
            std::to_string(i));
      }
    }
  }
  if (opt.landmarks == 0) {
    throw util::InvalidArgument(
        "landmark_spectral_cluster: need at least one landmark");
  }

  auto& registry = obs::MetricsRegistry::global();
  obs::Counter& runs = registry.counter("cluster.scale.landmark.runs");
  obs::Span span("cluster.landmark_spectral");
  span.arg("points", n);
  span.arg("k", static_cast<std::uint64_t>(k));
  runs.add();

  LandmarkResult r;
  util::Xoshiro256StarStar rng(opt.seed);
  const std::size_t m = std::min(opt.landmarks, n);
  r.landmarks = sample_landmarks(weights, m, rng);
  span.arg("landmarks", m);

  // Exact m x m landmark kernel. Sparse dots are symmetric (same ascending
  // accumulation order either way), but mirror explicitly so jacobi_eigen's
  // symmetry check can never trip on it.
  linalg::Matrix gram(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i; j < m; ++j) {
      const double v = points[r.landmarks[i]].dot(points[r.landmarks[j]]);
      gram(i, j) = v;
      gram(j, i) = v;
    }
  }

  const linalg::EigenDecomposition eig = linalg::jacobi_eigen(gram);
  if (!eig.converged) {
    throw util::Error(
        "landmark_spectral_cluster: landmark Gram eigensolve did not "
        "converge");
  }

  // Usable spectrum: top eigenvalues above the relative floor. values
  // ascend, so walk from the back.
  const double lambda_max = eig.values.empty() ? 0.0 : eig.values.back();
  if (!(lambda_max > 0.0)) {
    throw util::Error(
        "landmark_spectral_cluster: landmark Gram has no positive spectrum");
  }
  std::size_t requested = opt.embedding_dims == 0
                              ? static_cast<std::size_t>(k)
                              : opt.embedding_dims;
  requested = std::min(requested, m);
  std::vector<std::size_t> kept;  // eigen column indices, descending lambda
  for (std::size_t back = 0; back < m && kept.size() < requested; ++back) {
    const std::size_t col = m - 1 - back;
    const double lambda = eig.values[col];
    if (!(lambda > opt.eigenvalue_floor * lambda_max)) break;
    kept.push_back(col);
  }
  r.dims = kept.size();
  span.arg("dims", r.dims);

  // Project every vector: phi(x)_l = (1/sqrt(lambda_l)) sum_j U(j,l) k_x[j],
  // then row-normalize (unit rows make the k-means geometry match the
  // spectral embedding's).
  linalg::Matrix embedding(n, r.dims);
  std::vector<double> kx(m);
  std::vector<double> inv_sqrt(r.dims);
  for (std::size_t l = 0; l < r.dims; ++l) {
    inv_sqrt[l] = 1.0 / std::sqrt(eig.values[kept[l]]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      kx[j] = points[i].dot(points[r.landmarks[j]]);
    }
    auto row = embedding.row(i);
    for (std::size_t l = 0; l < r.dims; ++l) {
      double acc = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        acc += eig.vectors(j, kept[l]) * kx[j];
      }
      row[l] = inv_sqrt[l] * acc;
    }
    double norm = 0.0;
    for (double v : row) norm += v * v;
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (double& v : row) v /= norm;
    }
  }

  KMeansOptions kmeans_options = opt.kmeans;
  const KMeansResult km = kmeans_weighted(embedding, weights, k, kmeans_options);
  r.labels = km.labels;
  r.inertia = km.inertia;
  r.kmeans_iterations = km.iterations;
  return r;
}

}  // namespace cwgl::cluster

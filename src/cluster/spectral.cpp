#include "cluster/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "linalg/eigen.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"

namespace cwgl::cluster {

SpectralResult spectral_cluster(const linalg::Matrix& similarity, int k,
                                const SpectralOptions& options) {
  if (similarity.rows() != similarity.cols()) {
    throw util::InvalidArgument("spectral_cluster: similarity must be square");
  }
  const std::size_t n = similarity.rows();
  if (k < 1 || static_cast<std::size_t>(k) > n) {
    throw util::InvalidArgument("spectral_cluster: need 1 <= k <= n");
  }
  if (options.max_dense_items != 0 && n > options.max_dense_items) {
    throw util::InvalidArgument(
        "spectral_cluster: " + std::to_string(n) +
        " items exceed the dense-path limit of " +
        std::to_string(options.max_dense_items) +
        " (O(n^2) memory, O(n^3) eigensolve); use the scalable path "
        "(`cwgl characterize --full` / cluster_at_scale) or raise "
        "SpectralOptions::max_dense_items");
  }

  SpectralResult result;

  // Validate before any arithmetic: a single NaN would spread through the
  // Laplacian and come out of the eigensolver as garbage labels with no
  // error anywhere. Asymmetry beyond numerical noise means the caller's
  // kernel matrix is corrupt, not merely unnormalized.
  double max_abs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (std::isfinite(similarity(i, j))) {
        max_abs = std::max(max_abs, std::abs(similarity(i, j)));
      }
    }
  }
  const double asym_tol = 1e-6 * std::max(1.0, max_abs);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (!std::isfinite(similarity(i, j))) {
        if (!options.lenient) {
          throw util::InvalidArgument(
              "spectral_cluster: non-finite similarity at (" +
              std::to_string(i) + ", " + std::to_string(j) + ")");
        }
        ++result.clamped_entries;
      } else if (j > i &&
                 std::abs(similarity(i, j) - similarity(j, i)) > asym_tol) {
        if (!options.lenient) {
          throw util::InvalidArgument(
              "spectral_cluster: similarity is not symmetric at (" +
              std::to_string(i) + ", " + std::to_string(j) + ")");
        }
        if (options.diagnostics != nullptr) {
          options.diagnostics->count("spectral", "asymmetric-entry");
        }
      }
    }
  }
  if (result.clamped_entries > 0 && options.diagnostics != nullptr) {
    options.diagnostics->count("spectral", "non-finite-clamped",
                               result.clamped_entries);
  }

  // Symmetrize and clamp; self-similarity does not affect L_sym's
  // eigenvectors' cluster structure but keeps degrees positive. Non-finite
  // entries (lenient mode only — strict threw above) contribute zero.
  linalg::Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double a = similarity(i, j);
      const double b = similarity(j, i);
      const double av = std::isfinite(a) ? a : 0.0;
      const double bv = std::isfinite(b) ? b : 0.0;
      w(i, j) = std::max(0.0, 0.5 * (av + bv));
    }
  }

  std::vector<double> inv_sqrt_degree(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double deg = 0.0;
    for (std::size_t j = 0; j < n; ++j) deg += w(i, j);
    inv_sqrt_degree[i] = deg > 0.0 ? 1.0 / std::sqrt(deg) : 0.0;
  }

  linalg::Matrix lsym(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double norm = inv_sqrt_degree[i] * w(i, j) * inv_sqrt_degree[j];
      lsym(i, j) = (i == j ? 1.0 : 0.0) - norm;
    }
  }

  const bool partial = n > options.partial_eigen_threshold;
  obs::Span eigen_span("cluster.eigensolve");
  eigen_span.arg("n", n);
  eigen_span.arg("partial", partial ? 1 : 0);
  auto eig = partial
                 ? linalg::smallest_eigenpairs(lsym, k,
                                               options.partial_max_sweeps)
                 : linalg::jacobi_eigen(lsym);
  if (partial && !eig.converged) {
    // Graceful degradation: the iterative solver ran out of sweeps (tight
    // eigengaps do that). Fall back to the unconditionally stable dense
    // decomposition rather than clustering on a half-converged subspace.
    if (options.diagnostics != nullptr) {
      options.diagnostics->record(
          "spectral", "eigen-fallback",
          "subspace iteration did not converge in " +
              std::to_string(options.partial_max_sweeps) +
              " sweeps (n=" + std::to_string(n) + "); using dense solver");
    }
    {
      obs::Span fallback_span("cluster.eigensolve.jacobi_fallback");
      fallback_span.arg("n", n);
      eig = linalg::jacobi_eigen(lsym);
    }
    obs::MetricsRegistry::global().counter("cluster.spectral.fallbacks").add();
    result.eigen_fallback = true;
  }
  eigen_span.arg("fallback", result.eigen_fallback ? 1 : 0);
  eigen_span.end();

  result.eigenvalues = eig.values;
  result.embedding = linalg::Matrix(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    for (int c = 0; c < k; ++c) {
      result.embedding(i, c) = eig.vectors(i, static_cast<std::size_t>(c));
    }
    double norm = 0.0;
    for (int c = 0; c < k; ++c) {
      norm += result.embedding(i, c) * result.embedding(i, c);
    }
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (int c = 0; c < k; ++c) result.embedding(i, c) /= norm;
    }
  }

  SpectralOptions opts = options;
  const auto km = kmeans(result.embedding, k, opts.kmeans);
  result.labels = km.labels;
  return result;
}

SpectralResult spectral_cluster_weighted(const linalg::Matrix& similarity,
                                         std::span<const double> weights,
                                         int k, const SpectralOptions& options) {
  if (similarity.rows() != similarity.cols()) {
    throw util::InvalidArgument(
        "spectral_cluster_weighted: similarity must be square");
  }
  const std::size_t n = similarity.rows();
  if (weights.size() != n) {
    throw util::InvalidArgument(
        "spectral_cluster_weighted: one weight per row required");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(weights[i]) || weights[i] <= 0.0) {
      throw util::InvalidArgument(
          "spectral_cluster_weighted: weights must be positive");
    }
  }
  if (k < 1 || static_cast<std::size_t>(k) > n) {
    throw util::InvalidArgument("spectral_cluster_weighted: need 1 <= k <= n");
  }
  if (options.max_dense_items != 0 && n > options.max_dense_items) {
    throw util::InvalidArgument(
        "spectral_cluster_weighted: " + std::to_string(n) +
        " items exceed the dense-path limit of " +
        std::to_string(options.max_dense_items) +
        " (O(n^2) memory, O(n^3) eigensolve); use the scalable path "
        "(`cwgl characterize --full` / cluster_at_scale) or raise "
        "SpectralOptions::max_dense_items");
  }

  SpectralResult result;

  // Always strict: the interned pipeline feeds a freshly computed kernel
  // matrix; damage here is a programming error, not dirty input.
  double max_abs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (!std::isfinite(similarity(i, j))) {
        throw util::InvalidArgument(
            "spectral_cluster_weighted: non-finite similarity at (" +
            std::to_string(i) + ", " + std::to_string(j) + ")");
      }
      max_abs = std::max(max_abs, std::abs(similarity(i, j)));
    }
  }
  const double asym_tol = 1e-6 * std::max(1.0, max_abs);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (std::abs(similarity(i, j) - similarity(j, i)) > asym_tol) {
        throw util::InvalidArgument(
            "spectral_cluster_weighted: similarity is not symmetric at (" +
            std::to_string(i) + ", " + std::to_string(j) + ")");
      }
    }
  }

  // Symmetrize and clamp exactly as the unweighted path does, so both see
  // the same effective affinity W.
  linalg::Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      w(i, j) = std::max(0.0, 0.5 * (similarity(i, j) + similarity(j, i)));
    }
  }

  // Weighted degrees d_t = sum_u w_u W(t,u): the degree every copy of item
  // t has in the expanded graph.
  std::vector<double> inv_sqrt_degree(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double deg = 0.0;
    for (std::size_t j = 0; j < n; ++j) deg += weights[j] * w(i, j);
    inv_sqrt_degree[i] = deg > 0.0 ? 1.0 / std::sqrt(deg) : 0.0;
  }

  // L = I - M with M(t,u) = sqrt(w_t w_u) W(t,u) / sqrt(d_t d_u). M is
  // similar (via the per-class constant structure) to the expanded
  // normalized affinity restricted to its class-constant invariant
  // subspace; its complement contributes only eigenvalue-1 directions.
  linalg::Matrix lsym(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double norm = std::sqrt(weights[i] * weights[j]) * w(i, j) *
                          inv_sqrt_degree[i] * inv_sqrt_degree[j];
      lsym(i, j) = (i == j ? 1.0 : 0.0) - norm;
    }
  }

  const bool partial = n > options.partial_eigen_threshold;
  obs::Span eigen_span("cluster.eigensolve");
  eigen_span.arg("n", n);
  eigen_span.arg("partial", partial ? 1 : 0);
  auto eig = partial
                 ? linalg::smallest_eigenpairs(lsym, k,
                                               options.partial_max_sweeps)
                 : linalg::jacobi_eigen(lsym);
  if (partial && !eig.converged) {
    if (options.diagnostics != nullptr) {
      options.diagnostics->record(
          "spectral", "eigen-fallback",
          "subspace iteration did not converge in " +
              std::to_string(options.partial_max_sweeps) +
              " sweeps (n=" + std::to_string(n) + "); using dense solver");
    }
    {
      obs::Span fallback_span("cluster.eigensolve.jacobi_fallback");
      fallback_span.arg("n", n);
      eig = linalg::jacobi_eigen(lsym);
    }
    obs::MetricsRegistry::global().counter("cluster.spectral.fallbacks").add();
    result.eigen_fallback = true;
  }
  eigen_span.arg("fallback", result.eigen_fallback ? 1 : 0);
  eigen_span.end();

  result.eigenvalues = eig.values;
  // Row-normalization makes the 1/sqrt(w_t) class scaling irrelevant: the
  // normalized row of item t equals the expanded run's normalized row for
  // every copy of t.
  result.embedding = linalg::Matrix(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    for (int c = 0; c < k; ++c) {
      result.embedding(i, c) = eig.vectors(i, static_cast<std::size_t>(c));
    }
    double norm = 0.0;
    for (int c = 0; c < k; ++c) {
      norm += result.embedding(i, c) * result.embedding(i, c);
    }
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (int c = 0; c < k; ++c) result.embedding(i, c) /= norm;
    }
  }

  const auto km = kmeans_weighted(result.embedding, weights, k, options.kmeans);
  result.labels = km.labels;
  return result;
}

int eigengap_k(std::span<const double> eigenvalues, int max_k) {
  if (eigenvalues.size() < 2) return 1;
  const int limit =
      std::min<int>(max_k, static_cast<int>(eigenvalues.size()) - 1);
  int best_k = 1;
  double best_gap = -1.0;
  for (int k = 1; k <= limit; ++k) {
    const double gap = eigenvalues[k] - eigenvalues[k - 1];
    if (gap > best_gap) {
      best_gap = gap;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace cwgl::cluster

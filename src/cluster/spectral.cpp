#include "cluster/spectral.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.hpp"
#include "util/error.hpp"

namespace cwgl::cluster {

SpectralResult spectral_cluster(const linalg::Matrix& similarity, int k,
                                const SpectralOptions& options) {
  if (similarity.rows() != similarity.cols()) {
    throw util::InvalidArgument("spectral_cluster: similarity must be square");
  }
  const std::size_t n = similarity.rows();
  if (k < 1 || static_cast<std::size_t>(k) > n) {
    throw util::InvalidArgument("spectral_cluster: need 1 <= k <= n");
  }

  // Symmetrize and clamp; self-similarity does not affect L_sym's
  // eigenvectors' cluster structure but keeps degrees positive.
  linalg::Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      w(i, j) = std::max(0.0, 0.5 * (similarity(i, j) + similarity(j, i)));
    }
  }

  std::vector<double> inv_sqrt_degree(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double deg = 0.0;
    for (std::size_t j = 0; j < n; ++j) deg += w(i, j);
    inv_sqrt_degree[i] = deg > 0.0 ? 1.0 / std::sqrt(deg) : 0.0;
  }

  linalg::Matrix lsym(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double norm = inv_sqrt_degree[i] * w(i, j) * inv_sqrt_degree[j];
      lsym(i, j) = (i == j ? 1.0 : 0.0) - norm;
    }
  }

  const bool partial = n > options.partial_eigen_threshold;
  const auto eig = partial ? linalg::smallest_eigenpairs(lsym, k)
                           : linalg::jacobi_eigen(lsym);

  SpectralResult result;
  result.eigenvalues = eig.values;
  result.embedding = linalg::Matrix(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    for (int c = 0; c < k; ++c) {
      result.embedding(i, c) = eig.vectors(i, static_cast<std::size_t>(c));
    }
    double norm = 0.0;
    for (int c = 0; c < k; ++c) {
      norm += result.embedding(i, c) * result.embedding(i, c);
    }
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (int c = 0; c < k; ++c) result.embedding(i, c) /= norm;
    }
  }

  SpectralOptions opts = options;
  const auto km = kmeans(result.embedding, k, opts.kmeans);
  result.labels = km.labels;
  return result;
}

int eigengap_k(std::span<const double> eigenvalues, int max_k) {
  if (eigenvalues.size() < 2) return 1;
  const int limit =
      std::min<int>(max_k, static_cast<int>(eigenvalues.size()) - 1);
  int best_k = 1;
  double best_gap = -1.0;
  for (int k = 1; k <= limit; ++k) {
    const double gap = eigenvalues[k] - eigenvalues[k - 1];
    if (gap > best_gap) {
      best_gap = gap;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace cwgl::cluster

#include "model/fit.hpp"

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace cwgl::model {

namespace {

ClusterProfile make_profile(const core::ClusterGroupStats& g) {
  ClusterProfile p;
  p.population = g.population;
  p.population_fraction = g.population_fraction;
  p.mean_size = g.size.mean;
  p.median_size = g.size.median;
  p.mean_critical_path = g.critical_path.mean;
  p.median_critical_path = g.critical_path.median;
  p.mean_width = g.parallelism.mean;
  p.median_width = g.parallelism.median;
  p.chain_fraction = g.chain_fraction;
  p.short_job_fraction = g.short_job_fraction;
  return p;
}

}  // namespace

FittedModel build_model(const core::PipelineResult& result,
                        core::FittedFeatures fitted,
                        const core::PipelineConfig& config) {
  const auto& clustering = result.clustering;
  const auto& names = result.similarity.job_names;
  const std::size_t n = fitted.vectors.size();
  if (n == 0) throw ModelError("model: cannot fit on an empty analysis set");

  FittedModel m;
  m.wl = config.similarity.wl;
  m.use_type_labels = config.similarity.use_type_labels;
  m.normalize = config.similarity.normalize;
  m.conflated = config.analyze_conflated;
  m.dictionary = std::move(fitted.dictionary);

  m.profiles.reserve(clustering.groups.size());
  for (const core::ClusterGroupStats& g : clustering.groups) {
    m.profiles.push_back(make_profile(g));
  }
  m.representatives.resize(m.profiles.size());

  if (result.interned.has_value()) {
    // Shape-interned fit: the fitted vectors are per distinct shape, the
    // clustering labels per job. One representative per shape — its exemplar
    // is a literal copy of the shape's first sampled job, so job_name and
    // training_index address that job and the medoid remap below still
    // resolves (group medoids are first-job indices of medoid shapes).
    const core::InternedAnalysis& interned = *result.interned;
    const std::size_t shapes = interned.table.size();
    if (n != shapes || clustering.labels.size() != interned.shape_of.size()) {
      throw ModelError(
          "model: fitted features, clustering labels, and the shape table "
          "disagree on the analysis-set size — results from different runs?");
    }
    std::vector<std::uint64_t> first_job(shapes,
                                         std::numeric_limits<std::uint64_t>::max());
    std::vector<int> shape_label(shapes, -1);
    for (std::size_t i = 0; i < interned.shape_of.size(); ++i) {
      const std::uint32_t t = interned.shape_of[i];
      if (t >= shapes) {
        throw ModelError("model: shape id out of range in interned result");
      }
      if (first_job[t] == std::numeric_limits<std::uint64_t>::max()) {
        first_job[t] = i;
        shape_label[t] = clustering.labels[i];
      }
    }
    for (std::size_t t = 0; t < shapes; ++t) {
      const int group = shape_label[t];
      if (group < 0 || static_cast<std::size_t>(group) >= m.profiles.size()) {
        throw ModelError("model: clustering label out of range for shape " +
                         std::to_string(t));
      }
      Representative rep;
      rep.job_name = interned.table.exemplars[t].job_name;
      rep.training_index = first_job[t];
      rep.count = interned.table.shapes[t].count;
      rep.features = std::move(fitted.vectors[t]);
      rep.self_norm = rep.features.norm();
      m.representatives[static_cast<std::size_t>(group)].push_back(
          std::move(rep));
    }
    for (std::size_t c = 0; c < clustering.groups.size(); ++c) {
      const std::size_t medoid = clustering.groups[c].medoid;
      const auto& reps = m.representatives[c];
      for (std::size_t r = 0; r < reps.size(); ++r) {
        if (reps[r].training_index == medoid) {
          m.profiles[c].medoid = r;
          break;
        }
      }
    }
    m.validate();
    return m;
  }

  if (clustering.labels.size() != n || names.size() != n) {
    throw ModelError(
        "model: fitted features, clustering labels, and job names disagree "
        "on the analysis-set size — results from different runs?");
  }

  for (std::size_t i = 0; i < n; ++i) {
    const int group = clustering.labels[i];
    if (group < 0 || static_cast<std::size_t>(group) >= m.profiles.size()) {
      throw ModelError("model: clustering label out of range for job '" +
                       names[i] + "'");
    }
    Representative rep;
    rep.job_name = names[i];
    rep.training_index = i;
    rep.features = std::move(fitted.vectors[i]);
    rep.self_norm = rep.features.norm();
    m.representatives[static_cast<std::size_t>(group)].push_back(
        std::move(rep));
  }

  // The group medoid is a global analysis-set index; serving wants it as a
  // position inside the cluster's own representative list.
  for (std::size_t c = 0; c < clustering.groups.size(); ++c) {
    const std::size_t medoid = clustering.groups[c].medoid;
    const auto& reps = m.representatives[c];
    for (std::size_t r = 0; r < reps.size(); ++r) {
      if (reps[r].training_index == medoid) {
        m.profiles[c].medoid = r;
        break;
      }
    }
  }

  m.validate();
  return m;
}

FittedModel build_model_full(const core::FullTraceResult& result,
                             core::FittedFeatures fitted,
                             const core::PipelineConfig& config) {
  const std::size_t shapes = result.table.size();
  if (shapes == 0) {
    throw ModelError("model: cannot fit on an empty full-trace result");
  }
  if (fitted.vectors.size() != shapes ||
      result.shape_labels.size() != shapes) {
    throw ModelError(
        "model: fitted features, shape labels, and the shape table disagree "
        "on the distinct-shape count — results from different runs?");
  }

  FittedModel m;
  m.wl = config.similarity.wl;
  m.use_type_labels = config.similarity.use_type_labels;
  m.normalize = config.similarity.normalize;
  m.conflated = config.analyze_conflated;
  m.dictionary = std::move(fitted.dictionary);

  m.profiles.reserve(result.groups.size());
  for (const core::ClusterGroupStats& g : result.groups) {
    m.profiles.push_back(make_profile(g));
  }
  m.representatives.resize(m.profiles.size());

  for (std::size_t t = 0; t < shapes; ++t) {
    const int group = result.shape_labels[t];
    if (group < 0 || static_cast<std::size_t>(group) >= m.profiles.size()) {
      throw ModelError("model: shape label out of range for shape " +
                       std::to_string(t));
    }
    Representative rep;
    rep.job_name = result.table.exemplars[t].job_name;
    // Training indices address the fit-time sequence; on a full-trace fit
    // that sequence is the shape table itself, so the shape id works (dense,
    // unique, < training_weight()).
    rep.training_index = t;
    rep.count = result.table.shapes[t].count;
    rep.features = std::move(fitted.vectors[t]);
    rep.self_norm = rep.features.norm();
    m.representatives[static_cast<std::size_t>(group)].push_back(
        std::move(rep));
  }

  // Full-trace group medoids are shape ids already — remap each to its
  // position inside the cluster's representative list.
  for (std::size_t c = 0; c < result.groups.size(); ++c) {
    const std::size_t medoid = result.groups[c].medoid;
    const auto& reps = m.representatives[c];
    for (std::size_t r = 0; r < reps.size(); ++r) {
      if (reps[r].training_index == medoid) {
        m.profiles[c].medoid = r;
        break;
      }
    }
  }

  m.validate();
  return m;
}

}  // namespace cwgl::model

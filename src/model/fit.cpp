#include "model/fit.hpp"

#include <utility>

namespace cwgl::model {

namespace {

ClusterProfile make_profile(const core::ClusterGroupStats& g) {
  ClusterProfile p;
  p.population = g.population;
  p.population_fraction = g.population_fraction;
  p.mean_size = g.size.mean;
  p.median_size = g.size.median;
  p.mean_critical_path = g.critical_path.mean;
  p.median_critical_path = g.critical_path.median;
  p.mean_width = g.parallelism.mean;
  p.median_width = g.parallelism.median;
  p.chain_fraction = g.chain_fraction;
  p.short_job_fraction = g.short_job_fraction;
  return p;
}

}  // namespace

FittedModel build_model(const core::PipelineResult& result,
                        core::FittedFeatures fitted,
                        const core::PipelineConfig& config) {
  const auto& clustering = result.clustering;
  const auto& names = result.similarity.job_names;
  const std::size_t n = fitted.vectors.size();
  if (n == 0) throw ModelError("model: cannot fit on an empty analysis set");
  if (clustering.labels.size() != n || names.size() != n) {
    throw ModelError(
        "model: fitted features, clustering labels, and job names disagree "
        "on the analysis-set size — results from different runs?");
  }

  FittedModel m;
  m.wl = config.similarity.wl;
  m.use_type_labels = config.similarity.use_type_labels;
  m.normalize = config.similarity.normalize;
  m.conflated = config.analyze_conflated;
  m.dictionary = std::move(fitted.dictionary);

  m.profiles.reserve(clustering.groups.size());
  for (const core::ClusterGroupStats& g : clustering.groups) {
    m.profiles.push_back(make_profile(g));
  }
  m.representatives.resize(m.profiles.size());

  for (std::size_t i = 0; i < n; ++i) {
    const int group = clustering.labels[i];
    if (group < 0 || static_cast<std::size_t>(group) >= m.profiles.size()) {
      throw ModelError("model: clustering label out of range for job '" +
                       names[i] + "'");
    }
    Representative rep;
    rep.job_name = names[i];
    rep.training_index = i;
    rep.features = std::move(fitted.vectors[i]);
    rep.self_norm = rep.features.norm();
    m.representatives[static_cast<std::size_t>(group)].push_back(
        std::move(rep));
  }

  // The group medoid is a global analysis-set index; serving wants it as a
  // position inside the cluster's own representative list.
  for (std::size_t c = 0; c < clustering.groups.size(); ++c) {
    const std::size_t medoid = clustering.groups[c].medoid;
    const auto& reps = m.representatives[c];
    for (std::size_t r = 0; r < reps.size(); ++r) {
      if (reps[r].training_index == medoid) {
        m.profiles[c].medoid = r;
        break;
      }
    }
  }

  m.validate();
  return m;
}

}  // namespace cwgl::model

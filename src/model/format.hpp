#pragma once

#include <cstdint>
#include <filesystem>
#include <istream>
#include <string>
#include <string_view>

#include "model/model.hpp"

namespace cwgl::model {

/// The `cwgl-model-v2` binary snapshot format.
///
/// Layout (all integers little-endian, doubles as IEEE-754 bit patterns in a
/// little-endian u64):
///
///   magic   8 bytes  "CWGLMDL1"
///   u32     format version (currently 2)
///   u32     section count (5 in v2, 4 in v1)
///   section x5, in this exact order:
///     u32   tag            FourCC: "CONF", "DICT", "PROF", "REPS", "SHPC"
///     u64   payload size   bytes that follow the crc field
///     u32   crc32          CRC-32 (reflected, poly 0xEDB88320) of payload
///     ...   payload
///
/// CONF: WL config + featurization switches. DICT: the frozen signature
/// dictionary (entry i has feature id i). PROF: per-cluster profiles.
/// REPS: per-cluster representative feature vectors and self-norms.
/// SHPC (new in v2): per-representative shape-multiplicity counts — u64
/// cluster count, then per cluster a u64 representative count followed by
/// that many u64 counts, positionally parallel to REPS. On a direct fit
/// every count is 1; on a shape-interned fit a count is the number of
/// training jobs sharing the representative's DAG shape.
///
/// Loading is strict by default: wrong magic, unsupported version, unknown
/// or out-of-order section tags, truncated payloads, CRC mismatches,
/// trailing bytes (after a section payload or after the last section), and
/// any semantic violation caught by FittedModel::validate() all raise
/// ModelError. A partially written file — e.g. a crash mid-save — can never
/// load as a valid model.
///
/// Versioning rule: the major format version is bumped on any change an old
/// reader cannot skip. This build writes v2 and reads v2 plus the v1 layout
/// (no SHPC section; every count defaults to 1). Any other version is
/// rejected outright; there is no silent best-effort decoding.

inline constexpr std::string_view kModelMagic = "CWGLMDL1";
inline constexpr std::uint32_t kModelFormatVersion = 2;
inline constexpr std::uint32_t kModelFormatVersionLegacy = 1;

/// Serializes a validated model to its byte representation. Runs
/// `m.validate()` first so an invalid model is never encoded.
std::string serialize_model(const FittedModel& m);

/// Per-section payload byte sizes of a snapshot — what `cwgl fit --json`
/// reports so model growth (full-trace fits especially) is observable.
/// `total` is the exact serialize_model() size: preamble + five section
/// headers + the payloads.
struct SectionSizes {
  std::uint64_t conf = 0;
  std::uint64_t dict = 0;
  std::uint64_t prof = 0;
  std::uint64_t reps = 0;
  std::uint64_t shpc = 0;
  std::uint64_t total = 0;
};

/// Computes the encoded payload sizes of `m` without keeping the bytes.
/// Does not validate; sizes are well-defined for any structurally sound
/// model.
SectionSizes section_sizes(const FittedModel& m);

/// Strictly decodes bytes produced by serialize_model(). `origin` names the
/// source (a path, "<memory>", ...) in error messages. Throws ModelError on
/// any structural or semantic defect; never exhibits UB on corrupt input —
/// every read is bounds-checked against the buffer.
FittedModel deserialize_model(std::string_view bytes,
                              std::string_view origin = "<memory>");

/// Writes the snapshot to `path` crash-safely: the bytes land in a
/// `path + ".tmp"` sibling first and are atomically renamed over `path`
/// only once fully written, so a crash mid-write leaves any previous
/// snapshot at `path` intact (the property automated hot reload relies
/// on). Failpoint site "model.write" fires after roughly half the bytes
/// are on disk, modeling that crash; the torn `.tmp` it leaves behind is
/// additionally guaranteed to be rejected by load_model(). Throws
/// ModelError when the file cannot be created, fully written, or renamed.
void save_model(const FittedModel& m, const std::filesystem::path& path);

/// Reads and strictly validates a snapshot from `path` (failpoint site
/// "model.read" models an I/O fault at open time).
FittedModel load_model(const std::filesystem::path& path);

/// Stream variant of load_model() for already-open sources.
FittedModel load_model(std::istream& in, std::string_view origin = "<stream>");

}  // namespace cwgl::model

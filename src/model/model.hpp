#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "kernel/types.hpp"
#include "kernel/wl.hpp"
#include "util/error.hpp"

namespace cwgl::model {

/// Raised when a model snapshot cannot be decoded or fails validation —
/// truncated files, bad magic/version, CRC mismatches, and semantic
/// violations (non-dense dictionary ids, non-finite norms, ...). Derives
/// from util::Error so `catch (const util::Error&)` intercepts it like any
/// other library failure; it is its own type so tests can assert that a
/// corrupt model is rejected by the FORMAT layer, not by some downstream
/// accident.
class ModelError : public util::Error {
 public:
  explicit ModelError(const std::string& what) : util::Error(what) {}
};

/// Per-cluster aggregate profile, frozen from the fit-time
/// core::ClusterGroupStats. Serving returns these as the *predicted*
/// structure statistics of a newly classified job (the paper's Fig. 9 view
/// of each group, replayed as a forecast).
struct ClusterProfile {
  std::uint64_t population = 0;        ///< training jobs in the group
  double population_fraction = 0.0;    ///< share of the training set
  double mean_size = 0.0;              ///< tasks per job
  double median_size = 0.0;
  double mean_critical_path = 0.0;     ///< vertices on the longest path
  double median_critical_path = 0.0;
  double mean_width = 0.0;             ///< max level population
  double median_width = 0.0;
  double chain_fraction = 0.0;         ///< share of straight-chain jobs
  double short_job_fraction = 0.0;     ///< share of jobs with < 3 tasks
  /// Index into this cluster's representative list of the most central
  /// member (the Fig. 8 representative DAG).
  std::uint64_t medoid = 0;

  friend bool operator==(const ClusterProfile&, const ClusterProfile&) = default;
};

/// One frozen training job: its WL feature vector in the frozen dictionary's
/// id space plus the precomputed self-kernel norm sqrt(<phi,phi>), so
/// serving computes a normalized similarity with one sparse dot product.
struct Representative {
  std::string job_name;            ///< trace job id, for explainability
  std::uint64_t training_index = 0;  ///< row in the fit-time Gram matrix
  double self_norm = 0.0;          ///< Euclidean norm of `features`
  kernel::SparseVector features;   ///< raw (pre-normalization) WL vector
  /// Training jobs this representative stands for. 1 on a direct fit (one
  /// rep per training job); the shape multiplicity on a shape-interned fit,
  /// where one rep stands for every job sharing its DAG shape. Per-cluster
  /// counts sum to the profile's population.
  std::uint64_t count = 1;

  friend bool operator==(const Representative&, const Representative&) = default;
};

/// A fitted characterization snapshot: everything `serve::Classifier` needs
/// to assign a cluster to a never-before-seen job DAG, decoupled from the
/// trace and the pipeline that produced it.
///
/// By default every training job is kept as a representative of its cluster
/// (the experiment set is 100 jobs — a few hundred KB). That choice is what
/// makes the train/serve round trip EXACT: a training job scores normalized
/// similarity 1 against itself, so nearest-representative classification
/// reproduces the pipeline's own cluster assignment.
struct FittedModel {
  /// WL kernel configuration the dictionary was built under. Serving must
  /// featurize with exactly these settings or ids would be meaningless.
  kernel::WlConfig wl;
  bool use_type_labels = true;   ///< vertices labeled by task type (M/R/J)
  bool normalize = true;         ///< cosine-normalized similarity scores
  bool conflated = false;        ///< classify conflated DAGs (ablation A3 fit)

  /// Frozen signature dictionary: entry i is the byte-signature interned
  /// with id i. Serving maps unseen signatures to `oov_id()` instead of
  /// growing this.
  std::vector<std::string> dictionary;

  /// Per-cluster aggregates, index = group id (0 = 'A', the most populous).
  std::vector<ClusterProfile> profiles;

  /// representatives[c] are the frozen members of cluster c.
  std::vector<std::vector<Representative>> representatives;

  std::size_t num_clusters() const noexcept { return profiles.size(); }

  /// Total frozen representatives across all clusters.
  std::size_t training_jobs() const noexcept;

  /// Total training jobs the representatives stand for (sum of counts).
  /// Equals training_jobs() on a direct fit; >= it on a shape-interned fit.
  std::uint64_t training_weight() const noexcept;

  /// The reserved out-of-vocabulary feature id: one past the last real id.
  int oov_id() const noexcept { return static_cast<int>(dictionary.size()); }

  /// Letter name of cluster `c` as the paper uses ('A' = largest).
  static char letter(std::size_t c) noexcept {
    return static_cast<char>('A' + c);
  }

  /// Checks every semantic invariant (dense unique dictionary, ascending
  /// in-vocabulary feature ids, finite norms consistent with the vectors,
  /// medoids in range, unique training indices, profile sanity). Throws
  /// ModelError naming the first violation. load_model() always runs this;
  /// fit runs it before writing so a bad model is never persisted.
  void validate() const;

  friend bool operator==(const FittedModel&, const FittedModel&) = default;
};

}  // namespace cwgl::model

#pragma once

#include "core/pipeline.hpp"
#include "model/model.hpp"

namespace cwgl::model {

/// Assembles a serving snapshot from one pipeline run.
///
/// `result` must come from `CharacterizationPipeline::run(trace, pool,
/// &fitted)` with the SAME `fitted` passed here — the feature vectors, the
/// clustering labels, and the job names must describe the same analysis set
/// in the same order. `config` supplies the kernel settings the dictionary
/// was built under.
///
/// Every analyzed job becomes a representative of its cluster, with the
/// group medoid remapped to a within-cluster index. On a shape-interned run
/// (`result.interned` present) there is one representative per DISTINCT
/// shape instead, carrying the shape's multiplicity as its count — same-
/// shape jobs have identical WL vectors, so serving's nearest-representative
/// classification is unchanged while the snapshot shrinks to the distinct-
/// shape count. Validates the assembled model before returning (throws
/// ModelError), so a snapshot produced here always round-trips through
/// save/load.
FittedModel build_model(const core::PipelineResult& result,
                        core::FittedFeatures fitted,
                        const core::PipelineConfig& config);

/// Assembles a serving snapshot from a FULL-TRACE run
/// (`CharacterizationPipeline::run_full(trace, pool, &fitted)` with the
/// SAME `fitted`). One representative per distinct shape of the whole
/// eligible workload, carrying its multiplicity; training indices are shape
/// ids (dense, unique). Group medoids are already shape ids, so the
/// within-cluster remap is direct. Validates before returning (throws
/// ModelError).
FittedModel build_model_full(const core::FullTraceResult& result,
                             core::FittedFeatures fitted,
                             const core::PipelineConfig& config);

}  // namespace cwgl::model

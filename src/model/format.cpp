#include "model/format.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <span>
#include <sstream>
#include <utility>

#include "util/crc32.hpp"
#include "util/failpoint.hpp"

namespace cwgl::model {

namespace {

// ---------------------------------------------------------------------------
// Encoding. Integers are written byte by byte, least significant first, so
// the on-disk format is identical on every host regardless of endianness or
// struct layout — no memcpy of whole structs, ever.
// ---------------------------------------------------------------------------

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFFu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFFu));
  }
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

constexpr std::uint32_t fourcc(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr std::uint32_t kTagConf = fourcc('C', 'O', 'N', 'F');
constexpr std::uint32_t kTagDict = fourcc('D', 'I', 'C', 'T');
constexpr std::uint32_t kTagProf = fourcc('P', 'R', 'O', 'F');
constexpr std::uint32_t kTagReps = fourcc('R', 'E', 'P', 'S');
constexpr std::uint32_t kTagShpc = fourcc('S', 'H', 'P', 'C');
constexpr std::uint32_t kSectionOrder[] = {kTagConf, kTagDict, kTagProf,
                                           kTagReps, kTagShpc};
// v1 snapshots predate shape interning and carry no SHPC section.
constexpr std::uint32_t kSectionOrderLegacy[] = {kTagConf, kTagDict, kTagProf,
                                                 kTagReps};

void append_section(std::string& out, std::uint32_t tag,
                    const std::string& payload) {
  put_u32(out, tag);
  put_u64(out, payload.size());
  put_u32(out, util::crc32(payload));
  out.append(payload);
}

std::string encode_conf(const FittedModel& m) {
  std::string p;
  put_u32(p, static_cast<std::uint32_t>(m.wl.iterations));
  put_u8(p, m.wl.directed ? 1 : 0);
  put_u8(p, m.use_type_labels ? 1 : 0);
  put_u8(p, m.normalize ? 1 : 0);
  put_u8(p, m.conflated ? 1 : 0);
  put_u32(p, static_cast<std::uint32_t>(m.wl.iteration_weights.size()));
  for (double w : m.wl.iteration_weights) put_f64(p, w);
  return p;
}

std::string encode_dict(const FittedModel& m) {
  std::string p;
  put_u64(p, m.dictionary.size());
  for (const std::string& signature : m.dictionary) put_string(p, signature);
  return p;
}

std::string encode_prof(const FittedModel& m) {
  std::string p;
  put_u64(p, m.profiles.size());
  for (const ClusterProfile& prof : m.profiles) {
    put_u64(p, prof.population);
    put_f64(p, prof.population_fraction);
    put_f64(p, prof.mean_size);
    put_f64(p, prof.median_size);
    put_f64(p, prof.mean_critical_path);
    put_f64(p, prof.median_critical_path);
    put_f64(p, prof.mean_width);
    put_f64(p, prof.median_width);
    put_f64(p, prof.chain_fraction);
    put_f64(p, prof.short_job_fraction);
    put_u64(p, prof.medoid);
  }
  return p;
}

std::string encode_reps(const FittedModel& m) {
  std::string p;
  put_u64(p, m.representatives.size());
  for (const auto& cluster : m.representatives) {
    put_u64(p, cluster.size());
    for (const Representative& rep : cluster) {
      put_string(p, rep.job_name);
      put_u64(p, rep.training_index);
      put_f64(p, rep.self_norm);
      put_u64(p, rep.features.items.size());
      for (const auto& [id, value] : rep.features.items) {
        put_u32(p, static_cast<std::uint32_t>(id));
        put_f64(p, value);
      }
    }
  }
  return p;
}

std::string encode_shpc(const FittedModel& m) {
  std::string p;
  put_u64(p, m.representatives.size());
  for (const auto& cluster : m.representatives) {
    put_u64(p, cluster.size());
    for (const Representative& rep : cluster) put_u64(p, rep.count);
  }
  return p;
}

// ---------------------------------------------------------------------------
// Decoding. Every read goes through this bounds-checked cursor; corrupt
// sizes can therefore only ever produce a ModelError, never an out-of-range
// access. Element counts are never trusted for up-front allocation beyond
// what the remaining bytes could possibly hold.
// ---------------------------------------------------------------------------

class Cursor {
 public:
  Cursor(std::string_view data, std::string_view origin)
      : data_(data), origin_(origin) {}

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  std::size_t position() const noexcept { return pos_; }

  [[noreturn]] void fail(const std::string& what) const {
    throw ModelError("model '" + std::string(origin_) + "': " + what +
                     " (offset " + std::to_string(pos_) + ")");
  }

  std::string_view bytes(std::size_t n, const char* what) {
    if (n > remaining()) {
      fail(std::string("truncated ") + what + ": need " + std::to_string(n) +
           " bytes, have " + std::to_string(remaining()));
    }
    std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  std::uint8_t u8(const char* what) {
    return static_cast<std::uint8_t>(bytes(1, what)[0]);
  }

  std::uint32_t u32(const char* what) {
    std::string_view b = bytes(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i]))
           << (8 * i);
    }
    return v;
  }

  std::uint64_t u64(const char* what) {
    std::string_view b = bytes(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i]))
           << (8 * i);
    }
    return v;
  }

  double f64(const char* what) { return std::bit_cast<double>(u64(what)); }

  std::string str(const char* what) {
    const std::uint32_t n = u32(what);
    return std::string(bytes(n, what));
  }

  bool boolean(const char* what) {
    const std::uint8_t v = u8(what);
    if (v > 1) fail(std::string("non-boolean byte in ") + what);
    return v == 1;
  }

  /// A count bounds-checked against the bytes that could actually hold that
  /// many elements of at least `min_element_size` bytes each — rejects a
  /// corrupt length before any allocation sized by it.
  std::size_t count(const char* what, std::size_t min_element_size) {
    const std::uint64_t n = u64(what);
    if (min_element_size > 0 && n > remaining() / min_element_size) {
      fail(std::string("implausible ") + what + " count " + std::to_string(n));
    }
    return static_cast<std::size_t>(n);
  }

 private:
  std::string_view data_;
  std::string_view origin_;
  std::size_t pos_ = 0;
};

void decode_conf(Cursor& c, FittedModel& m) {
  m.wl.iterations = static_cast<int>(c.u32("wl iterations"));
  m.wl.directed = c.boolean("directed flag");
  m.use_type_labels = c.boolean("type-label flag");
  m.normalize = c.boolean("normalize flag");
  m.conflated = c.boolean("conflated flag");
  const std::uint32_t weights = c.u32("iteration weight count");
  if (weights > c.remaining() / 8) c.fail("implausible iteration weight count");
  m.wl.iteration_weights.reserve(weights);
  for (std::uint32_t i = 0; i < weights; ++i) {
    m.wl.iteration_weights.push_back(c.f64("iteration weight"));
  }
}

void decode_dict(Cursor& c, FittedModel& m) {
  const std::size_t n = c.count("dictionary", 4);
  m.dictionary.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.dictionary.push_back(c.str("dictionary signature"));
  }
}

void decode_prof(Cursor& c, FittedModel& m) {
  const std::size_t n = c.count("profile", 11 * 8);
  m.profiles.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ClusterProfile p;
    p.population = c.u64("population");
    p.population_fraction = c.f64("population fraction");
    p.mean_size = c.f64("mean size");
    p.median_size = c.f64("median size");
    p.mean_critical_path = c.f64("mean critical path");
    p.median_critical_path = c.f64("median critical path");
    p.mean_width = c.f64("mean width");
    p.median_width = c.f64("median width");
    p.chain_fraction = c.f64("chain fraction");
    p.short_job_fraction = c.f64("short-job fraction");
    p.medoid = c.u64("medoid index");
    m.profiles.push_back(p);
  }
}

void decode_reps(Cursor& c, FittedModel& m) {
  const std::size_t clusters = c.count("cluster", 8);
  m.representatives.reserve(clusters);
  for (std::size_t ci = 0; ci < clusters; ++ci) {
    const std::size_t reps = c.count("representative", 4 + 8 + 8 + 8);
    std::vector<Representative> cluster;
    cluster.reserve(reps);
    for (std::size_t ri = 0; ri < reps; ++ri) {
      Representative rep;
      rep.job_name = c.str("job name");
      rep.training_index = c.u64("training index");
      rep.self_norm = c.f64("self norm");
      const std::size_t nnz = c.count("feature", 12);
      rep.features.items.reserve(nnz);
      for (std::size_t fi = 0; fi < nnz; ++fi) {
        const std::uint32_t id = c.u32("feature id");
        const double value = c.f64("feature value");
        rep.features.items.emplace_back(static_cast<int>(id), value);
      }
      cluster.push_back(std::move(rep));
    }
    m.representatives.push_back(std::move(cluster));
  }
}

/// SHPC is positionally parallel to REPS, which the section order guarantees
/// was decoded first; any arity mismatch means the sections came from
/// different fits.
void decode_shpc(Cursor& c, FittedModel& m) {
  const std::size_t clusters = c.count("shape-count cluster", 8);
  if (clusters != m.representatives.size()) {
    c.fail("shape-count cluster arity does not match representatives");
  }
  for (std::size_t ci = 0; ci < clusters; ++ci) {
    const std::size_t reps = c.count("shape count", 8);
    if (reps != m.representatives[ci].size()) {
      c.fail("shape-count arity does not match representatives in cluster " +
             std::to_string(ci));
    }
    for (std::size_t ri = 0; ri < reps; ++ri) {
      m.representatives[ci][ri].count = c.u64("shape count");
    }
  }
}

}  // namespace

std::string serialize_model(const FittedModel& m) {
  m.validate();
  std::string out;
  out.append(kModelMagic);
  put_u32(out, kModelFormatVersion);
  put_u32(out, static_cast<std::uint32_t>(std::size(kSectionOrder)));
  append_section(out, kTagConf, encode_conf(m));
  append_section(out, kTagDict, encode_dict(m));
  append_section(out, kTagProf, encode_prof(m));
  append_section(out, kTagReps, encode_reps(m));
  append_section(out, kTagShpc, encode_shpc(m));
  return out;
}

SectionSizes section_sizes(const FittedModel& m) {
  SectionSizes s;
  s.conf = encode_conf(m).size();
  s.dict = encode_dict(m).size();
  s.prof = encode_prof(m).size();
  s.reps = encode_reps(m).size();
  s.shpc = encode_shpc(m).size();
  // Preamble (magic + version + section count) plus one 16-byte header
  // (tag u32 + size u64 + crc u32) per section.
  constexpr std::uint64_t kSectionHeader = 4 + 8 + 4;
  s.total = kModelMagic.size() + 4 + 4 +
            std::size(kSectionOrder) * kSectionHeader + s.conf + s.dict +
            s.prof + s.reps + s.shpc;
  return s;
}

FittedModel deserialize_model(std::string_view bytes, std::string_view origin) {
  Cursor c(bytes, origin);
  if (c.bytes(kModelMagic.size(), "magic") != kModelMagic) {
    c.fail("bad magic — not a cwgl model snapshot");
  }
  const std::uint32_t version = c.u32("format version");
  if (version != kModelFormatVersion && version != kModelFormatVersionLegacy) {
    c.fail("unsupported format version " + std::to_string(version) +
           " (this build reads versions " +
           std::to_string(kModelFormatVersionLegacy) + "-" +
           std::to_string(kModelFormatVersion) + ")");
  }
  const std::span<const std::uint32_t> order =
      version == kModelFormatVersionLegacy
          ? std::span<const std::uint32_t>(kSectionOrderLegacy)
          : std::span<const std::uint32_t>(kSectionOrder);
  const std::uint32_t sections = c.u32("section count");
  if (sections != order.size()) {
    c.fail("unexpected section count " + std::to_string(sections));
  }

  FittedModel m;
  for (std::uint32_t tag : order) {
    const std::uint32_t got = c.u32("section tag");
    if (got != tag) c.fail("unexpected or out-of-order section tag");
    const std::uint64_t size = c.u64("section size");
    const std::uint32_t stored_crc = c.u32("section crc");
    std::string_view payload =
        c.bytes(static_cast<std::size_t>(size), "section payload");
    if (util::crc32(payload) != stored_crc) {
      c.fail("section CRC mismatch — snapshot is corrupt");
    }
    Cursor section(payload, origin);
    switch (tag) {
      case kTagConf: decode_conf(section, m); break;
      case kTagDict: decode_dict(section, m); break;
      case kTagProf: decode_prof(section, m); break;
      case kTagReps: decode_reps(section, m); break;
      case kTagShpc: decode_shpc(section, m); break;
    }
    if (section.remaining() != 0) {
      section.fail("trailing bytes inside section payload");
    }
  }
  if (c.remaining() != 0) c.fail("trailing bytes after last section");

  try {
    m.validate();
  } catch (const ModelError& e) {
    throw ModelError("model '" + std::string(origin) +
                     "': semantic validation failed: " + e.what());
  }
  return m;
}

void save_model(const FittedModel& m, const std::filesystem::path& path) {
  const std::string bytes = serialize_model(m);
  // Crash-safe publish: write the snapshot to a *.tmp sibling and atomically
  // rename it over `path` only after every byte landed. A crash (or the
  // "model.write" failpoint, which fires between the two write halves) can
  // leave at most a torn *.tmp behind — the previous snapshot at `path`
  // stays intact and loadable, which is what makes automated hot reload
  // safe: a reloader that watches `path` never observes a partial file.
  // The format's CRCs + strict decoding remain the second line of defense
  // (a torn *.tmp never loads either).
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw ModelError("model '" + tmp.string() + "': cannot open for writing");
    }
    const std::size_t half = bytes.size() / 2;
    out.write(bytes.data(), static_cast<std::streamsize>(half));
    out.flush();
    // On a failpoint "crash" the torn temp file stays on disk (a real crash
    // would not clean up either) — only the rename below publishes.
    CWGL_FAILPOINT("model.write");
    out.write(bytes.data() + half,
              static_cast<std::streamsize>(bytes.size() - half));
    out.flush();
    if (!out) {
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw ModelError("model '" + tmp.string() + "': write failed");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw ModelError("model '" + path.string() +
                     "': cannot publish snapshot: " + ec.message());
  }
}

FittedModel load_model(std::istream& in, std::string_view origin) {
  CWGL_FAILPOINT("model.read");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw ModelError("model '" + std::string(origin) + "': read failed");
  }
  return deserialize_model(buffer.str(), origin);
}

FittedModel load_model(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ModelError("model '" + path.string() + "': cannot open for reading");
  }
  return load_model(in, path.string());
}

}  // namespace cwgl::model

#include "model/model.hpp"

#include <cmath>
#include <string>
#include <unordered_set>

namespace cwgl::model {

namespace {

void fail(const std::string& what) { throw ModelError("model: " + what); }

bool finite(double v) noexcept { return std::isfinite(v); }

void check_profile(const ClusterProfile& p, std::size_t cluster,
                   std::size_t rep_count) {
  const std::string where = "cluster " + std::to_string(cluster) + ": ";
  for (double v : {p.population_fraction, p.mean_size, p.median_size,
                   p.mean_critical_path, p.median_critical_path, p.mean_width,
                   p.median_width, p.chain_fraction, p.short_job_fraction}) {
    if (!finite(v) || v < 0.0) fail(where + "profile statistic out of range");
  }
  if (p.population_fraction > 1.0 || p.chain_fraction > 1.0 ||
      p.short_job_fraction > 1.0) {
    fail(where + "profile fraction exceeds 1");
  }
  if (rep_count > 0 && p.medoid >= rep_count) {
    fail(where + "medoid index out of range");
  }
}

}  // namespace

std::size_t FittedModel::training_jobs() const noexcept {
  std::size_t total = 0;
  for (const auto& cluster : representatives) total += cluster.size();
  return total;
}

std::uint64_t FittedModel::training_weight() const noexcept {
  std::uint64_t total = 0;
  for (const auto& cluster : representatives) {
    for (const Representative& rep : cluster) total += rep.count;
  }
  return total;
}

void FittedModel::validate() const {
  // Kernel configuration.
  if (wl.iterations < 0 || wl.iterations > 64) {
    fail("wl.iterations out of range [0, 64]");
  }
  if (!wl.iteration_weights.empty()) {
    if (wl.iteration_weights.size() !=
        static_cast<std::size_t>(wl.iterations) + 1) {
      fail("iteration_weights arity does not match iterations");
    }
    for (double w : wl.iteration_weights) {
      if (!finite(w) || w < 0.0) fail("iteration_weights entry out of range");
    }
  }

  // Frozen dictionary: dense ids are implicit (index == id); signatures must
  // be distinct and non-empty or two features would alias.
  if (dictionary.empty()) fail("empty signature dictionary");
  {
    std::unordered_set<std::string_view> seen;
    seen.reserve(dictionary.size());
    for (const std::string& signature : dictionary) {
      if (signature.empty()) fail("empty signature in dictionary");
      if (!seen.insert(signature).second) fail("duplicate signature in dictionary");
    }
  }

  // Cluster structure.
  if (profiles.empty()) fail("no clusters");
  if (profiles.size() > 4096) fail("implausible cluster count");
  if (representatives.size() != profiles.size()) {
    fail("profiles/representatives cluster count mismatch");
  }
  const std::size_t total_reps = training_jobs();
  if (total_reps == 0) fail("no representatives in any cluster");
  // Training indices address the original fit-time job sequence, which has
  // training_weight() rows (== total_reps on a direct fit where every job is
  // its own representative).
  const std::uint64_t total_jobs = training_weight();

  std::unordered_set<std::uint64_t> train_indices;
  train_indices.reserve(total_reps);
  for (std::size_t c = 0; c < profiles.size(); ++c) {
    check_profile(profiles[c], c, representatives[c].size());
    std::uint64_t cluster_weight = 0;
    for (const Representative& rep : representatives[c]) {
      const std::string where = "representative '" + rep.job_name + "': ";
      if (rep.job_name.empty()) fail("representative with empty job name");
      if (rep.count == 0) fail(where + "zero multiplicity count");
      cluster_weight += rep.count;
      if (rep.training_index >= total_jobs || !train_indices.insert(rep.training_index).second) {
        fail(where + "training index out of range or duplicated");
      }
      if (!finite(rep.self_norm) || rep.self_norm < 0.0) {
        fail(where + "non-finite or negative self norm");
      }
      int prev_id = -1;
      double norm_sq = 0.0;
      for (const auto& [id, value] : rep.features.items) {
        if (id <= prev_id) fail(where + "feature ids not strictly ascending");
        if (id >= oov_id()) fail(where + "feature id outside the frozen dictionary");
        if (!finite(value) || value < 0.0) fail(where + "feature value out of range");
        norm_sq += value * value;
        prev_id = id;
      }
      // The stored norm exists to skip this sqrt at serve time; a mismatch
      // means the sections came from different fits (or corruption slipped
      // past the CRCs). Tolerance covers cross-platform FP contraction only.
      const double norm = std::sqrt(norm_sq);
      if (std::abs(norm - rep.self_norm) > 1e-9 * std::max(1.0, norm)) {
        fail(where + "self norm inconsistent with feature vector");
      }
    }
    // The profile's population is the source of truth for group shares;
    // representative counts must account for every one of those jobs.
    if (cluster_weight != profiles[c].population) {
      fail("cluster " + std::to_string(c) +
           ": representative counts do not sum to population");
    }
  }
}

}  // namespace cwgl::model

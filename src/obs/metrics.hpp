#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/stopwatch.hpp"

namespace cwgl::obs {

/// Shard index of the calling thread: a dense id assigned on first use, so
/// two pool workers practically never share a counter cache line.
std::size_t thread_shard() noexcept;

/// Monotonic event counter with a lock-free hot path.
///
/// Writes go to one of `kShards` cache-line-padded relaxed atomics selected
/// by the calling thread (mirroring the sharded WL label dictionary: shards
/// proceed independently, a fold reconciles them at read time). `add()`
/// costs one uncontended relaxed fetch_add; `value()` folds the shards and
/// is exact once concurrent writers are quiesced, a snapshot otherwise.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    shards_[thread_shard() & (kShards - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Point-in-time level plus its high-water mark (e.g. queue depth).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    record_max(v);
  }

  void add(std::int64_t delta) noexcept {
    record_max(value_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }

  /// Raises the high-water mark without moving the level.
  void record_max(std::int64_t v) noexcept {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t max_value() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket latency histogram over non-negative integer samples
/// (microseconds by convention; metric names carry a `_us` suffix).
///
/// Buckets are powers of two: bucket i counts samples whose bit width is i,
/// i.e. values in [2^(i-1), 2^i). 48 buckets cover 0 .. ~2^47 us (over three
/// days), so no sample is ever out of range. record() is lock-free: one
/// relaxed fetch_add per of bucket/count/sum plus a relaxed max update.
/// Quantiles are bucket-resolution estimates (upper bound of the bucket the
/// rank falls in) — plenty for "where did the time go" reporting.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t sample) noexcept {
    const std::size_t b =
        std::min<std::size_t>(std::bit_width(sample), kBuckets - 1);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (sample > seen && !max_.compare_exchange_weak(
                                seen, sample, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  /// Upper bound of the bucket holding the q-quantile sample (q in [0,1]).
  std::uint64_t quantile(double q) const noexcept;

  /// Interpolated q-quantile estimate: locates the bucket holding the rank
  /// like quantile(), then places the value by linear interpolation over the
  /// bucket's [2^(b-1), 2^b) range assuming samples spread uniformly inside
  /// it. Because the estimate stays inside the true sample's bucket, it is
  /// within a factor of 2 of the exact quantile (within +/-1 absolutely for
  /// the zero bucket) — the bound the unit tests pin. Capped at max().
  double estimate_quantile(double q) const noexcept;

  void reset() noexcept;

  /// Per-bucket counts (index = sample bit width), for tests and reports.
  std::array<std::uint64_t, kBuckets> bucket_counts() const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Immutable fold of a registry at one instant.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
    bool operator==(const CounterEntry&) const = default;
  };
  struct GaugeEntry {
    std::string name;
    std::int64_t value = 0;
    std::int64_t max = 0;
    bool operator==(const GaugeEntry&) const = default;
  };
  struct HistogramEntry {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
    /// Interpolated estimates (Histogram::estimate_quantile at snapshot).
    double p50_est = 0.0;
    double p90_est = 0.0;
    double p99_est = 0.0;
    /// Per-bucket counts (index = sample bit width), trailing zero buckets
    /// trimmed — what the Prometheus exposition's `le` series is built from.
    std::vector<std::uint64_t> buckets;
    bool operator==(const HistogramEntry&) const = default;
  };

  std::vector<CounterEntry> counters;      ///< sorted by name
  std::vector<GaugeEntry> gauges;          ///< sorted by name
  std::vector<HistogramEntry> histograms;  ///< sorted by name

  /// Counter value by exact name; 0 when absent.
  std::uint64_t counter(std::string_view name) const noexcept;

  /// Distinct `stage.subsystem` prefixes (first two dot-separated segments)
  /// across every instrument — the coverage measure of a pipeline run.
  std::vector<std::string> subsystems() const;

  /// One instrument per line: `name value` / `name value (max M)` /
  /// `name count=N sum=S p50=.. p90=.. max=..`.
  void write_text(std::ostream& out) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  void write_json(std::ostream& out) const;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Thread-safe named-instrument registry.
///
/// Instruments are created on first lookup and live as long as the registry
/// (references handed out stay stable), so call sites resolve once and keep
/// the pointer — the per-event hot path never touches the registry mutex.
///
/// Event *counting* is always on (one relaxed atomic per event — see
/// Counter). Anything that needs a clock read (latency histograms, span
/// timestamps) is additionally gated on `timing_enabled()`: a single
/// relaxed bool load when idle, flipped on by `--metrics`/`--trace-out` or
/// a bench sink.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  bool timing_enabled() const noexcept {
    return timing_enabled_.load(std::memory_order_relaxed);
  }
  void set_timing_enabled(bool on) noexcept {
    timing_enabled_.store(on, std::memory_order_relaxed);
  }

  /// Zeroes every instrument (names and references survive). Only
  /// meaningful when concurrent writers are quiesced — a reset racing a
  /// writer loses the racing increments, nothing worse.
  void reset();

  MetricsSnapshot snapshot() const;

  /// The process-wide registry every pre-wired subsystem reports into.
  /// Intentionally immortal (leaked on purpose) so worker threads draining
  /// during static destruction can still record safely.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::atomic<bool> timing_enabled_{false};
};

/// RAII latency probe: records elapsed microseconds into `h` on scope exit,
/// but only when the registry's timing gate was open at construction —
/// otherwise both endpoints cost a relaxed load and no clock is read.
class ScopedLatency {
 public:
  ScopedLatency(const MetricsRegistry& registry, Histogram& h) noexcept
      : histogram_(registry.timing_enabled() ? &h : nullptr) {
    if (histogram_ != nullptr) watch_.reset();
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    if (histogram_ != nullptr) histogram_->record(watch_.micros());
  }

 private:
  Histogram* histogram_;
  Stopwatch watch_;
};

}  // namespace cwgl::obs

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>

namespace cwgl::obs {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

std::string_view to_string(LogLevel level) noexcept;

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-sensitive); returns
/// false and leaves `out` untouched on anything else.
bool parse_log_level(std::string_view text, LogLevel& out) noexcept;

/// One typed key=value pair attached to a log record. Built implicitly at
/// call sites: `{"fd", fd}`, `{"path", path}`, `{"ok", true}`.
struct LogField {
  enum class Kind { String, Unsigned, Signed, Double, Bool };

  LogField(std::string_view k, std::string_view v)
      : key(k), kind(Kind::String), text(v) {}
  LogField(std::string_view k, const char* v)
      : key(k), kind(Kind::String), text(v) {}
  LogField(std::string_view k, const std::string& v)
      : key(k), kind(Kind::String), text(v) {}
  /// One template covers every integer width without the LP64 overload
  /// collisions (uint64_t == size_t == unsigned long on this target).
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  LogField(std::string_view k, T v) : key(k) {
    if constexpr (std::is_signed_v<T>) {
      kind = Kind::Signed;
      signed_value = static_cast<std::int64_t>(v);
    } else {
      kind = Kind::Unsigned;
      unsigned_value = static_cast<std::uint64_t>(v);
    }
  }
  LogField(std::string_view k, double v)
      : key(k), kind(Kind::Double), double_value(v) {}
  LogField(std::string_view k, bool v)
      : key(k), kind(Kind::Bool), bool_value(v) {}

  std::string_view key;
  Kind kind;
  std::string_view text;
  std::uint64_t unsigned_value = 0;
  std::int64_t signed_value = 0;
  double double_value = 0.0;
  bool bool_value = false;
};

/// Thread-safe leveled structured logger.
///
/// Records are one line each: either human-readable text
/// (`2026-08-08T12:34:56.789Z WARN request_shed inflight=64`) or JSON lines
/// (`{"ts":"...","level":"warn","event":"request_shed","inflight":64}`).
/// A token bucket caps the emission rate so a daemon shedding thousands of
/// requests per second cannot melt its own log; suppressed records are
/// counted and the count is attached to the next record that does get
/// through (`suppressed=N`), so bursts stay visible without the volume.
///
/// The default level is Off — library code can log unconditionally and
/// stays silent unless the embedding binary opts in (cwgl serve --log).
class Logger {
 public:
  struct Options {
    LogLevel level = LogLevel::Info;
    bool json = false;          ///< JSON lines instead of text
    double rate_per_s = 200.0;  ///< sustained records/second; <=0 = unlimited
    double burst = 50.0;        ///< token bucket capacity
  };

  Logger() = default;
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Points the logger at a non-owned stream (e.g. std::cerr). Passing
  /// nullptr disables output entirely.
  void configure(std::ostream* sink, Options options);

  /// Opens `path` for appending and logs into it. Returns false (with a
  /// message in `*error` when non-null) if the file cannot be opened; the
  /// logger keeps its previous sink in that case.
  bool open(const std::string& path, Options options, std::string* error);

  /// Cheap pre-flight check so call sites can skip building fields.
  bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >=
           level_.load(std::memory_order_relaxed);
  }

  void log(LogLevel level, std::string_view event,
           std::initializer_list<LogField> fields = {});

  void debug(std::string_view event, std::initializer_list<LogField> f = {}) {
    log(LogLevel::Debug, event, f);
  }
  void info(std::string_view event, std::initializer_list<LogField> f = {}) {
    log(LogLevel::Info, event, f);
  }
  void warn(std::string_view event, std::initializer_list<LogField> f = {}) {
    log(LogLevel::Warn, event, f);
  }
  void error(std::string_view event, std::initializer_list<LogField> f = {}) {
    log(LogLevel::Error, event, f);
  }

  std::uint64_t emitted() const noexcept {
    return emitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t suppressed() const noexcept {
    return suppressed_.load(std::memory_order_relaxed);
  }

  /// Process-wide logger, immortal like MetricsRegistry::global(), and Off
  /// until something configures it — existing tests and CLI paths stay
  /// byte-identical unless they opt in.
  static Logger& global();

 private:
  void write_record(LogLevel level, std::string_view event,
                    std::initializer_list<LogField> fields,
                    std::uint64_t suppressed_since_last);

  std::atomic<int> level_{static_cast<int>(LogLevel::Off)};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> suppressed_{0};

  mutable std::mutex mutex_;
  std::ostream* sink_ = nullptr;              ///< non-owned (configure)
  std::unique_ptr<std::ostream> owned_sink_;  ///< owned (open)
  Options options_;
  double tokens_ = 0.0;
  std::uint64_t pending_suppressed_ = 0;
  std::chrono::steady_clock::time_point last_refill_{};
};

}  // namespace cwgl::obs

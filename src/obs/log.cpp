#include "obs/log.hpp"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <ostream>

#include "obs/json_escape.hpp"

namespace cwgl::obs {

namespace {

/// RFC 3339 UTC timestamp with millisecond resolution.
void write_timestamp(std::ostream& out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm utc{};
  gmtime_r(&secs, &utc);
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(ms));
  out << buffer;
}

void write_double_value(std::ostream& out, double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.12g", v);
  out << buffer;
}

void write_field_value_json(std::ostream& out, const LogField& f) {
  switch (f.kind) {
    case LogField::Kind::String:
      write_json_string(out, f.text);
      break;
    case LogField::Kind::Unsigned:
      out << f.unsigned_value;
      break;
    case LogField::Kind::Signed:
      out << f.signed_value;
      break;
    case LogField::Kind::Double:
      write_double_value(out, f.double_value);
      break;
    case LogField::Kind::Bool:
      out << (f.bool_value ? "true" : "false");
      break;
  }
}

void write_field_value_text(std::ostream& out, const LogField& f) {
  switch (f.kind) {
    case LogField::Kind::String:
      out << f.text;
      break;
    case LogField::Kind::Unsigned:
      out << f.unsigned_value;
      break;
    case LogField::Kind::Signed:
      out << f.signed_value;
      break;
    case LogField::Kind::Double:
      write_double_value(out, f.double_value);
      break;
    case LogField::Kind::Bool:
      out << (f.bool_value ? "true" : "false");
      break;
  }
}

}  // namespace

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "info";
}

bool parse_log_level(std::string_view text, LogLevel& out) noexcept {
  if (text == "debug") { out = LogLevel::Debug; return true; }
  if (text == "info") { out = LogLevel::Info; return true; }
  if (text == "warn") { out = LogLevel::Warn; return true; }
  if (text == "error") { out = LogLevel::Error; return true; }
  if (text == "off") { out = LogLevel::Off; return true; }
  return false;
}

void Logger::configure(std::ostream* sink, Options options) {
  std::lock_guard lock(mutex_);
  owned_sink_.reset();
  sink_ = sink;
  options_ = options;
  tokens_ = options.burst;
  pending_suppressed_ = 0;
  last_refill_ = std::chrono::steady_clock::now();
  level_.store(sink == nullptr ? static_cast<int>(LogLevel::Off)
                               : static_cast<int>(options.level),
               std::memory_order_relaxed);
}

bool Logger::open(const std::string& path, Options options,
                  std::string* error) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::app);
  if (!*file) {
    if (error != nullptr) *error = "cannot open log file: " + path;
    return false;
  }
  std::lock_guard lock(mutex_);
  owned_sink_ = std::move(file);
  sink_ = owned_sink_.get();
  options_ = options;
  tokens_ = options.burst;
  pending_suppressed_ = 0;
  last_refill_ = std::chrono::steady_clock::now();
  level_.store(static_cast<int>(options.level), std::memory_order_relaxed);
  return true;
}

void Logger::log(LogLevel level, std::string_view event,
                 std::initializer_list<LogField> fields) {
  if (!enabled(level)) return;
  std::lock_guard lock(mutex_);
  if (sink_ == nullptr) return;
  if (options_.rate_per_s > 0.0) {
    const auto now = std::chrono::steady_clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - last_refill_).count();
    last_refill_ = now;
    tokens_ = std::min(options_.burst,
                       tokens_ + elapsed * options_.rate_per_s);
    if (tokens_ < 1.0) {
      ++pending_suppressed_;
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    tokens_ -= 1.0;
  }
  const std::uint64_t held_back = pending_suppressed_;
  pending_suppressed_ = 0;
  write_record(level, event, fields, held_back);
  emitted_.fetch_add(1, std::memory_order_relaxed);
}

void Logger::write_record(LogLevel level, std::string_view event,
                          std::initializer_list<LogField> fields,
                          std::uint64_t suppressed_since_last) {
  std::ostream& out = *sink_;
  if (options_.json) {
    out << "{\"ts\":\"";
    write_timestamp(out);
    out << "\",\"level\":\"" << to_string(level) << "\",\"event\":";
    write_json_string(out, event);
    for (const auto& f : fields) {
      out << ",";
      write_json_string(out, f.key);
      out << ":";
      write_field_value_json(out, f);
    }
    if (suppressed_since_last > 0) {
      out << ",\"suppressed\":" << suppressed_since_last;
    }
    out << "}\n";
  } else {
    write_timestamp(out);
    const char* tag = "INFO";
    switch (level) {
      case LogLevel::Debug: tag = "DEBUG"; break;
      case LogLevel::Info: tag = "INFO"; break;
      case LogLevel::Warn: tag = "WARN"; break;
      case LogLevel::Error: tag = "ERROR"; break;
      case LogLevel::Off: break;
    }
    out << " " << tag << " " << event;
    for (const auto& f : fields) {
      out << " " << f.key << "=";
      write_field_value_text(out, f);
    }
    if (suppressed_since_last > 0) {
      out << " suppressed=" << suppressed_since_last;
    }
    out << "\n";
  }
  out.flush();
}

Logger& Logger::global() {
  static Logger* const instance = new Logger();
  return *instance;
}

}  // namespace cwgl::obs

#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace cwgl::obs {

/// Maps a dotted cwgl metric name onto the Prometheus name grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]*: dots (and any other illegal byte) become
/// underscores and the result is prefixed with `cwgl_` so scraped series
/// never collide with other exporters on the same host.
std::string prometheus_name(std::string_view name);

/// Writes `snap` in Prometheus text exposition format 0.0.4.
///
/// Mapping:
///  - Counter  -> `<name>_total` with `# TYPE ... counter`.
///  - Gauge    -> `<name>` (level) plus `<name>_max` (high-water), both gauge.
///  - Histogram-> native Prometheus histogram: cumulative `<name>_bucket`
///    series with `le` set to each bit-width bucket's inclusive upper bound
///    (2^b - 1; the zero bucket is `le="0"`), a `+Inf` bucket, and
///    `<name>_sum` / `<name>_count`.
///
/// Output ends with a newline, as scrapers require.
void write_prometheus(std::ostream& out, const MetricsSnapshot& snap);

}  // namespace cwgl::obs

#pragma once

#include <ostream>
#include <string_view>

namespace cwgl::obs {

/// Minimal JSON string escape for metric/span names (plain ASCII by
/// convention; this keeps output well-formed even if one is not). obs sits
/// below util in the layering, so it cannot reuse util::JsonWriter.
inline void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace cwgl::obs

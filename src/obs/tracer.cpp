#include "obs/tracer.hpp"

#include <ostream>

#include "obs/json_escape.hpp"

namespace cwgl::obs {

void Tracer::start(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  events_.clear();
  tids_.clear();
  capacity_ = capacity;
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_relaxed); }

int Tracer::tid_locked(std::thread::id id) {
  const auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const int tid = static_cast<int>(tids_.size());
  tids_.emplace(id, tid);
  return tid;
}

void Tracer::record_begin(std::string_view name) {
  // Timestamp inside the lock: a single thread's events then carry
  // monotonically non-decreasing ts in record order, which is what the
  // nesting validity of the B/E stream rests on.
  std::lock_guard lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (capacity_ != 0 && events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent e;
  e.name = name;
  e.phase = 'B';
  e.ts_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  e.tid = tid_locked(std::this_thread::get_id());
  events_.push_back(std::move(e));
}

void Tracer::record_end(
    std::string_view name,
    std::vector<std::pair<std::string, std::uint64_t>> args) {
  std::lock_guard lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (capacity_ != 0 && events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent e;
  e.name = name;
  e.phase = 'E';
  e.ts_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  e.tid = tid_locked(std::this_thread::get_id());
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::vector<TraceEvent> Tracer::drain() {
  std::lock_guard lock(mutex_);
  std::vector<TraceEvent> out;
  out.swap(events_);
  return out;
}

void write_trace_events_json(std::ostream& out,
                             const std::vector<TraceEvent>& events) {
  out << "[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":";
    write_json_string(out, e.name);
    out << ",\"cat\":\"cwgl\",\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":"
        << e.tid << ",\"ts\":" << e.ts_us;
    if (!e.args.empty()) {
      out << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        if (!first_arg) out << ",";
        first_arg = false;
        write_json_string(out, key);
        out << ":" << value;
      }
      out << "}";
    }
    out << "}";
  }
  out << "]";
}

void Tracer::write_json(std::ostream& out) const {
  std::vector<TraceEvent> snapshot;
  {
    std::lock_guard lock(mutex_);
    snapshot = events_;
  }
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":";
  write_trace_events_json(out, snapshot);
  out << "}";
}

Tracer& Tracer::global() {
  static Tracer* const instance = new Tracer();
  return *instance;
}

}  // namespace cwgl::obs

#include "obs/prometheus.hpp"

#include <cctype>
#include <cstdint>
#include <ostream>

namespace cwgl::obs {

namespace {

void write_type(std::ostream& out, const std::string& name,
                std::string_view type) {
  out << "# TYPE " << name << " " << type << "\n";
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "cwgl_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    const bool legal = std::isalnum(uc) != 0 || c == '_' || c == ':';
    out.push_back(legal ? c : '_');
  }
  return out;
}

void write_prometheus(std::ostream& out, const MetricsSnapshot& snap) {
  for (const auto& c : snap.counters) {
    const std::string name = prometheus_name(c.name) + "_total";
    write_type(out, name, "counter");
    out << name << " " << c.value << "\n";
  }
  for (const auto& g : snap.gauges) {
    const std::string name = prometheus_name(g.name);
    write_type(out, name, "gauge");
    out << name << " " << g.value << "\n";
    write_type(out, name + "_max", "gauge");
    out << name << "_max " << g.max << "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::string name = prometheus_name(h.name);
    write_type(out, name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      // Bucket b holds samples of bit width b, so its inclusive upper
      // bound is 2^b - 1 (the zero bucket holds only the value 0).
      const std::uint64_t le = b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
      out << name << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << name << "_sum " << h.sum << "\n";
    out << name << "_count " << h.count << "\n";
  }
}

}  // namespace cwgl::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "obs/json_escape.hpp"

namespace cwgl::obs {

namespace {

std::string_view stage_subsystem(std::string_view name) {
  std::size_t dot = name.find('.');
  if (dot == std::string_view::npos) return name;
  dot = name.find('.', dot + 1);
  return dot == std::string_view::npos ? name : name.substr(0, dot);
}

/// Shortest-round-trip double formatting matching util::JsonWriter (obs
/// cannot link util, so the format is duplicated, not shared).
void write_json_double(std::ostream& out, double v) {
  if (!(v == v) || v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
    out << "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.12g", v);
  out << buffer;
}

}  // namespace

std::size_t thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the quantile sample, 1-based; walk buckets cumulatively.
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Upper bound of bucket b: values with bit width b are < 2^b.
      return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
    }
  }
  return max();
}

double Histogram::estimate_quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Same 0-based rank convention as quantile(), kept fractional so the
  // within-bucket interpolation below has sub-sample resolution.
  const double rank = q * static_cast<double>(n - 1);
  double seen = 0.0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const auto in_bucket =
        static_cast<double>(buckets_[b].load(std::memory_order_relaxed));
    if (in_bucket <= 0.0) continue;
    if (rank < seen + in_bucket) {
      // Bucket b covers [2^(b-1), 2^b); bucket 0 holds only the value 0.
      const double lo = b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (b - 1));
      double hi = b == 0 ? 1.0 : static_cast<double>(std::uint64_t{1} << b);
      // The largest observed sample tightens the top bucket's open end.
      const double cap = static_cast<double>(max()) + 1.0;
      if (hi > cap) hi = std::max(lo + 1.0, cap);
      const double fraction = (rank - seen + 0.5) / in_bucket;
      const double estimate = lo + fraction * (hi - lo);
      return std::min(estimate, static_cast<double>(max()));
    }
    seen += in_bucket;
  }
  return static_cast<double>(max());
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::bucket_counts()
    const noexcept {
  std::array<std::uint64_t, kBuckets> out{};
  for (std::size_t b = 0; b < kBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::vector<std::string> MetricsSnapshot::subsystems() const {
  std::vector<std::string> out;
  const auto add = [&](std::string_view name) {
    const std::string_view prefix = stage_subsystem(name);
    for (const auto& existing : out) {
      if (existing == prefix) return;
    }
    out.emplace_back(prefix);
  };
  for (const auto& c : counters) add(c.name);
  for (const auto& g : gauges) add(g.name);
  for (const auto& h : histograms) add(h.name);
  std::sort(out.begin(), out.end());
  return out;
}

void MetricsSnapshot::write_text(std::ostream& out) const {
  for (const auto& c : counters) {
    out << "  " << c.name << " " << c.value << "\n";
  }
  for (const auto& g : gauges) {
    out << "  " << g.name << " " << g.value << " (max " << g.max << ")\n";
  }
  for (const auto& h : histograms) {
    out << "  " << h.name << " count=" << h.count << " sum=" << h.sum
        << " p50=" << h.p50 << " p90=" << h.p90 << " max=" << h.max << "\n";
  }
}

void MetricsSnapshot::write_json(std::ostream& out) const {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& c : counters) {
    if (!first) out << ",";
    first = false;
    write_json_string(out, c.name);
    out << ":" << c.value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& g : gauges) {
    if (!first) out << ",";
    first = false;
    write_json_string(out, g.name);
    out << ":{\"value\":" << g.value << ",\"max\":" << g.max << "}";
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out << ",";
    first = false;
    write_json_string(out, h.name);
    out << ":{\"count\":" << h.count << ",\"sum\":" << h.sum
        << ",\"p50\":" << h.p50 << ",\"p90\":" << h.p90
        << ",\"p99\":" << h.p99 << ",\"max\":" << h.max;
    out << ",\"p50_est\":";
    write_json_double(out, h.p50_est);
    out << ",\"p90_est\":";
    write_json_double(out, h.p90_est);
    out << ",\"p99_est\":";
    write_json_double(out, h.p99_est);
    out << ",\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out << ",";
      out << h.buckets[b];
    }
    out << "]}";
  }
  out << "}}";
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value(), g->max_value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramEntry entry{name,
                                          h->count(),
                                          h->sum(),
                                          h->max(),
                                          h->quantile(0.50),
                                          h->quantile(0.90),
                                          h->quantile(0.99),
                                          h->estimate_quantile(0.50),
                                          h->estimate_quantile(0.90),
                                          h->estimate_quantile(0.99),
                                          {}};
    const auto buckets = h->bucket_counts();
    std::size_t last = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b] != 0) last = b + 1;
    }
    entry.buckets.assign(buckets.begin(), buckets.begin() + last);
    snap.histograms.push_back(std::move(entry));
  }
  return snap;  // maps iterate sorted, so entries are sorted by name
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* const instance = new MetricsRegistry();
  return *instance;
}

}  // namespace cwgl::obs

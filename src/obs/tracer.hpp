#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cwgl::obs {

/// One Chrome trace-event duration record ('B' begins a span, 'E' ends it).
struct TraceEvent {
  std::string name;
  char phase = 'B';       ///< 'B' or 'E'
  std::uint64_t ts_us = 0;  ///< microseconds since Tracer::start()
  int tid = 0;            ///< dense per-tracer thread id
  /// Counter attributes, attached to the 'E' event of a span.
  std::vector<std::pair<std::string, std::uint64_t>> args;
};

/// Collector of RAII `Span` scopes, serialized as Chrome trace-event JSON
/// (loadable in chrome://tracing and Perfetto).
///
/// Disabled by default: a `Span` constructed against a stopped tracer costs
/// one relaxed atomic load and reads no clock. `start()` arms collection;
/// each span then appends a 'B' event at construction and an 'E' event at
/// destruction (mutex-protected — spans mark pipeline stages and batches,
/// not per-row work, so the lock is cold). Because both events come from the
/// span's own thread, per-thread B/E nesting is well-formed by construction.
///
/// Call `stop()` only after every span in flight has been destroyed, then
/// `write_json()`; stopping mid-span drops that span's 'E' and the file
/// would show it as never ending.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Clears any previous events, re-bases timestamps at now, arms spans.
  /// `capacity` bounds the event buffer: once full, further events are
  /// dropped and counted (see dropped()) instead of growing without limit —
  /// the mode a resident daemon runs in. 0 means unbounded (the offline
  /// --trace-out mode, where the run is finite by construction).
  void start(std::size_t capacity = 0);

  /// Disarms span collection; collected events stay until the next start().
  void stop();

  /// Snapshot of collected events in record order (tests).
  std::vector<TraceEvent> events() const;

  /// Removes and returns all collected events, keeping collection armed and
  /// the timestamp epoch unchanged — the `trace` admin request's read side.
  std::vector<TraceEvent> drain();

  /// Events discarded because the buffer was at capacity since start().
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// {"displayTimeUnit":"ms","traceEvents":[...]}.
  void write_json(std::ostream& out) const;

  /// The process-wide tracer the pipeline spans report into. Immortal, like
  /// the global metrics registry.
  static Tracer& global();

  // Implementation interface for Span; not for direct use.
  void record_begin(std::string_view name);
  void record_end(std::string_view name,
                  std::vector<std::pair<std::string, std::uint64_t>> args);

 private:
  int tid_locked(std::thread::id id);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::size_t capacity_ = 0;  ///< 0 = unbounded
  std::unordered_map<std::thread::id, int> tids_;
  std::chrono::steady_clock::time_point epoch_{};
};

/// Writes `events` as a bare Chrome trace-event JSON array — the payload
/// the `trace` admin response carries (Tracer::write_json wraps the same
/// array in the {"displayTimeUnit","traceEvents"} envelope).
void write_trace_events_json(std::ostream& out,
                             const std::vector<TraceEvent>& events);

/// RAII span scope. When the tracer is stopped, construction and
/// destruction each cost one relaxed atomic load; when started, the scope
/// becomes a B/E pair carrying `arg()` attributes on the end event.
class Span {
 public:
  explicit Span(std::string_view name, Tracer& tracer = Tracer::global())
      : tracer_(tracer), active_(tracer.enabled()) {
    if (active_) {
      name_ = name;
      tracer_.record_begin(name_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a counter attribute to the span's end event.
  void arg(std::string_view key, std::uint64_t value) {
    if (active_) args_.emplace_back(key, value);
  }

  bool active() const noexcept { return active_; }

  /// Closes the span before the end of the scope (e.g. to exclude cleanup
  /// work from the measured region). Idempotent; the destructor becomes a
  /// no-op afterwards.
  void end() {
    if (active_) {
      tracer_.record_end(name_, std::move(args_));
      active_ = false;
    }
  }

  ~Span() { end(); }

 private:
  Tracer& tracer_;
  bool active_;
  std::string name_;
  std::vector<std::pair<std::string, std::uint64_t>> args_;
};

}  // namespace cwgl::obs

#pragma once

#include <chrono>
#include <cstdint>

namespace cwgl::obs {

/// Monotonic wall-clock stopwatch — the one timing primitive shared by the
/// CLI reports, the benches, and the observability subsystem itself, so
/// every "ms" printed anywhere in the tree is measured the same way.
class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  Stopwatch() : start_(clock::now()) {}

  /// Resets the epoch to now.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset.
  double millis() const { return seconds() * 1e3; }

  /// Whole microseconds elapsed — the unit of the latency histograms and
  /// trace-event timestamps.
  std::uint64_t micros() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                              start_)
            .count());
  }

 private:
  clock::time_point start_;
};

}  // namespace cwgl::obs

#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"
#include "obs/tracer.hpp"

namespace cwgl::serve {

namespace {

double exact_quantile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(rank, sorted.size() - 1)]);
}

}  // namespace

BatchStats classify_batch(const Classifier& classifier,
                          std::span<const core::JobDag> jobs,
                          util::ThreadPool* pool,
                          std::vector<Prediction>* out) {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& runs = registry.counter("serve.batch.runs");
  static obs::Counter& batch_jobs = registry.counter("serve.batch.jobs");
  static obs::Histogram& latency_us =
      registry.histogram("serve.classify.latency_us");

  obs::Span span("serve.classify_batch");
  span.arg("jobs", jobs.size());

  std::vector<Prediction> predictions(jobs.size());
  std::vector<std::uint64_t> latencies(jobs.size());
  const bool timing = registry.timing_enabled();

  obs::Stopwatch wall;
  const auto classify_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      obs::Stopwatch per_job;
      predictions[i] = classifier.classify(jobs[i]);
      latencies[i] = per_job.micros();
    }
  };
  if (pool != nullptr && jobs.size() > 1) {
    util::parallel_for_chunked(*pool, 0, jobs.size(), 8, classify_range);
  } else {
    classify_range(0, jobs.size());
  }

  BatchStats stats;
  stats.jobs = jobs.size();
  stats.wall_seconds = wall.seconds();
  stats.jobs_per_second =
      stats.wall_seconds > 0.0
          ? static_cast<double>(jobs.size()) / stats.wall_seconds
          : 0.0;
  stats.cluster_counts.assign(classifier.model().num_clusters(), 0);
  for (const Prediction& p : predictions) {
    if (p.oov_hits > 0) ++stats.oov_jobs;
    ++stats.cluster_counts[static_cast<std::size_t>(p.cluster)];
  }

  // Exact quantiles from the full sample set; the global histogram gets the
  // same samples (bucket resolution) only when timing is on, so an idle
  // process never pays for these clock reads twice.
  std::sort(latencies.begin(), latencies.end());
  stats.p50_latency_us = exact_quantile(latencies, 0.50);
  stats.p90_latency_us = exact_quantile(latencies, 0.90);
  stats.p99_latency_us = exact_quantile(latencies, 0.99);
  stats.max_latency_us =
      latencies.empty() ? 0.0 : static_cast<double>(latencies.back());
  if (timing) {
    for (std::uint64_t sample : latencies) latency_us.record(sample);
  }

  runs.add();
  batch_jobs.add(jobs.size());
  span.arg("jobs_per_second", static_cast<std::uint64_t>(stats.jobs_per_second));

  if (out != nullptr) *out = std::move(predictions);
  return stats;
}

}  // namespace cwgl::serve

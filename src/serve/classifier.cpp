#include "serve/classifier.hpp"

#include <limits>
#include <utility>

#include "obs/metrics.hpp"

namespace cwgl::serve {

namespace {

struct ServeMetrics {
  obs::Counter* classified;
  obs::Counter* oov_jobs;

  static const ServeMetrics& get() {
    static const ServeMetrics m = [] {
      auto& reg = obs::MetricsRegistry::global();
      return ServeMetrics{&reg.counter("serve.classify.jobs"),
                          &reg.counter("serve.classify.oov_jobs")};
    }();
    return m;
  }
};

}  // namespace

Classifier::Classifier(model::FittedModel m)
    : model_((m.validate(), std::move(m))),
      featurizer_(model_.wl, dict_, model_.oov_id()) {
  // Single-threaded interning assigns dense first-seen ids, so dictionary
  // entry i gets id i back — the exact id space the frozen feature vectors
  // were encoded in. validate() has already rejected duplicate signatures,
  // which is what makes this bijective.
  for (const std::string& signature : model_.dictionary) dict_.intern(signature);
  // Representative pointers are stable from here on: model_ is owned and
  // never mutated after construction (the serving contract).
  std::size_t reps = 0;
  for (const auto& cluster : model_.representatives) reps += cluster.size();
  scan_.reserve(reps);
  for (std::size_t c = 0; c < model_.representatives.size(); ++c) {
    for (const model::Representative& rep : model_.representatives[c]) {
      scan_.push_back(ScanEntry{&rep, static_cast<int>(c)});
    }
  }
}

Prediction Classifier::classify(const core::JobDag& job) const {
  if (model_.conflated) {
    return classify_graph(make_labeled(core::conflate_job(job)));
  }
  return classify_graph(make_labeled(job));
}

kernel::LabeledGraph Classifier::make_labeled(const core::JobDag& job) const {
  kernel::LabeledGraph g;
  g.graph = job.dag;
  if (model_.use_type_labels) g.labels = job.type_labels();
  return g;
}

Prediction Classifier::classify_graph(const kernel::LabeledGraph& g) const {
  Prediction out;
  kernel::SparseVector phi = featurizer_.featurize(g, &out.oov_hits);
  const double norm = phi.norm();

  out.scores.assign(model_.num_clusters(), 0.0);
  double best = -std::numeric_limits<double>::infinity();
  std::uint64_t best_index = std::numeric_limits<std::uint64_t>::max();
  int best_cluster = 0;
  const model::Representative* nearest = nullptr;

  // Flat scan over every representative: each similarity is one sparse dot
  // (the galloping fast path kicks in when probe and representative nnz
  // are skewed), same visit order and arithmetic as the nested loop this
  // replaced, so predictions — including ties — are unchanged.
  for (const ScanEntry& entry : scan_) {
    const model::Representative& rep = *entry.rep;
    const auto c = static_cast<std::size_t>(entry.cluster);
    double sim = phi.dot(rep.features);
    if (model_.normalize) {
      const double denom = norm * rep.self_norm;
      sim = denom > 0.0 ? sim / denom : 0.0;
    }
    if (sim > out.scores[c]) out.scores[c] = sim;
    if (sim > best || (sim == best && rep.training_index < best_index)) {
      best = sim;
      best_index = rep.training_index;
      best_cluster = entry.cluster;
      nearest = &rep;
    }
  }

  out.cluster = best_cluster;
  out.cluster_letter = model::FittedModel::letter(
      static_cast<std::size_t>(best_cluster));
  out.similarity = best;
  if (nearest != nullptr) out.nearest_job = nearest->job_name;
  const model::ClusterProfile& profile =
      model_.profiles[static_cast<std::size_t>(best_cluster)];
  out.predicted_critical_path = profile.median_critical_path;
  out.predicted_width = profile.median_width;

  const ServeMetrics& metrics = ServeMetrics::get();
  metrics.classified->add();
  if (out.oov_hits > 0) metrics.oov_jobs->add();
  return out;
}

}  // namespace cwgl::serve

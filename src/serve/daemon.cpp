#include "serve/daemon.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "core/job_dag.hpp"
#include "model/format.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/tracer.hpp"
#include "trace/schema.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"

#ifndef CWGL_VERSION
#define CWGL_VERSION "0.0.0"
#endif

namespace cwgl::serve {

namespace {

constexpr const char* kVersion = "cwgl " CWGL_VERSION " (cwgl-serve-v1)";

/// Global `serve.daemon.*` instruments, resolved once. Per-instance atomics
/// carry the same events for tests that run several daemons in one process.
struct GlobalMetrics {
  obs::Counter& connections;
  obs::Counter& requests;
  obs::Counter& served;
  obs::Counter& shed;
  obs::Counter& timeout;
  obs::Counter& errors;
  obs::Counter& rejected_draining;
  obs::Counter& batches;
  obs::Counter& reloads;
  obs::Counter& reload_failures;
  obs::Gauge& queue_depth;
  obs::Histogram& batch_size;
};

GlobalMetrics& gm() {
  auto& r = obs::MetricsRegistry::global();
  static GlobalMetrics m{r.counter("serve.daemon.connections"),
                         r.counter("serve.daemon.requests"),
                         r.counter("serve.daemon.served"),
                         r.counter("serve.daemon.shed"),
                         r.counter("serve.daemon.timeout"),
                         r.counter("serve.daemon.errors"),
                         r.counter("serve.daemon.rejected_draining"),
                         r.counter("serve.daemon.batches"),
                         r.counter("serve.daemon.reloads"),
                         r.counter("serve.daemon.reload_failures"),
                         r.gauge("serve.daemon.queue_depth"),
                         r.histogram("serve.daemon.batch_size")};
  return m;
}

// Signal plumbing: the handler may only touch async-signal-safe state, so it
// writes one byte into the installing daemon's signal pipe through a static
// fd slot (which also enforces "one installing daemon per process").
std::atomic<int> g_signal_fd{-1};
struct sigaction g_old_hup, g_old_int, g_old_term;  // NOLINT

void daemon_signal_handler(int sig) {
  const int fd = g_signal_fd.load(std::memory_order_relaxed);
  if (fd < 0) return;
  const char byte = sig == SIGHUP ? 'H' : 'T';
  [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
}

}  // namespace

/// One accepted socket plus the lock that serializes response frames onto it
/// (the dispatcher's pool workers and the reader thread both write).
struct Daemon::Connection {
  std::uint64_t id = 0;
  Fd fd;
  std::mutex write_mutex;
  std::atomic<bool> dead{false};  ///< a write failed; stop responding
};

/// One admitted classify request waiting for the dispatcher. The three
/// timestamps are the flight recorder's raw material: admission (set by
/// handle_classify), dispatch (set when the dispatcher pulls the batch),
/// compute start (taken inside serve_one).
struct Daemon::Pending {
  std::shared_ptr<Connection> conn;
  Request req;
  std::chrono::steady_clock::time_point deadline{};
  std::uint64_t trace_id = 0;
  double deadline_ms = 0.0;  ///< effective deadline the request ran under
  std::chrono::steady_clock::time_point admitted_at{};
  std::chrono::steady_clock::time_point dispatched_at{};
};

std::map<std::string, std::uint64_t> DaemonStats::as_map() const {
  return {
      {"connections", connections},
      {"requests", requests},
      {"served", served},
      {"shed", shed},
      {"timeouts", timeouts},
      {"errors", errors},
      {"rejected_draining", rejected_draining},
      {"batches", batches},
      {"reloads", reloads},
      {"reload_failures", reload_failures},
      {"queue_depth_peak", static_cast<std::uint64_t>(queue_depth_peak)},
      {"queue_depth", static_cast<std::uint64_t>(
                          queue_depth < 0 ? 0 : queue_depth)},
      {"generation", generation},
      {"telemetry_exports", telemetry_exports},
      {"slow_sampled", slow_sampled},
  };
}

Daemon::Daemon(std::shared_ptr<const Classifier> classifier,
               DaemonConfig config)
    : config_(std::move(config)),
      classifier_(std::move(classifier)),
      queue_(config_.max_inflight),
      pool_(config_.worker_threads),
      recorder_({config_.slow_ring_capacity, config_.slow_deadline_fraction}),
      log_(config_.logger != nullptr ? config_.logger
                                     : &obs::Logger::global()) {
  if (classifier_ == nullptr) {
    throw ProtocolError("daemon: initial classifier must not be null");
  }
  if (!config_.endpoint.valid()) {
    throw ProtocolError("daemon: endpoint not configured (need a unix socket "
                        "path or a tcp port)");
  }
}

Daemon::~Daemon() {
  if (started_.load() && !stopped_.load()) {
    request_drain();
    wait();
  }
  if (signal_handlers_installed_) {
    ::sigaction(SIGHUP, &g_old_hup, nullptr);
    ::sigaction(SIGINT, &g_old_int, nullptr);
    ::sigaction(SIGTERM, &g_old_term, nullptr);
    g_signal_fd.store(-1, std::memory_order_relaxed);
  }
}

void Daemon::start() {
  if (started_.exchange(true)) throw ProtocolError("daemon: already started");
  int fds[2];
  if (::pipe(fds) != 0) {
    throw ProtocolError(std::string("daemon: pipe: ") + std::strerror(errno));
  }
  control_pipe_read_.reset(fds[0]);
  control_pipe_write_.reset(fds[1]);
  if (::pipe(fds) != 0) {
    throw ProtocolError(std::string("daemon: pipe: ") + std::strerror(errno));
  }
  signal_pipe_read_.reset(fds[0]);
  signal_pipe_write_.reset(fds[1]);

  listen_fd_ = listen_on(config_.endpoint);
  tcp_port_ = config_.endpoint.socket_path.empty()
                  ? local_tcp_port(listen_fd_.get())
                  : -1;
  start_time_ = std::chrono::steady_clock::now();
  if (config_.trace_buffer > 0) {
    obs::Tracer::global().start(config_.trace_buffer);
  }
  log_->info("daemon_started",
             {{"version", kVersion},
              {"endpoint", config_.endpoint.socket_path.empty()
                               ? "tcp:" + std::to_string(tcp_port_)
                               : config_.endpoint.socket_path},
              {"workers", pool_.size()},
              {"max_inflight", config_.max_inflight}});

  accept_thread_ = std::thread(&Daemon::accept_loop, this);
  control_thread_ = std::thread(&Daemon::control_loop, this);
  dispatch_thread_ = std::thread(&Daemon::dispatch_loop, this);
}

void Daemon::install_signal_handlers() {
  if (!started_.load()) {
    throw ProtocolError("daemon: start() before install_signal_handlers()");
  }
  int expected = -1;
  if (!g_signal_fd.compare_exchange_strong(expected, signal_pipe_write_.get(),
                                           std::memory_order_relaxed)) {
    throw ProtocolError(
        "daemon: another daemon already owns this process's signal handlers");
  }
  struct sigaction sa {};
  sa.sa_handler = &daemon_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGHUP, &sa, &g_old_hup);
  ::sigaction(SIGINT, &sa, &g_old_int);
  ::sigaction(SIGTERM, &sa, &g_old_term);
  signal_handlers_installed_ = true;
}

void Daemon::wake_control(char event) noexcept {
  const int fd = control_pipe_write_.get();
  if (fd < 0) return;
  [[maybe_unused]] const ssize_t n = ::write(fd, &event, 1);
}

void Daemon::request_reload() noexcept { wake_control('H'); }

void Daemon::request_drain() noexcept { wake_control('T'); }

std::shared_ptr<const Classifier> Daemon::snapshot() const {
  std::lock_guard lock(snapshot_mutex_);
  return classifier_;
}

bool Daemon::reload_now(const std::string& path, std::string* error) {
  std::lock_guard guard(reload_mutex_);
  return do_reload(path, error);
}

bool Daemon::do_reload(const std::string& path, std::string* error) {
  obs::Span span("serve.daemon.reload");
  try {
    CWGL_FAILPOINT("serve.reload");
    if (path.empty()) {
      throw ProtocolError("reload: no model path configured");
    }
    // Build the replacement entirely off to the side: load + validate +
    // rehydrate the frozen dictionary. Only a fully-constructed classifier
    // ever reaches the snapshot pointer, so a corrupt or torn file can
    // never take down in-flight traffic.
    auto next = std::make_shared<const Classifier>(model::load_model(path));
    {
      std::lock_guard lock(snapshot_mutex_);
      classifier_ = std::move(next);
    }
    reloads_.fetch_add(1, std::memory_order_relaxed);
    gm().reloads.add();
    const std::uint64_t gen =
        generation_.fetch_add(1, std::memory_order_relaxed) + 1;
    {
      std::lock_guard lock(last_reload_mutex_);
      last_reload_any_ = true;
      last_reload_ok_ = true;
      last_reload_message_ = path;
      last_reload_at_s_ = uptime_seconds();
    }
    log_->info("model_reloaded", {{"path", path}, {"generation", gen}});
    return true;
  } catch (const std::exception& e) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    gm().reload_failures.add();
    {
      std::lock_guard lock(last_reload_mutex_);
      last_reload_any_ = true;
      last_reload_ok_ = false;
      last_reload_message_ = e.what();
      last_reload_at_s_ = uptime_seconds();
    }
    log_->error("model_reload_failed", {{"path", path}, {"error", e.what()}});
    if (error != nullptr) *error = e.what();
    return false;
  }
}

void Daemon::control_loop() {
  // With the periodic exporter configured, the control poll doubles as its
  // timer: a timeout means "nothing to control, time to export".
  const bool exporting = !config_.telemetry_path.empty() &&
                         config_.telemetry_interval.count() > 0;
  const int poll_timeout =
      exporting ? static_cast<int>(config_.telemetry_interval.count()) : -1;
  for (;;) {
    struct pollfd fds[2] = {{control_pipe_read_.get(), POLLIN, 0},
                            {signal_pipe_read_.get(), POLLIN, 0}};
    const int ready = ::poll(fds, 2, poll_timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      begin_drain();  // pipes gone: fail toward shutdown, never a hang
      return;
    }
    if (ready == 0) {
      export_telemetry();
      continue;
    }
    bool drain = false;
    bool reload = false;
    for (const auto& p : fds) {
      if ((p.revents & (POLLIN | POLLHUP)) == 0) continue;
      char buf[64];
      const ssize_t n = ::read(p.fd, buf, sizeof buf);
      for (ssize_t i = 0; i < n; ++i) {
        if (buf[i] == 'T') drain = true;
        if (buf[i] == 'H') reload = true;
      }
    }
    if (reload && !drain) {
      // Async (SIGHUP) reload: retry with exponential backoff; the current
      // model keeps serving across every failed attempt.
      std::lock_guard guard(reload_mutex_);
      std::string err;
      auto backoff = config_.reload_backoff;
      for (int attempt = 0; attempt <= config_.reload_retries; ++attempt) {
        if (attempt > 0) {
          std::this_thread::sleep_for(backoff);
          backoff *= 2;
        }
        if (do_reload(config_.model_path, &err)) break;
        if (draining_.load(std::memory_order_relaxed)) break;
      }
    }
    if (drain) {
      begin_drain();
      return;
    }
  }
}

void Daemon::begin_drain() {
  if (draining_.exchange(true)) return;
  log_->info("drain_started",
             {{"inflight", queue_depth_.load(std::memory_order_relaxed)}});
  const auto deadline = std::chrono::steady_clock::now() + config_.drain_timeout;
  drain_deadline_ns_.store(deadline.time_since_epoch().count(),
                           std::memory_order_relaxed);
  // Closing the queue flips every admission attempt to Closed (typed
  // shutting_down responses) and lets the dispatcher drain what was already
  // admitted — nothing accepted is ever silently dropped.
  queue_.close();
}

void Daemon::accept_loop() {
  for (;;) {
    reap_finished();
    if (draining_.load(std::memory_order_relaxed)) return;
    struct pollfd pfd{listen_fd_.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (ready == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int raw = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (raw < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    Fd client(raw);
    set_nodelay(client.get());
    try {
      CWGL_FAILPOINT("serve.accept");
    } catch (const std::exception&) {
      continue;  // injected accept fault: the connection is dropped whole
    }
    if (draining_.load(std::memory_order_relaxed)) return;
    auto conn = std::make_shared<Connection>();
    conn->fd = std::move(client);
    connections_total_.fetch_add(1, std::memory_order_relaxed);
    gm().connections.add();
    std::lock_guard lock(connections_mutex_);
    conn->id = next_connection_id_++;
    if (log_->enabled(obs::LogLevel::Debug)) {
      log_->debug("connection_accepted", {{"conn", conn->id}});
    }
    connections_.emplace(conn->id, conn);
    conn_threads_.emplace(conn->id,
                          std::thread(&Daemon::serve_connection, this, conn));
  }
}

void Daemon::reap_finished() {
  std::vector<std::thread> done;
  {
    std::lock_guard lock(connections_mutex_);
    for (const auto id : finished_) {
      auto it = conn_threads_.find(id);
      if (it != conn_threads_.end()) {
        done.push_back(std::move(it->second));
        conn_threads_.erase(it);
      }
    }
    finished_.clear();
  }
  for (auto& t : done) t.join();
}

void Daemon::serve_connection(std::shared_ptr<Connection> conn) {
  std::string payload;
  for (;;) {
    bool got = false;
    try {
      got = read_frame(conn->fd.get(), payload);
    } catch (const std::exception&) {
      break;  // mid-frame EOF or socket error: nothing sane left to read
    }
    if (!got) break;  // clean EOF: the peer finished
    Request req;
    try {
      req = decode_request(payload);
    } catch (const std::exception& e) {
      // Frame boundaries are intact (the length prefix framed this payload),
      // so a malformed request poisons only itself.
      Response r;
      r.status = ResponseStatus::Error;
      r.message = std::string("bad request: ") + e.what();
      errors_.fetch_add(1, std::memory_order_relaxed);
      gm().errors.add();
      respond(conn, r);
      continue;
    }
    if (req.type == RequestType::Classify) {
      handle_classify(conn, std::move(req));
    } else {
      handle_control(conn, req);
    }
  }
  std::lock_guard lock(connections_mutex_);
  connections_.erase(conn->id);
  finished_.push_back(conn->id);
}

void Daemon::handle_classify(const std::shared_ptr<Connection>& conn,
                             Request req) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  gm().requests.add();
  const std::uint64_t id = req.id;

  Pending p;
  p.conn = conn;
  const double deadline_ms =
      req.deadline_ms > 0
          ? req.deadline_ms
          : std::chrono::duration<double, std::milli>(config_.default_deadline)
                .count();
  p.admitted_at = std::chrono::steady_clock::now();
  p.deadline = p.admitted_at +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::milli>(deadline_ms));
  p.deadline_ms = deadline_ms;
  p.trace_id = recorder_.next_trace_id();
  p.req = std::move(req);

  switch (queue_.try_push_for(std::move(p), config_.admission_wait)) {
    case util::QueueResult::Ok: {
      const auto depth =
          queue_depth_.fetch_add(1, std::memory_order_relaxed) + 1;
      std::int64_t seen = queue_depth_peak_.load(std::memory_order_relaxed);
      while (depth > seen && !queue_depth_peak_.compare_exchange_weak(
                                 seen, depth, std::memory_order_relaxed)) {
      }
      gm().queue_depth.add(1);
      break;
    }
    case util::QueueResult::TimedOut: {
      shed_.fetch_add(1, std::memory_order_relaxed);
      gm().shed.add();
      if (log_->enabled(obs::LogLevel::Warn)) {
        log_->warn("request_shed",
                   {{"id", id},
                    {"queue_depth",
                     queue_depth_.load(std::memory_order_relaxed)}});
      }
      Response r;
      r.id = id;
      r.status = ResponseStatus::Overloaded;
      r.message = "admission queue stayed full; request shed";
      respond(conn, r);
      break;
    }
    case util::QueueResult::Closed: {
      rejected_draining_.fetch_add(1, std::memory_order_relaxed);
      gm().rejected_draining.add();
      if (log_->enabled(obs::LogLevel::Warn)) {
        log_->warn("request_rejected_draining", {{"id", id}});
      }
      Response r;
      r.id = id;
      r.status = ResponseStatus::ShuttingDown;
      r.message = "daemon is draining; no new work admitted";
      respond(conn, r);
      break;
    }
  }
}

void Daemon::handle_control(const std::shared_ptr<Connection>& conn,
                            const Request& req) {
  Response r;
  r.id = req.id;
  switch (req.type) {
    case RequestType::Ping:
      r.status = ResponseStatus::Ok;
      r.message = "pong";
      r.version = kVersion;
      r.generation = generation_.load(std::memory_order_relaxed);
      break;
    case RequestType::Stats:
      r.status = ResponseStatus::Ok;
      r.stats = stats().as_map();
      r.generation = generation_.load(std::memory_order_relaxed);
      r.payload = stats_payload();
      break;
    case RequestType::Health:
      r.status = ResponseStatus::Ok;
      r.generation = generation_.load(std::memory_order_relaxed);
      r.payload = health_payload();
      break;
    case RequestType::Trace: {
      r.status = ResponseStatus::Ok;
      auto& tracer = obs::Tracer::global();
      const std::vector<obs::TraceEvent> events = tracer.drain();
      std::ostringstream payload;
      payload << "{\"enabled\":" << (tracer.enabled() ? "true" : "false")
              << ",\"dropped\":" << tracer.dropped() << ",\"events\":";
      obs::write_trace_events_json(payload, events);
      payload << "}";
      r.payload = payload.str();
      break;
    }
    case RequestType::Reload: {
      if (draining_.load(std::memory_order_relaxed)) {
        r.status = ResponseStatus::ShuttingDown;
        r.message = "daemon is draining";
        break;
      }
      const std::string path =
          req.model_path.empty() ? config_.model_path : req.model_path;
      std::string err;
      if (reload_now(path, &err)) {
        r.status = ResponseStatus::Ok;
        r.message = "reloaded from " + path;
      } else {
        r.status = ResponseStatus::Error;
        r.message = "reload rejected, previous model still serving: " + err;
      }
      break;
    }
    case RequestType::Drain:
      r.status = ResponseStatus::Ok;
      r.message = "draining";
      respond(conn, r);
      request_drain();
      return;
    case RequestType::Classify:  // routed elsewhere; keep the switch total
      r.status = ResponseStatus::Error;
      r.message = "internal: classify routed to control path";
      break;
  }
  respond(conn, r);
}

void Daemon::dispatch_loop() {
  std::vector<Pending> batch;
  for (;;) {
    Pending first;
    switch (queue_.try_pop_for(config_.batch_linger, first)) {
      case util::QueueResult::Closed:
        return;  // drained: every admitted request has been answered
      case util::QueueResult::TimedOut:
        continue;
      case util::QueueResult::Ok:
        break;
    }
    batch.push_back(std::move(first));
    // Take whatever is ALREADY queued up to max_batch — a zero-timeout pop
    // never waits, so batching adds no artificial latency.
    Pending more;
    while (batch.size() < config_.max_batch &&
           queue_.try_pop_for(std::chrono::seconds(0), more) ==
               util::QueueResult::Ok) {
      batch.push_back(std::move(more));
    }
    // One clock read stamps the whole batch: queue_wait ends here for every
    // member, and whatever elapses before its serve_one runs is batch_wait.
    const auto dispatched = std::chrono::steady_clock::now();
    for (Pending& p : batch) p.dispatched_at = dispatched;
    queue_depth_.fetch_sub(static_cast<std::int64_t>(batch.size()),
                           std::memory_order_relaxed);
    gm().queue_depth.add(-static_cast<std::int64_t>(batch.size()));
    process_batch(batch);
    // Drop the batch's Connection refs NOW, not when the next batch arrives:
    // a dispatcher parked on an idle queue must not pin client connections —
    // the fd close after a client's half-close is what tells a pipelined
    // reader that every response has been written.
    batch.clear();
  }
}

void Daemon::process_batch(std::vector<Pending>& batch) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  gm().batches.add();
  gm().batch_size.record(batch.size());
  obs::Span span("serve.daemon.batch");
  span.arg("size", batch.size());
  try {
    CWGL_FAILPOINT("serve.batch");
  } catch (const std::exception& e) {
    // Injected dispatch fault: every request in the batch is still answered
    // (typed error), upholding the no-silent-drop contract.
    for (const auto& p : batch) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      gm().errors.add();
      Response r;
      r.id = p.req.id;
      r.status = ResponseStatus::Error;
      r.message = std::string("batch dispatch failed: ") + e.what();
      respond(p.conn, r);
    }
    return;
  }

  // RCU read side: one snapshot grab per batch. A concurrent reload swaps
  // the pointer for FUTURE batches; this batch classifies against a model
  // that cannot be mutated or freed under it.
  const std::shared_ptr<const Classifier> model = snapshot();
  const std::int64_t drain_ns =
      drain_deadline_ns_.load(std::memory_order_relaxed);

  const auto serve_one = [&](std::size_t i) {
    Pending& p = batch[i];
    Response r;
    r.id = p.req.id;
    const auto now = std::chrono::steady_clock::now();
    const auto compute_start = now;
    const auto record_timing = [&](std::string_view status) {
      const auto done = std::chrono::steady_clock::now();
      const auto us = [](std::chrono::steady_clock::duration d) {
        const auto n =
            std::chrono::duration_cast<std::chrono::microseconds>(d).count();
        return n < 0 ? std::uint64_t{0} : static_cast<std::uint64_t>(n);
      };
      RequestTiming t;
      t.trace_id = p.trace_id;
      t.job_name = p.req.job_name;
      t.status = std::string(status);
      t.queue_wait_us = us(p.dispatched_at - p.admitted_at);
      t.batch_wait_us = us(compute_start - p.dispatched_at);
      t.compute_us = us(done - compute_start);
      t.total_us = us(done - p.admitted_at);
      t.deadline_ms = p.deadline_ms;
      recorder_.record(t);
    };
    const bool past_drain = drain_ns != 0 &&
                            now.time_since_epoch().count() >= drain_ns;
    if (now >= p.deadline || past_drain) {
      r.status = ResponseStatus::Timeout;
      r.message = past_drain ? "drain deadline exceeded"
                             : "deadline expired before service";
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      gm().timeout.add();
      if (log_->enabled(obs::LogLevel::Warn)) {
        log_->warn("request_timeout",
                   {{"id", p.req.id},
                    {"trace_id", p.trace_id},
                    {"deadline_ms", p.deadline_ms},
                    {"past_drain", past_drain}});
      }
      respond(p.conn, r);
      record_timing(to_string(r.status));
      return;
    }
    if (config_.service_delay.count() > 0) {
      std::this_thread::sleep_for(config_.service_delay);
    }
    try {
      std::vector<trace::TaskRecord> rows;
      rows.reserve(p.req.tasks.size());
      for (const auto& name : p.req.tasks) {
        trace::TaskRecord rec;
        rec.task_name = name;
        rec.job_name = p.req.job_name;
        rec.instance_num = 1;
        rows.push_back(std::move(rec));
      }
      std::vector<core::BuildIssue> issues;
      const auto dag = core::build_job_dag(p.req.job_name, rows, &issues);
      if (!dag) {
        r.status = ResponseStatus::Error;
        r.message = issues.empty() ? "job is not a well-formed dependency DAG"
                                   : issues.front().message;
        errors_.fetch_add(1, std::memory_order_relaxed);
        gm().errors.add();
      } else {
        const Prediction pred = model->classify(*dag);
        r.status = ResponseStatus::Ok;
        r.cluster = std::string(1, pred.cluster_letter);
        r.cluster_id = pred.cluster;
        r.similarity = pred.similarity;
        r.nearest = pred.nearest_job;
        r.oov_hits = pred.oov_hits;
        r.predicted_critical_path = pred.predicted_critical_path;
        r.predicted_width = pred.predicted_width;
        served_.fetch_add(1, std::memory_order_relaxed);
        gm().served.add();
      }
    } catch (const std::exception& e) {
      r.status = ResponseStatus::Error;
      r.message = e.what();
      errors_.fetch_add(1, std::memory_order_relaxed);
      gm().errors.add();
    }
    respond(p.conn, r);
    record_timing(to_string(r.status));
  };

  if (batch.size() == 1 || pool_.size() == 1) {
    for (std::size_t i = 0; i < batch.size(); ++i) serve_one(i);
  } else {
    util::parallel_for(pool_, 0, batch.size(), serve_one);
  }
}

void Daemon::respond(const std::shared_ptr<Connection>& conn,
                     const Response& r) {
  if (conn == nullptr || conn->dead.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(conn->write_mutex);
  if (conn->dead.load(std::memory_order_relaxed)) return;
  try {
    write_frame(conn->fd.get(), encode_response(r));
  } catch (const std::exception&) {
    // The peer vanished mid-conversation; remaining responses for this
    // connection have no reader, so stop attempting them.
    conn->dead.store(true, std::memory_order_relaxed);
  }
}

int Daemon::wait() {
  if (!started_.load()) return 0;
  if (stopped_.exchange(true)) return 0;
  // Blocks here until a drain is requested: the control thread only returns
  // after begin_drain() has closed the queue.
  if (control_thread_.joinable()) control_thread_.join();
  if (accept_thread_.joinable()) accept_thread_.join();
  // The dispatcher finishes (or deadline-times-out) everything admitted
  // before the close, answering each request, then sees Closed and exits.
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  // Every response is out. Half-close the READ side only — readers unblock
  // with EOF, while any response bytes still in socket buffers keep flowing
  // to clients that are draining them.
  std::vector<std::shared_ptr<Connection>> live;
  {
    std::lock_guard lock(connections_mutex_);
    live.reserve(connections_.size());
    for (const auto& [id, c] : connections_) live.push_back(c);
  }
  for (const auto& c : live) ::shutdown(c->fd.get(), SHUT_RD);
  std::map<std::uint64_t, std::thread> readers;
  {
    std::lock_guard lock(connections_mutex_);
    readers.swap(conn_threads_);
    finished_.clear();
  }
  for (auto& [id, t] : readers) {
    if (t.joinable()) t.join();
  }
  listen_fd_.reset();
  if (!config_.endpoint.socket_path.empty()) {
    std::error_code ignored;
    std::filesystem::remove(config_.endpoint.socket_path, ignored);
  }
  // One last export so the scrape file reflects the final counters.
  export_telemetry();
  log_->info("drain_finished",
             {{"served", served_.load(std::memory_order_relaxed)},
              {"timeouts", timeouts_.load(std::memory_order_relaxed)},
              {"shed", shed_.load(std::memory_order_relaxed)}});
  return 0;
}

void Daemon::export_telemetry() {
  if (config_.telemetry_path.empty()) return;
  const std::string tmp = config_.telemetry_path + ".tmp";
  try {
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) throw ProtocolError("cannot open " + tmp);
      obs::write_prometheus(out, obs::MetricsRegistry::global().snapshot());
      out.flush();
      if (!out) throw ProtocolError("write failed: " + tmp);
    }
    // Atomic publish, like save_model: scrapers never see a torn file.
    std::filesystem::rename(tmp, config_.telemetry_path);
    telemetry_exports_.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    log_->error("telemetry_export_failed",
                {{"path", config_.telemetry_path}, {"error", e.what()}});
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
  }
}

double Daemon::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_time_)
      .count();
}

std::string Daemon::stats_payload() const {
  std::ostringstream out;
  util::JsonWriter j(out);
  j.begin_object();
  j.key("daemon");
  j.begin_object();
  for (const auto& [name, value] : stats().as_map()) {
    j.field(name, static_cast<unsigned long long>(value));
  }
  j.field("uptime_s", uptime_seconds());
  j.field("model_path", config_.model_path);
  j.end_object();
  j.key("flight");
  j.begin_object();
  j.field("recorded", static_cast<unsigned long long>(recorder_.recorded()));
  j.field("slow_sampled",
          static_cast<unsigned long long>(recorder_.slow_sampled()));
  j.field("slow_deadline_fraction", config_.slow_deadline_fraction);
  j.key("slow");
  {
    std::ostringstream slow;
    FlightRecorder::write_slow_json(slow, recorder_.slow_requests());
    j.raw(slow.str());
  }
  j.end_object();
  j.key("metrics");
  {
    std::ostringstream metrics;
    obs::MetricsRegistry::global().snapshot().write_json(metrics);
    j.raw(metrics.str());
  }
  j.end_object();
  return out.str();
}

std::string Daemon::health_payload() const {
  const bool draining = draining_.load(std::memory_order_relaxed);
  std::ostringstream out;
  util::JsonWriter j(out);
  j.begin_object();
  j.field("ready", !draining);
  j.field("draining", draining);
  j.field("version", kVersion);
  j.field("generation", static_cast<unsigned long long>(
                            generation_.load(std::memory_order_relaxed)));
  j.field("uptime_s", uptime_seconds());
  j.field("inflight", static_cast<long long>(
                          queue_depth_.load(std::memory_order_relaxed)));
  j.key("queue");
  j.begin_object();
  j.field("depth", static_cast<long long>(
                       queue_depth_.load(std::memory_order_relaxed)));
  j.field("capacity", static_cast<unsigned long long>(config_.max_inflight));
  j.field("high_water", static_cast<long long>(
                            queue_depth_peak_.load(std::memory_order_relaxed)));
  j.end_object();
  j.key("last_reload");
  {
    std::lock_guard lock(last_reload_mutex_);
    if (!last_reload_any_) {
      j.null();
    } else {
      j.begin_object();
      j.field("ok", last_reload_ok_);
      j.field(last_reload_ok_ ? "path" : "error", last_reload_message_);
      j.field("at_uptime_s", last_reload_at_s_);
      j.end_object();
    }
  }
  j.end_object();
  return out.str();
}

DaemonStats Daemon::stats() const {
  DaemonStats s;
  s.connections = connections_total_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.rejected_draining = rejected_draining_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  s.queue_depth_peak = queue_depth_peak_.load(std::memory_order_relaxed);
  s.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  s.generation = generation_.load(std::memory_order_relaxed);
  s.telemetry_exports = telemetry_exports_.load(std::memory_order_relaxed);
  s.slow_sampled = recorder_.slow_sampled();
  return s;
}

}  // namespace cwgl::serve

#include "serve/protocol.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "util/json.hpp"

namespace cwgl::serve {

namespace {

std::string errno_text(const char* op) {
  std::ostringstream s;
  s << op << ": " << std::strerror(errno);
  return s.str();
}

RequestType request_type_from(std::string_view text) {
  if (text == "classify") return RequestType::Classify;
  if (text == "ping") return RequestType::Ping;
  if (text == "stats") return RequestType::Stats;
  if (text == "health") return RequestType::Health;
  if (text == "trace") return RequestType::Trace;
  if (text == "reload") return RequestType::Reload;
  if (text == "drain") return RequestType::Drain;
  throw ProtocolError("unknown request type '" + std::string(text) + "'");
}

ResponseStatus response_status_from(std::string_view text) {
  if (text == "ok") return ResponseStatus::Ok;
  if (text == "overloaded") return ResponseStatus::Overloaded;
  if (text == "timeout") return ResponseStatus::Timeout;
  if (text == "shutting_down") return ResponseStatus::ShuttingDown;
  if (text == "error") return ResponseStatus::Error;
  throw ProtocolError("unknown response status '" + std::string(text) + "'");
}

/// Numbers ride as JSON numbers (doubles); ids and counters are exact up to
/// 2^53, far beyond any per-connection request id this daemon will see.
std::uint64_t as_u64(const util::JsonValue& v, const char* what) {
  if (!v.is_number() || v.as_number() < 0) {
    throw ProtocolError(std::string(what) + " must be a non-negative number");
  }
  return static_cast<std::uint64_t>(v.as_number());
}

}  // namespace

std::string_view to_string(RequestType t) noexcept {
  switch (t) {
    case RequestType::Classify: return "classify";
    case RequestType::Ping: return "ping";
    case RequestType::Stats: return "stats";
    case RequestType::Health: return "health";
    case RequestType::Trace: return "trace";
    case RequestType::Reload: return "reload";
    case RequestType::Drain: return "drain";
  }
  return "ping";
}

std::string_view to_string(ResponseStatus s) noexcept {
  switch (s) {
    case ResponseStatus::Ok: return "ok";
    case ResponseStatus::Overloaded: return "overloaded";
    case ResponseStatus::Timeout: return "timeout";
    case ResponseStatus::ShuttingDown: return "shutting_down";
    case ResponseStatus::Error: return "error";
  }
  return "error";
}

std::string encode_request(const Request& r) {
  std::ostringstream out;
  util::JsonWriter j(out);
  j.begin_object();
  j.field("type", to_string(r.type));
  j.field("id", static_cast<unsigned long long>(r.id));
  if (r.type == RequestType::Classify) {
    j.field("job", r.job_name);
    j.key("tasks");
    j.begin_array();
    for (const std::string& t : r.tasks) j.value(t);
    j.end_array();
    if (r.deadline_ms > 0.0) j.field("deadline_ms", r.deadline_ms);
  }
  if (r.type == RequestType::Reload && !r.model_path.empty()) {
    j.field("model", r.model_path);
  }
  j.end_object();
  return out.str();
}

Request decode_request(std::string_view json) {
  util::JsonValue doc;
  try {
    doc = util::parse_json(json);
  } catch (const util::Error& e) {
    throw ProtocolError(std::string("request is not valid JSON: ") + e.what());
  }
  if (!doc.is_object()) throw ProtocolError("request must be a JSON object");
  const util::JsonValue* type = doc.find("type");
  if (type == nullptr || !type->is_string()) {
    throw ProtocolError("request needs a string 'type'");
  }
  Request r;
  r.type = request_type_from(type->as_string());
  if (const util::JsonValue* id = doc.find("id")) r.id = as_u64(*id, "'id'");
  if (r.type == RequestType::Classify) {
    const util::JsonValue* tasks = doc.find("tasks");
    if (tasks == nullptr || !tasks->is_array() || tasks->as_array().empty()) {
      throw ProtocolError("classify request needs a non-empty 'tasks' array");
    }
    r.tasks.reserve(tasks->as_array().size());
    for (const util::JsonValue& t : tasks->as_array()) {
      if (!t.is_string()) {
        throw ProtocolError("'tasks' entries must be strings");
      }
      r.tasks.push_back(t.as_string());
    }
    if (const util::JsonValue* job = doc.find("job")) {
      if (!job->is_string()) throw ProtocolError("'job' must be a string");
      r.job_name = job->as_string();
    }
    if (const util::JsonValue* d = doc.find("deadline_ms")) {
      if (!d->is_number() || d->as_number() < 0) {
        throw ProtocolError("'deadline_ms' must be a non-negative number");
      }
      r.deadline_ms = d->as_number();
    }
  }
  if (r.type == RequestType::Reload) {
    if (const util::JsonValue* m = doc.find("model")) {
      if (!m->is_string()) throw ProtocolError("'model' must be a string");
      r.model_path = m->as_string();
    }
  }
  return r;
}

std::string encode_response(const Response& r) {
  std::ostringstream out;
  util::JsonWriter j(out);
  j.begin_object();
  j.field("id", static_cast<unsigned long long>(r.id));
  j.field("status", to_string(r.status));
  if (!r.message.empty()) j.field("message", r.message);
  if (!r.cluster.empty()) {
    j.field("cluster", r.cluster);
    j.field("cluster_id", r.cluster_id);
    j.field("similarity", r.similarity);
    j.field("nearest", r.nearest);
    j.field("oov_hits", static_cast<unsigned long long>(r.oov_hits));
    j.key("predicted");
    j.begin_object();
    j.field("critical_path", r.predicted_critical_path);
    j.field("width", r.predicted_width);
    j.end_object();
  }
  if (!r.stats.empty()) {
    j.key("stats");
    j.begin_object();
    for (const auto& [name, value] : r.stats) {
      j.field(name, static_cast<unsigned long long>(value));
    }
    j.end_object();
  }
  if (!r.version.empty()) j.field("version", r.version);
  if (r.generation > 0) {
    j.field("generation", static_cast<unsigned long long>(r.generation));
  }
  if (!r.payload.empty()) {
    j.key("payload");
    j.raw(r.payload);  // daemon-built JSON document, embedded verbatim
  }
  j.end_object();
  return out.str();
}

Response decode_response(std::string_view json) {
  util::JsonValue doc;
  try {
    doc = util::parse_json(json);
  } catch (const util::Error& e) {
    throw ProtocolError(std::string("response is not valid JSON: ") + e.what());
  }
  if (!doc.is_object()) throw ProtocolError("response must be a JSON object");
  const util::JsonValue* status = doc.find("status");
  if (status == nullptr || !status->is_string()) {
    throw ProtocolError("response needs a string 'status'");
  }
  Response r;
  r.status = response_status_from(status->as_string());
  if (const util::JsonValue* id = doc.find("id")) r.id = as_u64(*id, "'id'");
  if (const util::JsonValue* m = doc.find("message")) {
    if (!m->is_string()) throw ProtocolError("'message' must be a string");
    r.message = m->as_string();
  }
  if (const util::JsonValue* c = doc.find("cluster")) {
    if (!c->is_string()) throw ProtocolError("'cluster' must be a string");
    r.cluster = c->as_string();
    if (const util::JsonValue* v = doc.find("cluster_id")) {
      r.cluster_id = static_cast<int>(as_u64(*v, "'cluster_id'"));
    }
    if (const util::JsonValue* v = doc.find("similarity")) {
      if (!v->is_number()) throw ProtocolError("'similarity' must be a number");
      r.similarity = v->as_number();
    }
    if (const util::JsonValue* v = doc.find("nearest")) {
      if (!v->is_string()) throw ProtocolError("'nearest' must be a string");
      r.nearest = v->as_string();
    }
    if (const util::JsonValue* v = doc.find("oov_hits")) {
      r.oov_hits = as_u64(*v, "'oov_hits'");
    }
    if (const util::JsonValue* p = doc.find("predicted")) {
      if (!p->is_object()) throw ProtocolError("'predicted' must be an object");
      if (const util::JsonValue* v = p->find("critical_path")) {
        r.predicted_critical_path = v->as_number();
      }
      if (const util::JsonValue* v = p->find("width")) {
        r.predicted_width = v->as_number();
      }
    }
  }
  if (const util::JsonValue* s = doc.find("stats")) {
    if (!s->is_object()) throw ProtocolError("'stats' must be an object");
    for (const auto& [name, value] : s->as_object()) {
      r.stats[name] = as_u64(value, "stats value");
    }
  }
  if (const util::JsonValue* v = doc.find("version")) {
    if (!v->is_string()) throw ProtocolError("'version' must be a string");
    r.version = v->as_string();
  }
  if (const util::JsonValue* g = doc.find("generation")) {
    r.generation = as_u64(*g, "'generation'");
  }
  if (const util::JsonValue* p = doc.find("payload")) {
    // Re-serialize the already-parsed subtree; the decoded form matches what
    // a fresh parse of r.payload would give, which is all callers rely on.
    r.payload = util::to_json_string(*p);
  }
  return r;
}

// ---------------------------------------------------------------------------
// Sockets.
// ---------------------------------------------------------------------------

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) reset(other.release());
  return *this;
}

void Fd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Fd listen_on(const Endpoint& ep, int backlog) {
  if (!ep.valid()) {
    throw ProtocolError("endpoint needs a unix socket path or a tcp port");
  }
  if (!ep.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.socket_path.size() >= sizeof(addr.sun_path)) {
      throw ProtocolError("unix socket path too long: " + ep.socket_path);
    }
    std::memcpy(addr.sun_path, ep.socket_path.c_str(),
                ep.socket_path.size() + 1);
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) throw ProtocolError(errno_text("socket(AF_UNIX)"));
    // A stale socket file from a crashed daemon would make bind fail with
    // EADDRINUSE forever; remove it first (connectors to the old file would
    // have gotten ECONNREFUSED anyway).
    ::unlink(ep.socket_path.c_str());
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw ProtocolError("bind '" + ep.socket_path +
                          "': " + std::strerror(errno));
    }
    if (::listen(fd.get(), backlog) != 0) {
      throw ProtocolError(errno_text("listen"));
    }
    return fd;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(ep.tcp_port));
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw ProtocolError(errno_text("socket(AF_INET)"));
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw ProtocolError("bind port " + std::to_string(ep.tcp_port) + ": " +
                        std::strerror(errno));
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw ProtocolError(errno_text("listen"));
  }
  return fd;
}

void set_nodelay(int fd) noexcept {
  const int one = 1;
  // Fails harmlessly (EOPNOTSUPP) on AF_UNIX sockets; the option only
  // matters for TCP, where Nagle would batch small frames.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

int local_tcp_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw ProtocolError(errno_text("getsockname"));
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Fd connect_to(const Endpoint& ep) {
  if (!ep.valid()) {
    throw ProtocolError("endpoint needs a unix socket path or a tcp port");
  }
  if (!ep.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.socket_path.size() >= sizeof(addr.sun_path)) {
      throw ProtocolError("unix socket path too long: " + ep.socket_path);
    }
    std::memcpy(addr.sun_path, ep.socket_path.c_str(),
                ep.socket_path.size() + 1);
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) throw ProtocolError(errno_text("socket(AF_UNIX)"));
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      throw ProtocolError("connect '" + ep.socket_path +
                          "': " + std::strerror(errno));
    }
    return fd;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(ep.tcp_port));
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw ProtocolError(errno_text("socket(AF_INET)"));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw ProtocolError("connect port " + std::to_string(ep.tcp_port) + ": " +
                        std::strerror(errno));
  }
  set_nodelay(fd.get());
  return fd;
}

namespace {

/// send() with MSG_NOSIGNAL so a vanished peer surfaces as EPIPE -> throw,
/// never SIGPIPE (a daemon must not die because one client hung up).
void write_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(errno_text("send"));
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Returns false only on EOF with zero bytes read; throws on mid-buffer EOF.
bool read_all(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(errno_text("recv"));
    }
    if (n == 0) {
      if (got == 0) return false;
      throw ProtocolError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw ProtocolError("frame payload too large: " +
                        std::to_string(payload.size()) + " bytes");
  }
  char prefix[4];
  const auto size = static_cast<std::uint32_t>(payload.size());
  prefix[0] = static_cast<char>(size & 0xFFu);
  prefix[1] = static_cast<char>((size >> 8) & 0xFFu);
  prefix[2] = static_cast<char>((size >> 16) & 0xFFu);
  prefix[3] = static_cast<char>((size >> 24) & 0xFFu);
  // One send per frame, not prefix-then-payload: two small writes before a
  // read is exactly the pattern where Nagle + delayed ACK park the payload
  // behind a ~40ms timer on TCP endpoints.
  std::string frame;
  frame.reserve(sizeof(prefix) + payload.size());
  frame.append(prefix, sizeof(prefix));
  frame.append(payload);
  write_all(fd, frame.data(), frame.size());
}

bool read_frame(int fd, std::string& payload) {
  char prefix[4];
  if (!read_all(fd, prefix, sizeof(prefix))) return false;
  const std::uint32_t size =
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0])) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1])) << 8 |
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2])) << 16 |
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3])) << 24;
  if (size > kMaxFrameBytes) {
    throw ProtocolError("frame length " + std::to_string(size) +
                        " exceeds the " + std::to_string(kMaxFrameBytes) +
                        "-byte cap");
  }
  payload.resize(size);
  if (size > 0 && !read_all(fd, payload.data(), size)) {
    throw ProtocolError("connection closed mid-frame");
  }
  return true;
}

std::optional<Response> Client::recv() {
  if (!read_frame(fd_.get(), buffer_)) return std::nullopt;
  return decode_response(buffer_);
}

Response Client::call(const Request& r) {
  send(r);
  while (true) {
    std::optional<Response> resp = recv();
    if (!resp.has_value()) {
      throw ProtocolError("connection closed before a response to id " +
                          std::to_string(r.id));
    }
    if (resp->id == r.id) return std::move(*resp);
  }
}

void Client::shutdown_write() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_WR);
}

}  // namespace cwgl::serve

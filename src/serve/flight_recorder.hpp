#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace cwgl::serve {

/// Where one request's wall time went, measured at the daemon's four
/// lifecycle points: admission -> dispatch (queue_wait), dispatch -> compute
/// start (batch_wait, the coalescing linger), compute start -> reply sent
/// (compute). `total_us` is admission -> reply.
struct RequestTiming {
  std::uint64_t trace_id = 0;
  std::string job_name;
  std::string status;  ///< response status string ("ok", "timeout", ...)
  std::uint64_t queue_wait_us = 0;
  std::uint64_t batch_wait_us = 0;
  std::uint64_t compute_us = 0;
  std::uint64_t total_us = 0;
  double deadline_ms = 0.0;  ///< effective deadline; 0 = none
};

/// Per-request latency attribution for the serving daemon.
///
/// Every recorded request feeds three global histograms
/// (`serve.daemon.queue_wait_us` / `batch_wait_us` / `compute_us` —
/// histogram references are resolved once at construction, so the record
/// path never touches the registry mutex). Requests that consumed more than
/// `slow_deadline_fraction` of their deadline are additionally sampled into
/// a bounded ring, oldest overwritten first, queryable through the `stats`
/// admin request — the "why was request X slow" record that aggregate
/// counters cannot answer.
class FlightRecorder {
 public:
  struct Config {
    std::size_t slow_ring_capacity = 64;
    double slow_deadline_fraction = 0.5;
  };

  explicit FlightRecorder(Config config);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Fresh trace id for a request entering admission (starts at 1).
  std::uint64_t next_trace_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  void record(const RequestTiming& timing);

  std::uint64_t recorded() const noexcept {
    return recorded_.load(std::memory_order_relaxed);
  }
  std::uint64_t slow_sampled() const noexcept {
    return slow_sampled_.load(std::memory_order_relaxed);
  }

  /// Sampled slow requests, oldest first.
  std::vector<RequestTiming> slow_requests() const;

  /// Writes `timings` as a JSON array of per-request breakdown objects.
  static void write_slow_json(std::ostream& out,
                              const std::vector<RequestTiming>& timings);

 private:
  Config config_;
  obs::Histogram& queue_wait_;
  obs::Histogram& batch_wait_;
  obs::Histogram& compute_;
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> slow_sampled_{0};
  mutable std::mutex mutex_;
  std::vector<RequestTiming> ring_;
  std::size_t ring_next_ = 0;  ///< slot the next sample overwrites
};

}  // namespace cwgl::serve

#include "serve/flight_recorder.hpp"

#include <ostream>
#include <sstream>

#include "util/json.hpp"

namespace cwgl::serve {

FlightRecorder::FlightRecorder(Config config)
    : config_(config),
      queue_wait_(
          obs::MetricsRegistry::global().histogram("serve.daemon.queue_wait_us")),
      batch_wait_(
          obs::MetricsRegistry::global().histogram("serve.daemon.batch_wait_us")),
      compute_(
          obs::MetricsRegistry::global().histogram("serve.daemon.compute_us")) {
  if (config_.slow_ring_capacity > 0) ring_.reserve(config_.slow_ring_capacity);
}

void FlightRecorder::record(const RequestTiming& timing) {
  queue_wait_.record(timing.queue_wait_us);
  batch_wait_.record(timing.batch_wait_us);
  compute_.record(timing.compute_us);
  recorded_.fetch_add(1, std::memory_order_relaxed);

  const bool slow =
      timing.deadline_ms > 0.0 &&
      static_cast<double>(timing.total_us) >=
          config_.slow_deadline_fraction * timing.deadline_ms * 1000.0;
  if (!slow || config_.slow_ring_capacity == 0) return;

  slow_sampled_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mutex_);
  if (ring_.size() < config_.slow_ring_capacity) {
    ring_.push_back(timing);
  } else {
    ring_[ring_next_] = timing;
    ring_next_ = (ring_next_ + 1) % config_.slow_ring_capacity;
  }
}

std::vector<RequestTiming> FlightRecorder::slow_requests() const {
  std::lock_guard lock(mutex_);
  std::vector<RequestTiming> out;
  out.reserve(ring_.size());
  // ring_next_ points at the oldest sample once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::write_slow_json(
    std::ostream& out, const std::vector<RequestTiming>& timings) {
  util::JsonWriter j(out);
  j.begin_array();
  for (const RequestTiming& t : timings) {
    j.begin_object();
    j.field("trace_id", static_cast<unsigned long long>(t.trace_id));
    j.field("job", t.job_name);
    j.field("status", t.status);
    j.field("queue_wait_us", static_cast<unsigned long long>(t.queue_wait_us));
    j.field("batch_wait_us", static_cast<unsigned long long>(t.batch_wait_us));
    j.field("compute_us", static_cast<unsigned long long>(t.compute_us));
    j.field("total_us", static_cast<unsigned long long>(t.total_us));
    j.field("deadline_ms", t.deadline_ms);
    j.end_object();
  }
  j.end_array();
}

}  // namespace cwgl::serve

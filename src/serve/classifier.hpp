#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/job_dag.hpp"
#include "kernel/label_dict.hpp"
#include "kernel/wl.hpp"
#include "model/model.hpp"

namespace cwgl::serve {

/// One classification outcome for a job DAG.
struct Prediction {
  int cluster = 0;                 ///< assigned group id (0 = 'A')
  char cluster_letter = 'A';
  double similarity = 0.0;         ///< score against the nearest representative
  std::vector<double> scores;      ///< best score per cluster, index = group
  std::string nearest_job;         ///< trace name of the nearest representative
  std::size_t oov_hits = 0;        ///< WL lookups that fell in the OOV bucket

  /// Structure forecast replayed from the assigned cluster's profile
  /// (medians — robust to the groups' heavy size tails).
  double predicted_critical_path = 0.0;
  double predicted_width = 0.0;
};

/// Read-only classifier over a fitted model snapshot — the serving half of
/// the train/serve split.
///
/// Construction rehydrates the frozen signature dictionary (serial
/// interning reproduces ids 0..n-1 exactly, because a single-threaded
/// ShardedSignatureDictionary assigns ids in first-seen order) and wires a
/// FrozenWlFeaturizer over it. After the constructor returns, NOTHING
/// mutates this object: classify() is const, uses only the dictionary's
/// const find(), and maps unseen signatures to the model's reserved OOV id.
/// Any number of threads may call classify() concurrently — the serve-bench
/// TSan configuration holds this to account.
///
/// A job is assigned to the cluster of its most similar representative
/// (normalized kernel similarity when the model was fitted with
/// normalization, raw kernel value otherwise). Because the model keeps
/// every training job as a representative, classifying a training job
/// scores 1 against itself and exactly reproduces the pipeline's own
/// cluster assignment. Ties break toward the representative with the
/// lowest training index, making results independent of iteration order.
class Classifier {
 public:
  /// Takes ownership of the snapshot. Throws model::ModelError if the model
  /// fails validation (a snapshot from load_model() is already validated).
  explicit Classifier(model::FittedModel m);

  Classifier(const Classifier&) = delete;
  Classifier& operator=(const Classifier&) = delete;

  /// Classifies one job DAG. Applies the model's own featurization recipe:
  /// conflation first when the model was fitted on conflated DAGs, task-type
  /// vertex labels when it was fitted with them. Thread-safe.
  Prediction classify(const core::JobDag& job) const;

  /// Classifies a pre-labeled graph directly (the job-independent core of
  /// classify(); exposed for kernel-level tests). Thread-safe.
  Prediction classify_graph(const kernel::LabeledGraph& g) const;

  const model::FittedModel& model() const noexcept { return model_; }

  /// Size of the frozen dictionary — by the serving contract this value
  /// never changes after construction; tests assert it across heavy
  /// concurrent classify() load.
  std::size_t dictionary_size() const noexcept { return dict_.size(); }

 private:
  /// Applies the model's labeling switch to produce the kernel-form graph.
  kernel::LabeledGraph make_labeled(const core::JobDag& job) const;

  /// One representative in the flattened scan order (clusters ascending,
  /// then each cluster's reps in model order — exactly the order the old
  /// nested loop visited, so the tie-break outcome is unchanged).
  struct ScanEntry {
    const model::Representative* rep;
    int cluster;
  };

  model::FittedModel model_;
  kernel::ShardedSignatureDictionary dict_;
  kernel::FrozenWlFeaturizer featurizer_;
  /// Flattened over model_.representatives at construction: the classify
  /// hot loop walks one contiguous array instead of a vector-of-vectors,
  /// and every similarity is a sparse dot through the shared galloping
  /// fast path (kernel::SparseVector::dot).
  std::vector<ScanEntry> scan_;
};

}  // namespace cwgl::serve

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.hpp"
#include "serve/classifier.hpp"
#include "serve/flight_recorder.hpp"
#include "serve/protocol.hpp"
#include "util/bounded_queue.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::serve {

/// Tuning knobs of the resident serving daemon. Defaults favor bounded
/// memory and bounded latency over maximal admission: a full queue sheds.
struct DaemonConfig {
  Endpoint endpoint;          ///< where to listen (unix path or tcp port)
  std::string model_path;     ///< snapshot reloaded on SIGHUP / bare `reload`

  /// Classifier pool width; 0 = hardware concurrency.
  unsigned worker_threads = 0;

  /// Admission control: the hard bound on queued-but-unserved requests.
  /// When the queue has been full for `admission_wait`, the request is shed
  /// with a typed `overloaded` response instead of queueing unboundedly.
  std::size_t max_inflight = 256;
  std::chrono::milliseconds admission_wait{0};

  /// Batching: the dispatcher coalesces up to `max_batch` queued requests;
  /// `batch_linger` is how long it waits for the FIRST request of a batch
  /// (later ones are taken only if already queued — nobody waits behind an
  /// artificial delay once work exists).
  std::size_t max_batch = 32;
  std::chrono::microseconds batch_linger{500};

  /// Deadline applied to classify requests that do not carry their own.
  std::chrono::milliseconds default_deadline{1000};

  /// Drain budget: once shutdown begins, in-flight requests get this long
  /// to finish; stragglers receive `timeout` responses (never silence).
  std::chrono::milliseconds drain_timeout{2000};

  /// Failed async reloads (SIGHUP / bare `reload`) are retried this many
  /// times with exponential backoff before giving up; the old model serves
  /// throughout.
  int reload_retries = 3;
  std::chrono::milliseconds reload_backoff{50};

  /// Artificial per-request service delay. Zero in production; tests and
  /// the load bench set it to make capacity — and therefore overload —
  /// deterministic on any machine.
  std::chrono::microseconds service_delay{0};

  // --- Telemetry plane -----------------------------------------------------

  /// Flight-recorder slow-request sampling: requests consuming more than
  /// `slow_deadline_fraction` of their deadline land in a bounded ring of
  /// `slow_ring_capacity` entries, queryable via the `stats` request.
  std::size_t slow_ring_capacity = 64;
  double slow_deadline_fraction = 0.5;

  /// Periodic Prometheus file exporter: every `telemetry_interval` the
  /// global metrics snapshot is written to `telemetry_path` via atomic
  /// tmp+rename (like save_model). Disabled while either is unset.
  std::string telemetry_path;
  std::chrono::milliseconds telemetry_interval{0};

  /// Structured log sink for accept/shed/timeout/reload/drain events.
  /// nullptr = obs::Logger::global() (whose default level is Off, so an
  /// unconfigured daemon stays silent).
  obs::Logger* logger = nullptr;

  /// When > 0, arms the global span tracer with this bounded event buffer
  /// at start(); the `trace` admin request drains it.
  std::size_t trace_buffer = 0;
};

/// Point-in-time view of the daemon's lifetime counters (per-instance, so
/// tests running several daemons in one process see isolated numbers; the
/// same events also feed the global `serve.daemon.*` metrics).
struct DaemonStats {
  std::uint64_t connections = 0;        ///< accepted, lifetime
  std::uint64_t requests = 0;           ///< classify requests received
  std::uint64_t served = 0;             ///< answered `ok`
  std::uint64_t shed = 0;               ///< answered `overloaded`
  std::uint64_t timeouts = 0;           ///< answered `timeout`
  std::uint64_t errors = 0;             ///< answered `error`
  std::uint64_t rejected_draining = 0;  ///< answered `shutting_down`
  std::uint64_t batches = 0;            ///< dispatcher batches executed
  std::uint64_t reloads = 0;            ///< successful model swaps
  std::uint64_t reload_failures = 0;    ///< rejected swap attempts
  std::int64_t queue_depth_peak = 0;    ///< admission queue high-water
  std::int64_t queue_depth = 0;         ///< admission queue, right now
  std::uint64_t generation = 0;         ///< model generation (1 = initial)
  std::uint64_t telemetry_exports = 0;  ///< periodic exporter files written
  std::uint64_t slow_sampled = 0;       ///< flight-recorder slow samples

  std::map<std::string, std::uint64_t> as_map() const;
};

/// The resident `cwgl serve` process: accepts cwgl-serve-v1 frames over a
/// unix/tcp socket, coalesces classify requests into batches for a thread
/// pool, and stays correct under overload, deadline pressure, model swaps,
/// and shutdown:
///
///  - Admission control: bounded in-flight work via util::BoundedQueue;
///    a full queue sheds with a typed `overloaded` response.
///  - Deadlines: every classify request carries one (its own or the
///    server default); expired requests get `timeout` responses.
///  - Hot reload: RCU-style — the dispatcher grabs a
///    shared_ptr<const Classifier> snapshot per batch; reload builds a new
///    Classifier off to the side and swaps the pointer. The frozen
///    dictionary makes concurrent readers safe; a corrupt snapshot is
///    rejected (old model keeps serving) and async reloads retry with
///    exponential backoff.
///  - Graceful drain: SIGTERM/SIGINT (or a `drain` request) stops
///    accepting, finishes or times out queued work within `drain_timeout`,
///    answers every in-flight request, then exits.
///
/// Threads: one acceptor, one control loop (signals, async reloads, drain
/// orchestration), one dispatcher, one per connection, plus the classifier
/// pool. Failpoints: `serve.accept`, `serve.batch`, `serve.reload`.
class Daemon {
 public:
  /// Takes the initial model snapshot. Nothing runs until start().
  Daemon(std::shared_ptr<const Classifier> classifier, DaemonConfig config);

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Drains and joins if still running (equivalent to request_drain+wait).
  ~Daemon();

  /// Binds the endpoint and spawns the serving threads. Throws
  /// ProtocolError when the endpoint cannot be bound.
  void start();

  /// The TCP port actually bound (ephemeral ports resolve here); -1 for
  /// unix endpoints. Valid after start().
  int tcp_port() const noexcept { return tcp_port_; }

  /// Asynchronous model reload from `config.model_path` — the SIGHUP entry
  /// point. Safe from any thread; failures retry with backoff while the old
  /// model keeps serving.
  void request_reload() noexcept;

  /// Begins graceful drain — the SIGTERM/SIGINT entry point. Safe from any
  /// thread; idempotent.
  void request_drain() noexcept;

  /// Synchronous reload used by the `reload` control request. Returns true
  /// on swap; false with `*error` filled when the new snapshot is rejected
  /// (the old model keeps serving either way).
  bool reload_now(const std::string& path, std::string* error);

  /// Blocks until drain completes and every thread is joined. Returns 0 on
  /// a clean drain (every in-flight request answered). Call once.
  int wait();

  /// Routes SIGHUP -> request_reload and SIGINT/SIGTERM -> request_drain
  /// for this instance (at most one daemon per process may install;
  /// handlers are restored when the daemon is destroyed). Async-signal-safe:
  /// the handler only writes one byte to a self-pipe.
  void install_signal_handlers();

  /// Current model snapshot (what the next batch will classify with).
  std::shared_ptr<const Classifier> snapshot() const;

  DaemonStats stats() const;

 private:
  struct Connection;
  struct Pending;

  void accept_loop();
  void control_loop();
  void dispatch_loop();
  void serve_connection(std::shared_ptr<Connection> conn);
  void handle_classify(const std::shared_ptr<Connection>& conn, Request req);
  void handle_control(const std::shared_ptr<Connection>& conn,
                      const Request& req);
  void process_batch(std::vector<Pending>& batch);
  void respond(const std::shared_ptr<Connection>& conn, const Response& r);
  void begin_drain();
  bool do_reload(const std::string& path, std::string* error);
  void wake_control(char event) noexcept;
  void reap_finished();
  void export_telemetry();
  std::string stats_payload() const;
  std::string health_payload() const;
  double uptime_seconds() const;

  DaemonConfig config_;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Classifier> classifier_;

  /// Serializes swap attempts (control-loop retries vs `reload` requests).
  std::mutex reload_mutex_;

  util::BoundedQueue<Pending> queue_;
  util::ThreadPool pool_;

  Fd listen_fd_;
  int tcp_port_ = -1;
  Fd control_pipe_read_, control_pipe_write_;    ///< wakes the control loop
  Fd signal_pipe_read_, signal_pipe_write_;      ///< written by signal handlers

  std::thread accept_thread_;
  std::thread control_thread_;
  std::thread dispatch_thread_;

  /// Guards the three structures below. Live connections sit in
  /// `connections_` (readers remove themselves on exit; Pending entries keep
  /// the Connection — and its fd — alive until their responses are written).
  /// Reader thread handles sit in `conn_threads_`; an exiting reader records
  /// its id in `finished_` and the accept loop joins it on its next pass, so
  /// a long-lived daemon does not accumulate dead thread handles.
  std::mutex connections_mutex_;
  std::map<std::uint64_t, std::shared_ptr<Connection>> connections_;
  std::map<std::uint64_t, std::thread> conn_threads_;
  std::vector<std::uint64_t> finished_;
  std::uint64_t next_connection_id_ = 0;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::int64_t> drain_deadline_ns_{0};
  bool signal_handlers_installed_ = false;

  // Lifetime counters (see DaemonStats).
  std::atomic<std::uint64_t> connections_total_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> rejected_draining_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> reload_failures_{0};
  std::atomic<std::int64_t> queue_depth_{0};
  std::atomic<std::int64_t> queue_depth_peak_{0};

  // Telemetry plane.
  FlightRecorder recorder_;
  obs::Logger* log_ = nullptr;  ///< never null after construction
  std::atomic<std::uint64_t> generation_{1};
  std::atomic<std::uint64_t> telemetry_exports_{0};
  std::chrono::steady_clock::time_point start_time_{};

  /// Outcome of the most recent reload attempt, for `health`.
  mutable std::mutex last_reload_mutex_;
  bool last_reload_any_ = false;
  bool last_reload_ok_ = false;
  std::string last_reload_message_;
  double last_reload_at_s_ = 0.0;  ///< seconds since start()
};

}  // namespace cwgl::serve

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace cwgl::serve {

/// Raised on any wire-level defect: malformed frames, oversized payloads,
/// JSON that is not a valid request/response, socket errors. Derives from
/// util::Error so CLI/tests intercept it uniformly; it is its own type so a
/// protocol violation is distinguishable from a model or graph failure.
class ProtocolError : public util::Error {
 public:
  explicit ProtocolError(const std::string& what) : util::Error(what) {}
};

/// The `cwgl-serve-v1` wire protocol: every message is one frame —
///
///   u32 little-endian payload length, then that many bytes of UTF-8 JSON.
///
/// Requests carry a client-chosen `id` echoed verbatim in the response, so
/// pipelined requests can be matched even when batch scheduling reorders
/// completions. Frames larger than kMaxFrameBytes are rejected outright
/// (a corrupt length prefix must not make the daemon allocate gigabytes).
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;

/// What a client asks of the daemon.
enum class RequestType {
  Classify,  ///< classify one job DAG (the data plane)
  Ping,      ///< liveness probe (reports version + model generation)
  Stats,     ///< daemon counter snapshot + full metrics/flight payload
  Health,    ///< readiness: generation, uptime, queue depth, last reload
  Trace,     ///< drain the daemon's span buffer
  Reload,    ///< swap in a fresh model snapshot (control plane)
  Drain,     ///< graceful shutdown: finish in-flight work, then exit
};

/// How the daemon answered.
enum class ResponseStatus {
  Ok,
  Overloaded,    ///< admission control shed the request (queue stayed full)
  Timeout,       ///< the request's deadline expired before service
  ShuttingDown,  ///< arrived after drain began; no new work is admitted
  Error,         ///< malformed request, unbuildable DAG, failed reload, ...
};

std::string_view to_string(RequestType t) noexcept;
std::string_view to_string(ResponseStatus s) noexcept;

/// One decoded request frame.
///
/// Classify requests describe the job as its dependency-encoded Alibaba
/// task names ("M1", "R2_1", "J3_2_1", ...) — exactly the grammar of
/// batch_task.csv's task_name column, so any trace row set maps 1:1 onto a
/// request with no new dependency encoding to get wrong.
struct Request {
  RequestType type = RequestType::Ping;
  std::uint64_t id = 0;
  std::string job_name;             ///< classify: job id for explainability
  std::vector<std::string> tasks;   ///< classify: dependency-encoded names
  double deadline_ms = 0.0;         ///< classify: 0 = server default
  std::string model_path;           ///< reload: override the daemon's path
};

/// One decoded response frame. Which fields are meaningful depends on
/// `status` and the request type it answers (prediction fields for a served
/// classify, `stats` for a stats request, `message` for errors).
struct Response {
  std::uint64_t id = 0;
  ResponseStatus status = ResponseStatus::Ok;
  std::string message;

  // Classify payload (status == Ok).
  std::string cluster;              ///< letter name, "A"...
  int cluster_id = 0;
  double similarity = 0.0;
  std::string nearest;              ///< nearest training representative
  std::uint64_t oov_hits = 0;
  double predicted_critical_path = 0.0;
  double predicted_width = 0.0;

  /// Stats payload (flat name -> value counters, daemon lifetime).
  std::map<std::string, std::uint64_t> stats;

  // Telemetry-plane fields (PR 9).
  std::string version;          ///< ping: daemon build identification
  std::uint64_t generation = 0; ///< ping/health/stats: model generation (>=1)
  /// Rich structured payload, carried verbatim as one JSON value: the full
  /// metrics snapshot for `stats`, the readiness document for `health`, the
  /// drained span array for `trace`. Kept as pre-serialized JSON so the
  /// protocol layer doesn't need a schema for every telemetry document.
  std::string payload;
};

/// JSON codecs. Encoders always produce a single-line document; decoders
/// throw ProtocolError on anything that is not a well-formed message of the
/// expected kind (unknown type/status, missing fields, wrong JSON kinds).
std::string encode_request(const Request& r);
Request decode_request(std::string_view json);
std::string encode_response(const Response& r);
Response decode_response(std::string_view json);

// ---------------------------------------------------------------------------
// Sockets. Thin blocking wrappers over AF_UNIX / loopback AF_INET — enough
// for the daemon, the CLI client, tests, and the load-generator bench; not a
// general networking library.
// ---------------------------------------------------------------------------

/// Where a daemon listens / a client connects. Unix path wins when set.
struct Endpoint {
  std::string socket_path;  ///< AF_UNIX filesystem path when non-empty
  int tcp_port = -1;        ///< loopback AF_INET port when >= 0 (0 = ephemeral)

  bool valid() const noexcept { return !socket_path.empty() || tcp_port >= 0; }
};

/// Owning file descriptor (move-only; closes on destruction).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// Binds + listens on `ep`. For unix endpoints a stale socket file is
/// unlinked first; for tcp, port 0 picks an ephemeral port (query it with
/// local_tcp_port). Throws ProtocolError on failure.
Fd listen_on(const Endpoint& ep, int backlog = 64);

/// The port a listening/connected tcp socket actually bound.
int local_tcp_port(int fd);

/// Disables Nagle on a TCP stream (no-op for unix sockets). Request/response
/// frames are small; letting the kernel batch them trades ~40ms of delayed-ACK
/// latency for nothing.
void set_nodelay(int fd) noexcept;

/// Connects to a listening daemon. Throws ProtocolError when the endpoint
/// is invalid or unreachable.
Fd connect_to(const Endpoint& ep);

/// Writes one frame (length prefix + payload), handling short writes.
/// Throws ProtocolError on oversize payloads and socket errors (a peer that
/// vanished raises ProtocolError, never SIGPIPE).
void write_frame(int fd, std::string_view payload);

/// Reads one frame into `payload`. Returns false on clean EOF at a frame
/// boundary (the peer hung up between messages). Throws ProtocolError on
/// oversized lengths, mid-frame EOF, and socket errors.
bool read_frame(int fd, std::string& payload);

/// Blocking request/response client over one connection.
///
/// `call()` is the simple path: send one request, wait for its response
/// (matching on id, so it composes with pipelined traffic on the same
/// connection). `send()`/`recv()` expose the pipelined form the bench's
/// open-loop generator uses — many requests in flight, responses consumed
/// by a reader thread. A Client is NOT thread-safe; pipelined users
/// serialize sends and recvs themselves (one writer + one reader is fine:
/// the two directions touch disjoint socket halves).
class Client {
 public:
  /// Connects immediately; throws ProtocolError on failure.
  explicit Client(const Endpoint& ep) : fd_(connect_to(ep)) {}

  void send(const Request& r) { write_frame(fd_.get(), encode_request(r)); }

  /// Next response in arrival order; nullopt on clean EOF.
  std::optional<Response> recv();

  /// send + receive until the response with this request's id arrives.
  /// Out-of-order responses for other ids are discarded (a blocking caller
  /// interleaving call() with send() has forfeited those anyway).
  Response call(const Request& r);

  /// Half-closes the write side — tells the daemon "no more requests" while
  /// still draining responses.
  void shutdown_write();

  int fd() const noexcept { return fd_.get(); }

 private:
  Fd fd_;
  std::string buffer_;
};

}  // namespace cwgl::serve

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/job_dag.hpp"
#include "serve/classifier.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::serve {

/// Throughput/latency report of one batch classification run.
struct BatchStats {
  std::size_t jobs = 0;
  double wall_seconds = 0.0;
  double jobs_per_second = 0.0;
  /// Per-job classify() latency quantiles, microseconds (exact — computed
  /// from the full sorted sample set, not histogram buckets).
  double p50_latency_us = 0.0;
  double p90_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double max_latency_us = 0.0;
  /// Jobs with at least one out-of-vocabulary WL signature.
  std::size_t oov_jobs = 0;
  /// Jobs per cluster, index = group id.
  std::vector<std::size_t> cluster_counts;
};

/// Classifies `jobs` against `classifier`, fanning out over `pool` when
/// given (work-helping chunks, so it composes with nested parallelism).
/// When `out` is non-null it receives one Prediction per job, in input
/// order regardless of scheduling.
///
/// Emits `serve.batch.*` metrics and a "serve.classify_batch" span; per-job
/// latencies feed the `serve.classify.latency_us` histogram when the
/// registry's timing gate is open, and are always collected locally for the
/// exact quantiles in the returned stats (a bench must not require global
/// timing to be on).
BatchStats classify_batch(const Classifier& classifier,
                          std::span<const core::JobDag> jobs,
                          util::ThreadPool* pool = nullptr,
                          std::vector<Prediction>* out = nullptr);

}  // namespace cwgl::serve

#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "kernel/label_dict.hpp"
#include "kernel/types.hpp"

namespace cwgl::kernel {

/// Configuration of the Weisfeiler–Lehman subtree kernel (Shervashidze et
/// al., JMLR 2011), adapted to directed graphs.
struct WlConfig {
  /// Number of refinement iterations h. Iteration 0 contributes the raw
  /// label histogram; each further iteration contributes one more ring of
  /// neighborhood context. The paper's graphs are shallow (critical paths
  /// 2–8), so h = 3 captures nearly all structure.
  int iterations = 3;
  /// If true (default), a vertex's refinement signature keeps in- and
  /// out-neighbor label multisets separate — a Map feeding two Reduces is
  /// then distinguished from a Join fed by two Maps. If false, neighbors
  /// are pooled as in the classic undirected kernel.
  bool directed = true;
  /// Optional per-iteration weights w_0..w_h realizing the general form of
  /// the paper's Eq. (1): k = sum_i w_i k_i(G^i, G'^i). Empty means all 1.
  /// Must have exactly `iterations + 1` non-negative entries when set
  /// (validated once, at featurizer construction). Larger early weights
  /// emphasize coarse label statistics; larger late weights emphasize deep
  /// subtree context.
  std::vector<double> iteration_weights;

  friend bool operator==(const WlConfig&, const WlConfig&) = default;
};

/// WL subtree featurizer.
///
/// featurize() returns the concatenated per-iteration compressed-label
/// histograms phi(G) of Eq. (2) in the paper; the kernel between two graphs
/// is then <phi(G), phi(G')>, and two isomorphic graphs get identical
/// vectors regardless of vertex order (signatures sort neighbor labels).
///
/// A single instance interns signatures into one shared dictionary, so the
/// whole corpus must pass through the same instance for comparable vectors.
///
/// The dictionary is sharded and lock-striped, so featurize() is safe to
/// call concurrently from many threads (thread_safe() == true). Kernel
/// values are identical whichever schedule interleaves the interning; only
/// the private feature ids differ (see DESIGN.md "Concurrency model").
///
/// Throws util::InvalidArgument at construction when
/// `config.iteration_weights` is set but malformed (wrong arity or a
/// negative entry) — featurize() itself never re-validates.
class WlSubtreeFeaturizer final : public Featurizer {
 public:
  explicit WlSubtreeFeaturizer(WlConfig config = {});

  SparseVector featurize(const LabeledGraph& g) override;

  std::string_view name() const noexcept override { return "wl-subtree"; }

  bool thread_safe() const noexcept override { return true; }

  const WlConfig& config() const noexcept { return config_; }

  /// Number of distinct (iteration, signature) features interned so far.
  std::size_t dictionary_size() const noexcept { return dict_.size(); }

  /// The shared signature dictionary — read-only access for the frozen
  /// serving path and the model store's export hook.
  const ShardedSignatureDictionary& dictionary() const noexcept { return dict_; }

  /// Every (signature, id) pair interned so far, sorted by id (dense ids:
  /// after serial featurization, entry i has id i). This is the fitted state
  /// the model store serializes.
  std::vector<std::pair<std::string, int>> dictionary_entries() const {
    return dict_.entries();
  }

  /// The final per-vertex compressed colors of the last featurized graph —
  /// exposed for refinement-convergence tests. Only meaningful when the
  /// previous featurize() calls were serial (under concurrency "last" is
  /// whichever call stored most recently).
  const std::vector<int>& last_colors() const noexcept { return last_colors_; }

 private:
  WlConfig config_;
  ShardedSignatureDictionary dict_;
  std::mutex last_colors_mutex_;
  std::vector<int> last_colors_;
};

/// Read-only WL featurization against a FROZEN signature dictionary — the
/// serving-side counterpart of WlSubtreeFeaturizer.
///
/// Training interns every signature it meets; serving must not (a model's
/// feature space is fixed at fit time), so this featurizer only ever calls
/// the dictionary's const `find()`. A signature the dictionary has never
/// seen maps to the reserved out-of-vocabulary id `oov_id` — one shared
/// bucket, so unseen structure still contributes kernel mass (two jobs that
/// are both "novel" in the same positions look alike) without ever mutating
/// the dictionary. OOV colors feed the next refinement round like any other
/// color, keeping the recursion deterministic.
///
/// The referenced dictionary must outlive this featurizer and must not be
/// mutated while featurize() runs (the serving engine guarantees both: the
/// dictionary is owned by the loaded model and nothing interns into it).
/// featurize() is const and safe to call from any number of threads.
class FrozenWlFeaturizer {
 public:
  /// `oov_id` must be outside the dictionary's dense id range; the model
  /// store uses `dictionary size` (one past the last real id). Throws
  /// util::InvalidArgument on a malformed config (same rules as
  /// WlSubtreeFeaturizer).
  FrozenWlFeaturizer(WlConfig config, const ShardedSignatureDictionary& dict,
                     int oov_id);

  /// Maps a graph into the frozen feature space. When `oov_hits` is given it
  /// receives the number of vertex-signature lookups that fell into the OOV
  /// bucket (0 for a job fully covered by the training vocabulary).
  SparseVector featurize(const LabeledGraph& g,
                         std::size_t* oov_hits = nullptr) const;

  const WlConfig& config() const noexcept { return config_; }
  int oov_id() const noexcept { return oov_id_; }

 private:
  WlConfig config_;
  const ShardedSignatureDictionary* dict_;
  int oov_id_;
};

/// Convenience: raw WL kernel value between two graphs using a fresh
/// dictionary (fine for one-off comparisons; use the featurizer + gram
/// matrix for corpora).
double wl_subtree_kernel(const LabeledGraph& a, const LabeledGraph& b,
                         WlConfig config = {});

/// Cosine-normalized convenience variant, in [0,1], 1 for isomorphic pairs.
double wl_subtree_similarity(const LabeledGraph& a, const LabeledGraph& b,
                             WlConfig config = {});

}  // namespace cwgl::kernel

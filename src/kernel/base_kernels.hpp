#pragma once

#include "kernel/types.hpp"

namespace cwgl::kernel {

/// Vertex-label histogram features: k(G,G') counts matching label pairs.
/// The weakest baseline — blind to all structure.
class VertexHistogramFeaturizer final : public Featurizer {
 public:
  SparseVector featurize(const LabeledGraph& g) override;
  std::string_view name() const noexcept override { return "vertex-histogram"; }

 private:
  SignatureDictionary dict_;
};

/// Directed-edge label-pair histogram features: one count per
/// (label(u), label(v)) over edges u->v. Sees local structure only.
class EdgeHistogramFeaturizer final : public Featurizer {
 public:
  SparseVector featurize(const LabeledGraph& g) override;
  std::string_view name() const noexcept override { return "edge-histogram"; }

 private:
  SignatureDictionary dict_;
};

/// Shortest-path kernel (Borgwardt & Kriegel 2005 style): one count per
/// (label(u), label(v), d(u,v)) over ordered vertex pairs with a finite
/// directed hop distance (u != v). Captures long-range layering that the
/// edge histogram misses.
class ShortestPathFeaturizer final : public Featurizer {
 public:
  SparseVector featurize(const LabeledGraph& g) override;
  std::string_view name() const noexcept override { return "shortest-path"; }

 private:
  SignatureDictionary dict_;
};

}  // namespace cwgl::kernel

#pragma once

#include "kernel/label_dict.hpp"
#include "kernel/types.hpp"

namespace cwgl::kernel {

/// Vertex-label histogram features: k(G,G') counts matching label pairs.
/// The weakest baseline — blind to all structure.
///
/// All three baseline featurizers intern through a sharded dictionary, so
/// like the WL featurizer they may be driven concurrently (thread_safe()).
class VertexHistogramFeaturizer final : public Featurizer {
 public:
  SparseVector featurize(const LabeledGraph& g) override;
  std::string_view name() const noexcept override { return "vertex-histogram"; }
  bool thread_safe() const noexcept override { return true; }

 private:
  ShardedSignatureDictionary dict_;
};

/// Directed-edge label-pair histogram features: one count per
/// (label(u), label(v)) over edges u->v. Sees local structure only.
class EdgeHistogramFeaturizer final : public Featurizer {
 public:
  SparseVector featurize(const LabeledGraph& g) override;
  std::string_view name() const noexcept override { return "edge-histogram"; }
  bool thread_safe() const noexcept override { return true; }

 private:
  ShardedSignatureDictionary dict_;
};

/// Shortest-path kernel (Borgwardt & Kriegel 2005 style): one count per
/// (label(u), label(v), d(u,v)) over ordered vertex pairs with a finite
/// directed hop distance (u != v). Captures long-range layering that the
/// edge histogram misses.
class ShortestPathFeaturizer final : public Featurizer {
 public:
  SparseVector featurize(const LabeledGraph& g) override;
  std::string_view name() const noexcept override { return "shortest-path"; }
  bool thread_safe() const noexcept override { return true; }

 private:
  ShardedSignatureDictionary dict_;
};

}  // namespace cwgl::kernel

#pragma once

#include <cstddef>

#include "kernel/types.hpp"

namespace cwgl::kernel {

/// Cost model and search budget for exact graph edit distance.
struct GedOptions {
  double node_substitution = 1.0;  ///< relabel a vertex
  double node_insertion = 1.0;
  double node_deletion = 1.0;
  double edge_insertion = 1.0;
  double edge_deletion = 1.0;
  /// A* guard: throw util::Error after this many state expansions. GED is
  /// exponential in vertex count — exactly the cost blow-up that led the
  /// paper to graph kernels instead (Section V-C).
  std::size_t max_expansions = 2'000'000;
};

/// Exact directed graph edit distance via A* over vertex assignments, with
/// an admissible label-histogram heuristic. Intended for small graphs
/// (<= ~12 vertices); larger inputs exhaust `max_expansions` and throw.
/// Edges are unlabeled; vertices compare by label.
double graph_edit_distance(const LabeledGraph& a, const LabeledGraph& b,
                           const GedOptions& options = {});

/// GED-derived similarity in [0,1]: exp(-ged / (|V_a| + |V_b|)), a common
/// normalization used when comparing against kernel similarities.
double ged_similarity(const LabeledGraph& a, const LabeledGraph& b,
                      const GedOptions& options = {});

}  // namespace cwgl::kernel

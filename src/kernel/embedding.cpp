#include "kernel/embedding.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace cwgl::kernel {

namespace {

std::uint64_t mix(std::uint64_t x) {
  util::SplitMix64 sm(x);
  return sm();
}

/// Order-independent hash of a sorted multiset of colors.
std::uint64_t hash_multiset(std::vector<std::uint64_t>& values) {
  std::sort(values.begin(), values.end());
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t v : values) h = util::hash_combine(h, v);
  return h;
}

}  // namespace

std::vector<double> wl_embed(const LabeledGraph& g, const EmbeddingConfig& config) {
  if (config.dimensions < 1) {
    throw util::InvalidArgument("wl_embed: dimensions must be >= 1");
  }
  const int n = g.graph.num_vertices();
  std::vector<double> embedding(config.dimensions, 0.0);

  // Color refinement with hash colors (no dictionary): colors are stable
  // across processes for a fixed seed.
  std::vector<std::uint64_t> color(n);
  for (int v = 0; v < n; ++v) {
    color[v] = mix(util::hash_combine(config.seed,
                                      static_cast<std::uint64_t>(g.label(v)) + 0x7777));
  }

  const auto emit = [&](int iteration, std::uint64_t c) {
    const std::uint64_t h = mix(util::hash_combine(
        util::hash_combine(config.seed, static_cast<std::uint64_t>(iteration)), c));
    const auto index =
        static_cast<std::size_t>(h % static_cast<std::uint64_t>(config.dimensions));
    const double sign = (h >> 63) ? 1.0 : -1.0;
    embedding[index] += sign;
  };

  for (int v = 0; v < n; ++v) emit(0, color[v]);

  std::vector<std::uint64_t> next(n);
  std::vector<std::uint64_t> bucket;
  for (int it = 1; it <= config.wl.iterations; ++it) {
    for (int v = 0; v < n; ++v) {
      std::uint64_t neighborhood;
      if (config.wl.directed) {
        bucket.clear();
        for (int w : g.graph.predecessors(v)) bucket.push_back(color[w]);
        const std::uint64_t in_hash = hash_multiset(bucket);
        bucket.clear();
        for (int w : g.graph.successors(v)) bucket.push_back(color[w]);
        const std::uint64_t out_hash = hash_multiset(bucket);
        neighborhood = util::hash_combine(mix(in_hash), out_hash);
      } else {
        bucket.clear();
        for (int w : g.graph.predecessors(v)) bucket.push_back(color[w]);
        for (int w : g.graph.successors(v)) bucket.push_back(color[w]);
        neighborhood = hash_multiset(bucket);
      }
      next[v] = mix(util::hash_combine(color[v], neighborhood));
      emit(it, next[v]);
    }
    color.swap(next);
  }

  if (config.normalize) {
    double norm = 0.0;
    for (double x : embedding) norm += x * x;
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (double& x : embedding) x /= norm;
    }
  }
  return embedding;
}

linalg::Matrix wl_embedding_matrix(std::span<const LabeledGraph> corpus,
                                   const EmbeddingConfig& config,
                                   util::ThreadPool* pool) {
  linalg::Matrix out(corpus.size(), static_cast<std::size_t>(config.dimensions));
  const auto embed_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const auto row = wl_embed(corpus[i], config);
      for (std::size_t c = 0; c < row.size(); ++c) out(i, c) = row[c];
    }
  };
  if (pool != nullptr) {
    util::parallel_for_chunked(*pool, 0, corpus.size(), 16, embed_range);
  } else {
    embed_range(0, corpus.size());
  }
  return out;
}

}  // namespace cwgl::kernel

#include "kernel/gram.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/tracer.hpp"
#include "util/error.hpp"

namespace cwgl::kernel {

linalg::Matrix gram_matrix(Featurizer& f, std::span<const LabeledGraph> corpus,
                           const GramOptions& options, util::ThreadPool* pool) {
  const std::size_t n = corpus.size();
  obs::Span span("kernel.gram");
  span.arg("graphs", n);
  std::vector<SparseVector> features(n);
  const auto featurize_range = [&](std::size_t lo, std::size_t hi) {
    obs::Span chunk("kernel.featurize.chunk");
    chunk.arg("graphs", hi - lo);
    for (std::size_t i = lo; i < hi; ++i) features[i] = f.featurize(corpus[i]);
  };
  if (pool != nullptr && f.thread_safe()) {
    util::parallel_for_chunked(*pool, 0, n, options.featurize_grain,
                               featurize_range);
  } else {
    featurize_range(0, n);
  }
  return gram_from_features(features, options, pool);
}

namespace {

/// One cache-sized block of the upper triangle: rows [row_lo, row_hi) x
/// cols [col_lo, col_hi), with row_lo <= col_lo. `work` is the scheduling
/// weight — the sum over the block's (i, j) pairs of nnz_i * nnz_j, which
/// is what a sparse dot actually costs (not the pair count: a block of fat
/// head-of-distribution vectors is orders of magnitude dearer than one of
/// two-entry chains).
struct GramTile {
  std::size_t row_lo, row_hi;
  std::size_t col_lo, col_hi;
  double work;
};

/// Partitions the upper triangle of an n x n pair space into GramTiles of
/// at most `block` rows/cols each, row-major over the block grid — a
/// deterministic order, though Gram output never depends on it (every (i, j)
/// belongs to exactly one tile and each entry is an independent dot).
std::vector<GramTile> make_tiles(std::span<const SparseVector> features,
                                 std::size_t block) {
  const std::size_t n = features.size();
  const std::size_t grid = (n + block - 1) / block;
  // Per-block nnz sums: the work of an off-diagonal tile is exactly
  // (sum nnz over its rows) * (sum nnz over its cols).
  std::vector<double> block_nnz(grid, 0.0);
  for (std::size_t b = 0; b < grid; ++b) {
    const std::size_t hi = std::min((b + 1) * block, n);
    for (std::size_t i = b * block; i < hi; ++i) {
      block_nnz[b] += static_cast<double>(features[i].items.size());
    }
  }
  std::vector<GramTile> tiles;
  tiles.reserve(grid * (grid + 1) / 2);
  for (std::size_t bi = 0; bi < grid; ++bi) {
    for (std::size_t bj = bi; bj < grid; ++bj) {
      GramTile t;
      t.row_lo = bi * block;
      t.row_hi = std::min(t.row_lo + block, n);
      t.col_lo = bj * block;
      t.col_hi = std::min(t.col_lo + block, n);
      // Diagonal tiles only compute their upper half; halving the estimate
      // keeps them from being scheduled as if they were full blocks.
      t.work = block_nnz[bi] * block_nnz[bj] * (bi == bj ? 0.5 : 1.0);
      tiles.push_back(t);
    }
  }
  return tiles;
}

}  // namespace

linalg::Matrix gram_from_features(std::span<const SparseVector> features,
                                  const GramOptions& options,
                                  util::ThreadPool* pool) {
  const std::size_t n = features.size();
  linalg::Matrix gram(n, n);

  // Tiled upper-triangle fill. Tiles are independent (disjoint (i, j) sets,
  // and each tile writes only its own entries plus their mirrors), so the
  // pooled path races on nothing and produces the same matrix as the serial
  // one bit for bit — parallelism only reorders which independent dot runs
  // when. Work-sized chunking replaces the old per-row parallel_for, whose
  // row i cost (n - i) dots: tasks were wildly imbalanced and the per-row
  // submit overhead dominated at n ~ 100 (the 0.72x pooled "speedup" this
  // path used to ship).
  const std::size_t block = std::clamp<std::size_t>(options.tile_rows, 1, 4096);
  const std::vector<GramTile> tiles = make_tiles(features, block);
  const auto fill_tile = [&](const GramTile& t) {
    for (std::size_t i = t.row_lo; i < t.row_hi; ++i) {
      const SparseVector& fi = features[i];
      const std::size_t j0 = std::max(i, t.col_lo);
      for (std::size_t j = j0; j < t.col_hi; ++j) {
        const double k = fi.dot(features[j]);
        gram(i, j) = k;
        gram(j, i) = k;
      }
    }
  };
  const auto fill_tiles = [&](std::size_t lo, std::size_t hi) {
    obs::Span chunk("kernel.gram.tile_chunk");
    chunk.arg("tiles", hi - lo);
    for (std::size_t t = lo; t < hi; ++t) fill_tile(tiles[t]);
  };
  if (pool != nullptr && !tiles.empty()) {
    std::vector<double> work;
    work.reserve(tiles.size());
    for (const GramTile& t : tiles) work.push_back(t.work);
    util::parallel_for_weighted(*pool, work, fill_tiles);
  } else {
    fill_tiles(0, tiles.size());
  }

  if (options.normalize) {
    std::vector<double> inv_norm(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double d = std::sqrt(gram(i, i));
      // Zero or non-finite self-kernels (an all-OOV probe, an overflowed
      // feature) zero the whole row/column instead of spraying NaN — the
      // lenient posture the ingest stages already take.
      inv_norm[i] = (d > 0.0 && std::isfinite(d)) ? 1.0 / d : 0.0;
    }
    // The matrix is symmetric, so scale the upper triangle once and mirror
    // instead of rewriting all n^2 entries. The products equal what the
    // full rewrite computed: (i, j) and (j, i) held the same value and IEEE
    // multiplication commutes in inv_norm[i] * inv_norm[j]. A zero scale
    // short-circuits to 0.0 rather than multiplying, so a guarded row zeros
    // out even where its raw entries are non-finite (inf * 0 is NaN).
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        const double scale = inv_norm[i] * inv_norm[j];
        const double v = scale == 0.0 ? 0.0 : gram(i, j) * scale;
        gram(i, j) = v;
        gram(j, i) = v;
      }
    }
  }
  return gram;
}

linalg::Matrix kernel_to_distance(const linalg::Matrix& gram) {
  if (gram.rows() != gram.cols()) {
    throw util::InvalidArgument("kernel_to_distance: matrix must be square");
  }
  const std::size_t n = gram.rows();
  linalg::Matrix dist(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double sq = gram(i, i) + gram(j, j) - 2.0 * gram(i, j);
      dist(i, j) = std::sqrt(std::max(0.0, sq));
    }
  }
  return dist;
}

}  // namespace cwgl::kernel

#include "kernel/gram.hpp"

#include <cmath>
#include <vector>

#include "obs/tracer.hpp"
#include "util/error.hpp"

namespace cwgl::kernel {

linalg::Matrix gram_matrix(Featurizer& f, std::span<const LabeledGraph> corpus,
                           const GramOptions& options, util::ThreadPool* pool) {
  const std::size_t n = corpus.size();
  obs::Span span("kernel.gram");
  span.arg("graphs", n);
  std::vector<SparseVector> features(n);
  const auto featurize_range = [&](std::size_t lo, std::size_t hi) {
    obs::Span chunk("kernel.featurize.chunk");
    chunk.arg("graphs", hi - lo);
    for (std::size_t i = lo; i < hi; ++i) features[i] = f.featurize(corpus[i]);
  };
  if (pool != nullptr && f.thread_safe()) {
    util::parallel_for_chunked(*pool, 0, n, options.featurize_grain,
                               featurize_range);
  } else {
    featurize_range(0, n);
  }
  return gram_from_features(features, options, pool);
}

linalg::Matrix gram_from_features(std::span<const SparseVector> features,
                                  const GramOptions& options,
                                  util::ThreadPool* pool) {
  const std::size_t n = features.size();
  linalg::Matrix gram(n, n);
  const auto fill_row = [&](std::size_t i) {
    for (std::size_t j = i; j < n; ++j) {
      const double k = features[i].dot(features[j]);
      gram(i, j) = k;
      gram(j, i) = k;
    }
  };
  if (pool != nullptr) {
    util::parallel_for(*pool, 0, n, fill_row);
  } else {
    for (std::size_t i = 0; i < n; ++i) fill_row(i);
  }

  if (options.normalize) {
    std::vector<double> inv_norm(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double d = std::sqrt(gram(i, i));
      inv_norm[i] = d > 0.0 ? 1.0 / d : 0.0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        gram(i, j) *= inv_norm[i] * inv_norm[j];
      }
    }
  }
  return gram;
}

linalg::Matrix kernel_to_distance(const linalg::Matrix& gram) {
  if (gram.rows() != gram.cols()) {
    throw util::InvalidArgument("kernel_to_distance: matrix must be square");
  }
  const std::size_t n = gram.rows();
  linalg::Matrix dist(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double sq = gram(i, i) + gram(j, j) - 2.0 * gram(i, j);
      dist(i, j) = std::sqrt(std::max(0.0, sq));
    }
  }
  return dist;
}

}  // namespace cwgl::kernel

#include "kernel/label_dict.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace cwgl::kernel {

std::size_t ShardedSignatureDictionary::shard_index(std::string_view key) noexcept {
  // Fibonacci-mix the container hash so shard selection stays uncorrelated
  // with the map's own bucket placement (libstdc++ buckets by modulo).
  const auto h = static_cast<std::uint64_t>(std::hash<std::string_view>{}(key));
  return static_cast<std::size_t>((h * 0x9e3779b97f4a7c15ULL) >> 32) &
         (kShardCount - 1);
}

int ShardedSignatureDictionary::intern(std::string_view key) {
  // Instrument handles resolved once per process (registry entries are
  // stable), so the hot path below only ever touches relaxed atomics.
  static obs::Counter& contention =
      obs::MetricsRegistry::global().counter("kernel.dict.shard_contention");
  static obs::Counter& interned =
      obs::MetricsRegistry::global().counter("kernel.wl.labels_interned");
  Shard& shard = shards_[shard_index(key)];
  // try_lock first purely to observe contention: a failed attempt means
  // another thread holds this shard right now, which is the event the
  // `kernel.dict.shard_contention` counter measures (how often the 16-way
  // sharding actually fails to separate concurrent interns).
  std::unique_lock lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    contention.add();
    lock.lock();
  }
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) return it->second;
  // Draw the id inside the critical section so a signature is never
  // assigned two ids; relaxed suffices because the shard mutex already
  // orders the paired insert.
  const int id = next_id_.fetch_add(1, std::memory_order_acq_rel);
  shard.map.emplace(std::string(key), id);
  interned.add();
  return id;
}

std::optional<int> ShardedSignatureDictionary::find(std::string_view key) const {
  const Shard& shard = shards_[shard_index(key)];
  std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<std::string, int>> ShardedSignatureDictionary::entries()
    const {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(size());
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (const auto& [signature, id] : shard.map) out.emplace_back(signature, id);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return out;
}

}  // namespace cwgl::kernel

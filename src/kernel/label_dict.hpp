#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kernel/types.hpp"

namespace cwgl::kernel {

/// Thread-safe signature interner: the concurrent counterpart of
/// `SignatureDictionary`, sharded by signature hash so that featurization of
/// a corpus can fan out across a thread pool.
///
/// Each signature is owned by exactly one of `kShardCount` striped-lock hash
/// maps (shard = mixed hash of the bytes), so two threads interning
/// different signatures almost never contend. Ids are drawn from a single
/// atomic counter *inside* the owning shard's critical section, which keeps
/// the id space dense (every id in [0, size()) is assigned exactly once)
/// while letting shards proceed independently.
///
/// Determinism contract: under concurrent interning the id ASSIGNED to a
/// given signature depends on thread scheduling, but the id is stable for
/// the lifetime of the dictionary, distinct signatures always get distinct
/// ids, and equal signatures always get equal ids. Kernels built on top
/// only ever compare ids for equality (sorted-merge dot products), so every
/// kernel value is invariant under the id permutation — this is what makes
/// parallel featurization deterministic in value even though the raw ids
/// are not. When used from a single thread, ids are assigned in first-seen
/// order, exactly matching the serial `SignatureDictionary`.
class ShardedSignatureDictionary {
 public:
  ShardedSignatureDictionary() = default;

  ShardedSignatureDictionary(const ShardedSignatureDictionary&) = delete;
  ShardedSignatureDictionary& operator=(const ShardedSignatureDictionary&) = delete;

  /// Returns the id of `key`, assigning the next free id on first sight.
  /// Safe to call concurrently from any number of threads.
  int intern(std::string_view key);

  /// Read-only lookup: the id of `key`, or nullopt when it was never
  /// interned. NEVER inserts — this is the serving path's contract (a frozen
  /// model's dictionary must not grow under inference), enforced by the
  /// const qualifier. Safe to call concurrently, including concurrently with
  /// intern() (the shard mutex orders the lookup against any racing insert).
  std::optional<int> find(std::string_view key) const;

  /// Snapshot of every (signature, id) pair, sorted by id — the export hook
  /// the model store uses to freeze a fitted dictionary. Exact once all
  /// writers are quiesced (the only supported time to serialize a model).
  std::vector<std::pair<std::string, int>> entries() const;

  /// Number of distinct signatures interned so far. When racing with
  /// writers the value is a snapshot; after all writers are joined it is
  /// exact.
  std::size_t size() const noexcept {
    return static_cast<std::size_t>(next_id_.load(std::memory_order_acquire));
  }

 private:
  // Power of two so shard selection is a mask; 16 shards keep contention
  // negligible for any realistic pool width while staying cache-compact.
  static constexpr std::size_t kShardCount = 16;

  struct Shard {
    /// mutable so the read-only find()/entries() paths can take the lock
    /// from const methods; the map itself is never touched by them.
    mutable std::mutex mutex;
    /// Transparent hash (shared with SignatureDictionary) so the find()
    /// serving hot path and intern() hits take string_view without
    /// allocating.
    std::unordered_map<std::string, int, TransparentStringHash, std::equal_to<>>
        map;
  };

  static std::size_t shard_index(std::string_view key) noexcept;

  std::atomic<int> next_id_{0};
  std::array<Shard, kShardCount> shards_;
};

}  // namespace cwgl::kernel

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernel/types.hpp"
#include "kernel/wl.hpp"
#include "linalg/matrix.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::kernel {

/// Options for the hashed WL embedding.
struct EmbeddingConfig {
  WlConfig wl;              ///< refinement depth / directedness
  int dimensions = 256;     ///< embedding width
  std::uint64_t seed = 99;  ///< hash salt; same seed => comparable embeddings
  bool normalize = true;    ///< L2-normalize so dot == cosine similarity
};

/// Fixed-dimension graph embedding by signed feature hashing of WL colors
/// (graph2vec-style, without the corpus-wide dictionary).
///
/// Each (iteration, refined color) feature is hashed to a coordinate and a
/// sign, so  <embed(a), embed(b)>  is an unbiased estimator of the WL
/// subtree kernel k(a,b) (cosine of it when normalized). Unlike
/// `WlSubtreeFeaturizer`, embeddings are corpus-INDEPENDENT: two graphs
/// embedded in different processes with the same config are directly
/// comparable, which is what makes classification of a live job stream
/// (millions of jobs) practical — O(n) embeddings instead of an O(n^2)
/// Gram matrix.
std::vector<double> wl_embed(const LabeledGraph& g, const EmbeddingConfig& config = {});

/// Embeds a corpus into an n x dimensions matrix (row i = corpus[i]).
///
/// Embeddings are pure per-graph functions (no shared dictionary), so rows
/// fan out on `pool` when provided — bitwise identical to the serial result
/// regardless of thread count.
linalg::Matrix wl_embedding_matrix(std::span<const LabeledGraph> corpus,
                                   const EmbeddingConfig& config = {},
                                   util::ThreadPool* pool = nullptr);

}  // namespace cwgl::kernel

#include "kernel/base_kernels.hpp"

#include <string>

#include "graph/algorithms.hpp"

namespace cwgl::kernel {

namespace {
void append_int(std::string& sig, int v) {
  for (int i = 0; i < 4; ++i) {
    sig += static_cast<char>((static_cast<unsigned>(v) >> (8 * i)) & 0xff);
  }
}
}  // namespace

SparseVector VertexHistogramFeaturizer::featurize(const LabeledGraph& g) {
  std::unordered_map<int, double> counts;
  std::string sig;
  for (int v = 0; v < g.graph.num_vertices(); ++v) {
    sig.clear();
    append_int(sig, g.label(v));
    counts[dict_.intern(sig)] += 1.0;
  }
  return SparseVector::from_counts(counts);
}

SparseVector EdgeHistogramFeaturizer::featurize(const LabeledGraph& g) {
  std::unordered_map<int, double> counts;
  std::string sig;
  for (int v = 0; v < g.graph.num_vertices(); ++v) {
    for (int w : g.graph.successors(v)) {
      sig.clear();
      append_int(sig, g.label(v));
      append_int(sig, g.label(w));
      counts[dict_.intern(sig)] += 1.0;
    }
  }
  return SparseVector::from_counts(counts);
}

SparseVector ShortestPathFeaturizer::featurize(const LabeledGraph& g) {
  std::unordered_map<int, double> counts;
  std::string sig;
  for (int v = 0; v < g.graph.num_vertices(); ++v) {
    const auto dist = graph::bfs_distances(g.graph, v, /*undirected=*/false);
    for (int w = 0; w < g.graph.num_vertices(); ++w) {
      if (w == v || dist[w] < 0) continue;
      sig.clear();
      append_int(sig, g.label(v));
      append_int(sig, g.label(w));
      append_int(sig, dist[w]);
      counts[dict_.intern(sig)] += 1.0;
    }
  }
  return SparseVector::from_counts(counts);
}

}  // namespace cwgl::kernel

#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"

namespace cwgl::kernel {

/// A graph together with integer vertex labels (task types in the paper).
/// An empty label vector means "uniformly labeled".
struct LabeledGraph {
  graph::Digraph graph;
  std::vector<int> labels;

  /// Returns the label of `v`, treating an empty label vector as all-zero.
  int label(int v) const noexcept {
    return labels.empty() ? 0 : labels[static_cast<std::size_t>(v)];
  }
};

/// Sparse non-negative feature vector with ascending unique ids.
/// The kernel value between two graphs is the dot product of their vectors.
struct SparseVector {
  std::vector<std::pair<int, double>> items;

  friend bool operator==(const SparseVector&, const SparseVector&) = default;

  /// Dot product; O(nnz_a + nnz_b) merge in the balanced case, galloping
  /// (exponential + binary search over the longer vector) when one side is
  /// much shorter, which takes O(nnz_short * log nnz_long). Both paths
  /// accumulate the matched products in the same ascending-id order, so the
  /// result is bitwise identical to `dot_scalar` — a property the sparse-dot
  /// test suite pins on random corpora.
  double dot(const SparseVector& other) const noexcept;

  /// The reference scalar two-pointer merge. Kept as the oracle the fast
  /// path is differentially tested against; not for hot-path use.
  double dot_scalar(const SparseVector& other) const noexcept;

  /// Euclidean norm.
  double norm() const noexcept;

  /// Builds from an unordered (id -> count) accumulation.
  static SparseVector from_counts(const std::unordered_map<int, double>& counts);
};

/// Transparent (heterogeneous) string hash: lets unordered_map lookups take
/// a string_view without materializing a temporary std::string. Shared by
/// the serial and sharded signature dictionaries so both hot paths are
/// allocation-free on hit.
struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Interns arbitrary byte-string signatures to dense consecutive ids.
/// Shared across a corpus so identical substructures map to the same
/// feature dimension in every graph. Single-threaded; the concurrent
/// counterpart is `ShardedSignatureDictionary` in kernel/label_dict.hpp.
class SignatureDictionary {
 public:
  /// Returns the id of `key`, assigning the next free id on first sight.
  int intern(std::string_view key);

  std::size_t size() const noexcept { return map_.size(); }

 private:
  std::unordered_map<std::string, int, TransparentStringHash, std::equal_to<>>
      map_;
};

/// Abstract graph-to-feature-vector transform backing a kernel.
///
/// Implementations intern signatures into a dictionary shared across all
/// calls, so a single instance must featurize a whole corpus for the
/// resulting vectors to be comparable. Implementations whose dictionary is
/// a `ShardedSignatureDictionary` report `thread_safe() == true` and may be
/// driven concurrently from many threads; `gram_matrix` uses this to fan
/// featurization out on its pool. Kernel values are invariant to how the
/// concurrent id assignment interleaves because ids are only ever compared
/// for equality (see DESIGN.md "Concurrency model").
class Featurizer {
 public:
  virtual ~Featurizer() = default;

  /// Maps a graph into the shared feature space.
  virtual SparseVector featurize(const LabeledGraph& g) = 0;

  /// Identifier used in reports ("wl-subtree", "vertex-histogram", ...).
  virtual std::string_view name() const noexcept = 0;

  /// True when featurize() may be called concurrently from multiple
  /// threads. Defaults to false; implementations backed by a sharded
  /// dictionary override it.
  virtual bool thread_safe() const noexcept { return false; }
};

/// Raw (unnormalized) kernel value between two graphs under `f`.
double kernel_value(Featurizer& f, const LabeledGraph& a, const LabeledGraph& b);

/// Cosine-normalized kernel: k(a,b) / sqrt(k(a,a) k(b,b)), in [0,1] for
/// non-negative features; 0 when either self-kernel vanishes.
double normalized_kernel_value(Featurizer& f, const LabeledGraph& a,
                               const LabeledGraph& b);

}  // namespace cwgl::kernel

#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"

namespace cwgl::kernel {

/// A graph together with integer vertex labels (task types in the paper).
/// An empty label vector means "uniformly labeled".
struct LabeledGraph {
  graph::Digraph graph;
  std::vector<int> labels;

  /// Returns the label of `v`, treating an empty label vector as all-zero.
  int label(int v) const noexcept {
    return labels.empty() ? 0 : labels[static_cast<std::size_t>(v)];
  }
};

/// Sparse non-negative feature vector with ascending unique ids.
/// The kernel value between two graphs is the dot product of their vectors.
struct SparseVector {
  std::vector<std::pair<int, double>> items;

  /// Dot product via sorted-merge; O(nnz_a + nnz_b).
  double dot(const SparseVector& other) const noexcept;

  /// Euclidean norm.
  double norm() const noexcept;

  /// Builds from an unordered (id -> count) accumulation.
  static SparseVector from_counts(const std::unordered_map<int, double>& counts);
};

/// Interns arbitrary byte-string signatures to dense consecutive ids.
/// Shared across a corpus so identical substructures map to the same
/// feature dimension in every graph.
class SignatureDictionary {
 public:
  /// Returns the id of `key`, assigning the next free id on first sight.
  int intern(std::string_view key);

  std::size_t size() const noexcept { return map_.size(); }

 private:
  std::unordered_map<std::string, int> map_;
};

/// Abstract graph-to-feature-vector transform backing a kernel.
///
/// Implementations share a SignatureDictionary internally, so a single
/// instance must featurize a whole corpus (calls are NOT thread-safe);
/// the resulting vectors can then be dotted in parallel.
class Featurizer {
 public:
  virtual ~Featurizer() = default;

  /// Maps a graph into the shared feature space.
  virtual SparseVector featurize(const LabeledGraph& g) = 0;

  /// Identifier used in reports ("wl-subtree", "vertex-histogram", ...).
  virtual std::string_view name() const noexcept = 0;
};

/// Raw (unnormalized) kernel value between two graphs under `f`.
double kernel_value(Featurizer& f, const LabeledGraph& a, const LabeledGraph& b);

/// Cosine-normalized kernel: k(a,b) / sqrt(k(a,a) k(b,b)), in [0,1] for
/// non-negative features; 0 when either self-kernel vanishes.
double normalized_kernel_value(Featurizer& f, const LabeledGraph& a,
                               const LabeledGraph& b);

}  // namespace cwgl::kernel

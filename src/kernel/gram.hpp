#pragma once

#include <span>

#include "kernel/types.hpp"
#include "linalg/matrix.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::kernel {

/// Options for gram_matrix.
struct GramOptions {
  /// Cosine-normalize so every diagonal entry is 1 and all values lie in
  /// [0,1] — the similarity-map form the paper plots in Fig. 7.
  bool normalize = true;
};

/// Builds the symmetric kernel (Gram) matrix of a corpus.
///
/// Featurization runs sequentially through `f` (it owns a shared signature
/// dictionary); the O(n^2/2) dot products run on `pool` when provided.
/// Row/column i corresponds to corpus[i].
linalg::Matrix gram_matrix(Featurizer& f, std::span<const LabeledGraph> corpus,
                           const GramOptions& options = {},
                           util::ThreadPool* pool = nullptr);

/// Converts a normalized similarity matrix into a distance matrix via
/// d = sqrt(max(0, k(a,a) + k(b,b) - 2 k(a,b))) — the feature-space Euclidean
/// distance; used by silhouette scoring and medoid extraction.
linalg::Matrix kernel_to_distance(const linalg::Matrix& gram);

}  // namespace cwgl::kernel

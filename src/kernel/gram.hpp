#pragma once

#include <span>

#include "kernel/types.hpp"
#include "linalg/matrix.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::kernel {

/// Options for gram_matrix.
struct GramOptions {
  /// Cosine-normalize so every diagonal entry is 1 and all values lie in
  /// [0,1] — the similarity-map form the paper plots in Fig. 7.
  bool normalize = true;
  /// Graphs per chunk when featurization runs on the pool. Job DAGs are
  /// tiny (tens of vertices, microseconds each), so chunks amortize the
  /// submit/future overhead; 16 is a good default for 2-31-task jobs.
  std::size_t featurize_grain = 16;
  /// Rows/cols per tile of the upper-triangle pair loop. Tiles are the
  /// scheduling unit (chunked by estimated work, sum of nnz products) and
  /// the locality unit (a 48x48 tile re-reads 96 sparse vectors from cache
  /// for 1k+ dots). Clamped to [1, 4096].
  std::size_t tile_rows = 48;
};

/// Builds the symmetric kernel (Gram) matrix of a corpus.
///
/// When `pool` is provided and `f.thread_safe()` (the WL and histogram
/// featurizers are — their shared dictionary is sharded and lock-striped),
/// featurization itself fans out across the pool in chunks of
/// `options.featurize_grain` graphs; otherwise it runs serially through
/// `f`. The O(n^2/2) dot products run on `pool` whenever it is provided.
/// Kernel values are independent of the schedule: concurrent interning
/// permutes private feature ids, and the kernel only compares ids for
/// equality. Row/column i corresponds to corpus[i].
linalg::Matrix gram_matrix(Featurizer& f, std::span<const LabeledGraph> corpus,
                           const GramOptions& options = {},
                           util::ThreadPool* pool = nullptr);

/// Builds the Gram matrix from already-featurized vectors — the back half of
/// `gram_matrix`, exposed so callers that need to KEEP the feature vectors
/// (the model store freezes them as cluster representatives) get values
/// bitwise identical to the fused path. Row/column i corresponds to
/// features[i].
linalg::Matrix gram_from_features(std::span<const SparseVector> features,
                                  const GramOptions& options = {},
                                  util::ThreadPool* pool = nullptr);

/// Converts a normalized similarity matrix into a distance matrix via
/// d = sqrt(max(0, k(a,a) + k(b,b) - 2 k(a,b))) — the feature-space Euclidean
/// distance; used by silhouette scoring and medoid extraction.
linalg::Matrix kernel_to_distance(const linalg::Matrix& gram);

}  // namespace cwgl::kernel

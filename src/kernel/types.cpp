#include "kernel/types.hpp"

#include <algorithm>
#include <cmath>

namespace cwgl::kernel {

namespace {

using Item = std::pair<int, double>;

/// First index in [begin, end) with v[idx].first >= key, found by galloping:
/// exponential probe from `begin` (cheap when the answer is nearby, which it
/// is for intersections — ids only move forward), then binary search inside
/// the bracketing window.
std::size_t gallop_lower_bound(const Item* v, std::size_t begin,
                               std::size_t end, int key) noexcept {
  std::size_t offset = 1;
  std::size_t lo = begin;
  while (begin + offset < end && v[begin + offset].first < key) {
    lo = begin + offset;
    offset <<= 1;
  }
  const std::size_t hi = std::min(begin + offset, end);
  return static_cast<std::size_t>(
      std::lower_bound(v + lo, v + hi, key,
                       [](const Item& item, int k) { return item.first < k; }) -
      v);
}

/// Intersection with |a| << |b|: walk the short side, gallop the long side.
/// Matched products accumulate in ascending-id order — the same order (and
/// therefore the same floating-point sum, bitwise) as the scalar merge.
double dot_galloping(const Item* a, std::size_t na, const Item* b,
                     std::size_t nb) noexcept {
  double acc = 0.0;
  std::size_t ib = 0;
  for (std::size_t ia = 0; ia < na && ib < nb; ++ia) {
    ib = gallop_lower_bound(b, ib, nb, a[ia].first);
    if (ib == nb) break;
    if (b[ib].first == a[ia].first) {
      acc += a[ia].second * b[ib].second;
      ++ib;
    }
  }
  return acc;
}

}  // namespace

double SparseVector::dot(const SparseVector& other) const noexcept {
  const std::size_t na = items.size();
  const std::size_t nb = other.items.size();
  if (na == 0 || nb == 0) return 0.0;
  // Skewed sizes: galloping costs O(short * log long) — a win once the long
  // side is ~an order of magnitude larger (the serve scan's probe-vs-
  // representative dots and the interned path's head shapes hit this).
  // IEEE multiplication is commutative, so swapping operand roles cannot
  // change a product's bits, and both paths sum matches in ascending-id
  // order: every branch below returns the exact bits of dot_scalar.
  constexpr std::size_t kGallopRatio = 8;
  if (na * kGallopRatio < nb) {
    return dot_galloping(items.data(), na, other.items.data(), nb);
  }
  if (nb * kGallopRatio < na) {
    return dot_galloping(other.items.data(), nb, items.data(), na);
  }
  return dot_scalar(other);
}

double SparseVector::dot_scalar(const SparseVector& other) const noexcept {
  double acc = 0.0;
  auto a = items.begin();
  auto b = other.items.begin();
  while (a != items.end() && b != other.items.end()) {
    if (a->first < b->first) {
      ++a;
    } else if (b->first < a->first) {
      ++b;
    } else {
      acc += a->second * b->second;
      ++a;
      ++b;
    }
  }
  return acc;
}

double SparseVector::norm() const noexcept {
  double acc = 0.0;
  for (const auto& [id, v] : items) acc += v * v;
  return std::sqrt(acc);
}

SparseVector SparseVector::from_counts(
    const std::unordered_map<int, double>& counts) {
  SparseVector out;
  out.items.assign(counts.begin(), counts.end());
  std::sort(out.items.begin(), out.items.end());
  return out;
}

int SignatureDictionary::intern(std::string_view key) {
  // Transparent hash/equal: the hit path (every signature after its first
  // sighting, i.e. almost all of featurization) allocates nothing.
  const auto it = map_.find(key);
  if (it != map_.end()) return it->second;
  const int id = static_cast<int>(map_.size());
  map_.emplace(std::string(key), id);
  return id;
}

double kernel_value(Featurizer& f, const LabeledGraph& a, const LabeledGraph& b) {
  return f.featurize(a).dot(f.featurize(b));
}

double normalized_kernel_value(Featurizer& f, const LabeledGraph& a,
                               const LabeledGraph& b) {
  const SparseVector va = f.featurize(a);
  const SparseVector vb = f.featurize(b);
  const double denom = va.norm() * vb.norm();
  return denom == 0.0 ? 0.0 : va.dot(vb) / denom;
}

}  // namespace cwgl::kernel

#include "kernel/types.hpp"

#include <algorithm>
#include <cmath>

namespace cwgl::kernel {

double SparseVector::dot(const SparseVector& other) const noexcept {
  double acc = 0.0;
  auto a = items.begin();
  auto b = other.items.begin();
  while (a != items.end() && b != other.items.end()) {
    if (a->first < b->first) {
      ++a;
    } else if (b->first < a->first) {
      ++b;
    } else {
      acc += a->second * b->second;
      ++a;
      ++b;
    }
  }
  return acc;
}

double SparseVector::norm() const noexcept {
  double acc = 0.0;
  for (const auto& [id, v] : items) acc += v * v;
  return std::sqrt(acc);
}

SparseVector SparseVector::from_counts(
    const std::unordered_map<int, double>& counts) {
  SparseVector out;
  out.items.assign(counts.begin(), counts.end());
  std::sort(out.items.begin(), out.items.end());
  return out;
}

int SignatureDictionary::intern(std::string_view key) {
  const auto it = map_.find(std::string(key));
  if (it != map_.end()) return it->second;
  const int id = static_cast<int>(map_.size());
  map_.emplace(std::string(key), id);
  return id;
}

double kernel_value(Featurizer& f, const LabeledGraph& a, const LabeledGraph& b) {
  return f.featurize(a).dot(f.featurize(b));
}

double normalized_kernel_value(Featurizer& f, const LabeledGraph& a,
                               const LabeledGraph& b) {
  const SparseVector va = f.featurize(a);
  const SparseVector vb = f.featurize(b);
  const double denom = va.norm() * vb.norm();
  return denom == 0.0 ? 0.0 : va.dot(vb) / denom;
}

}  // namespace cwgl::kernel

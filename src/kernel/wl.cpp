#include "kernel/wl.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace cwgl::kernel {

namespace {

/// Appends an int to a byte-signature (fixed-width little-endian so
/// signatures are prefix-free).
void append_int(std::string& sig, int v) {
  for (int i = 0; i < 4; ++i) {
    sig += static_cast<char>((static_cast<unsigned>(v) >> (8 * i)) & 0xff);
  }
}

/// Shared constructor-time validation of the iteration weights (Eq. (1)).
void validate_config(const WlConfig& config) {
  if (config.iteration_weights.empty()) return;
  if (config.iteration_weights.size() !=
      static_cast<std::size_t>(config.iterations) + 1) {
    throw util::InvalidArgument(
        "WlSubtreeFeaturizer: iteration_weights must have iterations+1 entries");
  }
  for (double w : config.iteration_weights) {
    if (w < 0.0) {
      throw util::InvalidArgument(
          "WlSubtreeFeaturizer: iteration_weights must be non-negative");
    }
  }
}

/// The WL refinement loop shared by the training (interning) and frozen
/// (lookup-only) featurizers. `lookup(sig)` maps a byte-signature to its
/// feature id; the two call sites differ ONLY in that mapping, which is what
/// guarantees a fitted model's serving features are computed by the exact
/// byte-for-byte signature scheme the training pass interned.
template <typename Lookup>
SparseVector wl_featurize(const WlConfig& config, const LabeledGraph& g,
                          Lookup&& lookup, std::vector<int>* final_colors) {
  // Scale features by sqrt(w_i) so the kernel contribution of iteration i
  // scales by exactly w_i.
  const auto weight = [&](int it) {
    return config.iteration_weights.empty()
               ? 1.0
               : std::sqrt(config.iteration_weights[it]);
  };

  const int n = g.graph.num_vertices();
  std::unordered_map<int, double> counts;

  // Iteration 0: intern the raw labels (namespaced by iteration).
  std::vector<int> color(n);
  std::string sig;
  for (int v = 0; v < n; ++v) {
    sig.clear();
    append_int(sig, 0);  // iteration tag
    append_int(sig, g.label(v));
    color[v] = lookup(sig);
    counts[color[v]] += weight(0);
  }

  std::vector<int> next(n);
  std::vector<int> bucket;
  for (int it = 1; it <= config.iterations; ++it) {
    for (int v = 0; v < n; ++v) {
      sig.clear();
      append_int(sig, it);  // iteration tag keeps feature spaces disjoint
      append_int(sig, color[v]);
      if (config.directed) {
        bucket.assign(g.graph.predecessors(v).begin(), g.graph.predecessors(v).end());
        for (int& b : bucket) b = color[b];
        std::sort(bucket.begin(), bucket.end());
        append_int(sig, static_cast<int>(bucket.size()));
        for (int b : bucket) append_int(sig, b);
        bucket.assign(g.graph.successors(v).begin(), g.graph.successors(v).end());
        for (int& b : bucket) b = color[b];
        std::sort(bucket.begin(), bucket.end());
        append_int(sig, static_cast<int>(bucket.size()));
        for (int b : bucket) append_int(sig, b);
      } else {
        bucket.clear();
        for (int w : g.graph.predecessors(v)) bucket.push_back(color[w]);
        for (int w : g.graph.successors(v)) bucket.push_back(color[w]);
        std::sort(bucket.begin(), bucket.end());
        append_int(sig, static_cast<int>(bucket.size()));
        for (int b : bucket) append_int(sig, b);
      }
      next[v] = lookup(sig);
      counts[next[v]] += weight(it);
    }
    color.swap(next);
  }
  if (final_colors != nullptr) *final_colors = std::move(color);
  return SparseVector::from_counts(counts);
}

}  // namespace

WlSubtreeFeaturizer::WlSubtreeFeaturizer(WlConfig config)
    : config_(std::move(config)) {
  validate_config(config_);
}

SparseVector WlSubtreeFeaturizer::featurize(const LabeledGraph& g) {
  std::vector<int> final_colors;
  SparseVector out = wl_featurize(
      config_, g, [this](const std::string& sig) { return dict_.intern(sig); },
      &final_colors);
  {
    std::lock_guard lock(last_colors_mutex_);
    last_colors_ = std::move(final_colors);
  }
  static obs::Counter& featurized =
      obs::MetricsRegistry::global().counter("kernel.wl.featurized");
  featurized.add();
  return out;
}

FrozenWlFeaturizer::FrozenWlFeaturizer(WlConfig config,
                                       const ShardedSignatureDictionary& dict,
                                       int oov_id)
    : config_(std::move(config)), dict_(&dict), oov_id_(oov_id) {
  validate_config(config_);
}

SparseVector FrozenWlFeaturizer::featurize(const LabeledGraph& g,
                                           std::size_t* oov_hits) const {
  std::size_t misses = 0;
  SparseVector out = wl_featurize(
      config_, g,
      [this, &misses](const std::string& sig) {
        if (const auto id = dict_->find(sig)) return *id;
        ++misses;
        return oov_id_;
      },
      nullptr);
  static obs::Counter& featurized =
      obs::MetricsRegistry::global().counter("kernel.wl.frozen_featurized");
  featurized.add();
  if (oov_hits != nullptr) *oov_hits = misses;
  return out;
}

double wl_subtree_kernel(const LabeledGraph& a, const LabeledGraph& b,
                         WlConfig config) {
  WlSubtreeFeaturizer f(config);
  return kernel_value(f, a, b);
}

double wl_subtree_similarity(const LabeledGraph& a, const LabeledGraph& b,
                             WlConfig config) {
  WlSubtreeFeaturizer f(config);
  return normalized_kernel_value(f, a, b);
}

}  // namespace cwgl::kernel

#include "kernel/wl.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace cwgl::kernel {

namespace {

/// Appends an int to a byte-signature (fixed-width little-endian so
/// signatures are prefix-free).
void append_int(std::string& sig, int v) {
  for (int i = 0; i < 4; ++i) {
    sig += static_cast<char>((static_cast<unsigned>(v) >> (8 * i)) & 0xff);
  }
}

}  // namespace

WlSubtreeFeaturizer::WlSubtreeFeaturizer(WlConfig config)
    : config_(std::move(config)) {
  if (!config_.iteration_weights.empty()) {
    if (config_.iteration_weights.size() !=
        static_cast<std::size_t>(config_.iterations) + 1) {
      throw util::InvalidArgument(
          "WlSubtreeFeaturizer: iteration_weights must have iterations+1 entries");
    }
    for (double w : config_.iteration_weights) {
      if (w < 0.0) {
        throw util::InvalidArgument(
            "WlSubtreeFeaturizer: iteration_weights must be non-negative");
      }
    }
  }
}

SparseVector WlSubtreeFeaturizer::featurize(const LabeledGraph& g) {
  // Scale features by sqrt(w_i) so the kernel contribution of iteration i
  // scales by exactly w_i.
  const auto weight = [&](int it) {
    return config_.iteration_weights.empty()
               ? 1.0
               : std::sqrt(config_.iteration_weights[it]);
  };

  const int n = g.graph.num_vertices();
  std::unordered_map<int, double> counts;

  // Iteration 0: intern the raw labels (namespaced by iteration).
  std::vector<int> color(n);
  std::string sig;
  for (int v = 0; v < n; ++v) {
    sig.clear();
    append_int(sig, 0);  // iteration tag
    append_int(sig, g.label(v));
    color[v] = dict_.intern(sig);
    counts[color[v]] += weight(0);
  }

  std::vector<int> next(n);
  std::vector<int> bucket;
  for (int it = 1; it <= config_.iterations; ++it) {
    for (int v = 0; v < n; ++v) {
      sig.clear();
      append_int(sig, it);  // iteration tag keeps feature spaces disjoint
      append_int(sig, color[v]);
      if (config_.directed) {
        bucket.assign(g.graph.predecessors(v).begin(), g.graph.predecessors(v).end());
        for (int& b : bucket) b = color[b];
        std::sort(bucket.begin(), bucket.end());
        append_int(sig, static_cast<int>(bucket.size()));
        for (int b : bucket) append_int(sig, b);
        bucket.assign(g.graph.successors(v).begin(), g.graph.successors(v).end());
        for (int& b : bucket) b = color[b];
        std::sort(bucket.begin(), bucket.end());
        append_int(sig, static_cast<int>(bucket.size()));
        for (int b : bucket) append_int(sig, b);
      } else {
        bucket.clear();
        for (int w : g.graph.predecessors(v)) bucket.push_back(color[w]);
        for (int w : g.graph.successors(v)) bucket.push_back(color[w]);
        std::sort(bucket.begin(), bucket.end());
        append_int(sig, static_cast<int>(bucket.size()));
        for (int b : bucket) append_int(sig, b);
      }
      next[v] = dict_.intern(sig);
      counts[next[v]] += weight(it);
    }
    color.swap(next);
  }
  {
    std::lock_guard lock(last_colors_mutex_);
    last_colors_ = std::move(color);
  }
  static obs::Counter& featurized =
      obs::MetricsRegistry::global().counter("kernel.wl.featurized");
  featurized.add();
  return SparseVector::from_counts(counts);
}

double wl_subtree_kernel(const LabeledGraph& a, const LabeledGraph& b,
                         WlConfig config) {
  WlSubtreeFeaturizer f(config);
  return kernel_value(f, a, b);
}

double wl_subtree_similarity(const LabeledGraph& a, const LabeledGraph& b,
                             WlConfig config) {
  WlSubtreeFeaturizer f(config);
  return normalized_kernel_value(f, a, b);
}

}  // namespace cwgl::kernel

#include "kernel/ged.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <vector>

#include "util/error.hpp"

namespace cwgl::kernel {

namespace {

struct State {
  double cost = 0.0;       // g: edit cost of the partial assignment
  double bound = 0.0;      // f = g + h
  std::vector<int> map;    // g1 vertex i -> g2 vertex or -1 (deleted)
  std::uint64_t used = 0;  // bitmask of assigned g2 vertices
};

struct StateOrder {
  bool operator()(const State& a, const State& b) const {
    return a.bound > b.bound;  // min-heap on f
  }
};

/// Admissible lower bound on completing the assignment: optimal node-level
/// matching of the remaining label multisets, ignoring all edges.
double label_heuristic(const LabeledGraph& g1, const LabeledGraph& g2,
                       std::size_t assigned, std::uint64_t used,
                       const GedOptions& opt) {
  std::map<int, int> remaining1, remaining2;
  int r1 = 0, r2 = 0;
  for (int v = static_cast<int>(assigned); v < g1.graph.num_vertices(); ++v) {
    ++remaining1[g1.label(v)];
    ++r1;
  }
  for (int v = 0; v < g2.graph.num_vertices(); ++v) {
    if (!(used >> v & 1)) {
      ++remaining2[g2.label(v)];
      ++r2;
    }
  }
  int common = 0;
  for (const auto& [label, count] : remaining1) {
    const auto it = remaining2.find(label);
    if (it != remaining2.end()) common += std::min(count, it->second);
  }
  const int matched = std::min(r1, r2);
  return (matched - common) * opt.node_substitution +
         (r1 - matched) * opt.node_deletion + (r2 - matched) * opt.node_insertion;
}

/// Incremental edge cost of assigning g1 vertex `u` to `v` (or -1) given the
/// existing partial map: every ordered pair with an already-processed vertex
/// is now decided in both graphs.
double edge_delta(const LabeledGraph& g1, const LabeledGraph& g2,
                  const std::vector<int>& map, int u, int v,
                  const GedOptions& opt) {
  double cost = 0.0;
  for (int w = 0; w < u; ++w) {
    const int mw = map[w];
    const bool fwd1 = g1.graph.has_edge(u, w);
    const bool bwd1 = g1.graph.has_edge(w, u);
    const bool fwd2 = v >= 0 && mw >= 0 && g2.graph.has_edge(v, mw);
    const bool bwd2 = v >= 0 && mw >= 0 && g2.graph.has_edge(mw, v);
    if (fwd1 && !fwd2) cost += opt.edge_deletion;
    if (!fwd1 && fwd2) cost += opt.edge_insertion;
    if (bwd1 && !bwd2) cost += opt.edge_deletion;
    if (!bwd1 && bwd2) cost += opt.edge_insertion;
  }
  return cost;
}

/// Terminal cost: every unused g2 vertex is an insertion, and every g2 edge
/// touching an unused vertex is an edge insertion (edges between two mapped
/// vertices were settled during assignment).
double completion_cost(const LabeledGraph& g2, std::uint64_t used,
                       const GedOptions& opt) {
  double cost = 0.0;
  const int n2 = g2.graph.num_vertices();
  for (int v = 0; v < n2; ++v) {
    if (!(used >> v & 1)) cost += opt.node_insertion;
  }
  for (int v = 0; v < n2; ++v) {
    for (int w : g2.graph.successors(v)) {
      if (!(used >> v & 1) || !(used >> w & 1)) cost += opt.edge_insertion;
    }
  }
  return cost;
}

}  // namespace

double graph_edit_distance(const LabeledGraph& g1, const LabeledGraph& g2,
                           const GedOptions& opt) {
  const int n1 = g1.graph.num_vertices();
  const int n2 = g2.graph.num_vertices();
  if (n2 > 63) throw util::InvalidArgument("graph_edit_distance: g2 too large (>63)");

  std::priority_queue<State, std::vector<State>, StateOrder> open;
  State root;
  root.map.reserve(n1);
  root.bound = label_heuristic(g1, g2, 0, 0, opt);
  open.push(std::move(root));

  std::size_t expansions = 0;
  while (!open.empty()) {
    State s = open.top();
    open.pop();
    const auto assigned = s.map.size();
    if (assigned == static_cast<std::size_t>(n1)) {
      return s.cost + completion_cost(g2, s.used, opt);
    }
    if (++expansions > opt.max_expansions) {
      throw util::Error("graph_edit_distance: expansion budget exhausted");
    }
    const int u = static_cast<int>(assigned);
    // Branch: assign u to every unused g2 vertex.
    for (int v = 0; v < n2; ++v) {
      if (s.used >> v & 1) continue;
      State t = s;
      t.map.push_back(v);
      t.used |= 1ULL << v;
      t.cost += (g1.label(u) == g2.label(v) ? 0.0 : opt.node_substitution);
      t.cost += edge_delta(g1, g2, t.map, u, v, opt);
      t.bound = t.cost + label_heuristic(g1, g2, assigned + 1, t.used, opt);
      open.push(std::move(t));
    }
    // Branch: delete u.
    State t = std::move(s);
    t.map.push_back(-1);
    t.cost += opt.node_deletion;
    t.cost += edge_delta(g1, g2, t.map, u, -1, opt);
    t.bound = t.cost + label_heuristic(g1, g2, assigned + 1, t.used, opt);
    open.push(std::move(t));
  }
  throw util::Error("graph_edit_distance: search space exhausted unexpectedly");
}

double ged_similarity(const LabeledGraph& a, const LabeledGraph& b,
                      const GedOptions& options) {
  const double ged = graph_edit_distance(a, b, options);
  const double scale =
      std::max(1, a.graph.num_vertices() + b.graph.num_vertices());
  return std::exp(-ged / scale);
}

}  // namespace cwgl::kernel

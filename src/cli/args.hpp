#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace cwgl::cli {

/// Minimal `--key value` / `--key=value` / `--flag` command-line parser for
/// the cwgl tool.
///
/// Grammar: `cwgl <command> [--key value | --key=value | --flag]...`. Keys
/// start with "--"; a key followed by another key (or end of input) is a
/// boolean flag; `--key=` supplies an explicit empty value. Unknown keys are
/// collected so commands can reject typos explicitly.
class Args {
 public:
  /// Parses everything after the command word.
  static Args parse(int argc, const char* const* argv, int start_index);

  /// String option or fallback.
  std::string get(std::string_view key, std::string_view fallback = "") const;

  /// Integer option; nullopt when absent, throws InvalidArgument on junk.
  std::optional<long long> get_int(std::string_view key) const;

  /// Double option; nullopt when absent, throws InvalidArgument on junk.
  std::optional<double> get_double(std::string_view key) const;

  /// True if `--key` appeared (with or without a value).
  bool has(std::string_view key) const;

  /// Keys that were parsed but never queried by the command — typo guard.
  /// Call after all get()/has() lookups.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  mutable std::set<std::string, std::less<>> touched_;
};

}  // namespace cwgl::cli

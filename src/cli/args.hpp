#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace cwgl::cli {

/// Minimal `--key value` / `--key=value` / `--flag` / positional parser for
/// the cwgl tool.
///
/// Grammar: `cwgl <command> [--key value | --key=value | --flag | operand]...`.
/// Keys start with "--"; a key followed by another key (or end of input) is a
/// boolean flag; `--key=` supplies an explicit empty value. A bare token not
/// consumed as some key's value is a positional operand (`cwgl predict
/// --model m.cwgl jobs.csv`), kept in appearance order. Note the one
/// ambiguity this grammar has: a bare token right after a value-less flag is
/// taken as that flag's value — put positionals first or use `--flag=`
/// when mixing. Unknown keys and unclaimed positionals are collected so
/// commands can reject typos and stray operands explicitly.
class Args {
 public:
  /// Parses everything after the command word.
  static Args parse(int argc, const char* const* argv, int start_index);

  /// Positional operand by position, or `fallback` when there are fewer.
  std::string positional(std::size_t index, std::string_view fallback = "") const;

  std::size_t positional_count() const noexcept { return positionals_.size(); }

  /// String option or fallback.
  std::string get(std::string_view key, std::string_view fallback = "") const;

  /// Integer option; nullopt when absent, throws InvalidArgument on junk.
  std::optional<long long> get_int(std::string_view key) const;

  /// Double option; nullopt when absent, throws InvalidArgument on junk.
  std::optional<double> get_double(std::string_view key) const;

  /// True if `--key` appeared (with or without a value).
  bool has(std::string_view key) const;

  /// Keys that were parsed but never queried by the command, plus
  /// positionals beyond every index the command asked for — typo/stray-
  /// operand guard. Call after all get()/has()/positional() lookups.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positionals_;
  mutable std::set<std::string, std::less<>> touched_;
  /// One past the highest positional index the command queried.
  mutable std::size_t positionals_claimed_ = 0;
};

}  // namespace cwgl::cli

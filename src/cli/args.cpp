#include "cli/args.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace cwgl::cli {

Args Args::parse(int argc, const char* const* argv, int start_index) {
  Args args;
  for (int i = start_index; i < argc; ++i) {
    std::string_view token = argv[i];
    if (token.size() < 3 || token.substr(0, 2) != "--") {
      args.positionals_.emplace_back(token);
      continue;
    }
    const std::string_view body = token.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      // --key=value form: the value may be empty and may itself start with
      // "--" (e.g. --filter=--foo), which the space-separated form can't say.
      args.values_[std::string(body.substr(0, eq))] =
          std::string(body.substr(eq + 1));
      continue;
    }
    const std::string key(body);
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      args.values_[key] = argv[++i];
    } else {
      args.values_[key] = "";  // boolean flag
    }
  }
  return args;
}

std::string Args::positional(std::size_t index, std::string_view fallback) const {
  positionals_claimed_ = std::max(positionals_claimed_, index + 1);
  return index < positionals_.size() ? positionals_[index]
                                     : std::string(fallback);
}

std::string Args::get(std::string_view key, std::string_view fallback) const {
  touched_.insert(std::string(key));
  const auto it = values_.find(key);
  return it == values_.end() ? std::string(fallback) : it->second;
}

std::optional<long long> Args::get_int(std::string_view key) const {
  touched_.insert(std::string(key));
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  const auto value = util::to_int(it->second);
  if (!value) {
    throw util::InvalidArgument("--" + std::string(key) +
                                " expects an integer, got '" + it->second + "'");
  }
  return value;
}

std::optional<double> Args::get_double(std::string_view key) const {
  touched_.insert(std::string(key));
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  const auto value = util::to_double(it->second);
  if (!value) {
    throw util::InvalidArgument("--" + std::string(key) +
                                " expects a number, got '" + it->second + "'");
  }
  return value;
}

bool Args::has(std::string_view key) const {
  touched_.insert(std::string(key));
  return values_.find(key) != values_.end();
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (!touched_.count(key)) out.push_back(key);
  }
  for (std::size_t i = positionals_claimed_; i < positionals_.size(); ++i) {
    out.push_back(positionals_[i]);
  }
  return out;
}

}  // namespace cwgl::cli

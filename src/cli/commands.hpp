#pragma once

#include <iosfwd>
#include <string_view>

#include "cli/args.hpp"

namespace cwgl::cli {

/// Dispatches `cwgl <command> ...`. Returns the process exit code and
/// writes human output to `out` and problems to `err` (testable without
/// spawning a process). Commands:
///
///   generate      --out DIR [--jobs N] [--seed S] [--no-instances]
///   census        (--trace DIR | [--jobs N]) [--seed S]
///   characterize  (--trace DIR | [--jobs N]) [--sample K] [--natural]
///                 [--clusters K] [--wl-iterations H] [--seed S]
///   cluster       (--trace DIR | [--jobs N]) [--sample K] [--clusters K]
///                 [--out DIR] [--seed S]
///   similarity    (--trace DIR | [--jobs N]) [--sample K] [--matrix]
///   ingest        (--trace DIR | [--jobs N]) [--threads T] [--serial] [--seed S]
///   schedule      [--jobs N] [--sample K] [--machines M] [--online F]
///                 [--inter-arrival S] [--seed S]
///   serve         --model FILE (--socket PATH | --port N) — resident
///                 classification daemon (admission control, deadlines,
///                 SIGHUP hot reload, graceful drain)
///   client        (--socket PATH | --port N) one-shot daemon client
///   help          prints usage
int run_command(std::string_view command, const Args& args, std::ostream& out,
                std::ostream& err);

/// Entry point used by main(): parses the command word + options and
/// reports usage errors with exit code 2.
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

/// The usage text (also printed by `cwgl help`).
std::string_view usage();

}  // namespace cwgl::cli

#include "cli/commands.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include <chrono>
#include <optional>
#include <thread>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/tracer.hpp"

#include "cluster/scale.hpp"
#include "core/comparison.hpp"
#include "core/ingest.hpp"
#include "core/pipeline.hpp"
#include "core/predictor.hpp"
#include "model/fit.hpp"
#include "model/format.hpp"
#include "serve/classifier.hpp"
#include "serve/daemon.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "core/report_json.hpp"
#include "core/report_text.hpp"
#include "core/topology_census.hpp"
#include "graph/algorithms.hpp"
#include "graph/dot.hpp"
#include "sched/simulator.hpp"
#include "trace/generator.hpp"
#include "trace/instance_census.hpp"
#include "trace/io.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace cwgl::cli {

namespace {

constexpr std::string_view kUsage = R"(cwgl — cloud workload graph learning (IPPS'21 reproduction)

usage: cwgl <command> [options]

commands:
  generate      write a synthetic Alibaba-v2018 trace to disk
                  --out DIR [--jobs N] [--seed S] [--no-instances]
  census        whole-trace statistics (DAG share, resources, shapes)
                  (--trace DIR | [--jobs N]) [--seed S]
  characterize  the full paper pipeline, printing every figure's data
                (alias: pipeline). --intern deduplicates the sample by DAG
                shape (core::ShapeStore) and runs the expensive stages once
                per distinct shape, count-weighted — same results, and the
                --json report gains an "intern" member with the table stats.
                --json embeds "timings" and, with --metrics, a "metrics"
                snapshot.
                --full[=minibatch|landmark] clusters EVERY eligible job (no
                sampling): shapes are interned, featurized once each, and
                clustered count-weighted by mini-batch k-means (default) or
                a landmark/Nystrom spectral embedding — no n x n Gram, so
                100k+ jobs run in seconds. Prints the per-group table plus
                an agreement report (ARI/NMI) validating the full-trace
                labels against the exact spectral pipeline on a shared job
                subsample (--json emits schema cwgl-full-v1)
                  (--trace DIR | [--jobs N]) [--sample K] [--natural]
                  [--clusters K] [--wl-iterations H] [--seed S] [--intern]
                  [--full[=METHOD]] [--json] [--metrics[=FILE]]
                  [--trace-out FILE]
  cluster       similarity map + spectral groups + medoid .dot files
                  (--trace DIR | [--jobs N]) [--sample K] [--clusters K]
                  [--out DIR] [--seed S]
  similarity    WL similarity summary (add --matrix for the full CSV)
                  (--trace DIR | [--jobs N]) [--sample K]
  ingest        streaming ingest throughput: batch_task.csv -> DAG jobs,
                reporting rows/s and MB/s (serial scanner vs pooled overlap).
                Lenient by default: damaged records are quarantined and
                reported; --strict fails on the first corrupt record instead
                With --json the whole report is one JSON document (schema
                cwgl-ingest-v1: elapsed_ms, throughput.rows_per_s, ...).
                --intern interns each built DAG into a shape table instead of
                materializing it, reporting distinct shapes and hit rate.
                --metrics[=FILE] snapshots pipeline metrics; --trace-out FILE
                writes Chrome trace-event JSON (Perfetto-loadable)
                  (--trace DIR | [--jobs N]) [--threads T] [--serial]
                  [--strict] [--intern] [--json] [--seed S]
                  [--metrics[=FILE]] [--trace-out FILE]
  compare       workload drift between two traces (JS divergence)
                  (--trace DIR --trace-b DIR | [--jobs N] [--seed S] [--seed-b S])
  fit           run the pipeline and persist the fitted WL/cluster model as a
                cwgl-model-v2 snapshot, then self-check that the snapshot
                reproduces the pipeline's own cluster assignments. With
                --intern the snapshot stores one representative per distinct
                DAG shape (carrying its multiplicity) instead of one per job.
                --full[=minibatch|landmark] fits on EVERY eligible job via
                the scalable full-trace path (one representative per distinct
                shape of the whole workload). --json emits schema
                cwgl-fit-v1 with the snapshot's total and per-section byte
                sizes (CONF/DICT/PROF/REPS/SHPC) and the self-check verdict
                  (--trace DIR | [--jobs N]) [--out FILE] [--sample K]
                  [--clusters K] [--wl-iterations H] [--seed S] [--natural]
                  [--conflated] [--intern] [--full[=METHOD]] [--json]
  predict       with --model: classify the DAG jobs of a batch_task.csv
                against a fitted snapshot (cluster, similarity, structure
                forecast; --json emits schema cwgl-predict-v1).
                Without --model: fit/evaluate the completion-time predictor
                  --model FILE TASK_CSV [--json]
                  (--trace DIR | [--jobs N]) [--sample K] [--seed S]
  serve-bench   batched multithreaded classification throughput against a
                fitted snapshot (--json emits schema cwgl-serve-bench-v1)
                  --model FILE [--jobs N] [--threads T] [--repeat R]
                  [--seed S] [--json] [--metrics[=FILE]] [--trace-out FILE]
  schedule      simulate scheduling policies on a characterized workload
                  [--jobs N] [--sample K] [--machines M] [--online F]
                  [--inter-arrival S] [--seed S]
  serve         resident classification daemon: accepts cwgl-serve-v1 frames
                (u32-length-prefixed JSON) over a unix or loopback-tcp
                socket. Bounded admission queue sheds overload with typed
                responses, every request carries a deadline, SIGHUP (or a
                `reload` request) hot-swaps the model snapshot without
                dropping in-flight work, SIGTERM/SIGINT drains gracefully.
                Prints a `serving on ...` line once ready; --port 0 picks an
                ephemeral port and prints it.
                Telemetry plane: --telemetry-out FILE exports a Prometheus
                text file every --telemetry-interval SEC (atomic tmp+rename);
                --log[=FILE] enables structured logging (stderr or FILE) at
                --log-level LVL (debug|info|warn|error), --log-json switches
                to JSON lines; --trace-buffer N arms a bounded span buffer
                drained by `client --trace` (0 disables)
                  --model FILE (--socket PATH | --port N) [--threads T]
                  [--max-inflight N] [--max-batch N] [--deadline-ms D]
                  [--admission-wait-ms W] [--drain-timeout-ms D]
                  [--service-delay-us U] [--metrics[=FILE]]
                  [--telemetry-out FILE] [--telemetry-interval SEC]
                  [--log[=FILE]] [--log-level LVL] [--log-json]
                  [--trace-buffer N]
  client        one-shot client for a running daemon: sends one request,
                prints the typed response, exits 0 only on `ok` (non-ok
                statuses go to stderr). --ping reports daemon version and
                model generation; --stats dumps counters plus the full
                telemetry payload (--prometheus renders the metrics snapshot
                as Prometheus text exposition); --health prints the readiness
                document; --trace drains the daemon's span buffer;
                --watch=SEC re-polls every SEC seconds until interrupted
                  (--socket PATH | --port N)
                  (--ping | --stats [--prometheus] | --health | --trace |
                   --reload[=FILE] | --drain |
                   --job NAME --tasks M1,R2_1,... [--deadline-ms D])
                  [--watch=SEC]
  help          this text

Traces are directories holding batch_task.csv (and optionally
batch_instance.csv) in the cluster-trace-v2018 column layout.
)";

/// Loads --trace DIR, or generates --jobs N (default 20000) with --seed.
trace::Trace load_or_generate(const Args& args, std::ostream& out) {
  const std::string dir = args.get("trace");
  if (!dir.empty()) {
    std::size_t skipped = 0;
    util::WallTimer timer;
    trace::Trace data = trace::read_trace(dir, &skipped);
    out << "loaded " << data.tasks.size() << " task rows from " << dir << " ("
        << skipped << " malformed skipped) in "
        << util::format_double(timer.millis(), 1) << " ms\n";
    return data;
  }
  trace::GeneratorConfig cfg;
  cfg.num_jobs = static_cast<std::size_t>(args.get_int("jobs").value_or(20000));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed").value_or(42));
  cfg.emit_instances = false;
  util::WallTimer timer;
  trace::Trace data = trace::TraceGenerator(cfg).generate();
  out << "generated " << data.tasks.size() << " task rows (" << cfg.num_jobs
      << " jobs, seed " << cfg.seed << ") in "
      << util::format_double(timer.millis(), 1) << " ms\n";
  return data;
}

core::PipelineConfig pipeline_config(const Args& args) {
  core::PipelineConfig cfg;
  cfg.sample_size = static_cast<std::size_t>(args.get_int("sample").value_or(100));
  if (args.has("natural")) cfg.sampling = core::SamplingMode::Natural;
  cfg.clustering.clusters = static_cast<int>(args.get_int("clusters").value_or(5));
  if (const auto h = args.get_int("wl-iterations")) {
    cfg.similarity.wl.iterations = static_cast<int>(*h);
  }
  if (args.has("intern")) cfg.intern_shapes = true;
  return cfg;
}

/// Observability switches shared by `ingest` and `characterize`:
/// `--metrics[=FILE]` snapshots the global registry after the run (inline in
/// the report, or to FILE when given) and `--trace-out FILE` records spans
/// as Chrome trace-event JSON. Either switch opens the registry's timing
/// gate for the duration of the command so latency histograms fill in.
struct ObsOptions {
  bool metrics = false;
  std::string metrics_file;
  std::string trace_file;

  bool engaged() const { return metrics || !trace_file.empty(); }
};

/// Parses the switches and arms collection. The registry is reset first so
/// the snapshot covers exactly this command's work — which also makes two
/// identical serial runs produce identical counter values.
ObsOptions start_observation(const Args& args) {
  ObsOptions o;
  o.metrics = args.has("metrics");
  o.metrics_file = args.get("metrics");
  o.trace_file = args.get("trace-out");
  if (o.engaged()) {
    auto& registry = obs::MetricsRegistry::global();
    registry.reset();
    registry.set_timing_enabled(true);
  }
  if (!o.trace_file.empty()) obs::Tracer::global().start();
  return o;
}

/// Disarms collection and writes the side files. Returns the snapshot JSON
/// for inline embedding when --metrics was given, "" otherwise.
std::string finish_observation(const ObsOptions& o, std::ostream& err) {
  if (!o.engaged()) return "";
  obs::MetricsRegistry::global().set_timing_enabled(false);
  if (!o.trace_file.empty()) {
    auto& tracer = obs::Tracer::global();
    tracer.stop();
    std::ofstream file(o.trace_file);
    if (file) {
      tracer.write_json(file);
      file << "\n";
    } else {
      err << "warning: cannot write trace to " << o.trace_file << "\n";
    }
  }
  if (!o.metrics) return "";
  const auto snapshot = obs::MetricsRegistry::global().snapshot();
  std::ostringstream json;
  snapshot.write_json(json);
  if (!o.metrics_file.empty()) {
    std::ofstream file(o.metrics_file);
    if (file) {
      file << json.str() << "\n";
    } else {
      err << "warning: cannot write metrics to " << o.metrics_file << "\n";
    }
  }
  return json.str();
}

/// Text-mode tail: prints the snapshot inline unless it went to a file.
void print_metrics_text(const ObsOptions& o, std::ostream& out) {
  if (!o.metrics || !o.metrics_file.empty()) return;
  out << "\nmetrics:\n";
  obs::MetricsRegistry::global().snapshot().write_text(out);
}

/// Parses `--full[=minibatch|landmark]` into the pipeline config. Returns
/// false (after printing to `err`) on an unrecognized method name.
bool parse_full_method(const Args& args, const char* command,
                       core::PipelineConfig& cfg, std::ostream& err) {
  const std::string text = args.get("full");
  if (!text.empty() && !cluster::parse_scale_method(text, cfg.full_method)) {
    err << command << ": unknown --full method '" << text
        << "' (expected minibatch or landmark)\n";
    return false;
  }
  return true;
}

void print_full_trace_report(std::ostream& out,
                             const core::FullTraceResult& result) {
  out << "full-trace clustering (" << cluster::to_string(result.method);
  if (result.degraded) out << ", degraded from landmark";
  out << "): " << result.total_jobs() << " jobs, " << result.table.size()
      << " distinct shapes ("
      << util::format_double(100.0 * result.stats.distinct_ratio(), 1)
      << "%)\n";
  if (result.method == cluster::ScaleMethod::Landmark) {
    out << "landmark embedding: " << result.landmarks << " landmarks, "
        << result.embedding_dims << " dims\n";
  }
  out << "\ngroup  population      share   med.size  med.depth  med.width  "
         "chains  short\n";
  for (const core::ClusterGroupStats& g : result.groups) {
    out << "    " << g.letter() << "  " << std::setw(10) << g.population
        << "  " << std::setw(8)
        << util::format_double(100.0 * g.population_fraction, 1) << "%  "
        << std::setw(9) << util::format_double(g.size.median, 1) << "  "
        << std::setw(9) << util::format_double(g.critical_path.median, 1)
        << "  " << std::setw(9) << util::format_double(g.parallelism.median, 1)
        << "  " << std::setw(5)
        << util::format_double(100.0 * g.chain_fraction, 0) << "%  "
        << std::setw(4) << util::format_double(100.0 * g.short_job_fraction, 0)
        << "%\n";
  }
  if (result.agreement.items > 0) {
    out << "\nagreement vs exact sampled pipeline ("
        << result.agreement.items
        << " jobs): ARI " << util::format_double(result.agreement.ari, 3)
        << ", NMI " << util::format_double(result.agreement.nmi, 3) << "\n";
  } else {
    out << "\nagreement validation skipped (sample too small)\n";
  }
}

void write_full_trace_json(std::ostream& out,
                           const core::FullTraceResult& result,
                           double load_ms, double pipeline_ms, double total_ms,
                           const std::string& metrics_json) {
  util::JsonWriter j(out);
  j.begin_object();
  j.field("schema", "cwgl-full-v1");
  j.field("jobs", static_cast<unsigned long long>(result.total_jobs()));
  j.field("distinct_shapes", result.table.size());
  j.field("distinct_ratio", result.stats.distinct_ratio());
  j.field("method", cluster::to_string(result.method));
  j.field("degraded", result.degraded);
  j.field("clusters", result.groups.size());
  j.field("inertia", result.inertia);
  if (result.method == cluster::ScaleMethod::Landmark) {
    j.field("landmarks", result.landmarks);
    j.field("embedding_dims", result.embedding_dims);
  }
  j.key("groups");
  j.begin_array();
  for (const core::ClusterGroupStats& g : result.groups) {
    j.begin_object();
    j.field("letter", std::string(1, g.letter()));
    j.field("population", static_cast<unsigned long long>(g.population));
    j.field("population_fraction", g.population_fraction);
    j.field("mean_size", g.size.mean);
    j.field("median_size", g.size.median);
    j.field("mean_critical_path", g.critical_path.mean);
    j.field("median_critical_path", g.critical_path.median);
    j.field("mean_width", g.parallelism.mean);
    j.field("median_width", g.parallelism.median);
    j.field("chain_fraction", g.chain_fraction);
    j.field("short_job_fraction", g.short_job_fraction);
    j.field("medoid_shape", g.medoid);
    j.end_object();
  }
  j.end_array();
  j.key("agreement");
  j.begin_object();
  j.field("jobs", result.agreement.items);
  j.field("ari", result.agreement.ari);
  j.field("nmi", result.agreement.nmi);
  j.field("clusters_full", result.agreement.clusters_a);
  j.field("clusters_exact", result.agreement.clusters_b);
  j.end_object();
  j.key("intern");
  j.begin_object();
  j.field("total_jobs", result.stats.total_jobs);
  j.field("distinct_shapes", result.stats.distinct_shapes);
  j.field("hits", result.stats.hits);
  j.field("misses", result.stats.misses);
  j.field("isomorphism_probes", result.stats.isomorphism_probes);
  j.field("hash_collisions", result.stats.hash_collisions);
  j.end_object();
  j.key("timings");
  j.begin_object();
  j.field("load_ms", load_ms);
  j.field("pipeline_ms", pipeline_ms);
  j.field("total_ms", total_ms);
  j.end_object();
  if (!metrics_json.empty()) {
    j.key("metrics");
    j.raw(metrics_json);
  }
  j.end_object();
  out << "\n";
}

int reject_unknown(const Args& args, std::ostream& err) {
  const auto unknown = args.unused();
  if (unknown.empty()) return 0;
  err << "unknown option(s):";
  for (const auto& key : unknown) err << " --" << key;
  err << "\n";
  return 2;
}

int cmd_generate(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string dir = args.get("out");
  if (dir.empty()) {
    err << "generate: --out DIR is required\n";
    return 2;
  }
  trace::GeneratorConfig cfg;
  cfg.num_jobs = static_cast<std::size_t>(args.get_int("jobs").value_or(10000));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed").value_or(42));
  cfg.emit_instances = !args.has("no-instances");
  if (const int rc = reject_unknown(args, err)) return rc;
  util::WallTimer timer;
  const trace::Trace data = trace::TraceGenerator(cfg).generate();
  trace::write_trace(data, dir);
  out << "wrote " << data.tasks.size() << " task rows and "
      << data.instances.size() << " instance rows to " << dir << " in "
      << util::format_double(timer.millis(), 1) << " ms\n";
  return 0;
}

int cmd_census(const Args& args, std::ostream& out, std::ostream& err) {
  const trace::Trace data = load_or_generate(args, out);
  if (const int rc = reject_unknown(args, err)) return rc;
  core::print_trace_census(out, core::TraceCensus::compute(data));
  const auto jobs = core::build_all_dag_jobs(data, trace::SamplingCriteria{});
  out << "\nfiltered DAG jobs: " << jobs.size() << "\n";
  core::print_pattern_census(out, core::PatternCensus::compute(jobs));
  const auto topo = core::TopologyCensus::compute(jobs);
  out << "distinct topologies: " << topo.distinct_topologies << " ("
      << util::format_double(100.0 * topo.recurring_fraction, 1)
      << "% of jobs recur)\n";
  if (!data.instances.empty()) {
    const auto inst = trace::InstanceCensus::compute(data);
    out << "\ninstances: " << inst.instances << " on " << inst.machines_used
        << " machines; busiest 10% of machines carry "
        << util::format_double(100.0 * inst.top_decile_share, 1)
        << "% of instance time; retries "
        << util::format_double(100.0 * inst.retry_fraction, 1)
        << "%; cpu usage/plan mean "
        << util::format_double(inst.cpu_usage_ratio.mean, 2) << "\n";
  }
  return 0;
}

int cmd_characterize(const Args& args, std::ostream& out, std::ostream& err) {
  const bool as_json = args.has("json");
  const bool full = args.has("full");
  const ObsOptions obs_opts = start_observation(args);
  std::ostringstream sink;  // keep the JSON stream pure of progress chatter
  std::ostream& progress = as_json ? static_cast<std::ostream&>(sink) : out;
  util::WallTimer total_timer;
  util::WallTimer load_timer;
  const trace::Trace data = load_or_generate(args, progress);
  const double load_ms = load_timer.millis();
  core::PipelineConfig cfg = pipeline_config(args);
  if (full && !parse_full_method(args, "characterize", cfg, err)) return 2;
  if (const int rc = reject_unknown(args, err)) return rc;

  if (full) {
    // Full-trace path: cluster EVERY eligible job (no sampling) via the
    // scalable backends — memory bounded by distinct shapes.
    util::ThreadPool pool;
    util::WallTimer timer;
    const core::FullTraceResult result =
        core::CharacterizationPipeline(cfg).run_full(data, &pool);
    const double pipeline_ms = timer.millis();
    const std::string metrics_json = finish_observation(obs_opts, err);
    if (as_json) {
      write_full_trace_json(out, result, load_ms, pipeline_ms,
                            total_timer.millis(), metrics_json);
      return 0;
    }
    out << "full-trace pipeline completed in "
        << util::format_double(pipeline_ms, 1) << " ms\n";
    print_full_trace_report(out, result);
    print_metrics_text(obs_opts, out);
    return 0;
  }

  util::ThreadPool pool;
  util::WallTimer timer;
  const auto result = core::CharacterizationPipeline(cfg).run(data, &pool);
  const double pipeline_ms = timer.millis();
  const std::string metrics_json = finish_observation(obs_opts, err);
  if (as_json) {
    core::ReportExtras extras;
    extras.timings_ms = {{"load_ms", load_ms},
                         {"pipeline_ms", pipeline_ms},
                         {"total_ms", total_timer.millis()}};
    extras.metrics_json = metrics_json;
    core::write_json(out, result, extras);
    out << "\n";
    return 0;
  }
  out << "pipeline completed in " << util::format_double(pipeline_ms, 1)
      << " ms\n";
  if (result.interned.has_value()) {
    const auto& s = result.interned->stats;
    out << "shape interning: " << s.distinct_shapes << " distinct shapes for "
        << s.total_jobs << " jobs ("
        << util::format_double(100.0 * s.distinct_ratio(), 1) << "%), "
        << s.isomorphism_probes << " isomorphism probes, "
        << s.hash_collisions << " hash collisions\n";
  }
  out << "\n";
  core::print_trace_census(out, result.census);
  out << "\n";
  core::print_conflation_report(out, result.conflation);
  out << "\n";
  core::print_structural_report(out, result.structure_before,
                                "Fig 4: job features before node conflation");
  out << "\n";
  core::print_structural_report(out, result.structure_after,
                                "Fig 5: job features after node conflation");
  out << "\n";
  core::print_task_type_report(out, result.task_types);
  out << "\n";
  core::print_pattern_census(out, result.patterns);
  out << "\n";
  core::print_similarity_summary(out, result.similarity.stats(result.sample));
  out << "\n";
  core::print_clustering_analysis(out, result.clustering);
  out << "\n";
  core::print_resource_report(out,
                              core::ResourceUsageReport::compute(result.sample));
  print_metrics_text(obs_opts, out);
  return 0;
}

int cmd_cluster(const Args& args, std::ostream& out, std::ostream& err) {
  const trace::Trace data = load_or_generate(args, out);
  const core::PipelineConfig cfg = pipeline_config(args);
  const std::string out_dir = args.get("out");
  if (const int rc = reject_unknown(args, err)) return rc;
  util::ThreadPool pool;
  const core::CharacterizationPipeline pipeline(cfg);
  const auto sample = pipeline.build_sample(data);
  const auto similarity =
      core::SimilarityAnalysis::compute(sample, cfg.similarity, &pool);
  const auto clustering =
      core::ClusteringAnalysis::compute(similarity.gram, sample, cfg.clustering);
  core::print_clustering_analysis(out, clustering);
  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir);
    for (const auto& group : clustering.groups) {
      if (group.population == 0) continue;
      const core::JobDag& medoid = sample[group.medoid];
      const auto path = std::filesystem::path(out_dir) /
                        ("group_" + std::string(1, group.letter()) + ".dot");
      std::ofstream file(path);
      file << graph::to_dot(medoid.dag, medoid.vertex_names(), medoid.job_name);
      out << "wrote " << path.string() << " (" << medoid.job_name << ", "
          << medoid.size() << " tasks)\n";
    }
  }
  return 0;
}

int cmd_similarity(const Args& args, std::ostream& out, std::ostream& err) {
  const trace::Trace data = load_or_generate(args, out);
  const core::PipelineConfig cfg = pipeline_config(args);
  const bool want_matrix = args.has("matrix");
  if (const int rc = reject_unknown(args, err)) return rc;
  util::ThreadPool pool;
  const auto sample = core::CharacterizationPipeline(cfg).build_sample(data);
  const auto similarity =
      core::SimilarityAnalysis::compute(sample, cfg.similarity, &pool);
  core::print_similarity_summary(out, similarity.stats(sample));
  if (want_matrix) {
    out << "\n";
    core::print_similarity_matrix(out, similarity);
  }
  return 0;
}

int cmd_ingest(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string dir = args.get("trace");
  const bool serial = args.has("serial");
  const bool strict = args.has("strict");
  const bool intern = args.has("intern");
  const bool as_json = args.has("json");
  const auto threads =
      static_cast<unsigned>(args.get_int("threads").value_or(0));
  const ObsOptions obs_opts = start_observation(args);
  // Without --trace, synthesize a task CSV in memory so the command is
  // self-contained (the bytes parsed are identical to the on-disk format).
  std::stringstream generated;
  std::ifstream file;
  std::istream* in = nullptr;
  std::uintmax_t input_bytes = 0;
  if (!dir.empty()) {
    const auto path = std::filesystem::path(dir) / "batch_task.csv";
    file.open(path);
    if (!file) {
      err << "ingest: cannot open " << path.string() << "\n";
      return 2;
    }
    std::error_code ec;
    input_bytes = std::filesystem::file_size(path, ec);
    in = &file;
  } else {
    trace::GeneratorConfig cfg;
    cfg.num_jobs =
        static_cast<std::size_t>(args.get_int("jobs").value_or(20000));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed").value_or(42));
    cfg.emit_instances = false;
    const trace::Trace data = trace::TraceGenerator(cfg).generate();
    trace::write_batch_task_csv(generated, data.tasks);
    input_bytes = generated.str().size();
    in = &generated;
  }
  if (const int rc = reject_unknown(args, err)) return rc;

  std::optional<util::ThreadPool> pool;
  if (!serial) pool.emplace(threads);
  util::Diagnostics diagnostics;
  core::IngestOptions options;
  options.strict = strict;
  options.diagnostics = &diagnostics;
  core::IngestStats stats;
  core::InternedIngest shapes;
  std::vector<core::JobDag> dag_jobs;
  std::size_t dag_count = 0;
  util::WallTimer timer;
  if (intern) {
    shapes = core::stream_shape_jobs(*in, options, serial ? nullptr : &*pool);
    stats = shapes.stats;
    dag_count = shapes.shape_of.size();
  } else {
    dag_jobs = core::stream_dag_jobs(*in, options, serial ? nullptr : &*pool,
                                     &stats);
    dag_count = dag_jobs.size();
  }
  const double ms = timer.millis();
  const double seconds = std::max(ms, 0.001) / 1000.0;
  const double mb = static_cast<double>(input_bytes) / (1024.0 * 1024.0);
  const double rows_per_s = static_cast<double>(stats.stream.rows) / seconds;
  // stream_dag_jobs falls back to the serial path when the pool has fewer
  // than two workers (e.g. --threads defaulting on a single-core machine);
  // report the mode that actually ran, not the one requested.
  const bool pooled = !serial && pool->size() >= 2;
  const std::string metrics_json = finish_observation(obs_opts, err);

  if (as_json) {
    // One machine-readable document (schema documented in the README):
    // mode/input/quality/built, elapsed wall-clock, throughput, the
    // diagnostics report, and the metrics snapshot when --metrics was given.
    util::JsonWriter j(out);
    j.begin_object();
    j.field("schema", "cwgl-ingest-v1");
    j.field("mode", pooled ? "pooled" : "serial");
    j.field("workers", pooled ? pool->size() : std::size_t{1});
    j.key("input");
    j.begin_object();
    j.field("bytes", static_cast<unsigned long long>(input_bytes));
    j.field("rows", stats.stream.rows);
    j.field("job_groups", stats.stream.jobs);
    j.end_object();
    j.key("quality");
    j.begin_object();
    j.field("malformed_rows", stats.stream.malformed);
    j.field("fragmented_jobs", stats.stream.fragmented);
    j.end_object();
    j.key("built");
    j.begin_object();
    j.field("dags", stats.dags);
    j.field("eligible", stats.eligible);
    j.end_object();
    j.field("elapsed_ms", ms);
    j.key("throughput");
    j.begin_object();
    j.field("rows_per_s", rows_per_s);
    j.field("mb_per_s", mb / seconds);
    j.end_object();
    // Keep the DAGs alive through the timing so build cost is included.
    j.field("dag_count", dag_count);
    if (intern) {
      j.key("intern");
      j.begin_object();
      j.field("total_jobs", shapes.intern.total_jobs);
      j.field("distinct_shapes", shapes.intern.distinct_shapes);
      j.field("distinct_ratio", shapes.intern.distinct_ratio());
      j.field("hits", shapes.intern.hits);
      j.field("misses", shapes.intern.misses);
      j.field("isomorphism_probes", shapes.intern.isomorphism_probes);
      j.field("hash_collisions", shapes.intern.hash_collisions);
      j.end_object();
    }
    j.key("diagnostics");
    {
      std::ostringstream diag;
      diagnostics.write_json(diag);
      j.raw(diag.str());
    }
    if (!metrics_json.empty()) {
      j.key("metrics");
      j.raw(metrics_json);
    }
    j.end_object();
    out << "\n";
    return 0;
  }

  out << "mode:        "
      << (pooled ? "pooled (" + std::to_string(pool->size()) + " workers)"
                 : "serial")
      << "\n";
  out << "input:       " << util::format_double(mb, 1) << " MiB, "
      << stats.stream.rows << " rows, " << stats.stream.jobs << " job groups\n";
  out << "quality:     " << stats.stream.malformed << " malformed rows, "
      << stats.stream.fragmented << " fragmented jobs\n";
  out << "built:       " << stats.dags << " DAG jobs (of " << stats.eligible
      << " eligible)\n";
  out << "time:        " << util::format_double(ms, 1) << " ms\n";
  out << "throughput:  " << util::format_double(mb / seconds, 1) << " MB/s, "
      << util::format_double(rows_per_s / 1e6, 2) << " M rows/s\n";
  // Keep the DAGs alive through the timing so build cost is included.
  out << "(checksum: " << dag_count << " dags)\n";
  if (intern) {
    out << "shapes:      " << shapes.intern.distinct_shapes << " distinct of "
        << shapes.intern.total_jobs << " jobs ("
        << util::format_double(100.0 * shapes.intern.distinct_ratio(), 1)
        << "%), " << shapes.intern.hits << " hits, "
        << shapes.intern.isomorphism_probes << " isomorphism probes, "
        << shapes.intern.hash_collisions << " hash collisions\n";
  }
  diagnostics.write_text(out);
  print_metrics_text(obs_opts, out);
  return 0;
}

int cmd_compare(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string dir_a = args.get("trace");
  const std::string dir_b = args.get("trace-b");
  trace::Trace a, b;
  if (!dir_a.empty() && !dir_b.empty()) {
    a = trace::read_trace(dir_a);
    b = trace::read_trace(dir_b);
  } else {
    // Without traces, compare two generated "days" (different seeds).
    trace::GeneratorConfig cfg;
    cfg.num_jobs = static_cast<std::size_t>(args.get_int("jobs").value_or(5000));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed").value_or(42));
    cfg.emit_instances = false;
    a = trace::TraceGenerator(cfg).generate();
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed-b").value_or(43));
    b = trace::TraceGenerator(cfg).generate();
  }
  if (const int rc = reject_unknown(args, err)) return rc;
  const auto cmp = core::TraceComparison::compute(a, b);
  out << "workload drift (Jensen-Shannon divergence, 0 = identical, 0.693 = disjoint)\n";
  out << "  DAG jobs analyzed:      " << cmp.jobs_a << " vs " << cmp.jobs_b << "\n";
  out << "  job size:               " << util::format_double(cmp.size_divergence, 4) << "\n";
  out << "  shape mix:              " << util::format_double(cmp.shape_divergence, 4) << "\n";
  out << "  critical path:          " << util::format_double(cmp.depth_divergence, 4) << "\n";
  out << "  parallelism:            " << util::format_double(cmp.width_divergence, 4) << "\n";
  out << "  task-type mix:          " << util::format_double(cmp.task_type_divergence, 4) << "\n";
  out << "  DAG-fraction delta:     " << util::format_double(cmp.dag_fraction_delta, 4) << "\n";
  out << "  headline drift:         " << util::format_double(cmp.max_divergence(), 4) << "\n";
  return 0;
}

int cmd_fit(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string out_path = args.get("out", "model.cwgl");
  const bool as_json = args.has("json");
  const bool full = args.has("full");
  std::ostringstream sink;  // keep the JSON stream pure of progress chatter
  std::ostream& progress = as_json ? static_cast<std::ostream&>(sink) : out;
  const trace::Trace data = load_or_generate(args, progress);
  core::PipelineConfig cfg = pipeline_config(args);
  if (args.has("conflated")) cfg.analyze_conflated = true;
  if (full && !parse_full_method(args, "fit", cfg, err)) return 2;
  if (const int rc = reject_unknown(args, err)) return rc;

  util::ThreadPool pool;
  util::WallTimer timer;
  core::FittedFeatures fitted;
  const core::CharacterizationPipeline pipeline(cfg);
  model::FittedModel snapshot;
  // Self-check inputs: the training jobs (exemplars on a full fit) and the
  // cluster each must land back in when classified through the snapshot.
  std::vector<core::JobDag> check_jobs;
  std::vector<int> check_labels;
  std::string full_method;
  bool full_degraded = false;
  cluster::AgreementReport agreement;
  if (full) {
    core::FullTraceResult result = pipeline.run_full(data, &pool, &fitted);
    full_method = cluster::to_string(result.method);
    full_degraded = result.degraded;
    agreement = result.agreement;
    snapshot = model::build_model_full(result, std::move(fitted), cfg);
    check_labels = result.shape_labels;
    check_jobs = std::move(result.table.exemplars);
  } else {
    core::PipelineResult result = pipeline.run(data, &pool, &fitted);
    snapshot = model::build_model(result, std::move(fitted), cfg);
    check_labels = result.clustering.labels;
    check_jobs = std::move(result.sample);
  }
  model::save_model(snapshot, out_path);
  const double elapsed_ms = timer.millis();
  std::error_code ec;
  const auto bytes = std::filesystem::file_size(out_path, ec);
  const model::SectionSizes sections = model::section_sizes(snapshot);

  // Round-trip self-check: reload the snapshot from disk and classify every
  // training job through it — each must land back in its own cluster, or
  // the model does not faithfully represent the fit.
  const serve::Classifier classifier(model::load_model(out_path));
  std::size_t agree = 0;
  for (std::size_t i = 0; i < check_jobs.size(); ++i) {
    if (classifier.classify(check_jobs[i]).cluster == check_labels[i]) {
      ++agree;
    }
  }
  const bool self_check_ok = agree == check_jobs.size();

  if (as_json) {
    util::JsonWriter j(out);
    j.begin_object();
    j.field("schema", "cwgl-fit-v1");
    j.field("full", full);
    if (full) {
      j.field("method", full_method);
      j.field("degraded", full_degraded);
      j.key("agreement");
      j.begin_object();
      j.field("jobs", agreement.items);
      j.field("ari", agreement.ari);
      j.field("nmi", agreement.nmi);
      j.end_object();
    }
    j.field("clusters", snapshot.num_clusters());
    j.field("training_jobs",
            static_cast<unsigned long long>(snapshot.training_weight()));
    j.field("representatives", snapshot.training_jobs());
    j.field("dictionary_size", snapshot.dictionary.size());
    j.field("elapsed_ms", elapsed_ms);
    j.key("snapshot");
    j.begin_object();
    j.field("path", out_path);
    j.field("bytes", static_cast<unsigned long long>(bytes));
    j.key("sections");
    j.begin_object();
    j.field("conf", static_cast<unsigned long long>(sections.conf));
    j.field("dict", static_cast<unsigned long long>(sections.dict));
    j.field("prof", static_cast<unsigned long long>(sections.prof));
    j.field("reps", static_cast<unsigned long long>(sections.reps));
    j.field("shpc", static_cast<unsigned long long>(sections.shpc));
    j.field("total", static_cast<unsigned long long>(sections.total));
    j.end_object();
    j.end_object();
    j.key("self_check");
    j.begin_object();
    j.field("agree", agree);
    j.field("total", check_jobs.size());
    j.field("ok", self_check_ok);
    j.end_object();
    j.end_object();
    out << "\n";
    if (!self_check_ok) {
      err << "fit: self-check FAILED — snapshot disagrees with the pipeline\n";
      return 1;
    }
    return 0;
  }

  out << "fitted " << snapshot.num_clusters() << " clusters over "
      << snapshot.training_weight() << " jobs ("
      << snapshot.training_jobs() << " representatives, "
      << snapshot.dictionary.size() << " WL signatures) in "
      << util::format_double(elapsed_ms, 1) << " ms\n";
  if (full) {
    out << "full-trace fit (" << full_method
        << (full_degraded ? ", degraded" : "") << ")";
    if (agreement.items > 0) {
      out << ": agreement vs exact sample ARI "
          << util::format_double(agreement.ari, 3) << ", NMI "
          << util::format_double(agreement.nmi, 3);
    }
    out << "\n";
  }
  out << "wrote " << out_path << " (" << bytes
      << " bytes; sections conf=" << sections.conf
      << " dict=" << sections.dict << " prof=" << sections.prof
      << " reps=" << sections.reps << " shpc=" << sections.shpc << ")\n";
  out << "self-check: " << agree << "/" << check_jobs.size()
      << " training jobs reproduce their cluster\n";
  if (!self_check_ok) {
    err << "fit: self-check FAILED — snapshot disagrees with the pipeline\n";
    return 1;
  }
  return 0;
}

/// `predict --model`: classify incoming jobs against a fitted snapshot.
int cmd_classify(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string model_path = args.get("model");
  const std::string input = args.positional(0, args.get("input"));
  const bool as_json = args.has("json");
  if (model_path.empty() || input.empty()) {
    err << "predict: classification needs a snapshot and a task CSV "
           "(cwgl predict --model FILE TASK_CSV)\n";
    return 2;
  }
  if (const int rc = reject_unknown(args, err)) return rc;

  const serve::Classifier classifier(model::load_model(model_path));
  std::ifstream file(input);
  if (!file) {
    err << "predict: cannot open " << input << "\n";
    return 2;
  }
  std::size_t skipped = 0;
  trace::Trace incoming;
  incoming.tasks = trace::read_batch_task_csv(file, &skipped);
  const auto jobs =
      core::build_all_dag_jobs(incoming, trace::SamplingCriteria{});
  if (jobs.empty()) {
    err << "predict: no classifiable DAG jobs in " << input << " ("
        << incoming.tasks.size() << " rows, " << skipped << " malformed)\n";
    return 2;
  }

  if (as_json) {
    util::JsonWriter j(out);
    j.begin_object();
    j.field("schema", "cwgl-predict-v1");
    j.field("model", model_path);
    j.field("clusters", classifier.model().num_clusters());
    j.key("jobs");
    j.begin_array();
    for (const core::JobDag& job : jobs) {
      const serve::Prediction p = classifier.classify(job);
      j.begin_object();
      j.field("job", job.job_name);
      j.field("tasks", static_cast<std::size_t>(job.size()));
      j.field("cluster", std::string(1, p.cluster_letter));
      j.field("similarity", p.similarity);
      j.field("nearest", p.nearest_job);
      j.field("oov_hits", p.oov_hits);
      j.key("predicted");
      j.begin_object();
      j.field("critical_path", p.predicted_critical_path);
      j.field("width", p.predicted_width);
      j.end_object();
      j.end_object();
    }
    j.end_array();
    j.end_object();
    out << "\n";
    return 0;
  }

  out << "classified " << jobs.size() << " DAG jobs against " << model_path
      << " (" << classifier.model().num_clusters() << " clusters)\n";
  out << util::pad_right("job", 14) << util::pad_left("tasks", 6)
      << util::pad_left("group", 6) << util::pad_left("similarity", 12)
      << util::pad_left("oov", 5) << "  nearest / forecast (cp, width)\n";
  for (const core::JobDag& job : jobs) {
    const serve::Prediction p = classifier.classify(job);
    out << util::pad_right(job.job_name, 14)
        << util::pad_left(std::to_string(job.size()), 6)
        << util::pad_left(std::string(1, p.cluster_letter), 6)
        << util::pad_left(util::format_double(p.similarity, 4), 12)
        << util::pad_left(std::to_string(p.oov_hits), 5) << "  "
        << p.nearest_job << " ("
        << util::format_double(p.predicted_critical_path, 1) << ", "
        << util::format_double(p.predicted_width, 1) << ")\n";
  }
  return 0;
}

int cmd_serve_bench(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string model_path = args.get("model");
  const bool as_json = args.has("json");
  const auto num_jobs =
      static_cast<std::size_t>(args.get_int("jobs").value_or(2000));
  const auto threads =
      static_cast<unsigned>(args.get_int("threads").value_or(0));
  const auto repeat = static_cast<int>(args.get_int("repeat").value_or(3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed").value_or(99));
  const ObsOptions obs_opts = start_observation(args);
  if (model_path.empty()) {
    err << "serve-bench: --model FILE is required\n";
    return 2;
  }
  if (const int rc = reject_unknown(args, err)) return rc;

  const serve::Classifier classifier(model::load_model(model_path));
  trace::GeneratorConfig gcfg;
  gcfg.num_jobs = num_jobs;
  gcfg.seed = seed;
  gcfg.emit_instances = false;
  const trace::Trace data = trace::TraceGenerator(gcfg).generate();
  const auto jobs =
      core::build_all_dag_jobs(data, trace::SamplingCriteria{});
  if (jobs.empty()) {
    err << "serve-bench: generated workload contains no DAG jobs\n";
    return 2;
  }

  util::ThreadPool pool(threads);
  const std::size_t dict_before = classifier.dictionary_size();
  serve::BatchStats best;
  for (int r = 0; r < std::max(repeat, 1); ++r) {
    const serve::BatchStats stats =
        serve::classify_batch(classifier, jobs, &pool);
    if (stats.jobs_per_second > best.jobs_per_second) best = stats;
  }
  // The serving contract: inference must never grow the frozen dictionary.
  if (classifier.dictionary_size() != dict_before) {
    err << "serve-bench: dictionary grew under inference — serving contract "
           "violated\n";
    return 1;
  }
  const std::string metrics_json = finish_observation(obs_opts, err);

  if (as_json) {
    util::JsonWriter j(out);
    j.begin_object();
    j.field("schema", "cwgl-serve-bench-v1");
    j.field("model", model_path);
    j.field("jobs", best.jobs);
    j.field("threads", pool.size());
    j.field("repeat", static_cast<std::size_t>(std::max(repeat, 1)));
    j.field("jobs_per_second", best.jobs_per_second);
    j.key("latency_us");
    j.begin_object();
    j.field("p50", best.p50_latency_us);
    j.field("p90", best.p90_latency_us);
    j.field("p99", best.p99_latency_us);
    j.field("max", best.max_latency_us);
    j.end_object();
    j.field("oov_jobs", best.oov_jobs);
    if (!metrics_json.empty()) {
      j.key("metrics");
      j.raw(metrics_json);
    }
    j.end_object();
    out << "\n";
    return 0;
  }

  out << "served " << best.jobs << " jobs on " << pool.size()
      << " threads (best of " << std::max(repeat, 1) << ")\n";
  out << "throughput:  " << util::format_double(best.jobs_per_second / 1e3, 1)
      << " K jobs/s\n";
  out << "latency:     p50 " << util::format_double(best.p50_latency_us, 0)
      << " us, p90 " << util::format_double(best.p90_latency_us, 0)
      << " us, p99 " << util::format_double(best.p99_latency_us, 0)
      << " us, max " << util::format_double(best.max_latency_us, 0) << " us\n";
  out << "oov jobs:    " << best.oov_jobs << " of " << best.jobs << "\n";
  out << "groups:      ";
  for (std::size_t c = 0; c < best.cluster_counts.size(); ++c) {
    out << (c > 0 ? "  " : "") << model::FittedModel::letter(c) << "="
        << best.cluster_counts[c];
  }
  out << "\n";
  print_metrics_text(obs_opts, out);
  return 0;
}

int cmd_predict(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.has("model") || args.positional_count() > 0) {
    return cmd_classify(args, out, err);
  }
  const trace::Trace data = load_or_generate(args, out);
  core::PipelineConfig cfg = pipeline_config(args);
  if (const int rc = reject_unknown(args, err)) return rc;
  const auto sample = core::CharacterizationPipeline(cfg).build_sample(data);
  const std::size_t split = sample.size() / 2;
  const std::vector<core::JobDag> train(sample.begin(), sample.begin() + split);
  const std::vector<core::JobDag> test(sample.begin() + split, sample.end());
  if (train.empty() || test.empty()) {
    err << "predict: sample too small\n";
    return 2;
  }
  const auto model = core::JctPredictor::fit(train, {}, core::PredictorConfig{});
  const auto eval = model.evaluate(test, {});
  out << "completion-time predictor (fit on " << train.size()
      << " jobs, evaluated on " << eval.jobs << " held-out jobs)\n";
  out << "  R^2:  " << util::format_double(eval.r2, 3) << "\n";
  out << "  MAE:  " << util::format_double(eval.mae, 1) << " s (mean actual "
      << util::format_double(eval.mean_actual, 1) << " s)\n";
  out << "example predictions (first 5 held-out jobs):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, test.size()); ++i) {
    out << "  " << util::pad_right(test[i].job_name, 12) << " predicted "
        << util::pad_left(util::format_double(model.predict(test[i]), 0), 6)
        << " s, actual "
        << util::pad_left(
               util::format_double(core::JctPredictor::actual_wall_time(test[i]), 0), 6)
        << " s\n";
  }
  return 0;
}

/// Parses the endpoint switches shared by `serve` and `client`.
serve::Endpoint endpoint_from(const Args& args) {
  serve::Endpoint ep;
  ep.socket_path = args.get("socket");
  if (const auto port = args.get_int("port")) {
    ep.tcp_port = static_cast<int>(*port);
  }
  return ep;
}

int cmd_serve(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string model_path = args.get("model");
  serve::DaemonConfig cfg;
  cfg.endpoint = endpoint_from(args);
  cfg.model_path = model_path;
  if (model_path.empty() || !cfg.endpoint.valid()) {
    err << "serve: need --model FILE and an endpoint "
           "(--socket PATH | --port N)\n";
    return 2;
  }
  cfg.worker_threads =
      static_cast<unsigned>(args.get_int("threads").value_or(0));
  if (const auto v = args.get_int("max-inflight")) {
    cfg.max_inflight = static_cast<std::size_t>(*v);
  }
  if (const auto v = args.get_int("max-batch")) {
    cfg.max_batch = static_cast<std::size_t>(*v);
  }
  if (const auto v = args.get_int("deadline-ms")) {
    cfg.default_deadline = std::chrono::milliseconds(*v);
  }
  if (const auto v = args.get_int("admission-wait-ms")) {
    cfg.admission_wait = std::chrono::milliseconds(*v);
  }
  if (const auto v = args.get_int("drain-timeout-ms")) {
    cfg.drain_timeout = std::chrono::milliseconds(*v);
  }
  if (const auto v = args.get_int("service-delay-us")) {
    cfg.service_delay = std::chrono::microseconds(*v);
  }

  // Telemetry plane switches.
  cfg.telemetry_path = args.get("telemetry-out");
  if (!cfg.telemetry_path.empty()) {
    const double interval_s =
        args.get_double("telemetry-interval").value_or(10.0);
    if (interval_s <= 0.0) {
      err << "serve: --telemetry-interval must be positive\n";
      return 2;
    }
    cfg.telemetry_interval =
        std::chrono::milliseconds(static_cast<long>(interval_s * 1000.0));
  }
  cfg.trace_buffer =
      static_cast<std::size_t>(args.get_int("trace-buffer").value_or(0));
  const bool want_log = args.has("log");
  const std::string log_file = args.get("log");
  obs::Logger::Options log_options;
  log_options.json = args.has("log-json");
  if (const std::string level_text = args.get("log-level");
      !level_text.empty()) {
    if (!obs::parse_log_level(level_text, log_options.level)) {
      err << "serve: unknown --log-level '" << level_text
          << "' (debug|info|warn|error)\n";
      return 2;
    }
  }
  if (want_log) {
    if (log_file.empty()) {
      obs::Logger::global().configure(&err, log_options);
    } else {
      std::string log_error;
      if (!obs::Logger::global().open(log_file, log_options, &log_error)) {
        err << "serve: " << log_error << "\n";
        return 2;
      }
    }
  }
  cfg.logger = &obs::Logger::global();

  const ObsOptions obs = start_observation(args);
  if (const int rc = reject_unknown(args, err)) return rc;

  auto classifier =
      std::make_shared<const serve::Classifier>(model::load_model(model_path));
  out << "loaded " << model_path << " ("
      << classifier->model().num_clusters() << " clusters, "
      << classifier->dictionary_size() << " WL signatures)\n";
  serve::Daemon daemon(std::move(classifier), cfg);
  daemon.start();
  daemon.install_signal_handlers();
  if (!cfg.endpoint.socket_path.empty()) {
    out << "serving on unix:" << cfg.endpoint.socket_path;
  } else {
    out << "serving on tcp:" << daemon.tcp_port();
  }
  out << " (SIGHUP reloads the model, SIGTERM/SIGINT drains)\n"
      << std::flush;

  const int rc = daemon.wait();
  const serve::DaemonStats s = daemon.stats();
  out << "drained: " << s.requests << " requests (" << s.served << " served, "
      << s.shed << " shed, " << s.timeouts << " timed out, " << s.errors
      << " errors, " << s.rejected_draining << " rejected draining), "
      << s.reloads << " reloads\n";
  finish_observation(obs, err);
  print_metrics_text(obs, out);
  return rc;
}

/// Rehydrates an obs::MetricsSnapshot from the JSON the daemon's `stats`
/// payload carries (MetricsSnapshot::write_json format). Lives here, not in
/// obs, because obs sits below util and cannot parse JSON.
obs::MetricsSnapshot snapshot_from_json(const util::JsonValue& doc) {
  obs::MetricsSnapshot snap;
  if (const util::JsonValue* counters = doc.find("counters")) {
    for (const auto& [name, value] : counters->as_object()) {
      snap.counters.push_back(
          {name, static_cast<std::uint64_t>(value.as_number())});
    }
  }
  if (const util::JsonValue* gauges = doc.find("gauges")) {
    for (const auto& [name, value] : gauges->as_object()) {
      snap.gauges.push_back(
          {name, static_cast<std::int64_t>(value.at("value").as_number()),
           static_cast<std::int64_t>(value.at("max").as_number())});
    }
  }
  if (const util::JsonValue* histograms = doc.find("histograms")) {
    for (const auto& [name, value] : histograms->as_object()) {
      obs::MetricsSnapshot::HistogramEntry h;
      h.name = name;
      h.count = static_cast<std::uint64_t>(value.at("count").as_number());
      h.sum = static_cast<std::uint64_t>(value.at("sum").as_number());
      h.max = static_cast<std::uint64_t>(value.at("max").as_number());
      h.p50 = static_cast<std::uint64_t>(value.at("p50").as_number());
      h.p90 = static_cast<std::uint64_t>(value.at("p90").as_number());
      h.p99 = static_cast<std::uint64_t>(value.at("p99").as_number());
      if (const util::JsonValue* v = value.find("p50_est")) {
        h.p50_est = v->as_number();
      }
      if (const util::JsonValue* v = value.find("p90_est")) {
        h.p90_est = v->as_number();
      }
      if (const util::JsonValue* v = value.find("p99_est")) {
        h.p99_est = v->as_number();
      }
      if (const util::JsonValue* buckets = value.find("buckets")) {
        for (const util::JsonValue& b : buckets->as_array()) {
          h.buckets.push_back(static_cast<std::uint64_t>(b.as_number()));
        }
      }
      snap.histograms.push_back(std::move(h));
    }
  }
  return snap;
}

/// One client request/response round trip plus output formatting. Non-`ok`
/// statuses print to stderr and return 1, so scripts can branch on the exit
/// code instead of scraping stdout.
int client_round_trip(const serve::Endpoint& ep, const serve::Request& req,
                      bool prometheus, std::ostream& out, std::ostream& err) {
  serve::Client client(ep);
  const serve::Response resp = client.call(req);
  if (resp.status != serve::ResponseStatus::Ok) {
    err << "status " << serve::to_string(resp.status);
    if (!resp.message.empty()) err << ": " << resp.message;
    err << "\n";
    return 1;
  }
  if (req.type == serve::RequestType::Stats && prometheus) {
    // Render the daemon's metrics snapshot as Prometheus text exposition;
    // everything else (flat counters, flight records) is JSON-only.
    if (resp.payload.empty()) {
      err << "client: daemon sent no stats payload (pre-telemetry build?)\n";
      return 1;
    }
    const util::JsonValue doc = util::parse_json(resp.payload);
    const util::JsonValue* metrics = doc.find("metrics");
    if (metrics == nullptr) {
      err << "client: stats payload carries no 'metrics' member\n";
      return 1;
    }
    obs::write_prometheus(out, snapshot_from_json(*metrics));
    return 0;
  }
  out << "status " << serve::to_string(resp.status);
  if (!resp.message.empty()) out << ": " << resp.message;
  out << "\n";
  if (req.type == serve::RequestType::Ping) {
    if (!resp.version.empty()) out << "version " << resp.version << "\n";
    if (resp.generation > 0) out << "generation " << resp.generation << "\n";
  }
  if (req.type == serve::RequestType::Classify) {
    out << "cluster " << resp.cluster << " (id " << resp.cluster_id
        << "), similarity " << util::format_double(resp.similarity, 4)
        << ", nearest " << resp.nearest << ", oov " << resp.oov_hits << "\n";
    out << "forecast critical_path "
        << util::format_double(resp.predicted_critical_path, 1) << ", width "
        << util::format_double(resp.predicted_width, 1) << "\n";
  }
  for (const auto& [key, value] : resp.stats) {
    out << "  " << util::pad_right(key, 20) << " " << value << "\n";
  }
  if ((req.type == serve::RequestType::Stats ||
       req.type == serve::RequestType::Health ||
       req.type == serve::RequestType::Trace) &&
      !resp.payload.empty()) {
    out << resp.payload << "\n";
  }
  return 0;
}

int cmd_client(const Args& args, std::ostream& out, std::ostream& err) {
  const serve::Endpoint ep = endpoint_from(args);
  serve::Request req;
  req.id = 1;
  const std::string tasks = args.get("tasks");
  const bool prometheus = args.has("prometheus");
  if (args.has("ping")) {
    req.type = serve::RequestType::Ping;
  } else if (args.has("stats")) {
    req.type = serve::RequestType::Stats;
  } else if (args.has("health")) {
    req.type = serve::RequestType::Health;
  } else if (args.has("trace")) {
    req.type = serve::RequestType::Trace;
  } else if (args.has("reload")) {
    req.type = serve::RequestType::Reload;
    req.model_path = args.get("reload");
  } else if (args.has("drain")) {
    req.type = serve::RequestType::Drain;
  } else if (!tasks.empty()) {
    req.type = serve::RequestType::Classify;
    req.job_name = args.get("job", "job");
    for (const auto part : util::split(tasks, ',')) {
      if (!part.empty()) req.tasks.emplace_back(part);
    }
    if (const auto d = args.get_double("deadline-ms")) req.deadline_ms = *d;
  } else {
    err << "client: pick one of --ping, --stats, --health, --trace, "
           "--reload[=FILE], --drain, or --job NAME --tasks M1,R2_1,...\n";
    return 2;
  }
  if (!ep.valid()) {
    err << "client: need an endpoint (--socket PATH | --port N)\n";
    return 2;
  }
  const double watch_s = args.get_double("watch").value_or(0.0);
  // Undocumented test hook: bound the number of --watch polls.
  const long watch_count = args.get_int("watch-count").value_or(0);
  if (const int rc = reject_unknown(args, err)) return rc;

  if (watch_s <= 0.0) return client_round_trip(ep, req, prometheus, out, err);

  // Watch mode: re-poll on a fresh connection each round (a daemon restart
  // between polls just works), separating rounds with a blank line.
  long polls = 0;
  int rc = 0;
  for (;;) {
    if (polls > 0) out << "\n";
    rc = client_round_trip(ep, req, prometheus, out, err);
    out << std::flush;
    ++polls;
    if (rc != 0) return rc;
    if (watch_count > 0 && polls >= watch_count) return rc;
    std::this_thread::sleep_for(std::chrono::duration<double>(watch_s));
  }
}

int cmd_schedule(const Args& args, std::ostream& out, std::ostream& err) {
  const trace::Trace data = load_or_generate(args, out);
  core::PipelineConfig cfg = pipeline_config(args);
  cfg.sampling = core::SamplingMode::Natural;
  sched::SimulatorConfig sim_cfg;
  sim_cfg.machines =
      static_cast<std::size_t>(args.get_int("machines").value_or(4));
  const double online = args.get_double("online").value_or(0.0);
  if (online > 0.0) {
    sim_cfg.online.enabled = true;
    sim_cfg.online.base_fraction = online;
    sim_cfg.online.amplitude = std::min(0.2, 0.9 - online);
  }
  const double inter_arrival = args.get_double("inter-arrival").value_or(1.0);
  if (const int rc = reject_unknown(args, err)) return rc;

  util::ThreadPool pool;
  const auto sample = core::CharacterizationPipeline(cfg).build_sample(data);
  const auto similarity =
      core::SimilarityAnalysis::compute(sample, cfg.similarity, &pool);
  const auto clustering =
      core::ClusteringAnalysis::compute(similarity.gram, sample, cfg.clustering);
  auto jobs = sched::jobs_from_dags(sample, inter_arrival);
  sched::attach_hints(jobs, clustering.labels);
  const auto profiles = sched::profiles_from_groups(sample, clustering.labels,
                                                    cfg.clustering.clusters);

  const sched::Simulator sim(sim_cfg);
  const sched::FifoPolicy fifo;
  const sched::CriticalPathFirstPolicy cpf;
  const sched::ShortestJobFirstPolicy sjf;
  const sched::GroupHintPolicy hint;
  out << util::pad_right("policy", 22) << util::pad_left("makespan", 10)
      << util::pad_left("mean JCT", 10) << util::pad_left("preempt", 9)
      << util::pad_left("util", 7) << "\n";
  for (const sched::SchedulingPolicy* policy :
       std::initializer_list<const sched::SchedulingPolicy*>{&fifo, &cpf, &sjf,
                                                             &hint}) {
    const auto r = sim.run(jobs, *policy, profiles);
    out << util::pad_right(std::string(policy->name()), 22)
        << util::pad_left(util::format_double(r.makespan, 0), 10)
        << util::pad_left(util::format_double(r.mean_jct, 1), 10)
        << util::pad_left(std::to_string(r.preemptions), 9)
        << util::pad_left(util::format_double(r.mean_utilization, 2), 7)
        << "\n";
  }
  return 0;
}

}  // namespace

std::string_view usage() { return kUsage; }

int run_command(std::string_view command, const Args& args, std::ostream& out,
                std::ostream& err) {
  try {
    if (command == "generate") return cmd_generate(args, out, err);
    if (command == "census") return cmd_census(args, out, err);
    if (command == "characterize" || command == "pipeline") {
      return cmd_characterize(args, out, err);
    }
    if (command == "cluster") return cmd_cluster(args, out, err);
    if (command == "similarity") return cmd_similarity(args, out, err);
    if (command == "ingest") return cmd_ingest(args, out, err);
    if (command == "compare") return cmd_compare(args, out, err);
    if (command == "fit") return cmd_fit(args, out, err);
    if (command == "predict") return cmd_predict(args, out, err);
    if (command == "serve-bench") return cmd_serve_bench(args, out, err);
    if (command == "schedule") return cmd_schedule(args, out, err);
    if (command == "serve") return cmd_serve(args, out, err);
    if (command == "client") return cmd_client(args, out, err);
    if (command == "help" || command == "--help" || command == "-h") {
      out << kUsage;
      return 0;
    }
    err << "unknown command: " << command << "\n\n" << kUsage;
    return 2;
  } catch (const util::Error& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  if (argc < 2) {
    err << kUsage;
    return 2;
  }
  try {
    const Args args = Args::parse(argc, argv, 2);
    return run_command(argv[1], args, out, err);
  } catch (const util::Error& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace cwgl::cli

#include <iostream>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  return cwgl::cli::run_cli(argc, argv, std::cout, std::cerr);
}

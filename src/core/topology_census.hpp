#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/job_dag.hpp"
#include "core/shape_store.hpp"

namespace cwgl::core {

/// Recurring-topology analysis (Section IV-C observes that smaller jobs
/// "appear repetitively" with identical structure): groups jobs by the
/// isomorphism class of their labeled DAG via WL canonical hashing.
struct TopologyCensus {
  /// One row per distinct topology, descending by frequency.
  struct Row {
    std::uint64_t topology_hash = 0;
    std::size_t count = 0;       ///< jobs sharing this topology
    int size = 0;                ///< tasks per job
    std::size_t exemplar = 0;    ///< index of one job with this topology
  };
  std::vector<Row> rows;
  std::size_t total_jobs = 0;
  std::size_t distinct_topologies = 0;
  /// Fraction of jobs whose topology occurs more than once.
  double recurring_fraction = 0.0;

  /// `use_labels` keys topologies on task types as well as structure.
  static TopologyCensus compute(std::span<const JobDag> jobs,
                                bool use_labels = true);

  /// Shape-interned overload: the intern table has already done the
  /// grouping work, so this is a pure aggregation. Shapes that share a
  /// canonical hash (non-isomorphic collisions the store kept apart) are
  /// merged, matching the hash-keyed semantics of the per-job path. Row
  /// `exemplar` indexes into `table.exemplars` rather than a job list.
  static TopologyCensus compute(const ShapeTable& table);
};

}  // namespace cwgl::core

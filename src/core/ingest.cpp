#include "core/ingest.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/bounded_queue.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace cwgl::core {

namespace {

/// One job's rows, owned (moved out of the reader's grouping loop).
struct RawGroup {
  std::string job_name;
  std::vector<trace::TaskRecord> tasks;
};

/// A run of consecutive groups; first_seq restores trace order at the end.
struct Batch {
  std::size_t first_seq = 0;
  std::vector<RawGroup> groups;
};

trace::TraceReadOptions read_options(const IngestOptions& options) {
  return trace::TraceReadOptions{!options.strict, options.diagnostics};
}

/// Builds one job DAG applying the ingest's failure posture: corruption
/// kinds (duplicate index, missing dependency, cycle) throw GraphError under
/// strict and are quarantined into diagnostics under lenient; filtering
/// kinds (non-DAG names) are skipped quietly in both modes, with only a
/// count kept so reports can show how much the eligibility rules removed.
std::optional<JobDag> build_with_posture(std::string&& job,
                                         std::span<const trace::TaskRecord> tasks,
                                         const IngestOptions& options) {
  std::vector<BuildIssue> issues;
  auto dag = build_job_dag(std::move(job), tasks, &issues);
  if (dag) return dag;
  for (const BuildIssue& issue : issues) {
    if (is_corruption(issue.kind)) {
      if (options.strict) {
        throw util::GraphError("job " + issue.job_name + ": " + issue.message);
      }
      if (options.diagnostics != nullptr) {
        options.diagnostics->record("dag", to_string(issue.kind),
                                    issue.job_name + ": " + issue.message);
      }
    } else if (options.diagnostics != nullptr) {
      options.diagnostics->count("dag", to_string(issue.kind));
    }
  }
  return std::nullopt;
}

/// The streaming machinery is generic over a per-job Transform
/// `Out transform(std::size_t seq, JobDag&&)` applied to every built DAG:
/// the plain ingest uses the identity (collect the DAGs themselves), the
/// interning ingest feeds a ShapeStore and collects shape handles. The
/// transform runs on the building thread (workers, in pooled mode), so it
/// must be thread-safe for pooled use; `seq` is the job's trace sequence.
template <typename Transform>
using transformed_t =
    std::decay_t<std::invoke_result_t<Transform&, std::size_t, JobDag&&>>;

template <typename Transform>
std::vector<transformed_t<Transform>> stream_transformed_serial(
    std::istream& in, const IngestOptions& options, IngestStats& stats,
    Transform& transform) {
  std::vector<transformed_t<Transform>> out;
  std::size_t seq = 0;
  stats.stream = trace::consume_jobs_in_task_csv(
      in,
      [&](std::string&& job, std::vector<trace::TaskRecord>&& tasks) {
        CWGL_FAILPOINT("ingest.reader_group");
        const std::size_t s = seq++;
        if (!trace::passes_criteria(tasks, options.criteria)) return true;
        ++stats.eligible;
        if (auto dag = build_with_posture(std::move(job), tasks, options)) {
          ++stats.dags;
          out.push_back(transform(s, std::move(*dag)));
        }
        return true;
      },
      read_options(options));
  return out;
}

template <typename Transform>
std::vector<transformed_t<Transform>> stream_transformed_pooled(
    std::istream& in, const IngestOptions& options, util::ThreadPool& pool,
    IngestStats& stats, Transform& transform) {
  using Out = transformed_t<Transform>;
  struct WorkerResult {
    std::vector<std::pair<std::size_t, Out>> built;
    std::size_t eligible = 0;
  };
  util::BoundedQueue<Batch> queue(options.queue_capacity);
  const std::size_t batch_jobs = std::max<std::size_t>(1, options.batch_jobs);

  std::vector<std::future<WorkerResult>> futures;
  futures.reserve(pool.size());
  try {
    for (std::size_t w = 0; w < pool.size(); ++w) {
      futures.push_back(pool.submit([&queue, &options, &transform] {
        try {
          obs::Span span("ingest.worker");
          WorkerResult result;
          std::size_t batches = 0;
          while (auto batch = queue.pop()) {
            CWGL_FAILPOINT("ingest.worker_batch");
            ++batches;
            std::size_t seq = batch->first_seq;
            for (RawGroup& group : batch->groups) {
              const std::size_t s = seq++;
              if (!trace::passes_criteria(group.tasks, options.criteria))
                continue;
              ++result.eligible;
              if (auto dag = build_with_posture(std::move(group.job_name),
                                                group.tasks, options)) {
                result.built.emplace_back(s, transform(s, std::move(*dag)));
              }
            }
          }
          span.arg("batches", batches);
          span.arg("eligible", result.eligible);
          span.arg("built", result.built.size());
          return result;
        } catch (...) {
          // Close *before* the exception reaches the future: the reader's
          // next push fails immediately instead of blocking until the main
          // thread happens to reach future.get() on this worker.
          queue.close();
          throw;
        }
      }));
    }
  } catch (...) {
    // A mid-loop submission failure must not unwind while already-running
    // workers still reference the local queue: close it, settle every
    // submitted future, then rethrow the submission error.
    queue.close();
    for (auto& future : futures) {
      try {
        future.get();
      } catch (...) {  // NOLINT(bugprone-empty-catch): submit error wins
      }
    }
    throw;
  }

  // The reader owns the stream: scan, parse, and group on a dedicated
  // thread so I/O and parsing overlap DAG construction on the workers. A
  // rejected push means the queue was closed below us (a worker failed) —
  // returning false early-stops the CSV stream.
  std::exception_ptr reader_error;
  std::thread reader([&] {
    obs::Span span("ingest.reader");
    try {
      Batch batch;
      std::size_t seq = 0;
      stats.stream = trace::consume_jobs_in_task_csv(
          in,
          [&](std::string&& job, std::vector<trace::TaskRecord>&& tasks) {
            CWGL_FAILPOINT("ingest.reader_group");
            if (batch.groups.empty()) batch.first_seq = seq;
            batch.groups.push_back(RawGroup{std::move(job), std::move(tasks)});
            ++seq;
            if (batch.groups.size() < batch_jobs) return true;
            const bool accepted = queue.push(std::move(batch));
            batch = Batch{};
            return accepted;
          },
          read_options(options));
      if (!batch.groups.empty()) queue.push(std::move(batch));
    } catch (...) {
      reader_error = std::current_exception();
    }
    queue.close();
  });

  std::vector<std::pair<std::size_t, Out>> built;
  std::exception_ptr worker_error;
  for (auto& future : futures) {
    try {
      WorkerResult result = future.get();
      stats.eligible += result.eligible;
      built.insert(built.end(), std::make_move_iterator(result.built.begin()),
                   std::make_move_iterator(result.built.end()));
    } catch (...) {
      if (!worker_error) worker_error = std::current_exception();
      queue.close();  // belt-and-braces: the worker already closed on throw
    }
  }
  // Shutdown ordering on failure: with the queue closed, drain abandoned
  // batches non-blockingly so the reader's blocked push (if any) has already
  // been released and nothing oversized lingers, THEN join the reader.
  if (worker_error) {
    while (queue.try_pop()) {
    }
  }
  reader.join();
  if (reader_error) std::rethrow_exception(reader_error);
  if (worker_error) std::rethrow_exception(worker_error);

  std::sort(built.begin(), built.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Out> out;
  out.reserve(built.size());
  for (auto& [seq, item] : built) out.push_back(std::move(item));
  stats.dags = out.size();
  return out;
}

template <typename Transform>
std::vector<transformed_t<Transform>> stream_transformed(
    std::istream& in, const IngestOptions& options, util::ThreadPool* pool,
    IngestStats& stats, Transform transform) {
  return (pool == nullptr || pool->size() < 2)
             ? stream_transformed_serial(in, options, stats, transform)
             : stream_transformed_pooled(in, options, *pool, stats, transform);
}

void publish_stream_metrics(obs::Span& span, const IngestStats& stats) {
  span.arg("rows", stats.stream.rows);
  span.arg("jobs", stats.stream.jobs);
  span.arg("quarantined", stats.stream.malformed);
  span.arg("dags", stats.dags);
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("ingest.stream.rows").add(stats.stream.rows);
  registry.counter("ingest.stream.jobs").add(stats.stream.jobs);
  registry.counter("ingest.stream.malformed").add(stats.stream.malformed);
  registry.counter("ingest.stream.fragmented").add(stats.stream.fragmented);
  registry.counter("ingest.dag.eligible").add(stats.eligible);
  registry.counter("ingest.dag.built").add(stats.dags);
}

}  // namespace

std::vector<JobDag> stream_dag_jobs(std::istream& task_csv,
                                    const IngestOptions& options,
                                    util::ThreadPool* pool,
                                    IngestStats* stats) {
  obs::Span span("ingest.stream");
  IngestStats local;
  std::vector<JobDag> out = stream_transformed(
      task_csv, options, pool, local,
      [](std::size_t /*seq*/, JobDag&& dag) { return std::move(dag); });
  publish_stream_metrics(span, local);
  if (stats) *stats = local;
  return out;
}

InternedIngest stream_shape_jobs(std::istream& task_csv,
                                 const IngestOptions& options,
                                 util::ThreadPool* pool,
                                 ShapeStore::Options shape_options) {
  obs::Span span("ingest.intern");
  InternedIngest out;
  ShapeStore store(shape_options);
  const std::vector<const ShapeStore::Node*> handles = stream_transformed(
      task_csv, options, pool, out.stats,
      [&store](std::size_t seq, JobDag&& dag) {
        return store.intern(std::move(dag), static_cast<std::uint64_t>(seq));
      });
  // freeze_with_ids also publishes the store's intern.* counters.
  ShapeStore::FrozenView view = store.freeze_with_ids();
  out.table = std::move(view.table);
  out.shape_of.reserve(handles.size());
  for (const ShapeStore::Node* node : handles) {
    out.shape_of.push_back(view.id_of.at(node));
  }
  out.intern = store.stats();
  span.arg("shapes", out.intern.distinct_shapes);
  publish_stream_metrics(span, out.stats);
  return out;
}

}  // namespace cwgl::core

#include "core/ingest.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/bounded_queue.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace cwgl::core {

namespace {

/// One job's rows, owned (moved out of the reader's grouping loop).
struct RawGroup {
  std::string job_name;
  std::vector<trace::TaskRecord> tasks;
};

/// A run of consecutive groups; first_seq restores trace order at the end.
struct Batch {
  std::size_t first_seq = 0;
  std::vector<RawGroup> groups;
};

struct WorkerResult {
  std::vector<std::pair<std::size_t, JobDag>> built;
  std::size_t eligible = 0;
};

trace::TraceReadOptions read_options(const IngestOptions& options) {
  return trace::TraceReadOptions{!options.strict, options.diagnostics};
}

/// Builds one job DAG applying the ingest's failure posture: corruption
/// kinds (duplicate index, missing dependency, cycle) throw GraphError under
/// strict and are quarantined into diagnostics under lenient; filtering
/// kinds (non-DAG names) are skipped quietly in both modes, with only a
/// count kept so reports can show how much the eligibility rules removed.
std::optional<JobDag> build_with_posture(std::string&& job,
                                         std::span<const trace::TaskRecord> tasks,
                                         const IngestOptions& options) {
  std::vector<BuildIssue> issues;
  auto dag = build_job_dag(std::move(job), tasks, &issues);
  if (dag) return dag;
  for (const BuildIssue& issue : issues) {
    if (is_corruption(issue.kind)) {
      if (options.strict) {
        throw util::GraphError("job " + issue.job_name + ": " + issue.message);
      }
      if (options.diagnostics != nullptr) {
        options.diagnostics->record("dag", to_string(issue.kind),
                                    issue.job_name + ": " + issue.message);
      }
    } else if (options.diagnostics != nullptr) {
      options.diagnostics->count("dag", to_string(issue.kind));
    }
  }
  return std::nullopt;
}

std::vector<JobDag> stream_serial(std::istream& in,
                                  const IngestOptions& options,
                                  IngestStats& stats) {
  std::vector<JobDag> out;
  stats.stream = trace::consume_jobs_in_task_csv(
      in,
      [&](std::string&& job, std::vector<trace::TaskRecord>&& tasks) {
        CWGL_FAILPOINT("ingest.reader_group");
        if (!trace::passes_criteria(tasks, options.criteria)) return true;
        ++stats.eligible;
        if (auto dag = build_with_posture(std::move(job), tasks, options)) {
          ++stats.dags;
          out.push_back(std::move(*dag));
        }
        return true;
      },
      read_options(options));
  return out;
}

std::vector<JobDag> stream_pooled(std::istream& in, const IngestOptions& options,
                                  util::ThreadPool& pool, IngestStats& stats) {
  util::BoundedQueue<Batch> queue(options.queue_capacity);
  const std::size_t batch_jobs = std::max<std::size_t>(1, options.batch_jobs);

  std::vector<std::future<WorkerResult>> futures;
  futures.reserve(pool.size());
  try {
    for (std::size_t w = 0; w < pool.size(); ++w) {
      futures.push_back(pool.submit([&queue, &options] {
        try {
          obs::Span span("ingest.worker");
          WorkerResult result;
          std::size_t batches = 0;
          while (auto batch = queue.pop()) {
            CWGL_FAILPOINT("ingest.worker_batch");
            ++batches;
            std::size_t seq = batch->first_seq;
            for (RawGroup& group : batch->groups) {
              const std::size_t s = seq++;
              if (!trace::passes_criteria(group.tasks, options.criteria))
                continue;
              ++result.eligible;
              if (auto dag = build_with_posture(std::move(group.job_name),
                                                group.tasks, options)) {
                result.built.emplace_back(s, std::move(*dag));
              }
            }
          }
          span.arg("batches", batches);
          span.arg("eligible", result.eligible);
          span.arg("built", result.built.size());
          return result;
        } catch (...) {
          // Close *before* the exception reaches the future: the reader's
          // next push fails immediately instead of blocking until the main
          // thread happens to reach future.get() on this worker.
          queue.close();
          throw;
        }
      }));
    }
  } catch (...) {
    // A mid-loop submission failure must not unwind while already-running
    // workers still reference the local queue: close it, settle every
    // submitted future, then rethrow the submission error.
    queue.close();
    for (auto& future : futures) {
      try {
        future.get();
      } catch (...) {  // NOLINT(bugprone-empty-catch): submit error wins
      }
    }
    throw;
  }

  // The reader owns the stream: scan, parse, and group on a dedicated
  // thread so I/O and parsing overlap DAG construction on the workers. A
  // rejected push means the queue was closed below us (a worker failed) —
  // returning false early-stops the CSV stream.
  std::exception_ptr reader_error;
  std::thread reader([&] {
    obs::Span span("ingest.reader");
    try {
      Batch batch;
      std::size_t seq = 0;
      stats.stream = trace::consume_jobs_in_task_csv(
          in,
          [&](std::string&& job, std::vector<trace::TaskRecord>&& tasks) {
            CWGL_FAILPOINT("ingest.reader_group");
            if (batch.groups.empty()) batch.first_seq = seq;
            batch.groups.push_back(RawGroup{std::move(job), std::move(tasks)});
            ++seq;
            if (batch.groups.size() < batch_jobs) return true;
            const bool accepted = queue.push(std::move(batch));
            batch = Batch{};
            return accepted;
          },
          read_options(options));
      if (!batch.groups.empty()) queue.push(std::move(batch));
    } catch (...) {
      reader_error = std::current_exception();
    }
    queue.close();
  });

  std::vector<std::pair<std::size_t, JobDag>> built;
  std::exception_ptr worker_error;
  for (auto& future : futures) {
    try {
      WorkerResult result = future.get();
      stats.eligible += result.eligible;
      built.insert(built.end(), std::make_move_iterator(result.built.begin()),
                   std::make_move_iterator(result.built.end()));
    } catch (...) {
      if (!worker_error) worker_error = std::current_exception();
      queue.close();  // belt-and-braces: the worker already closed on throw
    }
  }
  // Shutdown ordering on failure: with the queue closed, drain abandoned
  // batches non-blockingly so the reader's blocked push (if any) has already
  // been released and nothing oversized lingers, THEN join the reader.
  if (worker_error) {
    while (queue.try_pop()) {
    }
  }
  reader.join();
  if (reader_error) std::rethrow_exception(reader_error);
  if (worker_error) std::rethrow_exception(worker_error);

  std::sort(built.begin(), built.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<JobDag> out;
  out.reserve(built.size());
  for (auto& [seq, dag] : built) out.push_back(std::move(dag));
  stats.dags = out.size();
  return out;
}

}  // namespace

std::vector<JobDag> stream_dag_jobs(std::istream& task_csv,
                                    const IngestOptions& options,
                                    util::ThreadPool* pool,
                                    IngestStats* stats) {
  obs::Span span("ingest.stream");
  IngestStats local;
  std::vector<JobDag> out = (pool == nullptr || pool->size() < 2)
                                ? stream_serial(task_csv, options, local)
                                : stream_pooled(task_csv, options, *pool, local);
  span.arg("rows", local.stream.rows);
  span.arg("jobs", local.stream.jobs);
  span.arg("quarantined", local.stream.malformed);
  span.arg("dags", local.dags);
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("ingest.stream.rows").add(local.stream.rows);
  registry.counter("ingest.stream.jobs").add(local.stream.jobs);
  registry.counter("ingest.stream.malformed").add(local.stream.malformed);
  registry.counter("ingest.stream.fragmented").add(local.stream.fragmented);
  registry.counter("ingest.dag.eligible").add(local.eligible);
  registry.counter("ingest.dag.built").add(local.dags);
  if (stats) *stats = local;
  return out;
}

}  // namespace cwgl::core

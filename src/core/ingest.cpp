#include "core/ingest.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <thread>
#include <utility>

#include "util/bounded_queue.hpp"

namespace cwgl::core {

namespace {

/// One job's rows, owned (moved out of the reader's grouping loop).
struct RawGroup {
  std::string job_name;
  std::vector<trace::TaskRecord> tasks;
};

/// A run of consecutive groups; first_seq restores trace order at the end.
struct Batch {
  std::size_t first_seq = 0;
  std::vector<RawGroup> groups;
};

struct WorkerResult {
  std::vector<std::pair<std::size_t, JobDag>> built;
  std::size_t eligible = 0;
};

std::vector<JobDag> stream_serial(std::istream& in,
                                  const IngestOptions& options,
                                  IngestStats& stats) {
  std::vector<JobDag> out;
  stats.stream = trace::consume_jobs_in_task_csv(
      in, [&](std::string&& job, std::vector<trace::TaskRecord>&& tasks) {
        if (!trace::passes_criteria(tasks, options.criteria)) return true;
        ++stats.eligible;
        if (auto dag = build_job_dag(std::move(job), tasks)) {
          ++stats.dags;
          out.push_back(std::move(*dag));
        }
        return true;
      });
  return out;
}

std::vector<JobDag> stream_pooled(std::istream& in, const IngestOptions& options,
                                  util::ThreadPool& pool, IngestStats& stats) {
  util::BoundedQueue<Batch> queue(options.queue_capacity);
  const std::size_t batch_jobs = std::max<std::size_t>(1, options.batch_jobs);

  std::vector<std::future<WorkerResult>> futures;
  futures.reserve(pool.size());
  for (std::size_t w = 0; w < pool.size(); ++w) {
    futures.push_back(pool.submit([&queue, &options] {
      WorkerResult result;
      while (auto batch = queue.pop()) {
        std::size_t seq = batch->first_seq;
        for (RawGroup& group : batch->groups) {
          const std::size_t s = seq++;
          if (!trace::passes_criteria(group.tasks, options.criteria)) continue;
          ++result.eligible;
          if (auto dag = build_job_dag(std::move(group.job_name), group.tasks)) {
            result.built.emplace_back(s, std::move(*dag));
          }
        }
      }
      return result;
    }));
  }

  // The reader owns the stream: scan, parse, and group on a dedicated
  // thread so I/O and parsing overlap DAG construction on the workers. A
  // rejected push means the queue was closed below us (a worker failed) —
  // returning false early-stops the CSV stream.
  std::exception_ptr reader_error;
  std::thread reader([&] {
    try {
      Batch batch;
      std::size_t seq = 0;
      stats.stream = trace::consume_jobs_in_task_csv(
          in, [&](std::string&& job, std::vector<trace::TaskRecord>&& tasks) {
            if (batch.groups.empty()) batch.first_seq = seq;
            batch.groups.push_back(RawGroup{std::move(job), std::move(tasks)});
            ++seq;
            if (batch.groups.size() < batch_jobs) return true;
            const bool accepted = queue.push(std::move(batch));
            batch = Batch{};
            return accepted;
          });
      if (!batch.groups.empty()) queue.push(std::move(batch));
    } catch (...) {
      reader_error = std::current_exception();
    }
    queue.close();
  });

  std::vector<std::pair<std::size_t, JobDag>> built;
  std::exception_ptr worker_error;
  for (auto& future : futures) {
    try {
      WorkerResult result = future.get();
      stats.eligible += result.eligible;
      built.insert(built.end(), std::make_move_iterator(result.built.begin()),
                   std::make_move_iterator(result.built.end()));
    } catch (...) {
      if (!worker_error) worker_error = std::current_exception();
      queue.close();  // unblock the reader so join() below cannot hang
    }
  }
  reader.join();
  if (reader_error) std::rethrow_exception(reader_error);
  if (worker_error) std::rethrow_exception(worker_error);

  std::sort(built.begin(), built.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<JobDag> out;
  out.reserve(built.size());
  for (auto& [seq, dag] : built) out.push_back(std::move(dag));
  stats.dags = out.size();
  return out;
}

}  // namespace

std::vector<JobDag> stream_dag_jobs(std::istream& task_csv,
                                    const IngestOptions& options,
                                    util::ThreadPool* pool,
                                    IngestStats* stats) {
  IngestStats local;
  std::vector<JobDag> out = (pool == nullptr || pool->size() < 2)
                                ? stream_serial(task_csv, options, local)
                                : stream_pooled(task_csv, options, *pool, local);
  if (stats) *stats = local;
  return out;
}

}  // namespace cwgl::core

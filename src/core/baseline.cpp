#include "core/baseline.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cluster/metrics.hpp"
#include "graph/algorithms.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace cwgl::core {

linalg::Matrix resource_features(std::span<const JobDag> jobs, bool standardize) {
  constexpr std::size_t kFeatures = 5;
  linalg::Matrix features(jobs.size(), kFeatures);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobDag& job = jobs[i];
    double cpu = 0.0, mem = 0.0, duration = 0.0, instances = 0.0;
    for (const TaskMeta& t : job.tasks) {
      cpu += t.plan_cpu * std::max(1, t.instance_num);
      mem += t.plan_mem;
      duration += static_cast<double>(t.duration());
      instances += std::max(1, t.instance_num);
    }
    features(i, 0) = static_cast<double>(job.size());
    features(i, 1) = cpu;
    features(i, 2) = mem;
    features(i, 3) = job.tasks.empty()
                         ? 0.0
                         : duration / static_cast<double>(job.tasks.size());
    features(i, 4) = instances;
  }
  if (standardize) {
    for (std::size_t c = 0; c < kFeatures; ++c) {
      util::RunningSummary column;
      for (std::size_t r = 0; r < features.rows(); ++r) column.add(features(r, c));
      const double mean = column.mean();
      const double sd = column.stddev();
      for (std::size_t r = 0; r < features.rows(); ++r) {
        features(r, c) = sd > 0.0 ? (features(r, c) - mean) / sd : 0.0;
      }
    }
  }
  return features;
}

ResourceClusteringBaseline resource_kmeans(std::span<const JobDag> jobs, int k,
                                           std::uint64_t seed) {
  if (jobs.empty()) return {};
  const linalg::Matrix features = resource_features(jobs);
  cluster::KMeansOptions options;
  options.seed = seed;
  const auto km = cluster::kmeans(features, k, options);

  // Relabel by descending population, matching ClusteringAnalysis.
  const auto sizes = cluster::cluster_sizes(km.labels);
  std::vector<int> order(sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return sizes[a] != sizes[b] ? sizes[a] > sizes[b] : a < b;
  });
  std::vector<int> relabel(sizes.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    relabel[order[rank]] = static_cast<int>(rank);
  }
  ResourceClusteringBaseline out;
  out.inertia = km.inertia;
  out.labels.reserve(jobs.size());
  for (int l : km.labels) out.labels.push_back(relabel[l]);
  return out;
}

double structural_dispersion(std::span<const JobDag> jobs,
                             std::span<const int> labels, bool use_width) {
  if (jobs.size() != labels.size()) {
    throw util::InvalidArgument("structural_dispersion: size mismatch");
  }
  if (jobs.empty()) return 0.0;
  for (int l : labels) {
    if (l < 0) {
      throw util::InvalidArgument("structural_dispersion: negative label");
    }
  }
  const auto metric = [&](const JobDag& job) {
    return use_width ? static_cast<double>(graph::max_width(job.dag))
                     : static_cast<double>(graph::critical_path_length(job.dag));
  };
  util::RunningSummary global;
  for (const JobDag& job : jobs) global.add(metric(job));
  const double global_sd = global.stddev();
  if (global_sd == 0.0) return 0.0;

  int max_label = 0;
  for (int l : labels) max_label = std::max(max_label, l);
  std::vector<util::RunningSummary> groups(max_label + 1);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    groups[labels[i]].add(metric(jobs[i]));
  }
  double weighted = 0.0;
  for (const auto& g : groups) {
    weighted += g.stddev() * static_cast<double>(g.count());
  }
  return weighted / (static_cast<double>(jobs.size()) * global_sd);
}

}  // namespace cwgl::core

#include "core/clustering.hpp"

#include <algorithm>
#include <numeric>

#include "cluster/metrics.hpp"
#include "cluster/spectral.hpp"
#include "graph/algorithms.hpp"
#include "graph/patterns.hpp"
#include "kernel/gram.hpp"
#include "util/error.hpp"

namespace cwgl::core {

ClusteringAnalysis ClusteringAnalysis::compute(const linalg::Matrix& similarity,
                                               std::span<const JobDag> jobs,
                                               const ClusteringOptions& options) {
  if (similarity.rows() != jobs.size()) {
    throw util::InvalidArgument("ClusteringAnalysis: similarity/jobs size mismatch");
  }
  cluster::SpectralOptions spectral_options;
  spectral_options.kmeans.seed = options.seed;
  const auto spectral =
      cluster::spectral_cluster(similarity, options.clusters, spectral_options);

  // Relabel groups by descending population: 'A' is always the largest.
  const auto raw_sizes = cluster::cluster_sizes(spectral.labels);
  std::vector<int> order(raw_sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return raw_sizes[a] != raw_sizes[b] ? raw_sizes[a] > raw_sizes[b] : a < b;
  });
  std::vector<int> relabel(raw_sizes.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    relabel[order[rank]] = static_cast<int>(rank);
  }

  ClusteringAnalysis out;
  out.eigenvalues = spectral.eigenvalues;
  out.suggested_k = cluster::eigengap_k(out.eigenvalues, 10);
  out.labels.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out.labels[i] = relabel[spectral.labels[i]];
  }

  const linalg::Matrix distances = kernel::kernel_to_distance(similarity);
  out.silhouette = cluster::silhouette_score(distances, out.labels);

  out.groups.resize(options.clusters);
  for (int g = 0; g < options.clusters; ++g) {
    ClusterGroupStats& stats = out.groups[g];
    stats.group = g;
    std::vector<double> sizes, depths, widths;
    std::size_t chains = 0, shorts = 0;
    double best_centrality = -1.0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (out.labels[i] != g) continue;
      ++stats.population;
      sizes.push_back(jobs[i].size());
      depths.push_back(graph::critical_path_length(jobs[i].dag));
      widths.push_back(graph::max_width(jobs[i].dag));
      chains += graph::classify_shape(jobs[i].dag) ==
                graph::ShapePattern::StraightChain;
      shorts += jobs[i].size() < 3;
      // Medoid: the member most similar to the rest of its group.
      double centrality = 0.0;
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (out.labels[j] == g && j != i) centrality += similarity(i, j);
      }
      if (centrality > best_centrality) {
        best_centrality = centrality;
        stats.medoid = i;
      }
    }
    stats.population_fraction =
        jobs.empty() ? 0.0
                     : static_cast<double>(stats.population) /
                           static_cast<double>(jobs.size());
    stats.size = util::describe(sizes);
    stats.critical_path = util::describe(depths);
    stats.parallelism = util::describe(widths);
    stats.chain_fraction =
        stats.population ? static_cast<double>(chains) /
                               static_cast<double>(stats.population)
                         : 0.0;
    stats.short_job_fraction =
        stats.population ? static_cast<double>(shorts) /
                               static_cast<double>(stats.population)
                         : 0.0;
  }
  return out;
}

ClusteringAnalysis ClusteringAnalysis::compute_interned(
    const linalg::Matrix& shape_similarity, std::span<const JobDag> exemplars,
    std::span<const std::uint64_t> counts,
    std::span<const std::uint32_t> shape_of, const ClusteringOptions& options) {
  const std::size_t m = exemplars.size();
  if (shape_similarity.rows() != m || counts.size() != m) {
    throw util::InvalidArgument(
        "ClusteringAnalysis: shape similarity/exemplars/counts size mismatch");
  }
  const std::size_t n = shape_of.size();
  std::vector<std::size_t> first_job(m, n);
  std::uint64_t total_jobs = 0;
  for (std::size_t t = 0; t < m; ++t) {
    if (counts[t] == 0) {
      throw util::InvalidArgument("ClusteringAnalysis: zero shape count");
    }
    total_jobs += counts[t];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (shape_of[i] >= m) {
      throw util::InvalidArgument("ClusteringAnalysis: shape id out of range");
    }
    if (first_job[shape_of[i]] == n) first_job[shape_of[i]] = i;
  }

  std::vector<double> weights;
  weights.reserve(m);
  for (std::uint64_t c : counts) weights.push_back(static_cast<double>(c));

  cluster::SpectralOptions spectral_options;
  spectral_options.kmeans.seed = options.seed;
  const auto spectral = cluster::spectral_cluster_weighted(
      shape_similarity, weights, options.clusters, spectral_options);

  // Relabel by descending *weighted* population — the same group masses
  // the direct path sees on the expanded sample.
  std::size_t raw_clusters = 0;
  for (int l : spectral.labels) {
    raw_clusters = std::max(raw_clusters, static_cast<std::size_t>(l) + 1);
  }
  std::vector<std::uint64_t> raw_mass(raw_clusters, 0);
  for (std::size_t t = 0; t < m; ++t) raw_mass[spectral.labels[t]] += counts[t];
  std::vector<int> order(raw_clusters);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return raw_mass[a] != raw_mass[b] ? raw_mass[a] > raw_mass[b] : a < b;
  });
  std::vector<int> relabel(raw_clusters);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    relabel[order[rank]] = static_cast<int>(rank);
  }
  std::vector<int> shape_label(m);
  for (std::size_t t = 0; t < m; ++t) {
    shape_label[t] = relabel[spectral.labels[t]];
  }

  ClusteringAnalysis out;
  // The expanded sample's spectrum is the weighted spectrum plus one
  // eigenvalue-1 direction per duplicated job (see
  // cluster::spectral_cluster_weighted); reconstruct it so the eigengap
  // heuristic sees what the direct path would.
  out.eigenvalues = spectral.eigenvalues;
  if (total_jobs > m) {
    out.eigenvalues.insert(out.eigenvalues.end(),
                           static_cast<std::size_t>(total_jobs - m), 1.0);
    std::sort(out.eigenvalues.begin(), out.eigenvalues.end());
  }
  out.suggested_k = cluster::eigengap_k(out.eigenvalues, 10);
  out.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.labels[i] = shape_label[shape_of[i]];

  const linalg::Matrix distances = kernel::kernel_to_distance(shape_similarity);
  out.silhouette =
      cluster::silhouette_score_weighted(distances, weights, shape_label);

  out.groups.resize(options.clusters);
  for (int g = 0; g < options.clusters; ++g) {
    ClusterGroupStats& stats = out.groups[g];
    stats.group = g;
    std::vector<double> sizes, depths, widths;
    std::vector<std::uint64_t> member_counts;
    std::uint64_t chains = 0, shorts = 0;
    double best_centrality = -1.0;
    std::size_t medoid_shape = m;
    for (std::size_t t = 0; t < m; ++t) {
      if (shape_label[t] != g) continue;
      stats.population += counts[t];
      sizes.push_back(exemplars[t].size());
      depths.push_back(graph::critical_path_length(exemplars[t].dag));
      widths.push_back(graph::max_width(exemplars[t].dag));
      member_counts.push_back(counts[t]);
      if (graph::classify_shape(exemplars[t].dag) ==
          graph::ShapePattern::StraightChain) {
        chains += counts[t];
      }
      if (exemplars[t].size() < 3) shorts += counts[t];
      // Every copy of shape t has the same centrality: the count-weighted
      // similarity mass of its group minus itself. Shapes iterate in
      // first-seen order with a strict max, so the winning shape's first
      // job is the job the direct argmax would keep.
      double centrality = -shape_similarity(t, t);
      for (std::size_t u = 0; u < m; ++u) {
        if (shape_label[u] == g) {
          centrality += static_cast<double>(counts[u]) * shape_similarity(t, u);
        }
      }
      if (centrality > best_centrality) {
        best_centrality = centrality;
        medoid_shape = t;
      }
    }
    if (medoid_shape < m && first_job[medoid_shape] < n) {
      stats.medoid = first_job[medoid_shape];
    }
    stats.population_fraction =
        total_jobs == 0 ? 0.0
                        : static_cast<double>(stats.population) /
                              static_cast<double>(total_jobs);
    stats.size = util::describe_weighted(sizes, member_counts);
    stats.critical_path = util::describe_weighted(depths, member_counts);
    stats.parallelism = util::describe_weighted(widths, member_counts);
    stats.chain_fraction =
        stats.population ? static_cast<double>(chains) /
                               static_cast<double>(stats.population)
                         : 0.0;
    stats.short_job_fraction =
        stats.population ? static_cast<double>(shorts) /
                               static_cast<double>(stats.population)
                         : 0.0;
  }
  return out;
}

}  // namespace cwgl::core

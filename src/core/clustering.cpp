#include "core/clustering.hpp"

#include <algorithm>
#include <numeric>

#include "cluster/metrics.hpp"
#include "cluster/spectral.hpp"
#include "graph/algorithms.hpp"
#include "graph/patterns.hpp"
#include "kernel/gram.hpp"
#include "util/error.hpp"

namespace cwgl::core {

ClusteringAnalysis ClusteringAnalysis::compute(const linalg::Matrix& similarity,
                                               std::span<const JobDag> jobs,
                                               const ClusteringOptions& options) {
  if (similarity.rows() != jobs.size()) {
    throw util::InvalidArgument("ClusteringAnalysis: similarity/jobs size mismatch");
  }
  cluster::SpectralOptions spectral_options;
  spectral_options.kmeans.seed = options.seed;
  const auto spectral =
      cluster::spectral_cluster(similarity, options.clusters, spectral_options);

  // Relabel groups by descending population: 'A' is always the largest.
  const auto raw_sizes = cluster::cluster_sizes(spectral.labels);
  std::vector<int> order(raw_sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return raw_sizes[a] != raw_sizes[b] ? raw_sizes[a] > raw_sizes[b] : a < b;
  });
  std::vector<int> relabel(raw_sizes.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    relabel[order[rank]] = static_cast<int>(rank);
  }

  ClusteringAnalysis out;
  out.eigenvalues = spectral.eigenvalues;
  out.suggested_k = cluster::eigengap_k(out.eigenvalues, 10);
  out.labels.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out.labels[i] = relabel[spectral.labels[i]];
  }

  const linalg::Matrix distances = kernel::kernel_to_distance(similarity);
  out.silhouette = cluster::silhouette_score(distances, out.labels);

  out.groups.resize(options.clusters);
  for (int g = 0; g < options.clusters; ++g) {
    ClusterGroupStats& stats = out.groups[g];
    stats.group = g;
    std::vector<double> sizes, depths, widths;
    std::size_t chains = 0, shorts = 0;
    double best_centrality = -1.0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (out.labels[i] != g) continue;
      ++stats.population;
      sizes.push_back(jobs[i].size());
      depths.push_back(graph::critical_path_length(jobs[i].dag));
      widths.push_back(graph::max_width(jobs[i].dag));
      chains += graph::classify_shape(jobs[i].dag) ==
                graph::ShapePattern::StraightChain;
      shorts += jobs[i].size() < 3;
      // Medoid: the member most similar to the rest of its group.
      double centrality = 0.0;
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (out.labels[j] == g && j != i) centrality += similarity(i, j);
      }
      if (centrality > best_centrality) {
        best_centrality = centrality;
        stats.medoid = i;
      }
    }
    stats.population_fraction =
        jobs.empty() ? 0.0
                     : static_cast<double>(stats.population) /
                           static_cast<double>(jobs.size());
    stats.size = util::describe(sizes);
    stats.critical_path = util::describe(depths);
    stats.parallelism = util::describe(widths);
    stats.chain_fraction =
        stats.population ? static_cast<double>(chains) /
                               static_cast<double>(stats.population)
                         : 0.0;
    stats.short_job_fraction =
        stats.population ? static_cast<double>(shorts) /
                               static_cast<double>(stats.population)
                         : 0.0;
  }
  return out;
}

}  // namespace cwgl::core

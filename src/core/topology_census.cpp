#include "core/topology_census.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/canonical.hpp"

namespace cwgl::core {

TopologyCensus TopologyCensus::compute(std::span<const JobDag> jobs,
                                       bool use_labels) {
  TopologyCensus census;
  census.total_jobs = jobs.size();
  std::unordered_map<std::uint64_t, Row> by_hash;
  by_hash.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto labels = use_labels ? jobs[i].type_labels() : std::vector<int>{};
    const std::uint64_t h = graph::canonical_hash(jobs[i].dag, labels);
    auto [it, inserted] = by_hash.try_emplace(h);
    if (inserted) {
      it->second.topology_hash = h;
      it->second.size = jobs[i].size();
      it->second.exemplar = i;
    }
    ++it->second.count;
  }
  census.distinct_topologies = by_hash.size();
  std::size_t recurring = 0;
  census.rows.reserve(by_hash.size());
  for (const auto& [hash, row] : by_hash) {
    census.rows.push_back(row);
    if (row.count > 1) recurring += row.count;
  }
  std::sort(census.rows.begin(), census.rows.end(), [](const Row& a, const Row& b) {
    if (a.count != b.count) return a.count > b.count;
    if (a.size != b.size) return a.size < b.size;
    return a.topology_hash < b.topology_hash;
  });
  census.recurring_fraction =
      jobs.empty() ? 0.0
                   : static_cast<double>(recurring) / static_cast<double>(jobs.size());
  return census;
}

TopologyCensus TopologyCensus::compute(const ShapeTable& table) {
  TopologyCensus census;
  census.total_jobs = static_cast<std::size_t>(table.total_jobs);
  std::unordered_map<std::uint64_t, Row> by_hash;
  by_hash.reserve(table.size());
  for (std::size_t t = 0; t < table.size(); ++t) {
    const ShapeTable::ShapeInfo& info = table.shapes[t];
    auto [it, inserted] = by_hash.try_emplace(info.shape_key);
    if (inserted) {
      it->second.topology_hash = info.shape_key;
      it->second.size = info.size;
      // First-seen wins: the table is sorted by first_seq, so `t` here is
      // the earliest shape of this hash, mirroring the per-job path's
      // earliest-job exemplar.
      it->second.exemplar = t;
    }
    it->second.count += static_cast<std::size_t>(info.count);
  }
  census.distinct_topologies = by_hash.size();
  std::size_t recurring = 0;
  census.rows.reserve(by_hash.size());
  for (const auto& [hash, row] : by_hash) {
    census.rows.push_back(row);
    if (row.count > 1) recurring += row.count;
  }
  std::sort(census.rows.begin(), census.rows.end(), [](const Row& a, const Row& b) {
    if (a.count != b.count) return a.count > b.count;
    if (a.size != b.size) return a.size < b.size;
    return a.topology_hash < b.topology_hash;
  });
  census.recurring_fraction =
      census.total_jobs == 0
          ? 0.0
          : static_cast<double>(recurring) /
                static_cast<double>(census.total_jobs);
  return census;
}

}  // namespace cwgl::core

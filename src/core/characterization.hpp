#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/job_dag.hpp"
#include "graph/patterns.hpp"
#include "trace/schema.hpp"
#include "util/stats.hpp"

namespace cwgl::core {

/// One row of Figures 4/5: per size group, the population and the extreme
/// structural features.
struct SizeGroupFeatures {
  int size = 0;                ///< tasks per job in this group
  std::size_t count = 0;       ///< jobs of this size
  int max_critical_path = 0;   ///< deepest job of this size (in vertices)
  int max_width = 0;           ///< most parallel job of this size
};

/// Structural quantification (Section V-A): job sizes, critical paths and
/// maximum widths across an experiment set.
struct StructuralReport {
  util::IntHistogram size_histogram;      ///< jobs per size
  std::vector<SizeGroupFeatures> groups;  ///< ascending by size
  std::size_t distinct_sizes = 0;         ///< "17 different size types"

  static StructuralReport compute(std::span<const JobDag> jobs);

  /// Shape-interned overload: `exemplars[t]` stands for `counts[t]`
  /// identical jobs. Identical output to `compute` on the expansion (size
  /// and structural extremes are shape invariants).
  static StructuralReport compute(std::span<const JobDag> exemplars,
                                  std::span<const std::uint64_t> counts);
};

/// Figure 3: size distributions before vs after node conflation.
struct ConflationReport {
  util::IntHistogram before;
  util::IntHistogram after;
  /// Mean size reduction factor achieved by conflation.
  double mean_reduction = 1.0;

  static ConflationReport compute(std::span<const JobDag> jobs);

  /// Shape-interned overload: conflation is a deterministic function of
  /// topology + labels, so one conflation per distinct shape reproduces the
  /// per-job histograms exactly; `mean_reduction` matches the expansion up
  /// to floating-point summation order.
  static ConflationReport compute(std::span<const JobDag> exemplars,
                                  std::span<const std::uint64_t> counts);
};

/// One row of Figure 6: the task-type composition of a job and the inferred
/// programming model.
struct TaskTypeRow {
  std::string job_name;
  int size = 0;
  int m_tasks = 0;  ///< Map / Merge
  int j_tasks = 0;  ///< Join
  int r_tasks = 0;  ///< Reduce
  int other_tasks = 0;
  int critical_path = 0;
  std::string model;  ///< "map-reduce", "map-join-reduce", "multi-stage map-reduce"
};

/// Exploratory task-type investigation (Section V-C). The paper observes
/// three programming modes: map-reduce, map-join-reduce, and
/// map-reduce-merge (an 'M'-typed stage consuming a Reduce's output).
struct TaskTypeReport {
  std::vector<TaskTypeRow> rows;
  std::size_t map_reduce_jobs = 0;
  std::size_t map_join_reduce_jobs = 0;
  std::size_t map_reduce_merge_jobs = 0;
  std::size_t multi_stage_jobs = 0;

  static TaskTypeReport compute(std::span<const JobDag> jobs);

  /// Shape-interned overload: programming-model counters aggregate with
  /// multiplicity and match the expansion exactly. `rows` necessarily
  /// diverges from the per-job report — one row per DISTINCT shape (named
  /// after the exemplar), since expanding would defeat the interning.
  static TaskTypeReport compute(std::span<const JobDag> exemplars,
                                std::span<const std::uint64_t> counts);
};

/// Shape-pattern census (Section V-B): which fraction of jobs is a chain /
/// inverted triangle / etc.
struct PatternCensus {
  struct Row {
    graph::ShapePattern pattern;
    std::size_t count = 0;
    double fraction = 0.0;
  };
  std::vector<Row> rows;  ///< descending by count
  std::size_t total = 0;

  static PatternCensus compute(std::span<const JobDag> jobs);

  /// Shape-interned overload: identical output to `compute` on the
  /// expansion (the pattern is a shape invariant).
  static PatternCensus compute(std::span<const JobDag> exemplars,
                               std::span<const std::uint64_t> counts);

  /// Fraction for one pattern (0 when absent).
  double fraction(graph::ShapePattern p) const noexcept;
};

/// Whole-trace statistics backing the Section II-B claims: the share of
/// batch jobs with dependencies and the share of batch resources they
/// consume (resource = plan_cpu x instance_num x duration, summed per job).
struct TraceCensus {
  std::size_t total_jobs = 0;
  std::size_t dag_jobs = 0;
  double dag_job_fraction = 0.0;
  double dag_resource_fraction = 0.0;

  static TraceCensus compute(const trace::Trace& trace);
};

}  // namespace cwgl::core

#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "kernel/types.hpp"
#include "trace/schema.hpp"

namespace cwgl::core {

/// Per-task attributes carried alongside each DAG vertex (Section IV-A:
/// "we take account the resource usage ... and instances information ... as
/// attributes to the running tasks").
struct TaskMeta {
  std::string name;            ///< original task_name
  char type = '?';             ///< 'M', 'R', 'J', ...
  int index = 0;               ///< 1-based index from the task name
  int instance_num = 0;
  std::int64_t start_time = 0;
  std::int64_t end_time = 0;
  double plan_cpu = 0.0;
  double plan_mem = 0.0;

  /// Task duration in seconds (0 when timestamps are unusable).
  std::int64_t duration() const noexcept {
    return end_time > start_time && start_time > 0 ? end_time - start_time : 0;
  }
};

/// A batch job as a task-dependency DAG: vertex i of `dag` is `tasks[i]`.
struct JobDag {
  std::string job_name;
  graph::Digraph dag;
  std::vector<TaskMeta> tasks;

  int size() const noexcept { return dag.num_vertices(); }

  /// Task-type labels as ints ('M' -> 77, ...), the vertex labeling used by
  /// every kernel in this library.
  std::vector<int> type_labels() const;

  /// View of this job in kernel form (copies the graph + labels).
  kernel::LabeledGraph to_labeled() const;

  /// Per-vertex display labels ("M1", "R2_1", ...) for DOT export.
  std::vector<std::string> vertex_names() const;
};

/// Why a job was rejected by `build_job_dag`.
///
/// The split matters for the pipeline's failure posture: `NonDagName` and
/// `EmptyJob` are *normal filtering* (the trace contains plenty of
/// independent-task jobs the paper excludes), while `DuplicateIndex`,
/// `MissingDependency`, and `Cycle` indicate a *corrupt or inconsistent*
/// job — strict ingest escalates only the latter group.
enum class BuildIssueKind {
  EmptyJob,            ///< no task rows (filtering)
  NonDagName,          ///< task name outside the DAG grammar (filtering)
  DuplicateIndex,      ///< two tasks claim the same index (corruption)
  MissingDependency,   ///< dependency on an index with no task (corruption)
  Cycle,               ///< dependencies are not acyclic (corruption)
};

/// True for kinds that indicate damaged data rather than routine filtering.
constexpr bool is_corruption(BuildIssueKind kind) noexcept {
  return kind == BuildIssueKind::DuplicateIndex ||
         kind == BuildIssueKind::MissingDependency ||
         kind == BuildIssueKind::Cycle;
}

/// Stable lowercase tag for diagnostics keys ("non-dag-name", "cycle", ...).
const char* to_string(BuildIssueKind kind) noexcept;

/// A problem encountered while building a job DAG from trace rows.
struct BuildIssue {
  std::string job_name;
  std::string message;
  BuildIssueKind kind = BuildIssueKind::NonDagName;
};

/// Builds a JobDag from one job's task rows.
///
/// Returns nullopt — recording why into `issues` when provided — if the job
/// is not a well-formed dependency DAG: any non-grammar task name, duplicate
/// task indices, a dependency on a missing index, or (pathological names) a
/// dependency cycle. This mirrors the paper's restriction to DAG batch jobs.
std::optional<JobDag> build_job_dag(std::string job_name,
                                    std::span<const trace::TaskRecord> tasks,
                                    std::vector<BuildIssue>* issues = nullptr);

/// Conflates a job's interchangeable sibling tasks (Section IV-C), merging
/// metadata: instance counts and planned resources sum; the time window is
/// the union; the representative task's name/type/index are kept.
JobDag conflate_job(const JobDag& job);

}  // namespace cwgl::core

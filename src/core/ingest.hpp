#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/job_dag.hpp"
#include "core/shape_store.hpp"
#include "trace/filter.hpp"
#include "trace/io.hpp"
#include "util/diagnostics.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::core {

/// Tuning knobs for the streaming DAG ingest.
struct IngestOptions {
  /// Job eligibility (same Section IV-B semantics as build_all_dag_jobs).
  trace::SamplingCriteria criteria;
  /// Bounded-queue capacity in *batches*: caps reader lead over the workers
  /// at queue_capacity * batch_jobs job groups, keeping memory bounded on a
  /// 270 GB input no matter how fast parsing runs.
  std::size_t queue_capacity = 64;
  /// Job groups per queue item (batching amortizes queue synchronization).
  std::size_t batch_jobs = 64;
  /// Failure posture. Lenient (default, the production posture) quarantines
  /// damaged input — malformed rows, unterminated quotes, corrupt jobs
  /// (duplicate indices, missing dependencies, cycles) — into `diagnostics`
  /// and keeps going. Strict raises at the first offense: util::ParseError
  /// for CSV-level damage, util::GraphError for a corrupt job. Jobs that are
  /// merely *filtered* (non-DAG task names, the paper's eligibility rules)
  /// are skipped in both modes, never escalated.
  bool strict = false;
  /// Optional sink for quarantine counts and samples (thread-safe; shared by
  /// the reader and all workers in pooled mode).
  util::Diagnostics* diagnostics = nullptr;
};

/// What the ingest saw, for throughput/quality reporting.
struct IngestStats {
  trace::StreamStats stream;   ///< rows/jobs/malformed/fragmented
  std::size_t eligible = 0;    ///< job groups passing the criteria
  std::size_t dags = 0;        ///< JobDags actually built
};

/// Builds every eligible DAG job straight from a `batch_task.csv` stream
/// without materializing a Trace — the zero-copy front half of the pipeline.
///
/// With `pool == nullptr` (or a single-thread pool) everything runs inline
/// on the calling thread. Otherwise a dedicated reader thread scans, parses,
/// and groups rows (CsvScanner → TaskRecord spans → job groups) and feeds a
/// bounded queue while pool workers filter groups and build JobDags, so
/// parsing overlaps DAG construction. Output order matches the serial path
/// (trace order) regardless of scheduling.
///
/// Unlike the TraceIndex-based build_all_dag_jobs, a job whose rows
/// re-occur after its group was emitted yields separate groups (counted in
/// stats.stream.fragmented) — true of both paths only for sorted traces,
/// which the released trace is. Must not be called from inside a task
/// running on `pool` (the caller blocks on pool results).
///
/// Failure posture follows `options.strict` (see IngestOptions). In pooled
/// mode a failing worker closes the queue before its exception propagates,
/// so the reader thread can never deadlock on a full queue; the first error
/// (reader's preferred) is rethrown after both sides shut down cleanly.
std::vector<JobDag> stream_dag_jobs(std::istream& task_csv,
                                    const IngestOptions& options = {},
                                    util::ThreadPool* pool = nullptr,
                                    IngestStats* stats = nullptr);

/// Result of a shape-interned ingest: instead of one JobDag per eligible
/// job, the trace collapses to its distinct shapes plus a per-job mapping.
struct InternedIngest {
  /// Distinct shapes in first-seen order (deterministic across pooled and
  /// serial ingest of the same stream).
  ShapeTable table;
  /// Dense shape id of every built job, in trace order; size == stats.dags.
  std::vector<std::uint32_t> shape_of;
  IngestStats stats;
  ShapeStore::Stats intern;
};

/// Shape-interning variant of stream_dag_jobs: identical reader/worker
/// machinery and failure posture, but every built JobDag is interned into a
/// sharded ShapeStore instead of accumulated, so memory and downstream work
/// scale with *distinct shapes*, not jobs. Failpoints: the stream_dag_jobs
/// set plus `shape.intern`.
InternedIngest stream_shape_jobs(std::istream& task_csv,
                                 const IngestOptions& options = {},
                                 util::ThreadPool* pool = nullptr,
                                 ShapeStore::Options shape_options = {});

}  // namespace cwgl::core

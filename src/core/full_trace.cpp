#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "cluster/spectral.hpp"
#include "core/pipeline.hpp"
#include "graph/algorithms.hpp"
#include "graph/patterns.hpp"
#include "kernel/wl.hpp"
#include "obs/tracer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::core {

std::vector<int> FullTraceResult::job_labels() const {
  std::vector<int> out;
  out.reserve(shape_of.size());
  for (std::uint32_t s : shape_of) out.push_back(shape_labels[s]);
  return out;
}

FullTraceResult CharacterizationPipeline::run_full(const trace::Trace& trace,
                                                   util::ThreadPool* pool,
                                                   FittedFeatures* fitted) const {
  obs::Span span("pipeline.run_full");
  ShapeStore store;
  std::vector<const ShapeStore::Node*> handles;
  {
    obs::Span intern_span("pipeline.full_intern");
    const trace::TraceIndex index(trace);
    const auto eligible = trace::select_jobs(index, config_.criteria);
    handles.reserve(eligible.size());
    std::uint64_t seq = 0;
    // One JobDag in flight at a time: each build is interned immediately,
    // so live memory stays bounded by distinct shapes even when every job
    // of the trace is eligible.
    for (std::size_t g : eligible) {
      const trace::JobGroup& group = index.jobs()[g];
      std::vector<trace::TaskRecord> records;
      records.reserve(group.tasks.size());
      for (std::size_t i : group.tasks) records.push_back(trace.tasks[i]);
      if (auto job = build_job_dag(group.job_name, records)) {
        handles.push_back(store.intern(std::move(*job), seq++));
      }
    }
    intern_span.arg("jobs", handles.size());
  }
  ShapeStore::FrozenView view = store.freeze_with_ids();
  std::vector<std::uint32_t> shape_of;
  shape_of.reserve(handles.size());
  for (const ShapeStore::Node* node : handles) {
    shape_of.push_back(view.id_of.at(node));
  }
  return run_full_table(std::move(view.table), std::move(shape_of),
                        store.stats(), pool, fitted);
}

FullTraceResult CharacterizationPipeline::run_full(std::istream& task_csv,
                                                   util::ThreadPool* pool,
                                                   FittedFeatures* fitted,
                                                   IngestStats* stats) const {
  obs::Span span("pipeline.run_full");
  IngestOptions options;
  options.criteria = config_.criteria;
  InternedIngest ingest = stream_shape_jobs(task_csv, options, pool);
  if (stats != nullptr) *stats = ingest.stats;
  return run_full_table(std::move(ingest.table), std::move(ingest.shape_of),
                        ingest.intern, pool, fitted);
}

FullTraceResult CharacterizationPipeline::run_full_table(
    ShapeTable table, std::vector<std::uint32_t> shape_of,
    ShapeStore::Stats stats, util::ThreadPool* pool,
    FittedFeatures* fitted) const {
  FullTraceResult result;
  result.table = std::move(table);
  result.shape_of = std::move(shape_of);
  result.stats = stats;
  const std::size_t m = result.table.size();
  if (m == 0) {
    throw util::InvalidArgument("run_full: no eligible DAG jobs in trace");
  }

  const std::vector<JobDag>& exemplars = result.table.exemplars;
  std::vector<JobDag> conflated;
  if (config_.analyze_conflated) {
    conflated.resize(m);
    const auto conflate_range = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        conflated[i] = conflate_job(exemplars[i]);
      }
    };
    if (pool != nullptr) {
      util::parallel_for_chunked(*pool, 0, m, 16, conflate_range);
    } else {
      conflate_range(0, m);
    }
  }
  const std::vector<JobDag>& analysis_shapes =
      config_.analyze_conflated ? conflated : exemplars;

  // Featurize once per distinct shape, serially, so dictionary ids land in
  // dense first-seen order — the same deterministic fitted state the
  // sampled export path produces (see SimilarityAnalysis::compute).
  FittedFeatures local_features;
  FittedFeatures& features = fitted != nullptr ? *fitted : local_features;
  {
    obs::Span span("pipeline.full_featurize");
    span.arg("shapes", m);
    kernel::WlSubtreeFeaturizer featurizer(config_.similarity.wl);
    features.vectors.clear();
    features.vectors.reserve(m);
    for (const JobDag& job : analysis_shapes) {
      kernel::LabeledGraph g;
      g.graph = job.dag;
      if (config_.similarity.use_type_labels) g.labels = job.type_labels();
      features.vectors.push_back(featurizer.featurize(g));
    }
    features.dictionary.clear();
    features.dictionary.reserve(featurizer.dictionary_size());
    for (auto& [signature, id] : featurizer.dictionary_entries()) {
      (void)id;  // serial ids are dense and sorted
      features.dictionary.push_back(std::move(signature));
    }
  }
  const std::size_t dims = features.dictionary.size();

  // Cosine-normalized copies: the scalable backends cluster on the unit
  // sphere, where squared distance is 2 - 2 * (normalized kernel value) —
  // the same geometry the exact pipeline's normalized Gram encodes.
  std::vector<kernel::SparseVector> normalized = features.vectors;
  for (kernel::SparseVector& v : normalized) {
    const double norm = v.norm();
    if (norm > 0.0) {
      for (auto& [id, value] : v.items) value /= norm;
    }
  }

  const std::vector<double> weights = result.table.weights();
  const int k_eff =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(std::max(1, config_.clustering.clusters)),
          m));

  cluster::ScaleOptions scale_options;
  scale_options.method = config_.full_method;
  scale_options.clusters = k_eff;
  scale_options.seed = config_.clustering.seed;
  cluster::ScaleResult scaled =
      cluster::cluster_at_scale(normalized, weights, dims, scale_options);
  result.method = scaled.method;
  result.degraded = scaled.degraded;
  result.inertia = scaled.inertia;
  result.landmarks = scaled.landmarks;
  result.embedding_dims = scaled.embedding_dims;

  // Relabel by descending weighted mass (ties to the lower raw id), the
  // paper's group-'A'-is-largest convention.
  const std::vector<std::uint64_t> counts = result.table.counts();
  std::size_t raw_clusters = 0;
  for (int l : scaled.labels) {
    raw_clusters = std::max(raw_clusters, static_cast<std::size_t>(l) + 1);
  }
  std::vector<std::uint64_t> raw_mass(raw_clusters, 0);
  for (std::size_t t = 0; t < m; ++t) raw_mass[scaled.labels[t]] += counts[t];
  std::vector<int> order(raw_clusters);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return raw_mass[a] != raw_mass[b] ? raw_mass[a] > raw_mass[b] : a < b;
  });
  std::vector<int> relabel(raw_clusters);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    relabel[order[rank]] = static_cast<int>(rank);
  }
  result.shape_labels.resize(m);
  for (std::size_t t = 0; t < m; ++t) {
    result.shape_labels[t] = relabel[scaled.labels[t]];
  }

  // Count-weighted per-group statistics, mirroring the interned sampled
  // path; the medoid is the member shape nearest the group's weighted
  // feature mean (no m x m kernel needed).
  result.groups.resize(static_cast<std::size_t>(k_eff));
  std::vector<double> point_sq(m);
  for (std::size_t t = 0; t < m; ++t) {
    const double norm = normalized[t].norm();
    point_sq[t] = norm * norm;
  }
  for (int g = 0; g < k_eff; ++g) {
    ClusterGroupStats& group_stats = result.groups[static_cast<std::size_t>(g)];
    group_stats.group = g;
    std::vector<double> sizes, depths, widths;
    std::vector<std::uint64_t> member_counts;
    std::uint64_t chains = 0, shorts = 0;
    std::vector<double> center(dims, 0.0);
    double mass = 0.0;
    for (std::size_t t = 0; t < m; ++t) {
      if (result.shape_labels[t] != g) continue;
      group_stats.population += counts[t];
      sizes.push_back(exemplars[t].size());
      depths.push_back(graph::critical_path_length(exemplars[t].dag));
      widths.push_back(graph::max_width(exemplars[t].dag));
      member_counts.push_back(counts[t]);
      if (graph::classify_shape(exemplars[t].dag) ==
          graph::ShapePattern::StraightChain) {
        chains += counts[t];
      }
      if (exemplars[t].size() < 3) shorts += counts[t];
      const double w = weights[t];
      mass += w;
      for (const auto& [id, value] : normalized[t].items) {
        center[static_cast<std::size_t>(id)] += w * value;
      }
    }
    if (mass > 0.0) {
      for (double& v : center) v /= mass;
    }
    double center_sq = 0.0;
    for (double v : center) center_sq += v * v;
    double best = std::numeric_limits<double>::max();
    std::size_t medoid = m;
    for (std::size_t t = 0; t < m; ++t) {
      if (result.shape_labels[t] != g) continue;
      double dot = 0.0;
      for (const auto& [id, value] : normalized[t].items) {
        dot += value * center[static_cast<std::size_t>(id)];
      }
      const double d = point_sq[t] + center_sq - 2.0 * dot;
      if (d < best) {  // strict: ties keep the first-seen (lower-id) shape
        best = d;
        medoid = t;
      }
    }
    if (medoid < m) group_stats.medoid = medoid;
    group_stats.population_fraction =
        result.table.total_jobs == 0
            ? 0.0
            : static_cast<double>(group_stats.population) /
                  static_cast<double>(result.table.total_jobs);
    group_stats.size = util::describe_weighted(sizes, member_counts);
    group_stats.critical_path = util::describe_weighted(depths, member_counts);
    group_stats.parallelism = util::describe_weighted(widths, member_counts);
    group_stats.chain_fraction =
        group_stats.population ? static_cast<double>(chains) /
                                     static_cast<double>(group_stats.population)
                               : 0.0;
    group_stats.short_job_fraction =
        group_stats.population ? static_cast<double>(shorts) /
                                     static_cast<double>(group_stats.population)
                               : 0.0;
  }

  // Validation: the exact spectral pipeline on a shared uniform job
  // subsample. Same-shape jobs have bitwise-identical feature vectors, so
  // the v x v Gram is assembled from shape-level dots — exactly what the
  // sampled pipeline would compute on those jobs.
  std::size_t v = std::min<std::size_t>(
      config_.full_validation_sample,
      static_cast<std::size_t>(result.table.total_jobs));
  v = std::min<std::size_t>(v, cluster::SpectralOptions{}.max_dense_items);
  if (v >= 2 && static_cast<std::size_t>(k_eff) <= v) {
    obs::Span span("pipeline.full_validate");
    span.arg("jobs", v);
    util::Xoshiro256StarStar rng(
        util::hash_combine(config_.sample_seed, 0x66756c6cULL));  // "full"
    std::vector<std::size_t> positions = rng.sample_without_replacement(
        static_cast<std::size_t>(result.table.total_jobs), v);
    std::sort(positions.begin(), positions.end());
    // Map expanded job positions to shapes via cumulative counts: position
    // p belongs to the shape whose cumulative range contains p.
    std::vector<std::uint64_t> cumulative(m);
    std::uint64_t acc = 0;
    for (std::size_t t = 0; t < m; ++t) {
      acc += counts[t];
      cumulative[t] = acc;
    }
    std::vector<std::size_t> sample_shape(v);
    for (std::size_t i = 0; i < v; ++i) {
      const auto it = std::upper_bound(cumulative.begin(), cumulative.end(),
                                       static_cast<std::uint64_t>(positions[i]));
      sample_shape[i] = static_cast<std::size_t>(it - cumulative.begin());
    }
    linalg::Matrix gram(v, v);
    for (std::size_t i = 0; i < v; ++i) {
      gram(i, i) = 1.0;
      for (std::size_t j = i + 1; j < v; ++j) {
        const double value =
            normalized[sample_shape[i]].dot(normalized[sample_shape[j]]);
        gram(i, j) = value;
        gram(j, i) = value;
      }
    }
    cluster::SpectralOptions spectral_options;
    spectral_options.kmeans.seed = config_.clustering.seed;
    const cluster::SpectralResult exact =
        cluster::spectral_cluster(gram, k_eff, spectral_options);
    std::vector<int> full_labels(v);
    for (std::size_t i = 0; i < v; ++i) {
      full_labels[i] = result.shape_labels[sample_shape[i]];
    }
    result.agreement = cluster::measure_agreement(full_labels, exact.labels);
  }
  return result;
}

}  // namespace cwgl::core

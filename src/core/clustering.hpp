#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/job_dag.hpp"
#include "linalg/matrix.hpp"
#include "util/stats.hpp"

namespace cwgl::core {

/// Per-group statistics behind Figure 9 and the Fig. 8 representatives.
struct ClusterGroupStats {
  int group = 0;                  ///< 0 = 'A' (largest), 1 = 'B', ...
  std::size_t population = 0;     ///< Fig. 9(a)
  double population_fraction = 0.0;
  util::Distribution size;        ///< Fig. 9(b)
  util::Distribution critical_path;  ///< Fig. 9(c)
  util::Distribution parallelism;    ///< Fig. 9(d)
  double chain_fraction = 0.0;       ///< share of straight-chain jobs
  double short_job_fraction = 0.0;   ///< share of jobs with < 3 tasks
  std::size_t medoid = 0;            ///< index of the most central job (Fig. 8)

  /// Letter name used in the paper ('A'..).
  char letter() const noexcept { return static_cast<char>('A' + group); }
};

/// Options for the clustering stage.
struct ClusteringOptions {
  int clusters = 5;           ///< the paper finds five groups
  std::uint64_t seed = 11;    ///< k-means seeding
};

/// Spectral clustering of the similarity map plus group characterization
/// (Section VI). Groups are relabeled by descending population so that
/// group 0 ('A') is always the most populous, matching the paper's naming.
struct ClusteringAnalysis {
  std::vector<int> labels;             ///< group per job (relabeled)
  std::vector<ClusterGroupStats> groups;
  std::vector<double> eigenvalues;     ///< ascending spectrum of L_sym
  double silhouette = 0.0;             ///< quality in feature-space distance
  int suggested_k = 1;                 ///< eigengap heuristic (max 10)

  static ClusteringAnalysis compute(const linalg::Matrix& similarity,
                                    std::span<const JobDag> jobs,
                                    const ClusteringOptions& options = {});

  /// Shape-interned equivalent of `compute`: `shape_similarity` is the
  /// m x m kernel over distinct shapes, `exemplars`/`counts` describe the
  /// m shapes, and `shape_of[i]` maps job i of the analysis set to its
  /// shape. Produces the same analysis the direct path would on the
  /// expanded sample — per-JOB labels, count-weighted group statistics
  /// (quantiles bit-identical, means up to summation order), the expanded
  /// spectrum (the weighted spectrum plus jobs-minus-shapes copies of the
  /// eigenvalue 1), weighted silhouette, and the medoid as a job index
  /// (the earliest job of the most central shape, matching the direct
  /// argmax tie-break). Cluster-letter agreement with the direct path
  /// additionally requires separated groups, because the k-means RNG draw
  /// sequences differ (see cluster::kmeans_weighted).
  static ClusteringAnalysis compute_interned(
      const linalg::Matrix& shape_similarity, std::span<const JobDag> exemplars,
      std::span<const std::uint64_t> counts,
      std::span<const std::uint32_t> shape_of,
      const ClusteringOptions& options = {});
};

}  // namespace cwgl::core

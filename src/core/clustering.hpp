#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/job_dag.hpp"
#include "linalg/matrix.hpp"
#include "util/stats.hpp"

namespace cwgl::core {

/// Per-group statistics behind Figure 9 and the Fig. 8 representatives.
struct ClusterGroupStats {
  int group = 0;                  ///< 0 = 'A' (largest), 1 = 'B', ...
  std::size_t population = 0;     ///< Fig. 9(a)
  double population_fraction = 0.0;
  util::Distribution size;        ///< Fig. 9(b)
  util::Distribution critical_path;  ///< Fig. 9(c)
  util::Distribution parallelism;    ///< Fig. 9(d)
  double chain_fraction = 0.0;       ///< share of straight-chain jobs
  double short_job_fraction = 0.0;   ///< share of jobs with < 3 tasks
  std::size_t medoid = 0;            ///< index of the most central job (Fig. 8)

  /// Letter name used in the paper ('A'..).
  char letter() const noexcept { return static_cast<char>('A' + group); }
};

/// Options for the clustering stage.
struct ClusteringOptions {
  int clusters = 5;           ///< the paper finds five groups
  std::uint64_t seed = 11;    ///< k-means seeding
};

/// Spectral clustering of the similarity map plus group characterization
/// (Section VI). Groups are relabeled by descending population so that
/// group 0 ('A') is always the most populous, matching the paper's naming.
struct ClusteringAnalysis {
  std::vector<int> labels;             ///< group per job (relabeled)
  std::vector<ClusterGroupStats> groups;
  std::vector<double> eigenvalues;     ///< ascending spectrum of L_sym
  double silhouette = 0.0;             ///< quality in feature-space distance
  int suggested_k = 1;                 ///< eigengap heuristic (max 10)

  static ClusteringAnalysis compute(const linalg::Matrix& similarity,
                                    std::span<const JobDag> jobs,
                                    const ClusteringOptions& options = {});
};

}  // namespace cwgl::core

#include "core/characterization.hpp"

#include <algorithm>
#include <map>

#include "graph/algorithms.hpp"
#include "trace/filter.hpp"
#include "trace/taskname.hpp"

namespace cwgl::core {

StructuralReport StructuralReport::compute(std::span<const JobDag> jobs) {
  StructuralReport report;
  std::map<int, SizeGroupFeatures> groups;
  for (const JobDag& job : jobs) {
    const int size = job.size();
    report.size_histogram.add(size);
    SizeGroupFeatures& g = groups[size];
    g.size = size;
    ++g.count;
    g.max_critical_path =
        std::max(g.max_critical_path, graph::critical_path_length(job.dag));
    g.max_width = std::max(g.max_width, graph::max_width(job.dag));
  }
  for (const auto& [size, features] : groups) report.groups.push_back(features);
  report.distinct_sizes = report.groups.size();
  return report;
}

StructuralReport StructuralReport::compute(
    std::span<const JobDag> exemplars, std::span<const std::uint64_t> counts) {
  StructuralReport report;
  std::map<int, SizeGroupFeatures> groups;
  for (std::size_t t = 0; t < exemplars.size(); ++t) {
    const JobDag& job = exemplars[t];
    const int size = job.size();
    report.size_histogram.add(size, static_cast<std::size_t>(counts[t]));
    SizeGroupFeatures& g = groups[size];
    g.size = size;
    g.count += static_cast<std::size_t>(counts[t]);
    g.max_critical_path =
        std::max(g.max_critical_path, graph::critical_path_length(job.dag));
    g.max_width = std::max(g.max_width, graph::max_width(job.dag));
  }
  for (const auto& [size, features] : groups) report.groups.push_back(features);
  report.distinct_sizes = report.groups.size();
  return report;
}

ConflationReport ConflationReport::compute(std::span<const JobDag> jobs) {
  ConflationReport report;
  double reduction_sum = 0.0;
  for (const JobDag& job : jobs) {
    const JobDag merged = conflate_job(job);
    report.before.add(job.size());
    report.after.add(merged.size());
    reduction_sum += static_cast<double>(job.size()) /
                     static_cast<double>(std::max(1, merged.size()));
  }
  report.mean_reduction =
      jobs.empty() ? 1.0 : reduction_sum / static_cast<double>(jobs.size());
  return report;
}

ConflationReport ConflationReport::compute(
    std::span<const JobDag> exemplars, std::span<const std::uint64_t> counts) {
  ConflationReport report;
  double reduction_sum = 0.0;
  std::uint64_t total = 0;
  for (std::size_t t = 0; t < exemplars.size(); ++t) {
    const JobDag& job = exemplars[t];
    const JobDag merged = conflate_job(job);
    report.before.add(job.size(), static_cast<std::size_t>(counts[t]));
    report.after.add(merged.size(), static_cast<std::size_t>(counts[t]));
    reduction_sum += static_cast<double>(counts[t]) *
                     (static_cast<double>(job.size()) /
                      static_cast<double>(std::max(1, merged.size())));
    total += counts[t];
  }
  report.mean_reduction =
      total == 0 ? 1.0 : reduction_sum / static_cast<double>(total);
  return report;
}

namespace {

/// Builds the Fig. 6 row for one job and bumps the matching model counter
/// by `weight` (1 on the per-job path, the shape multiplicity when
/// interned).
void add_task_type_row(TaskTypeReport& report, const JobDag& job,
                       std::size_t weight) {
  TaskTypeRow row;
  row.job_name = job.job_name;
  row.size = job.size();
  for (const TaskMeta& t : job.tasks) {
    switch (t.type) {
      case 'M': ++row.m_tasks; break;
      case 'J': ++row.j_tasks; break;
      case 'R': ++row.r_tasks; break;
      default: ++row.other_tasks; break;
    }
  }
  row.critical_path = graph::critical_path_length(job.dag);
  // Model inference per Section V-C. A Merge stage is an 'M'-typed task
  // consuming a Reduce's output (the trace types Map and Merge alike, so
  // position in the dataflow is what identifies it). A Join stage marks
  // Map-Join-Reduce; depth <= 2 is the fundamental Map-Reduce; deeper
  // J-free merge-free jobs are multi-stage (pipelined) Map-Reduce.
  bool has_merge = false;
  for (int v = 0; v < job.dag.num_vertices() && !has_merge; ++v) {
    if (job.tasks[v].type != 'M') continue;
    for (int p : job.dag.predecessors(v)) {
      if (job.tasks[p].type == 'R') {
        has_merge = true;
        break;
      }
    }
  }
  if (has_merge && row.j_tasks == 0) {
    row.model = "map-reduce-merge";
    report.map_reduce_merge_jobs += weight;
  } else if (row.j_tasks > 0) {
    row.model = "map-join-reduce";
    report.map_join_reduce_jobs += weight;
  } else if (row.critical_path <= 2) {
    row.model = "map-reduce";
    report.map_reduce_jobs += weight;
  } else {
    row.model = "multi-stage map-reduce";
    report.multi_stage_jobs += weight;
  }
  report.rows.push_back(std::move(row));
}

}  // namespace

TaskTypeReport TaskTypeReport::compute(std::span<const JobDag> jobs) {
  TaskTypeReport report;
  report.rows.reserve(jobs.size());
  for (const JobDag& job : jobs) add_task_type_row(report, job, 1);
  return report;
}

TaskTypeReport TaskTypeReport::compute(std::span<const JobDag> exemplars,
                                       std::span<const std::uint64_t> counts) {
  TaskTypeReport report;
  report.rows.reserve(exemplars.size());
  for (std::size_t t = 0; t < exemplars.size(); ++t) {
    add_task_type_row(report, exemplars[t],
                      static_cast<std::size_t>(counts[t]));
  }
  return report;
}

PatternCensus PatternCensus::compute(std::span<const JobDag> jobs) {
  PatternCensus census;
  census.total = jobs.size();
  std::map<graph::ShapePattern, std::size_t> counts;
  for (const JobDag& job : jobs) ++counts[graph::classify_shape(job.dag)];
  for (const auto& [pattern, count] : counts) {
    census.rows.push_back(
        {pattern, count,
         census.total ? static_cast<double>(count) / static_cast<double>(census.total)
                      : 0.0});
  }
  std::sort(census.rows.begin(), census.rows.end(),
            [](const Row& a, const Row& b) { return a.count > b.count; });
  return census;
}

PatternCensus PatternCensus::compute(std::span<const JobDag> exemplars,
                                     std::span<const std::uint64_t> counts) {
  PatternCensus census;
  std::map<graph::ShapePattern, std::size_t> tally;
  for (std::size_t t = 0; t < exemplars.size(); ++t) {
    tally[graph::classify_shape(exemplars[t].dag)] +=
        static_cast<std::size_t>(counts[t]);
    census.total += static_cast<std::size_t>(counts[t]);
  }
  for (const auto& [pattern, count] : tally) {
    census.rows.push_back(
        {pattern, count,
         census.total ? static_cast<double>(count) / static_cast<double>(census.total)
                      : 0.0});
  }
  std::sort(census.rows.begin(), census.rows.end(),
            [](const Row& a, const Row& b) { return a.count > b.count; });
  return census;
}

double PatternCensus::fraction(graph::ShapePattern p) const noexcept {
  for (const Row& row : rows) {
    if (row.pattern == p) return row.fraction;
  }
  return 0.0;
}

TraceCensus TraceCensus::compute(const trace::Trace& trace) {
  TraceCensus census;
  const trace::TraceIndex index(trace);
  double dag_resource = 0.0;
  double total_resource = 0.0;
  for (const trace::JobGroup& job : index.jobs()) {
    ++census.total_jobs;
    const bool dag = trace::is_dag_job(trace, job);
    census.dag_jobs += dag;
    double resource = 0.0;
    for (std::size_t i : job.tasks) {
      const trace::TaskRecord& t = trace.tasks[i];
      const double duration =
          t.end_time > t.start_time && t.start_time > 0
              ? static_cast<double>(t.end_time - t.start_time)
              : 0.0;
      resource += t.plan_cpu * t.instance_num * duration;
    }
    total_resource += resource;
    if (dag) dag_resource += resource;
  }
  census.dag_job_fraction =
      census.total_jobs
          ? static_cast<double>(census.dag_jobs) / static_cast<double>(census.total_jobs)
          : 0.0;
  census.dag_resource_fraction =
      total_resource > 0.0 ? dag_resource / total_resource : 0.0;
  return census;
}

}  // namespace cwgl::core

#include "core/job_dag.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/algorithms.hpp"
#include "graph/conflation.hpp"
#include "trace/taskname.hpp"

namespace cwgl::core {

std::vector<int> JobDag::type_labels() const {
  std::vector<int> labels;
  labels.reserve(tasks.size());
  for (const TaskMeta& t : tasks) labels.push_back(static_cast<int>(t.type));
  return labels;
}

kernel::LabeledGraph JobDag::to_labeled() const {
  return kernel::LabeledGraph{dag, type_labels()};
}

std::vector<std::string> JobDag::vertex_names() const {
  std::vector<std::string> names;
  names.reserve(tasks.size());
  for (const TaskMeta& t : tasks) names.push_back(t.name);
  return names;
}

const char* to_string(BuildIssueKind kind) noexcept {
  switch (kind) {
    case BuildIssueKind::EmptyJob: return "empty-job";
    case BuildIssueKind::NonDagName: return "non-dag-name";
    case BuildIssueKind::DuplicateIndex: return "duplicate-index";
    case BuildIssueKind::MissingDependency: return "missing-dependency";
    case BuildIssueKind::Cycle: return "cycle";
  }
  return "unknown";
}

namespace {

void note(std::vector<BuildIssue>* issues, const std::string& job,
          std::string message, BuildIssueKind kind) {
  if (issues) issues->push_back({job, std::move(message), kind});
}

}  // namespace

std::optional<JobDag> build_job_dag(std::string job_name,
                                    std::span<const trace::TaskRecord> tasks,
                                    std::vector<BuildIssue>* issues) {
  if (tasks.empty()) {
    note(issues, job_name, "job has no tasks", BuildIssueKind::EmptyJob);
    return std::nullopt;
  }

  std::vector<trace::TaskName> parsed;
  parsed.reserve(tasks.size());
  for (const trace::TaskRecord& t : tasks) {
    auto p = trace::parse_task_name(t.task_name);
    if (!p) {
      note(issues, job_name, "non-DAG task name: " + t.task_name,
           BuildIssueKind::NonDagName);
      return std::nullopt;
    }
    parsed.push_back(std::move(*p));
  }

  std::unordered_map<int, int> index_to_vertex;
  index_to_vertex.reserve(tasks.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const auto [it, inserted] =
        index_to_vertex.emplace(parsed[i].index, static_cast<int>(i));
    if (!inserted) {
      note(issues, job_name,
           "duplicate task index " + std::to_string(parsed[i].index),
           BuildIssueKind::DuplicateIndex);
      return std::nullopt;
    }
  }

  std::vector<graph::Edge> edges;
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    for (int dep : parsed[i].deps) {
      const auto it = index_to_vertex.find(dep);
      if (it == index_to_vertex.end()) {
        note(issues, job_name,
             "task " + tasks[i].task_name + " depends on missing index " +
                 std::to_string(dep),
             BuildIssueKind::MissingDependency);
        return std::nullopt;
      }
      edges.push_back({it->second, static_cast<int>(i)});
    }
  }

  JobDag job;
  job.job_name = std::move(job_name);
  job.dag = graph::Digraph(static_cast<int>(tasks.size()), edges);
  if (!graph::is_dag(job.dag)) {
    note(issues, job.job_name, "task dependencies form a cycle",
         BuildIssueKind::Cycle);
    return std::nullopt;
  }
  job.tasks.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    TaskMeta m;
    m.name = tasks[i].task_name;
    m.type = parsed[i].type;
    m.index = parsed[i].index;
    m.instance_num = tasks[i].instance_num;
    m.start_time = tasks[i].start_time;
    m.end_time = tasks[i].end_time;
    m.plan_cpu = tasks[i].plan_cpu;
    m.plan_mem = tasks[i].plan_mem;
    job.tasks.push_back(std::move(m));
  }
  return job;
}

JobDag conflate_job(const JobDag& job) {
  const auto labels = job.type_labels();
  const auto result = graph::conflate(job.dag, labels);

  JobDag out;
  out.job_name = job.job_name;
  out.dag = result.graph;
  out.tasks.resize(result.representative.size());
  for (std::size_t c = 0; c < result.representative.size(); ++c) {
    out.tasks[c] = job.tasks[result.representative[c]];
    out.tasks[c].instance_num = 0;  // re-aggregate below
    out.tasks[c].plan_cpu = 0.0;
    out.tasks[c].plan_mem = 0.0;
  }
  for (std::size_t v = 0; v < job.tasks.size(); ++v) {
    TaskMeta& m = out.tasks[result.mapping[v]];
    const TaskMeta& src = job.tasks[v];
    m.instance_num += src.instance_num;
    m.plan_cpu += src.plan_cpu;
    m.plan_mem += src.plan_mem;
    if (src.start_time > 0) {
      m.start_time = m.start_time > 0 ? std::min(m.start_time, src.start_time)
                                      : src.start_time;
    }
    m.end_time = std::max(m.end_time, src.end_time);
  }
  return out;
}

}  // namespace cwgl::core

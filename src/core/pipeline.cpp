#include "core/pipeline.hpp"

#include "obs/tracer.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::core {

namespace {

std::vector<JobDag> build_jobs_from_groups(
    const trace::Trace& trace, const trace::TraceIndex& index,
    std::span<const std::size_t> group_indices) {
  std::vector<JobDag> jobs;
  jobs.reserve(group_indices.size());
  for (std::size_t g : group_indices) {
    const trace::JobGroup& group = index.jobs()[g];
    std::vector<trace::TaskRecord> records;
    records.reserve(group.tasks.size());
    for (std::size_t i : group.tasks) records.push_back(trace.tasks[i]);
    if (auto job = build_job_dag(group.job_name, records)) {
      jobs.push_back(std::move(*job));
    }
  }
  return jobs;
}

}  // namespace

CharacterizationPipeline::CharacterizationPipeline(PipelineConfig config)
    : config_(std::move(config)) {}

std::vector<JobDag> CharacterizationPipeline::build_sample(
    const trace::Trace& trace) const {
  const trace::TraceIndex index(trace);
  const auto eligible = trace::select_jobs(index, config_.criteria);
  const auto picked =
      config_.sampling == SamplingMode::Natural
          ? trace::natural_sample(eligible, config_.sample_size,
                                  config_.sample_seed)
          : trace::variability_sample(index, eligible, config_.sample_size,
                                      config_.sample_seed);
  return build_jobs_from_groups(trace, index, picked);
}

PipelineResult CharacterizationPipeline::run(const trace::Trace& trace,
                                             util::ThreadPool* pool,
                                             FittedFeatures* fitted) const {
  obs::Span pipeline_span("pipeline.run");
  PipelineResult result;
  {
    obs::Span span("pipeline.census");
    result.census = TraceCensus::compute(trace);
  }
  {
    obs::Span span("pipeline.sample");
    result.sample = build_sample(trace);
    span.arg("jobs", result.sample.size());
  }

  if (config_.intern_shapes) {
    run_interned(result, pool, fitted);
    pipeline_span.arg("sampled_jobs", result.sample.size());
    pipeline_span.arg("distinct_shapes", result.interned->table.size());
    return result;
  }

  {
    obs::Span span("pipeline.structure");
    result.conflation = ConflationReport::compute(result.sample);
    result.structure_before = StructuralReport::compute(result.sample);
  }

  // Conflation is pure per job, so it rides the same pool as featurization.
  std::vector<JobDag> conflated(result.sample.size());
  {
    obs::Span span("pipeline.conflation");
    span.arg("jobs", conflated.size());
    const auto conflate_range = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        conflated[i] = conflate_job(result.sample[i]);
      }
    };
    if (pool != nullptr) {
      util::parallel_for_chunked(*pool, 0, conflated.size(), 16, conflate_range);
    } else {
      conflate_range(0, conflated.size());
    }
    result.structure_after = StructuralReport::compute(conflated);
  }

  {
    obs::Span span("pipeline.task_types");
    result.task_types = TaskTypeReport::compute(result.sample);
    result.patterns = PatternCensus::compute(result.sample);
  }

  const std::vector<JobDag>& analysis_set =
      config_.analyze_conflated ? conflated : result.sample;
  {
    obs::Span span("pipeline.similarity");
    span.arg("jobs", analysis_set.size());
    result.similarity = SimilarityAnalysis::compute(
        analysis_set, config_.similarity, pool, fitted);
  }
  {
    obs::Span span("pipeline.clustering");
    result.clustering = ClusteringAnalysis::compute(result.similarity.gram,
                                                    analysis_set,
                                                    config_.clustering);
  }
  pipeline_span.arg("sampled_jobs", result.sample.size());
  return result;
}

/// The shape-interned back half of run(): everything after sampling runs
/// once per distinct shape, count-weighted. Per-job outputs (labels, the
/// Gram matrix) are expanded back so the PipelineResult is a drop-in
/// replacement for the direct path's.
void CharacterizationPipeline::run_interned(PipelineResult& result,
                                            util::ThreadPool* pool,
                                            FittedFeatures* fitted) const {
  InternedAnalysis interned;
  {
    obs::Span span("pipeline.intern");
    ShapeStore store;
    std::vector<const ShapeStore::Node*> handles;
    handles.reserve(result.sample.size());
    for (std::size_t i = 0; i < result.sample.size(); ++i) {
      handles.push_back(store.intern(result.sample[i], i));
    }
    ShapeStore::FrozenView view = store.freeze_with_ids();
    interned.table = std::move(view.table);
    interned.shape_of.reserve(handles.size());
    for (const ShapeStore::Node* node : handles) {
      interned.shape_of.push_back(view.id_of.at(node));
    }
    interned.stats = store.stats();
    span.arg("jobs", result.sample.size());
    span.arg("shapes", interned.table.size());
  }
  const std::vector<JobDag>& exemplars = interned.table.exemplars;
  const std::vector<std::uint64_t> counts = interned.table.counts();

  {
    obs::Span span("pipeline.structure");
    result.conflation = ConflationReport::compute(exemplars, counts);
    result.structure_before = StructuralReport::compute(exemplars, counts);
  }

  // One conflation per distinct shape (vs one per job on the direct path).
  std::vector<JobDag> conflated(exemplars.size());
  {
    obs::Span span("pipeline.conflation");
    span.arg("shapes", conflated.size());
    const auto conflate_range = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        conflated[i] = conflate_job(exemplars[i]);
      }
    };
    if (pool != nullptr) {
      util::parallel_for_chunked(*pool, 0, conflated.size(), 16, conflate_range);
    } else {
      conflate_range(0, conflated.size());
    }
    result.structure_after = StructuralReport::compute(conflated, counts);
  }

  {
    obs::Span span("pipeline.task_types");
    result.task_types = TaskTypeReport::compute(exemplars, counts);
    result.patterns = PatternCensus::compute(exemplars, counts);
  }

  const std::vector<JobDag>& analysis_shapes =
      config_.analyze_conflated ? conflated : exemplars;
  SimilarityAnalysis shape_similarity;
  {
    obs::Span span("pipeline.similarity");
    span.arg("shapes", analysis_shapes.size());
    shape_similarity = SimilarityAnalysis::compute(
        analysis_shapes, config_.similarity, pool, fitted);
  }
  interned.shape_gram = shape_similarity.gram;

  {
    obs::Span span("pipeline.clustering");
    result.clustering = ClusteringAnalysis::compute_interned(
        interned.shape_gram, analysis_shapes, counts, interned.shape_of,
        config_.clustering);
  }

  // Expand the shape kernel back to the per-job Gram: same-shape jobs have
  // bitwise-identical WL feature vectors, so this reproduces the direct
  // path's matrix exactly and every downstream consumer works unchanged.
  {
    const std::size_t n = result.sample.size();
    result.similarity.gram = linalg::Matrix(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        result.similarity.gram(i, j) =
            interned.shape_gram(interned.shape_of[i], interned.shape_of[j]);
      }
    }
    result.similarity.job_names.reserve(n);
    for (const JobDag& job : result.sample) {
      result.similarity.job_names.push_back(job.job_name);
    }
  }
  result.interned = std::move(interned);
}

std::vector<JobDag> CharacterizationPipeline::build_all_dags(
    std::istream& task_csv, util::ThreadPool* pool, IngestStats* stats) const {
  return build_all_dag_jobs(task_csv, config_.criteria, pool, stats);
}

std::vector<JobDag> build_all_dag_jobs(const trace::Trace& trace,
                                       const trace::SamplingCriteria& criteria) {
  const trace::TraceIndex index(trace);
  const auto eligible = trace::select_jobs(index, criteria);
  return build_jobs_from_groups(trace, index, eligible);
}

std::vector<JobDag> build_all_dag_jobs(std::istream& task_csv,
                                       const trace::SamplingCriteria& criteria,
                                       util::ThreadPool* pool,
                                       IngestStats* stats) {
  IngestOptions options;
  options.criteria = criteria;
  return stream_dag_jobs(task_csv, options, pool, stats);
}

}  // namespace cwgl::core

#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "core/resource_report.hpp"
#include "core/topology_census.hpp"

namespace cwgl::core {

/// JSON serializers for every report — machine-readable counterparts of
/// report_text.hpp, intended for external plotting of the figures
/// (similarity matrix included). Each emits one self-contained JSON value.

void write_json(std::ostream& out, const TraceCensus& census);
void write_json(std::ostream& out, const ConflationReport& report);
void write_json(std::ostream& out, const StructuralReport& report);
void write_json(std::ostream& out, const TaskTypeReport& report);
void write_json(std::ostream& out, const PatternCensus& census);
void write_json(std::ostream& out, const SimilarityAnalysis& analysis);
void write_json(std::ostream& out, const ClusteringAnalysis& analysis);
void write_json(std::ostream& out, const TopologyCensus& census);
void write_json(std::ostream& out, const ResourceUsageReport& report);

/// The whole pipeline result as one JSON object keyed by figure
/// ("census", "fig3", "fig4", "fig5", "fig6", "patterns", "fig7", "fig9").
void write_json(std::ostream& out, const PipelineResult& result);

/// Observability extras appended to the pipeline report by the CLI.
struct ReportExtras {
  /// Stage name → elapsed milliseconds, emitted in the given order under
  /// the "timings" key. Empty = key omitted.
  std::vector<std::pair<std::string, double>> timings_ms;
  /// Pre-serialized metrics snapshot (MetricsSnapshot::write_json output),
  /// embedded verbatim under the "metrics" key. Empty = key omitted.
  std::string metrics_json;
};

/// Same figure-keyed object with "timings" and "metrics" members appended.
void write_json(std::ostream& out, const PipelineResult& result,
                const ReportExtras& extras);

}  // namespace cwgl::core

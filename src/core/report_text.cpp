#include "core/report_text.hpp"

#include <ostream>

#include "util/strings.hpp"

namespace cwgl::core {

using util::format_double;
using util::pad_left;
using util::pad_right;

void print_trace_census(std::ostream& out, const TraceCensus& census) {
  out << "== Trace census (Section II-B statistics) ==\n";
  out << "total batch jobs:        " << census.total_jobs << "\n";
  out << "jobs with dependencies:  " << census.dag_jobs << " ("
      << format_double(100.0 * census.dag_job_fraction, 1) << "%)\n";
  out << "resource share of DAG jobs: "
      << format_double(100.0 * census.dag_resource_fraction, 1) << "%\n";
}

void print_conflation_report(std::ostream& out, const ConflationReport& report) {
  out << "== Fig 3: job sizes before/after node conflation ==\n";
  out << pad_left("size", 6) << pad_left("before", 10) << pad_left("after", 10)
      << "\n";
  long long max_size = 0;
  for (const auto& [size, count] : report.before.items()) {
    max_size = std::max(max_size, size);
  }
  for (const auto& [size, count] : report.after.items()) {
    max_size = std::max(max_size, size);
  }
  for (long long s = 1; s <= max_size; ++s) {
    const std::size_t before = report.before.count(s);
    const std::size_t after = report.after.count(s);
    if (before == 0 && after == 0) continue;
    out << pad_left(std::to_string(s), 6) << pad_left(std::to_string(before), 10)
        << pad_left(std::to_string(after), 10) << "\n";
  }
  out << "mean size reduction: " << format_double(report.mean_reduction, 2)
      << "x\n";
}

void print_structural_report(std::ostream& out, const StructuralReport& report,
                             std::string_view title) {
  out << "== " << title << " ==\n";
  out << pad_left("size", 6) << pad_left("jobs", 8)
      << pad_left("max-critical-path", 19) << pad_left("max-width", 11) << "\n";
  for (const SizeGroupFeatures& g : report.groups) {
    out << pad_left(std::to_string(g.size), 6)
        << pad_left(std::to_string(g.count), 8)
        << pad_left(std::to_string(g.max_critical_path), 19)
        << pad_left(std::to_string(g.max_width), 11) << "\n";
  }
  out << "distinct size groups: " << report.distinct_sizes << "\n";
}

void print_task_type_report(std::ostream& out, const TaskTypeReport& report) {
  out << "== Fig 6: task-type composition per job ==\n";
  out << pad_right("job", 14) << pad_left("size", 6) << pad_left("M", 5)
      << pad_left("J", 5) << pad_left("R", 5) << pad_left("depth", 7)
      << "  model\n";
  for (const TaskTypeRow& row : report.rows) {
    out << pad_right(row.job_name, 14) << pad_left(std::to_string(row.size), 6)
        << pad_left(std::to_string(row.m_tasks), 5)
        << pad_left(std::to_string(row.j_tasks), 5)
        << pad_left(std::to_string(row.r_tasks), 5)
        << pad_left(std::to_string(row.critical_path), 7) << "  " << row.model
        << "\n";
  }
  out << "map-reduce: " << report.map_reduce_jobs
      << "  map-join-reduce: " << report.map_join_reduce_jobs
      << "  map-reduce-merge: " << report.map_reduce_merge_jobs
      << "  multi-stage: " << report.multi_stage_jobs << "\n";
}

void print_pattern_census(std::ostream& out, const PatternCensus& census) {
  out << "== Section V-B: shape-pattern frequencies ==\n";
  for (const PatternCensus::Row& row : census.rows) {
    out << pad_right(std::string(graph::to_string(row.pattern)), 20)
        << pad_left(std::to_string(row.count), 8) << "  ("
        << format_double(100.0 * row.fraction, 1) << "%)\n";
  }
}

void print_similarity_summary(std::ostream& out,
                              const SimilarityAnalysis::Stats& stats) {
  out << "== Fig 7: WL similarity map summary ==\n";
  out << "off-diagonal similarity: mean " << format_double(stats.mean_offdiag, 3)
      << ", min " << format_double(stats.min_offdiag, 3) << ", max "
      << format_double(stats.max_offdiag, 3) << "\n";
  out << "small-job pairs (size <= " << stats.small_threshold
      << ") mean: " << format_double(stats.small_pair_mean, 3) << "\n";
  out << "large-job pairs mean:    " << format_double(stats.large_pair_mean, 3)
      << "\n";
}

void print_similarity_matrix(std::ostream& out,
                             const SimilarityAnalysis& analysis) {
  for (std::size_t i = 0; i < analysis.gram.rows(); ++i) {
    for (std::size_t j = 0; j < analysis.gram.cols(); ++j) {
      if (j) out << ',';
      out << format_double(analysis.gram(i, j), 4);
    }
    out << "\n";
  }
}

namespace {

void print_distribution(std::ostream& out, std::string_view name,
                        const util::Distribution& d) {
  out << "    " << pad_right(std::string(name), 15) << "mean "
      << pad_left(format_double(d.mean, 2), 7) << "  min "
      << pad_left(format_double(d.min, 0), 4) << "  p50 "
      << pad_left(format_double(d.median, 1), 6) << "  max "
      << pad_left(format_double(d.max, 0), 4) << "\n";
}

}  // namespace

void print_clustering_analysis(std::ostream& out,
                               const ClusteringAnalysis& analysis) {
  out << "== Fig 9: spectral clustering groups ==\n";
  for (const ClusterGroupStats& g : analysis.groups) {
    out << "Group " << g.letter() << ": population " << g.population << " ("
        << format_double(100.0 * g.population_fraction, 1)
        << "%), chains " << format_double(100.0 * g.chain_fraction, 1)
        << "%, short jobs " << format_double(100.0 * g.short_job_fraction, 1)
        << "%, medoid index " << g.medoid << "\n";
    print_distribution(out, "size", g.size);
    print_distribution(out, "critical path", g.critical_path);
    print_distribution(out, "parallelism", g.parallelism);
  }
  out << "silhouette: " << format_double(analysis.silhouette, 3)
      << "  eigengap-suggested k: " << analysis.suggested_k << "\n";
}

void print_resource_report(std::ostream& out, const ResourceUsageReport& report) {
  out << "== Resource usage by task type ==\n";
  out << pad_left("type", 6) << pad_left("tasks", 8)
      << pad_left("dur mean", 10) << pad_left("inst mean", 11)
      << pad_left("cpu mean", 10) << pad_left("mem mean", 10) << "\n";
  for (const auto& row : report.by_type) {
    out << pad_left(std::string(1, row.type), 6)
        << pad_left(std::to_string(row.tasks), 8)
        << pad_left(format_double(row.duration.mean, 1), 10)
        << pad_left(format_double(row.instances.mean, 1), 11)
        << pad_left(format_double(row.plan_cpu.mean, 1), 10)
        << pad_left(format_double(row.plan_mem.mean, 2), 10) << "\n";
  }
  out << "== Resource usage by DAG level ==\n";
  out << pad_left("level", 7) << pad_left("tasks", 8)
      << pad_left("mean cpu", 10) << pad_left("mean dur", 10)
      << pad_left("total work", 14) << "\n";
  for (const auto& row : report.by_level) {
    out << pad_left(std::to_string(row.level), 7)
        << pad_left(std::to_string(row.tasks), 8)
        << pad_left(format_double(row.mean_cpu, 1), 10)
        << pad_left(format_double(row.mean_duration, 1), 10)
        << pad_left(format_double(row.total_work, 0), 14) << "\n";
  }
  out << "corr(size, work) = " << format_double(report.corr_size_work, 3)
      << "  corr(width, instances) = "
      << format_double(report.corr_width_instances, 3)
      << "  corr(depth, wall time) = "
      << format_double(report.corr_depth_duration, 3) << "\n";
}

}  // namespace cwgl::core

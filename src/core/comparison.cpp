#include "core/comparison.hpp"

#include <algorithm>
#include <cmath>

#include "core/characterization.hpp"
#include "core/pipeline.hpp"
#include "graph/algorithms.hpp"
#include "graph/patterns.hpp"
#include "util/stats.hpp"

namespace cwgl::core {

namespace {

struct Profile {
  util::IntHistogram sizes;
  util::IntHistogram shapes;  ///< keyed by ShapePattern ordinal
  util::IntHistogram depths;
  util::IntHistogram widths;
  util::IntHistogram task_types;  ///< keyed by type char
  std::size_t jobs = 0;
};

Profile profile_of(const trace::Trace& trace) {
  Profile p;
  const auto jobs = build_all_dag_jobs(trace, trace::SamplingCriteria{});
  p.jobs = jobs.size();
  for (const JobDag& job : jobs) {
    p.sizes.add(job.size());
    p.shapes.add(static_cast<long long>(graph::classify_shape(job.dag)));
    p.depths.add(graph::critical_path_length(job.dag));
    p.widths.add(graph::max_width(job.dag));
    for (const TaskMeta& t : job.tasks) p.task_types.add(t.type);
  }
  return p;
}

}  // namespace

double TraceComparison::max_divergence() const noexcept {
  return std::max({size_divergence, shape_divergence, depth_divergence,
                   width_divergence, task_type_divergence});
}

TraceComparison TraceComparison::compute(const trace::Trace& trace_a,
                                         const trace::Trace& trace_b) {
  const Profile a = profile_of(trace_a);
  const Profile b = profile_of(trace_b);

  TraceComparison cmp;
  cmp.jobs_a = a.jobs;
  cmp.jobs_b = b.jobs;
  cmp.size_divergence = util::jensen_shannon(a.sizes, b.sizes);
  cmp.shape_divergence = util::jensen_shannon(a.shapes, b.shapes);
  cmp.depth_divergence = util::jensen_shannon(a.depths, b.depths);
  cmp.width_divergence = util::jensen_shannon(a.widths, b.widths);
  cmp.task_type_divergence = util::jensen_shannon(a.task_types, b.task_types);
  cmp.dag_fraction_delta =
      std::abs(TraceCensus::compute(trace_a).dag_job_fraction -
               TraceCensus::compute(trace_b).dag_job_fraction);
  return cmp;
}

}  // namespace cwgl::core

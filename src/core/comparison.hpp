#pragma once

#include <string>
#include <vector>

#include "core/job_dag.hpp"
#include "trace/schema.hpp"

namespace cwgl::core {

/// Structural drift analysis between two workloads (e.g. two trace days, or
/// a historical trace vs the live stream): quantifies how far the job-mix
/// has moved on each of the axes the paper characterizes. A scheduler using
/// cluster profiles learned on workload A should re-learn when drift
/// against current workload B grows.
struct TraceComparison {
  /// Jensen–Shannon divergences, each in [0, ln 2 ≈ 0.693].
  double size_divergence = 0.0;        ///< job-size distributions
  double shape_divergence = 0.0;       ///< shape-pattern mixes
  double depth_divergence = 0.0;       ///< critical-path distributions
  double width_divergence = 0.0;       ///< max-parallelism distributions
  double task_type_divergence = 0.0;   ///< M/J/R task mixes

  /// |dag_job_fraction_a - dag_job_fraction_b|.
  double dag_fraction_delta = 0.0;

  std::size_t jobs_a = 0;  ///< DAG jobs analyzed on each side
  std::size_t jobs_b = 0;

  /// Maximum of the five divergences — the headline drift signal.
  double max_divergence() const noexcept;

  /// Compares two sets of characterized jobs plus the surrounding traces
  /// (traces provide the DAG-fraction context).
  static TraceComparison compute(const trace::Trace& trace_a,
                                 const trace::Trace& trace_b);
};

}  // namespace cwgl::core

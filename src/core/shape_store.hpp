#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/job_dag.hpp"
#include "graph/patterns.hpp"
#include "util/node_pool.hpp"

namespace cwgl::core {

class ShapeStore;

/// Immutable snapshot of an intern table: one row per distinct shape, in
/// first-seen (trace) order, with dense ids `0..size()-1`.
///
/// The snapshot order is deterministic regardless of how many threads fed
/// the store: rows sort by the sequence number of the earliest job of each
/// shape, and the exemplar IS that earliest job. Pooled and serial ingest
/// of the same trace therefore freeze to identical tables.
struct ShapeTable {
  struct ShapeInfo {
    std::uint64_t shape_key = 0;    ///< full 64-bit canonical hash
    std::uint64_t count = 0;        ///< jobs collapsed into this shape
    std::uint64_t first_seq = 0;    ///< trace sequence of the exemplar
    int size = 0;                   ///< tasks per job of this shape
    int critical_path = 0;
    int width = 0;
    graph::ShapePattern pattern = graph::ShapePattern::Combination;
  };

  std::vector<JobDag> exemplars;    ///< parallel to `shapes`
  std::vector<ShapeInfo> shapes;
  std::uint64_t total_jobs = 0;     ///< sum of all counts

  std::size_t size() const { return shapes.size(); }
  bool empty() const { return shapes.empty(); }

  /// Per-shape multiplicities as a dense vector (parallel to `shapes`).
  std::vector<std::uint64_t> counts() const;

  /// Multiplicities as doubles — the weight vector the count-weighted
  /// clustering stages consume.
  std::vector<double> weights() const;
};

/// Sharded concurrent intern table for job-DAG shapes.
///
/// Every DAG is keyed by `graph::canonical_hash` over its raw topology +
/// task-type labels. The WL hash is isomorphism-invariant but not perfect,
/// so equal keys fall back to an exact `graph::are_isomorphic` check; keys
/// that hash equal but are NOT isomorphic chain off the same bucket as
/// separate shapes (handled, counted, and test-forced via
/// `Options::hash_bits`). Interning keys on the RAW shape — not the
/// conflated one — so every downstream stage (raw WL featurization,
/// conflation stats, census) can be reproduced exactly from exemplars ×
/// multiplicity; the conflated view is derived per exemplar on demand,
/// which is equivalent because conflation is a deterministic function of
/// topology + labels.
///
/// Thread safety: `intern` may be called concurrently; each key maps to one
/// of `Options::shards` independently locked shards. The exemplar of a
/// shape is the minimum-sequence job ever interned for it (replaced under
/// the shard lock), so arrival-order races cannot change the frozen table.
class ShapeStore {
 public:
  struct Options {
    /// Shard count (rounded up to a power of two, min 1). More shards =
    /// less lock contention under pooled ingest.
    std::size_t shards = 16;
    /// Number of high bits of the canonical hash kept in the intern key.
    /// 64 (default) = full hash. Tests set this low to force distinct
    /// shapes onto the same key, exercising the isomorphism-fallback
    /// collision chain.
    int hash_bits = 64;
    /// Above this vertex count the exact isomorphism check (exponential
    /// worst case; `graph::are_isomorphic` refuses large inputs) is
    /// replaced by a structural fingerprint comparison + trust in the
    /// 64-bit WL hash.
    int max_isomorphism_vertices = 32;
  };

  /// One interned shape. Nodes live in a per-shard arena: addresses are
  /// stable for the store's lifetime, so callers may hold `const Node*`
  /// handles across calls. All fields except `count`, `first_seq`, and
  /// `exemplar` are immutable after construction; the mutable ones are
  /// only touched under the owning shard's lock, so read them via
  /// `freeze()`/`stats()` rather than directly during concurrent interning.
  struct Node {
    std::uint64_t shape_key = 0;   ///< full canonical hash
    std::uint64_t intern_key = 0;  ///< masked key used for bucketing
    JobDag exemplar;               ///< earliest-sequence job of this class
    std::vector<int> labels;       ///< exemplar's task-type labels
    std::uint64_t first_seq = 0;
    std::uint64_t count = 0;
    int size = 0;
    int critical_path = 0;
    int width = 0;
    graph::ShapePattern pattern = graph::ShapePattern::Combination;
    Node* next_collision = nullptr;  ///< same intern_key, different shape
  };

  /// Counters accumulated across all shards.
  struct Stats {
    std::uint64_t total_jobs = 0;        ///< intern() calls that returned
    std::uint64_t distinct_shapes = 0;   ///< live nodes
    std::uint64_t hits = 0;              ///< matched an existing shape
    std::uint64_t misses = 0;            ///< created a new shape
    std::uint64_t isomorphism_probes = 0;  ///< exact / fingerprint checks run
    std::uint64_t hash_collisions = 0;   ///< equal key, non-isomorphic shape

    /// distinct/total: the paper's shape-redundancy headline (tiny for
    /// real traces).
    double distinct_ratio() const {
      return total_jobs == 0
                 ? 0.0
                 : static_cast<double>(distinct_shapes) /
                       static_cast<double>(total_jobs);
    }
  };

  ShapeStore();
  explicit ShapeStore(Options options);
  ShapeStore(const ShapeStore&) = delete;
  ShapeStore& operator=(const ShapeStore&) = delete;
  ~ShapeStore();

  /// Interns one job. `seq` is the job's position in the trace (any total
  /// order works; pooled ingest passes the reader-assigned sequence so the
  /// frozen table is arrival-order independent). Returns a stable handle
  /// to the job's shape. Failpoint: `shape.intern`.
  const Node* intern(JobDag&& job, std::uint64_t seq);

  /// Convenience: interns a copy of `job`.
  const Node* intern(const JobDag& job, std::uint64_t seq) {
    return intern(JobDag(job), seq);
  }

  /// Aggregated counters (takes every shard lock; cheap, O(shards)).
  Stats stats() const;

  /// Snapshot in deterministic first-seen order. Also publishes the
  /// store's counters to the global metrics registry (`intern.*`).
  ShapeTable freeze() const;

  /// Dense first-seen-order id of `node` in the frozen table; requires
  /// `node` to have come from this store and `freeze()` semantics (the map
  /// is rebuilt per call — prefer `freeze_with_ids` for bulk mapping).
  struct FrozenView {
    ShapeTable table;
    std::unordered_map<const Node*, std::uint32_t> id_of;
  };
  FrozenView freeze_with_ids() const;

 private:
  struct Shard;

  const Node* find_or_insert(Shard& shard, JobDag&& job,
                             std::vector<int>&& labels, std::uint64_t full_hash,
                             std::uint64_t key, std::uint64_t seq);
  bool same_shape(const Node& node, const JobDag& job,
                  std::span<const int> labels, std::uint64_t full_hash,
                  std::uint64_t& probes) const;
  std::vector<const Node*> nodes_in_first_seen_order() const;

  Options options_;
  std::uint64_t key_mask_ = ~0ULL;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace cwgl::core

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/kmeans.hpp"
#include "core/job_dag.hpp"
#include "linalg/matrix.hpp"

namespace cwgl::core {

/// The pre-graph-learning baseline the paper contrasts against (related
/// work [14], Chen et al.): cluster jobs by RESOURCE/DURATION statistics
/// with k-means, ignoring topology entirely.

/// Per-job resource feature row:
///   [ task count, total plan_cpu x instances, total plan_mem,
///     mean task duration, total instances ]
/// With `standardize`, each column is z-scored so k-means distances are not
/// dominated by the largest-magnitude feature.
linalg::Matrix resource_features(std::span<const JobDag> jobs,
                                 bool standardize = true);

/// Result of the resource-statistics clustering baseline.
struct ResourceClusteringBaseline {
  std::vector<int> labels;  ///< relabeled by descending population ('A'=0)
  double inertia = 0.0;
};

/// k-means over `resource_features` (deterministic in seed). Labels are
/// relabeled by descending cluster population to align with
/// ClusteringAnalysis group naming.
ResourceClusteringBaseline resource_kmeans(std::span<const JobDag> jobs, int k,
                                           std::uint64_t seed = 17);

/// Structural purity of an assignment: the population-weighted mean of the
/// within-group standard deviation of a structural metric (critical path or
/// max width), normalized by the metric's global standard deviation.
/// 0 = every group is structurally uniform; 1 = grouping is no better than
/// the whole population. Lets topology- and resource-based clusterings be
/// compared on the thing the paper cares about.
double structural_dispersion(std::span<const JobDag> jobs,
                             std::span<const int> labels, bool use_width);

}  // namespace cwgl::core

#pragma once

#include <span>
#include <vector>

#include "core/job_dag.hpp"

namespace cwgl::core {

/// Which pre-execution features the completion-time predictor may use.
/// Everything here is known at submission time — sizes and topology come
/// from the task names, plans from the task records; nothing leaks the
/// actual runtimes.
struct PredictorConfig {
  bool use_size = true;      ///< task count
  bool use_topology = true;  ///< critical path + max width
  bool use_plan = true;      ///< total instances and planned cpu/mem
  int num_groups = 0;        ///< >0 adds one-hot WL-cluster-group features
  double ridge = 1e-6;
};

/// Linear job-completion-time predictor — the paper's opening motivation
/// ("helps us foresee resource demands and execution time of new jobs").
/// Least-squares fit of the job's trace wall time (last end - first start)
/// on submission-time features.
class JctPredictor {
 public:
  /// Fits on jobs with usable timestamps. `labels` supplies the WL cluster
  /// group per job when config.num_groups > 0 (must then match jobs.size()).
  /// Throws InvalidArgument if nothing usable to fit or config mismatch.
  static JctPredictor fit(std::span<const JobDag> jobs,
                          std::span<const int> labels, PredictorConfig config);

  /// Predicted wall time (seconds, clamped non-negative) for a job;
  /// `label` is the job's cluster group (-1 = unknown, group features 0).
  double predict(const JobDag& job, int label = -1) const;

  /// Goodness-of-fit on a (held-out) set.
  struct Evaluation {
    double r2 = 0.0;          ///< 1 - SSE/SST; <= 1, negative = worse than mean
    double mae = 0.0;         ///< mean absolute error, seconds
    double mean_actual = 0.0; ///< scale reference for mae
    std::size_t jobs = 0;     ///< jobs with usable timestamps
  };
  Evaluation evaluate(std::span<const JobDag> jobs,
                      std::span<const int> labels) const;

  const PredictorConfig& config() const noexcept { return config_; }
  std::span<const double> weights() const noexcept { return weights_; }

  /// Actual wall time of a job from trace timestamps; <0 if unusable.
  static double actual_wall_time(const JobDag& job);

 private:
  std::vector<double> features(const JobDag& job, int label) const;

  PredictorConfig config_;
  std::vector<double> weights_;
};

}  // namespace cwgl::core

#include "core/resource_report.hpp"

#include <algorithm>
#include <map>

#include "graph/algorithms.hpp"

namespace cwgl::core {

ResourceUsageReport ResourceUsageReport::compute(std::span<const JobDag> jobs) {
  ResourceUsageReport report;

  // --- per-type distributions ----------------------------------------------
  std::map<char, std::vector<double>> durations, instances, cpus, mems;
  for (const JobDag& job : jobs) {
    for (const TaskMeta& t : job.tasks) {
      durations[t.type].push_back(static_cast<double>(t.duration()));
      instances[t.type].push_back(std::max(1, t.instance_num));
      cpus[t.type].push_back(t.plan_cpu);
      mems[t.type].push_back(t.plan_mem);
    }
  }
  static constexpr char kOrder[] = {'M', 'J', 'R'};
  const auto emit_type = [&](char type) {
    const auto it = durations.find(type);
    if (it == durations.end()) return;
    TypeRow row;
    row.type = type;
    row.tasks = it->second.size();
    row.duration = util::describe(it->second);
    row.instances = util::describe(instances[type]);
    row.plan_cpu = util::describe(cpus[type]);
    row.plan_mem = util::describe(mems[type]);
    report.by_type.push_back(std::move(row));
  };
  for (char type : kOrder) emit_type(type);
  for (const auto& [type, values] : durations) {
    if (type != 'M' && type != 'J' && type != 'R') emit_type(type);
  }

  // --- per-level profile ----------------------------------------------------
  std::map<int, LevelRow> levels;
  for (const JobDag& job : jobs) {
    const auto level_of = graph::longest_path_levels(job.dag);
    for (std::size_t v = 0; v < job.tasks.size(); ++v) {
      const TaskMeta& t = job.tasks[v];
      LevelRow& row = levels[level_of[v]];
      row.level = level_of[v];
      ++row.tasks;
      const double cpu = t.plan_cpu * std::max(1, t.instance_num);
      const double duration = static_cast<double>(t.duration());
      row.mean_cpu += cpu;
      row.mean_duration += duration;
      row.total_work += cpu * duration;
    }
  }
  for (auto& [level, row] : levels) {
    if (row.tasks > 0) {
      row.mean_cpu /= static_cast<double>(row.tasks);
      row.mean_duration /= static_cast<double>(row.tasks);
    }
    report.by_level.push_back(row);
  }

  // --- topology-vs-demand correlations ---------------------------------------
  std::vector<double> sizes, works, widths, total_instances, depths, wall_times;
  for (const JobDag& job : jobs) {
    double work = 0.0, inst = 0.0;
    std::int64_t start = 0, end = 0;
    for (const TaskMeta& t : job.tasks) {
      const double cpu = t.plan_cpu * std::max(1, t.instance_num);
      work += cpu * static_cast<double>(t.duration());
      inst += std::max(1, t.instance_num);
      if (t.start_time > 0 && (start == 0 || t.start_time < start)) {
        start = t.start_time;
      }
      end = std::max(end, t.end_time);
    }
    sizes.push_back(job.size());
    works.push_back(work);
    widths.push_back(graph::max_width(job.dag));
    total_instances.push_back(inst);
    depths.push_back(graph::critical_path_length(job.dag));
    wall_times.push_back(end > start ? static_cast<double>(end - start) : 0.0);
  }
  report.corr_size_work = util::pearson(sizes, works);
  report.corr_width_instances = util::pearson(widths, total_instances);
  report.corr_depth_duration = util::pearson(depths, wall_times);
  return report;
}

}  // namespace cwgl::core

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "cluster/agreement.hpp"
#include "cluster/scale.hpp"
#include "core/characterization.hpp"
#include "core/clustering.hpp"
#include "core/ingest.hpp"
#include "core/job_dag.hpp"
#include "core/similarity.hpp"
#include "trace/filter.hpp"
#include "trace/generator.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::core {

/// How the experiment set is drawn from the filtered workload.
enum class SamplingMode {
  /// Size-coverage first, then natural fill (the paper's Variability
  /// criterion: "17 different size types").
  VariabilityStratified,
  /// Plain uniform draw — preserves the workload's bottom-heavy population,
  /// which drives the cluster-group shares of Fig. 9.
  Natural,
};

/// End-to-end configuration of the paper's analysis pipeline.
struct PipelineConfig {
  /// Sampling filters (Integrity + Availability + DAG, Section IV-B).
  trace::SamplingCriteria criteria;
  /// Experiment-set size (the paper samples 100 jobs).
  std::size_t sample_size = 100;
  std::uint64_t sample_seed = 7;
  SamplingMode sampling = SamplingMode::VariabilityStratified;
  /// Similarity stage (Fig. 7).
  SimilarityOptions similarity;
  /// Clustering stage (Figs. 8-9).
  ClusteringOptions clustering;
  /// Run the similarity/clustering stages on conflated DAGs instead of the
  /// raw ones (ablation A3); structural reports always cover both.
  bool analyze_conflated = false;
  /// Intern the experiment set's job shapes (core::ShapeStore) and run
  /// every downstream stage once per DISTINCT shape, count-weighted —
  /// results match the direct path (see PipelineResult::interned). Turns
  /// O(jobs) featurize/kernel work into O(distinct shapes).
  bool intern_shapes = false;
  /// Full-trace runs (run_full) only: scalable clustering backend.
  cluster::ScaleMethod full_method = cluster::ScaleMethod::MiniBatch;
  /// Full-trace runs only: jobs sampled (uniformly, seeded by sample_seed)
  /// to validate full-trace labels against the exact spectral pipeline.
  /// Clamped to the dense-path guard; 0 skips validation.
  std::size_t full_validation_sample = 200;
};

/// Shape-level byproducts of an interned pipeline run
/// (PipelineConfig::intern_shapes).
struct InternedAnalysis {
  /// Distinct raw shapes of the experiment set, first-seen order.
  ShapeTable table;
  /// table row of each sample job (parallel to PipelineResult::sample).
  std::vector<std::uint32_t> shape_of;
  /// Kernel over distinct analysis-set shapes (conflated exemplars when
  /// `analyze_conflated`); PipelineResult::similarity.gram is its
  /// expansion.
  linalg::Matrix shape_gram;
  /// Intern-table hit/miss/probe counters.
  ShapeStore::Stats stats;
};

/// Result of clustering EVERY eligible job of a trace (run_full): the
/// learning stage runs once per distinct shape, count-weighted, through
/// cluster::cluster_at_scale — no n x n Gram is ever materialized, so
/// memory is bounded by distinct shapes, not jobs.
struct FullTraceResult {
  /// Distinct shapes of the whole eligible workload, first-seen order.
  ShapeTable table;
  /// Shape id of every built job, in trace order.
  std::vector<std::uint32_t> shape_of;
  ShapeStore::Stats stats;            ///< intern hit/miss/probe counters
  /// Cluster id per distinct shape, relabeled by descending weighted mass
  /// (group 0 = 'A' = most jobs, matching the paper's naming). A job's
  /// label is shape_labels[shape_of[i]].
  std::vector<int> shape_labels;
  /// Count-weighted per-group statistics. Unlike the sampled pipeline's
  /// groups, `medoid` here is a SHAPE id (index into table), not a job
  /// index: the member shape nearest the group's weighted feature mean.
  std::vector<ClusterGroupStats> groups;
  cluster::ScaleMethod method = cluster::ScaleMethod::MiniBatch;
  bool degraded = false;              ///< landmark fell back to mini-batch
  double inertia = 0.0;
  std::size_t landmarks = 0;          ///< landmark path only
  std::size_t embedding_dims = 0;     ///< landmark path only
  /// Full-trace labels vs the exact spectral pipeline on a shared uniform
  /// job subsample (items == 0 when validation was skipped).
  cluster::AgreementReport agreement;

  std::uint64_t total_jobs() const noexcept { return table.total_jobs; }

  /// Expanded per-job labels (trace order) — convenience for consumers
  /// that need one label per job rather than per shape.
  std::vector<int> job_labels() const;
};

/// Everything the paper's evaluation reports, computed in one pass.
struct PipelineResult {
  TraceCensus census;                    ///< Section II-B statistics
  std::vector<JobDag> sample;            ///< the experiment set (raw DAGs)
  ConflationReport conflation;           ///< Fig. 3
  StructuralReport structure_before;     ///< Fig. 4
  StructuralReport structure_after;      ///< Fig. 5
  TaskTypeReport task_types;             ///< Fig. 6
  PatternCensus patterns;                ///< Section V-B frequencies
  SimilarityAnalysis similarity;         ///< Fig. 7
  ClusteringAnalysis clustering;         ///< Figs. 8-9
  /// Present when the run interned shapes (PipelineConfig::intern_shapes).
  /// All fields above are still populated — per-job where they were
  /// per-job — so every consumer of the direct path works unchanged.
  std::optional<InternedAnalysis> interned;
};

/// Orchestrates trace -> filters -> variability sample -> DAGs -> reports.
class CharacterizationPipeline {
 public:
  explicit CharacterizationPipeline(PipelineConfig config = {});

  const PipelineConfig& config() const noexcept { return config_; }

  /// Builds the filtered, variability-stratified experiment set.
  std::vector<JobDag> build_sample(const trace::Trace& trace) const;

  /// Streams a `batch_task.csv` and builds every DAG job passing this
  /// pipeline's criteria, without materializing the trace. With a pool,
  /// parsing overlaps DAG construction (see core::stream_dag_jobs).
  std::vector<JobDag> build_all_dags(std::istream& task_csv,
                                     util::ThreadPool* pool = nullptr,
                                     IngestStats* stats = nullptr) const;

  /// Full analysis of a trace. `pool` parallelizes the Gram matrix. When
  /// `fitted` is non-null the similarity stage additionally exports its
  /// fitted state (feature vectors + frozen dictionary of the analysis set —
  /// the conflated set when `analyze_conflated`); this is the train-side
  /// hook the model store builds a serving snapshot from.
  PipelineResult run(const trace::Trace& trace,
                     util::ThreadPool* pool = nullptr,
                     FittedFeatures* fitted = nullptr) const;

  /// Clusters EVERY eligible job of the trace (no sampling): intern all
  /// shapes, featurize once per distinct shape, cluster count-weighted
  /// sparse features via cluster_at_scale (config().full_method), and
  /// validate against the exact spectral pipeline on a shared uniform
  /// subsample (config().full_validation_sample jobs). When `fitted` is
  /// non-null the per-shape feature vectors + frozen dictionary are
  /// exported — the train-side hook `cwgl fit --full` builds snapshots
  /// from. Throws InvalidArgument when no eligible DAG jobs exist.
  FullTraceResult run_full(const trace::Trace& trace,
                           util::ThreadPool* pool = nullptr,
                           FittedFeatures* fitted = nullptr) const;

  /// Streaming overload: same result straight from a `batch_task.csv`
  /// stream with memory bounded by distinct shapes (core::stream_shape_jobs
  /// machinery — a pool overlaps parsing with DAG building + interning).
  FullTraceResult run_full(std::istream& task_csv,
                           util::ThreadPool* pool = nullptr,
                           FittedFeatures* fitted = nullptr,
                           IngestStats* stats = nullptr) const;

 private:
  void run_interned(PipelineResult& result, util::ThreadPool* pool,
                    FittedFeatures* fitted) const;

  FullTraceResult run_full_table(ShapeTable table,
                                 std::vector<std::uint32_t> shape_of,
                                 ShapeStore::Stats stats,
                                 util::ThreadPool* pool,
                                 FittedFeatures* fitted) const;

  PipelineConfig config_;
};

/// Builds every valid DAG job in a trace (no sampling) — used by the
/// census-scale figures (Fig. 3 runs over the full filtered workload).
std::vector<JobDag> build_all_dag_jobs(const trace::Trace& trace,
                                       const trace::SamplingCriteria& criteria);

/// Streaming overload: same result on sorted (non-fragmented) traces, but
/// reads straight from a `batch_task.csv` stream with bounded memory —
/// this is the entry point sized for the real 270 GB file.
std::vector<JobDag> build_all_dag_jobs(std::istream& task_csv,
                                       const trace::SamplingCriteria& criteria,
                                       util::ThreadPool* pool = nullptr,
                                       IngestStats* stats = nullptr);

}  // namespace cwgl::core

#include "core/predictor.hpp"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"
#include "linalg/solve.hpp"
#include "util/error.hpp"

namespace cwgl::core {

double JctPredictor::actual_wall_time(const JobDag& job) {
  std::int64_t start = 0, end = 0;
  for (const TaskMeta& t : job.tasks) {
    if (t.start_time > 0 && (start == 0 || t.start_time < start)) {
      start = t.start_time;
    }
    end = std::max(end, t.end_time);
  }
  return (start > 0 && end > start) ? static_cast<double>(end - start) : -1.0;
}

std::vector<double> JctPredictor::features(const JobDag& job, int label) const {
  std::vector<double> f;
  f.push_back(1.0);  // intercept
  if (config_.use_size) f.push_back(job.size());
  if (config_.use_topology) {
    f.push_back(graph::critical_path_length(job.dag));
    f.push_back(graph::max_width(job.dag));
  }
  if (config_.use_plan) {
    double instances = 0.0, cpu = 0.0, mem = 0.0;
    for (const TaskMeta& t : job.tasks) {
      instances += std::max(1, t.instance_num);
      cpu += t.plan_cpu;
      mem += t.plan_mem;
    }
    f.push_back(std::log1p(instances));
    f.push_back(cpu / 100.0);  // cores
    f.push_back(mem);
  }
  for (int g = 0; g < config_.num_groups; ++g) {
    f.push_back(label == g ? 1.0 : 0.0);
  }
  return f;
}

JctPredictor JctPredictor::fit(std::span<const JobDag> jobs,
                               std::span<const int> labels,
                               PredictorConfig config) {
  if (config.num_groups > 0 && labels.size() != jobs.size()) {
    throw util::InvalidArgument("JctPredictor::fit: labels size != jobs size");
  }
  JctPredictor model;
  model.config_ = config;

  std::vector<std::size_t> usable;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (actual_wall_time(jobs[i]) >= 0.0) usable.push_back(i);
  }
  if (usable.empty()) {
    throw util::InvalidArgument("JctPredictor::fit: no jobs with usable timestamps");
  }
  const std::size_t d =
      model.features(jobs[usable.front()],
                     config.num_groups > 0 ? labels[usable.front()] : -1)
          .size();
  linalg::Matrix a(usable.size(), d);
  std::vector<double> b(usable.size());
  for (std::size_t row = 0; row < usable.size(); ++row) {
    const std::size_t i = usable[row];
    const auto f =
        model.features(jobs[i], config.num_groups > 0 ? labels[i] : -1);
    for (std::size_t c = 0; c < d; ++c) a(row, c) = f[c];
    b[row] = actual_wall_time(jobs[i]);
  }
  model.weights_ = linalg::solve_least_squares(a, b, config.ridge);
  return model;
}

double JctPredictor::predict(const JobDag& job, int label) const {
  if (weights_.empty()) {
    throw util::InvalidArgument("JctPredictor::predict: model not fitted");
  }
  const auto f = features(job, label);
  double y = 0.0;
  for (std::size_t c = 0; c < f.size(); ++c) y += weights_[c] * f[c];
  return std::max(0.0, y);
}

JctPredictor::Evaluation JctPredictor::evaluate(
    std::span<const JobDag> jobs, std::span<const int> labels) const {
  if (config_.num_groups > 0 && labels.size() != jobs.size()) {
    throw util::InvalidArgument("JctPredictor::evaluate: labels size mismatch");
  }
  Evaluation eval;
  double sum_actual = 0.0;
  std::vector<double> actuals, predictions;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double actual = actual_wall_time(jobs[i]);
    if (actual < 0.0) continue;
    actuals.push_back(actual);
    predictions.push_back(
        predict(jobs[i], config_.num_groups > 0 ? labels[i] : -1));
    sum_actual += actual;
  }
  eval.jobs = actuals.size();
  if (actuals.empty()) return eval;
  const double mean = sum_actual / static_cast<double>(actuals.size());
  eval.mean_actual = mean;
  double sse = 0.0, sst = 0.0, mae = 0.0;
  for (std::size_t i = 0; i < actuals.size(); ++i) {
    const double err = actuals[i] - predictions[i];
    sse += err * err;
    sst += (actuals[i] - mean) * (actuals[i] - mean);
    mae += std::abs(err);
  }
  eval.mae = mae / static_cast<double>(actuals.size());
  eval.r2 = sst > 0.0 ? 1.0 - sse / sst : 0.0;
  return eval;
}

}  // namespace cwgl::core

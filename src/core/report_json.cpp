#include "core/report_json.hpp"

#include <algorithm>
#include <ostream>
#include <string>

#include "graph/patterns.hpp"
#include "util/json.hpp"

namespace cwgl::core {

namespace {

using util::JsonWriter;

void histogram_json(JsonWriter& j, const util::IntHistogram& h) {
  j.begin_array();
  for (const auto& [key, count] : h.items()) {
    j.begin_object();
    j.field("size", static_cast<long long>(key));
    j.field("count", count);
    j.end_object();
  }
  j.end_array();
}

void distribution_json(JsonWriter& j, const util::Distribution& d) {
  j.begin_object();
  j.field("count", d.count);
  j.field("mean", d.mean);
  j.field("min", d.min);
  j.field("p25", d.p25);
  j.field("median", d.median);
  j.field("p75", d.p75);
  j.field("max", d.max);
  j.end_object();
}

void census_body(JsonWriter& j, const TraceCensus& census) {
  j.begin_object();
  j.field("total_jobs", census.total_jobs);
  j.field("dag_jobs", census.dag_jobs);
  j.field("dag_job_fraction", census.dag_job_fraction);
  j.field("dag_resource_fraction", census.dag_resource_fraction);
  j.end_object();
}

void conflation_body(JsonWriter& j, const ConflationReport& report) {
  j.begin_object();
  j.key("before");
  histogram_json(j, report.before);
  j.key("after");
  histogram_json(j, report.after);
  j.field("mean_reduction", report.mean_reduction);
  j.end_object();
}

void structural_body(JsonWriter& j, const StructuralReport& report) {
  j.begin_object();
  j.field("distinct_sizes", report.distinct_sizes);
  j.key("groups");
  j.begin_array();
  for (const auto& g : report.groups) {
    j.begin_object();
    j.field("size", g.size);
    j.field("count", g.count);
    j.field("max_critical_path", g.max_critical_path);
    j.field("max_width", g.max_width);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

void task_types_body(JsonWriter& j, const TaskTypeReport& report) {
  j.begin_object();
  j.field("map_reduce_jobs", report.map_reduce_jobs);
  j.field("map_join_reduce_jobs", report.map_join_reduce_jobs);
  j.field("map_reduce_merge_jobs", report.map_reduce_merge_jobs);
  j.field("multi_stage_jobs", report.multi_stage_jobs);
  j.key("rows");
  j.begin_array();
  for (const auto& row : report.rows) {
    j.begin_object();
    j.field("job", row.job_name);
    j.field("size", row.size);
    j.field("m", row.m_tasks);
    j.field("j", row.j_tasks);
    j.field("r", row.r_tasks);
    j.field("critical_path", row.critical_path);
    j.field("model", row.model);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

void patterns_body(JsonWriter& j, const PatternCensus& census) {
  j.begin_object();
  j.field("total", census.total);
  j.key("rows");
  j.begin_array();
  for (const auto& row : census.rows) {
    j.begin_object();
    j.field("pattern", graph::to_string(row.pattern));
    j.field("count", row.count);
    j.field("fraction", row.fraction);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

void similarity_body(JsonWriter& j, const SimilarityAnalysis& analysis) {
  j.begin_object();
  j.key("jobs");
  j.begin_array();
  for (const auto& name : analysis.job_names) j.value(name);
  j.end_array();
  j.key("matrix");
  j.begin_array();
  for (std::size_t r = 0; r < analysis.gram.rows(); ++r) {
    j.begin_array();
    for (std::size_t c = 0; c < analysis.gram.cols(); ++c) {
      j.value(analysis.gram(r, c));
    }
    j.end_array();
  }
  j.end_array();
  j.end_object();
}

void clustering_body(JsonWriter& j, const ClusteringAnalysis& analysis) {
  j.begin_object();
  j.field("silhouette", analysis.silhouette);
  j.field("suggested_k", analysis.suggested_k);
  j.key("labels");
  j.begin_array();
  for (int label : analysis.labels) j.value(label);
  j.end_array();
  j.key("groups");
  j.begin_array();
  for (const auto& g : analysis.groups) {
    j.begin_object();
    j.field("group", std::string(1, g.letter()));
    j.field("population", g.population);
    j.field("population_fraction", g.population_fraction);
    j.field("chain_fraction", g.chain_fraction);
    j.field("short_job_fraction", g.short_job_fraction);
    j.field("medoid", g.medoid);
    j.key("size");
    distribution_json(j, g.size);
    j.key("critical_path");
    distribution_json(j, g.critical_path);
    j.key("parallelism");
    distribution_json(j, g.parallelism);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

void topology_body(JsonWriter& j, const TopologyCensus& census) {
  j.begin_object();
  j.field("total_jobs", census.total_jobs);
  j.field("distinct_topologies", census.distinct_topologies);
  j.field("recurring_fraction", census.recurring_fraction);
  j.key("top");
  j.begin_array();
  const std::size_t limit = std::min<std::size_t>(census.rows.size(), 20);
  for (std::size_t i = 0; i < limit; ++i) {
    j.begin_object();
    j.field("count", census.rows[i].count);
    j.field("size", census.rows[i].size);
    j.field("exemplar", census.rows[i].exemplar);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

void resource_body(JsonWriter& j, const ResourceUsageReport& report) {
  j.begin_object();
  j.key("by_type");
  j.begin_array();
  for (const auto& row : report.by_type) {
    j.begin_object();
    j.field("type", std::string(1, row.type));
    j.field("tasks", row.tasks);
    j.key("duration");
    distribution_json(j, row.duration);
    j.key("instances");
    distribution_json(j, row.instances);
    j.key("plan_cpu");
    distribution_json(j, row.plan_cpu);
    j.key("plan_mem");
    distribution_json(j, row.plan_mem);
    j.end_object();
  }
  j.end_array();
  j.key("by_level");
  j.begin_array();
  for (const auto& row : report.by_level) {
    j.begin_object();
    j.field("level", row.level);
    j.field("tasks", row.tasks);
    j.field("mean_cpu", row.mean_cpu);
    j.field("mean_duration", row.mean_duration);
    j.field("total_work", row.total_work);
    j.end_object();
  }
  j.end_array();
  j.field("corr_size_work", report.corr_size_work);
  j.field("corr_width_instances", report.corr_width_instances);
  j.field("corr_depth_duration", report.corr_depth_duration);
  j.end_object();
}

}  // namespace

void write_json(std::ostream& out, const TraceCensus& census) {
  JsonWriter j(out);
  census_body(j, census);
}

void write_json(std::ostream& out, const ConflationReport& report) {
  JsonWriter j(out);
  conflation_body(j, report);
}

void write_json(std::ostream& out, const StructuralReport& report) {
  JsonWriter j(out);
  structural_body(j, report);
}

void write_json(std::ostream& out, const TaskTypeReport& report) {
  JsonWriter j(out);
  task_types_body(j, report);
}

void write_json(std::ostream& out, const PatternCensus& census) {
  JsonWriter j(out);
  patterns_body(j, census);
}

void write_json(std::ostream& out, const SimilarityAnalysis& analysis) {
  JsonWriter j(out);
  similarity_body(j, analysis);
}

void write_json(std::ostream& out, const ClusteringAnalysis& analysis) {
  JsonWriter j(out);
  clustering_body(j, analysis);
}

void write_json(std::ostream& out, const TopologyCensus& census) {
  JsonWriter j(out);
  topology_body(j, census);
}

void write_json(std::ostream& out, const ResourceUsageReport& report) {
  JsonWriter j(out);
  resource_body(j, report);
}

namespace {

void pipeline_members(JsonWriter& j, const PipelineResult& result) {
  j.key("census");
  census_body(j, result.census);
  j.key("fig3");
  conflation_body(j, result.conflation);
  j.key("fig4");
  structural_body(j, result.structure_before);
  j.key("fig5");
  structural_body(j, result.structure_after);
  j.key("fig6");
  task_types_body(j, result.task_types);
  j.key("patterns");
  patterns_body(j, result.patterns);
  j.key("fig7");
  similarity_body(j, result.similarity);
  j.key("fig9");
  clustering_body(j, result.clustering);
  if (result.interned.has_value()) {
    const InternedAnalysis& interned = *result.interned;
    j.key("intern");
    j.begin_object();
    j.field("total_jobs", interned.stats.total_jobs);
    j.field("distinct_shapes", interned.stats.distinct_shapes);
    j.field("distinct_ratio", interned.stats.distinct_ratio());
    j.field("hits", interned.stats.hits);
    j.field("misses", interned.stats.misses);
    j.field("isomorphism_probes", interned.stats.isomorphism_probes);
    j.field("hash_collisions", interned.stats.hash_collisions);
    j.end_object();
  }
}

}  // namespace

void write_json(std::ostream& out, const PipelineResult& result) {
  JsonWriter j(out);
  j.begin_object();
  pipeline_members(j, result);
  j.end_object();
}

void write_json(std::ostream& out, const PipelineResult& result,
                const ReportExtras& extras) {
  JsonWriter j(out);
  j.begin_object();
  pipeline_members(j, result);
  if (!extras.timings_ms.empty()) {
    j.key("timings");
    j.begin_object();
    for (const auto& [name, ms] : extras.timings_ms) j.field(name, ms);
    j.end_object();
  }
  if (!extras.metrics_json.empty()) {
    j.key("metrics");
    j.raw(extras.metrics_json);
  }
  j.end_object();
}

}  // namespace cwgl::core

#include "core/shape_store.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "graph/algorithms.hpp"
#include "graph/canonical.hpp"
#include "graph/isomorphism.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/failpoint.hpp"

namespace cwgl::core {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  if (n <= 1) return 1;
  return std::bit_ceil(n);
}

}  // namespace

struct ShapeStore::Shard {
  mutable std::mutex mutex;
  std::unordered_map<std::uint64_t, Node*> buckets;
  util::NodePool<Node> pool;
  // Counters, guarded by `mutex` (interning already holds it; no atomics
  // needed).
  std::uint64_t total_jobs = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t isomorphism_probes = 0;
  std::uint64_t hash_collisions = 0;
};

ShapeStore::ShapeStore() : ShapeStore(Options{}) {}

ShapeStore::ShapeStore(Options options) : options_(options) {
  const int bits = std::clamp(options_.hash_bits, 1, 64);
  options_.hash_bits = bits;
  key_mask_ = bits == 64 ? ~0ULL : ((1ULL << bits) - 1);
  const std::size_t shard_count = round_up_pow2(options_.shards);
  options_.shards = shard_count;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShapeStore::~ShapeStore() = default;

const ShapeStore::Node* ShapeStore::intern(JobDag&& job, std::uint64_t seq) {
  CWGL_FAILPOINT("shape.intern");
  std::vector<int> labels = job.type_labels();
  const std::uint64_t full_hash = graph::canonical_hash(job.dag, labels);
  const std::uint64_t key = full_hash & key_mask_;
  // Mix the key before picking a shard so that low-entropy masked keys
  // (tests with hash_bits ~ 2) still spread; the mix must be a pure
  // function of the key so every thread agrees on the owning shard.
  const std::uint64_t mixed = key * 0x9e3779b97f4a7c15ULL;
  Shard& shard = *shards_[(mixed >> 32) & (options_.shards - 1)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return find_or_insert(shard, std::move(job), std::move(labels), full_hash,
                        key, seq);
}

const ShapeStore::Node* ShapeStore::find_or_insert(Shard& shard, JobDag&& job,
                                                   std::vector<int>&& labels,
                                                   std::uint64_t full_hash,
                                                   std::uint64_t key,
                                                   std::uint64_t seq) {
  ++shard.total_jobs;
  auto [it, inserted] = shard.buckets.try_emplace(key, nullptr);
  if (!inserted) {
    for (Node* node = it->second; node != nullptr;
         node = node->next_collision) {
      if (same_shape(*node, job, labels, full_hash,
                     shard.isomorphism_probes)) {
        ++node->count;
        ++shard.hits;
        if (seq < node->first_seq) {
          // Keep the earliest job as exemplar so the frozen table does not
          // depend on pooled-worker arrival order. The shape-invariant
          // fields (size/cp/width/pattern/hashes) are unchanged by
          // construction — the jobs are isomorphic.
          node->first_seq = seq;
          node->exemplar = std::move(job);
          node->labels = std::move(labels);
        }
        return node;
      }
    }
    // Same intern key, no isomorphic match: a genuine (or mask-forced)
    // hash collision. The new shape chains off the same bucket.
    ++shard.hash_collisions;
  }
  Node* node = shard.pool.create();
  node->shape_key = full_hash;
  node->intern_key = key;
  node->first_seq = seq;
  node->count = 1;
  node->size = job.size();
  node->critical_path = graph::critical_path_length(job.dag);
  node->width = graph::max_width(job.dag);
  node->pattern = graph::classify_shape(job.dag);
  node->labels = std::move(labels);
  node->exemplar = std::move(job);
  node->next_collision = std::exchange(it->second, node);
  ++shard.misses;
  return node;
}

bool ShapeStore::same_shape(const Node& node, const JobDag& job,
                            std::span<const int> labels,
                            std::uint64_t full_hash,
                            std::uint64_t& probes) const {
  if (node.size != job.size() ||
      node.exemplar.dag.num_edges() != job.dag.num_edges()) {
    return false;
  }
  if (job.size() <= options_.max_isomorphism_vertices) {
    ++probes;
    return graph::are_isomorphic(node.exemplar.dag, node.labels, job.dag,
                                 labels);
  }
  // Too large for the exact check: require full 64-bit hash equality plus
  // a label-multiset fingerprint and trust the WL hash beyond that.
  if (node.shape_key != full_hash) return false;
  ++probes;
  std::vector<int> a(node.labels.begin(), node.labels.end());
  std::vector<int> b(labels.begin(), labels.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

ShapeStore::Stats ShapeStore::stats() const {
  Stats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.total_jobs += shard->total_jobs;
    stats.distinct_shapes += shard->pool.size();
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.isomorphism_probes += shard->isomorphism_probes;
    stats.hash_collisions += shard->hash_collisions;
  }
  return stats;
}

std::vector<const ShapeStore::Node*> ShapeStore::nodes_in_first_seen_order()
    const {
  std::vector<const Node*> nodes;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, head] : shard->buckets) {
      for (const Node* node = head; node != nullptr;
           node = node->next_collision) {
        nodes.push_back(node);
      }
    }
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const Node* a, const Node* b) {
              return a->first_seq < b->first_seq;
            });
  return nodes;
}

ShapeTable ShapeStore::freeze() const {
  return freeze_with_ids().table;
}

ShapeStore::FrozenView ShapeStore::freeze_with_ids() const {
  obs::Span span("intern.freeze");
  FrozenView view;
  const std::vector<const Node*> nodes = nodes_in_first_seen_order();
  view.table.exemplars.reserve(nodes.size());
  view.table.shapes.reserve(nodes.size());
  view.id_of.reserve(nodes.size());
  for (const Node* node : nodes) {
    view.id_of.emplace(node, static_cast<std::uint32_t>(view.table.size()));
    ShapeTable::ShapeInfo info;
    info.shape_key = node->shape_key;
    info.count = node->count;
    info.first_seq = node->first_seq;
    info.size = node->size;
    info.critical_path = node->critical_path;
    info.width = node->width;
    info.pattern = node->pattern;
    view.table.total_jobs += node->count;
    view.table.shapes.push_back(info);
    view.table.exemplars.push_back(node->exemplar);
  }
  span.arg("shapes", static_cast<std::uint64_t>(view.table.size()));
  const Stats stats = this->stats();
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("intern.jobs").add(stats.total_jobs);
  registry.counter("intern.hits").add(stats.hits);
  registry.counter("intern.misses").add(stats.misses);
  registry.counter("intern.isomorphism_probes").add(stats.isomorphism_probes);
  registry.counter("intern.hash_collisions").add(stats.hash_collisions);
  return view;
}

std::vector<std::uint64_t> ShapeTable::counts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(shapes.size());
  for (const ShapeInfo& info : shapes) counts.push_back(info.count);
  return counts;
}

std::vector<double> ShapeTable::weights() const {
  std::vector<double> weights;
  weights.reserve(shapes.size());
  for (const ShapeInfo& info : shapes) {
    weights.push_back(static_cast<double>(info.count));
  }
  return weights;
}

}  // namespace cwgl::core

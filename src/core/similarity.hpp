#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/job_dag.hpp"
#include "kernel/wl.hpp"
#include "linalg/matrix.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::core {

/// Options for the similarity-map stage (Figure 7).
struct SimilarityOptions {
  /// WL kernel configuration. The pipeline defaults to ONE refinement
  /// iteration: job DAGs are shallow (critical paths 2..8), and h = 1 is
  /// what reproduces the paper's Fig. 7/9 observations — small jobs score
  /// systematically higher pairwise similarity, and the dominant cluster
  /// group is the small-chain group. Deeper refinement (see ablation A1)
  /// drives tiny jobs of different sizes apart instead. The kernel
  /// library's own default stays at the literature-standard h = 3.
  kernel::WlConfig wl = [] {
    kernel::WlConfig c;
    c.iterations = 1;
    return c;
  }();
  bool normalize = true;   ///< cosine-normalize into [0,1]
  bool use_type_labels = true;  ///< label vertices by task type (M/R/J)
};

/// The fitted state of a similarity run, exported for the model store: the
/// raw (pre-normalization) WL feature vector of every analyzed job plus the
/// frozen signature dictionary that gives those vectors meaning.
///
/// Only produced when requested, and featurization is then forced SERIAL so
/// dictionary ids are dense in first-seen order — a model's bytes become a
/// pure function of the input trace and config, independent of thread
/// scheduling (the Gram dot products still parallelize; they are invariant
/// to id assignment).
struct FittedFeatures {
  /// vectors[i] belongs to jobs[i]; ids index into `dictionary`.
  std::vector<kernel::SparseVector> vectors;
  /// Entry i is the signature interned with id i (dense, first-seen order).
  std::vector<std::string> dictionary;
};

/// The pairwise WL similarity analysis over an experiment set.
struct SimilarityAnalysis {
  linalg::Matrix gram;                 ///< n x n similarity scores
  std::vector<std::string> job_names;  ///< row/column identities

  /// Aggregates quoted in the paper's Fig. 7 discussion: small jobs with
  /// short tails score systematically higher pairwise similarity.
  struct Stats {
    double mean_offdiag = 0.0;
    double min_offdiag = 0.0;
    double max_offdiag = 0.0;
    /// Mean pairwise similarity among jobs with <= small_threshold tasks.
    double small_pair_mean = 0.0;
    /// Mean pairwise similarity among jobs with > small_threshold tasks.
    double large_pair_mean = 0.0;
    int small_threshold = 5;
  };

  /// When `fitted` is non-null the run additionally exports its fitted
  /// state (see FittedFeatures); Gram values are identical either way.
  static SimilarityAnalysis compute(std::span<const JobDag> jobs,
                                    const SimilarityOptions& options = {},
                                    util::ThreadPool* pool = nullptr,
                                    FittedFeatures* fitted = nullptr);

  Stats stats(std::span<const JobDag> jobs, int small_threshold = 5) const;
};

}  // namespace cwgl::core

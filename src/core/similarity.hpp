#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/job_dag.hpp"
#include "kernel/wl.hpp"
#include "linalg/matrix.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::core {

/// Options for the similarity-map stage (Figure 7).
struct SimilarityOptions {
  /// WL kernel configuration. The pipeline defaults to ONE refinement
  /// iteration: job DAGs are shallow (critical paths 2..8), and h = 1 is
  /// what reproduces the paper's Fig. 7/9 observations — small jobs score
  /// systematically higher pairwise similarity, and the dominant cluster
  /// group is the small-chain group. Deeper refinement (see ablation A1)
  /// drives tiny jobs of different sizes apart instead. The kernel
  /// library's own default stays at the literature-standard h = 3.
  kernel::WlConfig wl = [] {
    kernel::WlConfig c;
    c.iterations = 1;
    return c;
  }();
  bool normalize = true;   ///< cosine-normalize into [0,1]
  bool use_type_labels = true;  ///< label vertices by task type (M/R/J)
};

/// The pairwise WL similarity analysis over an experiment set.
struct SimilarityAnalysis {
  linalg::Matrix gram;                 ///< n x n similarity scores
  std::vector<std::string> job_names;  ///< row/column identities

  /// Aggregates quoted in the paper's Fig. 7 discussion: small jobs with
  /// short tails score systematically higher pairwise similarity.
  struct Stats {
    double mean_offdiag = 0.0;
    double min_offdiag = 0.0;
    double max_offdiag = 0.0;
    /// Mean pairwise similarity among jobs with <= small_threshold tasks.
    double small_pair_mean = 0.0;
    /// Mean pairwise similarity among jobs with > small_threshold tasks.
    double large_pair_mean = 0.0;
    int small_threshold = 5;
  };

  static SimilarityAnalysis compute(std::span<const JobDag> jobs,
                                    const SimilarityOptions& options = {},
                                    util::ThreadPool* pool = nullptr);

  Stats stats(std::span<const JobDag> jobs, int small_threshold = 5) const;
};

}  // namespace cwgl::core

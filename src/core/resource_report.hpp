#pragma once

#include <span>
#include <vector>

#include "core/job_dag.hpp"
#include "util/stats.hpp"

namespace cwgl::core {

/// Resource/duration characterization joined with topology — the paper's
/// stated future work ("extend the analysis by combining resource analysis
/// techniques for job scheduling optimization").
struct ResourceUsageReport {
  /// Per task type ('M', 'J', 'R'): what that stage demands.
  struct TypeRow {
    char type = '?';
    std::size_t tasks = 0;
    util::Distribution duration;       ///< seconds
    util::Distribution instances;      ///< fan-out per task
    util::Distribution plan_cpu;       ///< 100 == one core
    util::Distribution plan_mem;
  };
  std::vector<TypeRow> by_type;  ///< ordered M, J, R, then others

  /// Per DAG level (0 = sources): how demand moves through the pipeline.
  struct LevelRow {
    int level = 0;
    std::size_t tasks = 0;
    double mean_cpu = 0.0;        ///< mean plan_cpu x instances
    double mean_duration = 0.0;
    double total_work = 0.0;      ///< sum cpu x instances x duration
  };
  std::vector<LevelRow> by_level;

  /// Correlations the paper's future work asks about: does topology predict
  /// demand?
  double corr_size_work = 0.0;    ///< job size vs total cpu-seconds
  double corr_width_instances = 0.0;  ///< max width vs total instances
  double corr_depth_duration = 0.0;   ///< critical path vs job wall time

  static ResourceUsageReport compute(std::span<const JobDag> jobs);
};

}  // namespace cwgl::core

#include "core/similarity.hpp"

#include <limits>

#include "kernel/gram.hpp"
#include "util/error.hpp"

namespace cwgl::core {

SimilarityAnalysis SimilarityAnalysis::compute(std::span<const JobDag> jobs,
                                               const SimilarityOptions& options,
                                               util::ThreadPool* pool,
                                               FittedFeatures* fitted) {
  std::vector<kernel::LabeledGraph> corpus;
  corpus.reserve(jobs.size());
  for (const JobDag& job : jobs) {
    kernel::LabeledGraph g;
    g.graph = job.dag;
    if (options.use_type_labels) g.labels = job.type_labels();
    corpus.push_back(std::move(g));
  }
  kernel::WlSubtreeFeaturizer featurizer(options.wl);
  kernel::GramOptions gram_options;
  gram_options.normalize = options.normalize;

  SimilarityAnalysis out;
  if (fitted != nullptr) {
    // Export path: featurize serially so dictionary ids land in first-seen
    // order (deterministic model bytes), keep the vectors, and reuse the
    // shared Gram back half so values match the fused path bitwise.
    fitted->vectors.clear();
    fitted->vectors.reserve(corpus.size());
    for (const kernel::LabeledGraph& g : corpus) {
      fitted->vectors.push_back(featurizer.featurize(g));
    }
    fitted->dictionary.clear();
    fitted->dictionary.reserve(featurizer.dictionary_size());
    for (auto& [signature, id] : featurizer.dictionary_entries()) {
      (void)id;  // entries() is sorted by id and serial ids are dense
      fitted->dictionary.push_back(std::move(signature));
    }
    out.gram = kernel::gram_from_features(fitted->vectors, gram_options, pool);
  } else {
    out.gram = kernel::gram_matrix(featurizer, corpus, gram_options, pool);
  }
  out.job_names.reserve(jobs.size());
  for (const JobDag& job : jobs) out.job_names.push_back(job.job_name);
  return out;
}

SimilarityAnalysis::Stats SimilarityAnalysis::stats(std::span<const JobDag> jobs,
                                                    int small_threshold) const {
  if (jobs.size() != gram.rows()) {
    throw util::InvalidArgument("SimilarityAnalysis::stats: jobs/gram size mismatch");
  }
  Stats s;
  s.small_threshold = small_threshold;
  s.min_offdiag = std::numeric_limits<double>::max();
  s.max_offdiag = -std::numeric_limits<double>::max();
  double sum = 0.0, small_sum = 0.0, large_sum = 0.0;
  std::size_t pairs = 0, small_pairs = 0, large_pairs = 0;
  for (std::size_t i = 0; i < gram.rows(); ++i) {
    for (std::size_t j = i + 1; j < gram.cols(); ++j) {
      const double k = gram(i, j);
      sum += k;
      ++pairs;
      s.min_offdiag = std::min(s.min_offdiag, k);
      s.max_offdiag = std::max(s.max_offdiag, k);
      const bool small_i = jobs[i].size() <= small_threshold;
      const bool small_j = jobs[j].size() <= small_threshold;
      if (small_i && small_j) {
        small_sum += k;
        ++small_pairs;
      } else if (!small_i && !small_j) {
        large_sum += k;
        ++large_pairs;
      }
    }
  }
  if (pairs == 0) {
    s.min_offdiag = s.max_offdiag = 0.0;
    return s;
  }
  s.mean_offdiag = sum / static_cast<double>(pairs);
  s.small_pair_mean = small_pairs ? small_sum / static_cast<double>(small_pairs) : 0.0;
  s.large_pair_mean = large_pairs ? large_sum / static_cast<double>(large_pairs) : 0.0;
  return s;
}

}  // namespace cwgl::core

#pragma once

#include <iosfwd>

#include "core/characterization.hpp"
#include "core/clustering.hpp"
#include "core/resource_report.hpp"
#include "core/similarity.hpp"

namespace cwgl::core {

/// Plain-text renderers for every report — these print the rows/series the
/// paper's figures plot, and are shared by the benches and examples.

void print_trace_census(std::ostream& out, const TraceCensus& census);
void print_conflation_report(std::ostream& out, const ConflationReport& report);
void print_structural_report(std::ostream& out, const StructuralReport& report,
                             std::string_view title);
void print_task_type_report(std::ostream& out, const TaskTypeReport& report);
void print_pattern_census(std::ostream& out, const PatternCensus& census);
void print_similarity_summary(std::ostream& out,
                              const SimilarityAnalysis::Stats& stats);
/// Renders the full similarity matrix as CSV rows (the Fig. 7 heat map data).
void print_similarity_matrix(std::ostream& out, const SimilarityAnalysis& analysis);
void print_clustering_analysis(std::ostream& out, const ClusteringAnalysis& analysis);
void print_resource_report(std::ostream& out, const ResourceUsageReport& report);

}  // namespace cwgl::core

#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace cwgl::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm();
}

Xoshiro256StarStar::result_type Xoshiro256StarStar::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Xoshiro256StarStar::uniform_u64(std::uint64_t lo,
                                              std::uint64_t hi) noexcept {
  const std::uint64_t span = hi - lo;
  if (span == std::numeric_limits<std::uint64_t>::max()) return (*this)();
  const std::uint64_t range = span + 1;
  // Lemire's method: multiply-shift with rejection of the biased region.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::uint64_t>(m >> 64);
}

int Xoshiro256StarStar::uniform_int(int lo, int hi) noexcept {
  return lo + static_cast<int>(uniform_u64(0, static_cast<std::uint64_t>(hi - lo)));
}

double Xoshiro256StarStar::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256StarStar::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Xoshiro256StarStar::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Xoshiro256StarStar::discrete(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0 || weights.empty()) return 0;
  double u = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (u < w) return i;
    u -= w;
  }
  return weights.size() - 1;  // numerical slack lands on the last bucket
}

int Xoshiro256StarStar::truncated_geometric(int lo, int hi, double p) noexcept {
  if (lo >= hi) return lo;
  if (p <= 0.0) return uniform_int(lo, hi);
  if (p >= 1.0) return lo;
  // Inverse-CDF sampling of Geometric(p), capped at hi.
  const double u = uniform01();
  const double g = std::floor(std::log1p(-u) / std::log1p(-p));
  const long long value = lo + static_cast<long long>(g);
  return value > hi ? hi : static_cast<int>(value);
}

double Xoshiro256StarStar::normal(double mean, double stddev) noexcept {
  // Box–Muller; draws exactly two uniforms per call for determinism.
  double u1 = uniform01();
  const double u2 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<std::size_t> Xoshiro256StarStar::sample_without_replacement(
    std::size_t n, std::size_t k) {
  if (k >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Floyd's algorithm: k iterations, no O(n) scratch.
  std::vector<std::size_t> picked;
  picked.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(uniform_u64(0, j));
    bool seen = false;
    for (std::size_t q : picked) {
      if (q == t) {
        seen = true;
        break;
      }
    }
    picked.push_back(seen ? j : t);
  }
  return picked;
}

}  // namespace cwgl::util

#pragma once

#include <chrono>

namespace cwgl::util {

/// Monotonic wall-clock stopwatch for coarse timing in reports and benches.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Resets the epoch to now.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset.
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace cwgl::util

#pragma once

#include "obs/stopwatch.hpp"

namespace cwgl::util {

/// Monotonic wall-clock stopwatch for coarse timing in reports and benches.
/// One implementation for the whole tree: this is obs::Stopwatch, aliased
/// so existing util call sites keep reading naturally.
using WallTimer = obs::Stopwatch;

}  // namespace cwgl::util

#pragma once

#include <stdexcept>
#include <string>

namespace cwgl::util {

/// Base class for all errors raised by the cwgl library.
///
/// Every throwing API in the library raises either `Error` or one of the
/// derived types below, so callers can catch `cwgl::util::Error` to
/// intercept any library failure while letting genuine logic errors
/// (std::logic_error from misuse of the standard library) escape.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when textual input (CSV rows, task names, trace files) cannot be
/// decoded. Carries a human-readable description including, where possible,
/// the offending token and its location.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Raised when an argument violates a documented precondition that cannot be
/// expressed in the type system (e.g. a non-square similarity matrix passed
/// to spectral clustering).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised when a graph expected to be a DAG contains a cycle, or when a
/// dependency refers to a vertex that does not exist.
class GraphError : public Error {
 public:
  explicit GraphError(const std::string& what) : Error(what) {}
};

}  // namespace cwgl::util

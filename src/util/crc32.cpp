#include "util/crc32.hpp"

#include <array>

namespace cwgl::util {

namespace {

/// The 256-entry table for the reflected polynomial, built once at load.
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace cwgl::util

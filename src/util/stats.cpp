#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace cwgl::util {

void RunningSummary::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningSummary::merge(const RunningSummary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningSummary::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningSummary::stddev() const noexcept { return std::sqrt(variance()); }

Quantiles::Quantiles(std::span<const double> values)
    : sorted_(values.begin(), values.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Quantiles::quantile(double q) const noexcept {
  if (sorted_.empty()) return 0.0;
  if (q <= 0.0) return sorted_.front();
  if (q >= 1.0) return sorted_.back();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

void IntHistogram::add(long long key, std::size_t weight) {
  bins_[key] += weight;
  total_ += weight;
}

std::size_t IntHistogram::count(long long key) const noexcept {
  const auto it = bins_.find(key);
  return it == bins_.end() ? 0 : it->second;
}

std::vector<std::pair<long long, std::size_t>> IntHistogram::items() const {
  return {bins_.begin(), bins_.end()};
}

double IntHistogram::fraction(long long key) const noexcept {
  return total_ == 0 ? 0.0
                     : static_cast<double>(count(key)) / static_cast<double>(total_);
}

Distribution describe(std::span<const double> values) {
  Distribution d;
  d.count = values.size();
  if (values.empty()) return d;
  RunningSummary s;
  for (double v : values) s.add(v);
  Quantiles q(values);
  d.mean = s.mean();
  d.min = q.min();
  d.p25 = q.p25();
  d.median = q.median();
  d.p75 = q.p75();
  d.max = q.max();
  return d;
}

Distribution describe_weighted(std::span<const double> values,
                               std::span<const std::uint64_t> weights) {
  Distribution d;
  if (values.size() != weights.size()) return d;
  // Sorted (value, weight) pairs with zero weights dropped: the compressed
  // form of the expanded sorted sample.
  std::vector<std::pair<double, std::uint64_t>> sorted;
  sorted.reserve(values.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (weights[i] == 0) continue;
    sorted.emplace_back(values[i], weights[i]);
    total += weights[i];
  }
  std::sort(sorted.begin(), sorted.end());
  d.count = static_cast<std::size_t>(total);
  if (total == 0) return d;

  double sum = 0.0;
  for (const auto& [v, w] : sorted) sum += v * static_cast<double>(w);
  d.mean = sum / static_cast<double>(total);

  // The expanded sample's order statistic at `rank` via a cumulative scan.
  const auto element_at = [&](std::uint64_t rank) {
    std::uint64_t cumulative = 0;
    for (const auto& [v, w] : sorted) {
      cumulative += w;
      if (rank < cumulative) return v;
    }
    return sorted.back().first;
  };
  // Mirrors Quantiles::quantile exactly — same pos/lo/frac arithmetic over
  // the (virtual) expanded sorted vector, so results are bit-identical to
  // describe() on the expansion.
  const auto quantile = [&](double q) {
    if (q <= 0.0) return sorted.front().first;
    if (q >= 1.0) return sorted.back().first;
    const double pos = q * static_cast<double>(total - 1);
    const auto lo = static_cast<std::uint64_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= total) return sorted.back().first;
    return element_at(lo) * (1.0 - frac) + element_at(lo + 1) * frac;
  };
  d.min = sorted.front().first;
  d.p25 = quantile(0.25);
  d.median = quantile(0.5);
  d.p75 = quantile(0.75);
  d.max = sorted.back().first;
  return d;
}

double jensen_shannon(const IntHistogram& p, const IntHistogram& q) {
  if (p.empty() && q.empty()) return 0.0;
  if (p.empty() || q.empty()) return std::log(2.0);
  std::map<long long, std::pair<double, double>> joint;
  for (const auto& [key, count] : p.items()) {
    joint[key].first = static_cast<double>(count) / static_cast<double>(p.total());
  }
  for (const auto& [key, count] : q.items()) {
    joint[key].second = static_cast<double>(count) / static_cast<double>(q.total());
  }
  double div = 0.0;
  for (const auto& [key, pq] : joint) {
    const auto [pp, qq] = pq;
    const double m = 0.5 * (pp + qq);
    if (pp > 0.0) div += 0.5 * pp * std::log(pp / m);
    if (qq > 0.0) div += 0.5 * qq * std::log(qq / m);
  }
  return std::max(0.0, div);
}

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  RunningSummary sx, sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  const double mx = sx.mean(), my = sy.mean();
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) cov += (x[i] - mx) * (y[i] - my);
  const double denom = sx.stddev() * sy.stddev() * static_cast<double>(x.size() - 1);
  return denom == 0.0 ? 0.0 : cov / denom;
}

}  // namespace cwgl::util

#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace cwgl::util {

/// Chunked placement-new object arena with stable addresses.
///
/// `create(args...)` constructs a `T` inside the pool and hands back a
/// pointer that stays valid for the pool's lifetime — no per-object heap
/// allocation, no relocation on growth (chunks are never resized, only
/// appended). The pool destroys every constructed object when it is
/// destroyed, in unspecified order.
///
/// Intended for intrusive node structures (e.g. the shape-intern table's
/// collision-chained nodes) where node addresses are shared across threads
/// under external synchronization. The pool itself is NOT thread-safe:
/// callers serialize `create` (the ShapeStore keeps one pool per shard,
/// guarded by the shard mutex).
template <typename T>
class NodePool {
 public:
  /// `chunk_capacity` objects are carved per allocation; tune down only in
  /// tests that want to exercise many chunk boundaries.
  explicit NodePool(std::size_t chunk_capacity = 64)
      : chunk_capacity_(chunk_capacity == 0 ? 1 : chunk_capacity) {}

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  NodePool(NodePool&& other) noexcept
      : chunk_capacity_(other.chunk_capacity_),
        chunks_(std::move(other.chunks_)),
        used_in_last_(std::exchange(other.used_in_last_, 0)) {
    other.chunks_.clear();
  }
  NodePool& operator=(NodePool&&) = delete;

  ~NodePool() { destroy_all(); }

  /// Constructs a `T` in the arena; the address is stable until the pool
  /// dies. Strong exception safety: a throwing constructor leaks nothing
  /// and leaves the pool unchanged.
  template <typename... Args>
  T* create(Args&&... args) {
    if (chunks_.empty() || used_in_last_ == chunk_capacity_) {
      chunks_.push_back(Chunk{allocate_chunk(), 0});
      used_in_last_ = 0;
    }
    Chunk& chunk = chunks_.back();
    T* slot = chunk.objects.get() + used_in_last_;
    T* object = ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++used_in_last_;
    chunk.constructed = used_in_last_;
    return object;
  }

  /// Number of live objects.
  std::size_t size() const {
    if (chunks_.empty()) return 0;
    return (chunks_.size() - 1) * chunk_capacity_ + used_in_last_;
  }

  bool empty() const { return size() == 0; }

 private:
  struct ChunkDeleter {
    void operator()(T* raw) const {
      ::operator delete[](static_cast<void*>(raw), std::align_val_t{alignof(T)});
    }
  };
  using ChunkStorage = std::unique_ptr<T, ChunkDeleter>;

  struct Chunk {
    ChunkStorage objects;
    std::size_t constructed = 0;  // prefix of slots holding live objects
  };

  ChunkStorage allocate_chunk() const {
    void* raw = ::operator new[](sizeof(T) * chunk_capacity_,
                                 std::align_val_t{alignof(T)});
    return ChunkStorage(static_cast<T*>(raw));
  }

  void destroy_all() {
    for (Chunk& chunk : chunks_) {
      T* objects = chunk.objects.get();
      for (std::size_t i = chunk.constructed; i > 0; --i) {
        objects[i - 1].~T();
      }
      chunk.constructed = 0;
    }
    chunks_.clear();
    used_in_last_ = 0;
  }

  std::size_t chunk_capacity_;
  std::vector<Chunk> chunks_;
  std::size_t used_in_last_ = 0;
};

}  // namespace cwgl::util

#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cwgl::util {

class Diagnostics;

/// How the scanner treats structurally damaged input.
struct CsvScanPolicy {
  /// Strict (default): an unterminated quoted field throws ParseError.
  /// Lenient: the damaged record is quarantined and the scanner resyncs at
  /// the next line boundary, so one corrupt row cannot kill a 270 GB ingest.
  bool lenient = false;
  /// Optional sink: quarantined records are reported as
  /// ("csv", "unterminated-quote", <first line of the record>).
  Diagnostics* diagnostics = nullptr;
};

/// Zero-copy streaming CSV scanner.
///
/// Reads the input in large blocks and yields each record as a span of
/// `string_view` fields pointing directly into the internal buffer — no
/// per-field heap allocation on the hot path. Only fields that contain a
/// quote are copied out (to unescape doubled quotes), which never happens in
/// the Alibaba traces. Accepts the same dialect as `CsvReader` (RFC-4180
/// quotes, CRLF and lone-CR line endings, embedded newlines) and produces
/// byte-identical fields; `tests/util/csv_scanner_test.cpp` holds the
/// differential proof.
///
/// Records may be arbitrarily larger than the block size: the buffer grows
/// to fit the largest single record and is reused across records.
///
/// Observability: totals are folded into the global metrics registry
/// (`ingest.scanner.rows`/`.bytes`/`.quarantined`) when the scanner reaches
/// end of input or is destroyed — a batched flush, so the per-record hot
/// path carries zero instrumentation cost.
class CsvScanner {
 public:
  static constexpr std::size_t kDefaultBlockSize = std::size_t{1} << 18;

  /// Wraps (does not own) `in`. `block_size` is the granularity of refills;
  /// tiny values are legal (the boundary-handling tests use them).
  explicit CsvScanner(std::istream& in,
                      std::size_t block_size = kDefaultBlockSize,
                      CsvScanPolicy policy = {});

  CsvScanner(const CsvScanner&) = delete;
  CsvScanner& operator=(const CsvScanner&) = delete;

  /// Flushes the not-yet-reported totals to the metrics registry.
  ~CsvScanner();

  /// Scans the next record. Returns nullopt at end of input. The returned
  /// span and every `string_view` in it are invalidated by the next call.
  /// Throws ParseError on an unterminated quoted field (strict policy);
  /// lenient policy quarantines the record and resyncs instead.
  std::optional<std::span<const std::string_view>> next();

  /// 1-based index of the last record returned (for error messages).
  std::size_t record_number() const noexcept { return record_; }

  /// Total input bytes consumed by returned records (throughput accounting).
  std::size_t bytes_consumed() const noexcept { return consumed_; }

  /// Records dropped by the lenient policy (always 0 under strict).
  std::size_t quarantined() const noexcept { return quarantined_; }

 private:
  /// Compacts the live tail to the buffer front and reads one more block.
  /// Returns false when the input is exhausted (sets eof_).
  bool refill();

  /// Drops the unterminated record, reports it, and repositions at the next
  /// line boundary. Returns false when no further line exists.
  bool quarantine_and_resync();

  /// Reports rows/bytes/quarantines accumulated since the last flush to the
  /// global metrics registry. Called at end of input and from the
  /// destructor; idempotent for unchanged totals.
  void flush_metrics();

  std::istream& in_;
  std::size_t block_size_;
  CsvScanPolicy policy_;
  std::vector<char> buffer_;
  std::size_t begin_ = 0;  ///< first unconsumed byte in buffer_
  std::size_t end_ = 0;    ///< one past the last valid byte in buffer_
  bool eof_ = false;
  std::size_t record_ = 0;
  std::size_t consumed_ = 0;
  std::size_t quarantined_ = 0;
  std::size_t flushed_records_ = 0;
  std::size_t flushed_bytes_ = 0;
  std::size_t flushed_quarantined_ = 0;
  std::vector<std::string_view> fields_;
  /// Stable storage for unescaped quoted fields (deque: growth never moves
  /// existing elements, so views into them stay valid for the record).
  std::deque<std::string> unescaped_;
};

/// Streams records through `fn` with the zero-copy scanner; stops early if
/// `fn` returns false. Returns the number of records visited. The span
/// passed to `fn` is only valid during the call.
std::size_t scan_csv_records(
    std::istream& in,
    const std::function<bool(std::span<const std::string_view>)>& fn,
    CsvScanPolicy policy = {});

}  // namespace cwgl::util

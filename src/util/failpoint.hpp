#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace cwgl::util {

/// Raised by a failpoint configured in `error` mode. Derives from Error so
/// the fault is indistinguishable from a genuine library failure to callers
/// — exactly what fault-injection tests need to exercise.
class FailpointError : public Error {
 public:
  explicit FailpointError(const std::string& what) : Error(what) {}
};

/// Deterministic fault injection for robustness testing.
///
/// Library code marks injection sites with `CWGL_FAILPOINT("site.name")`
/// (and `CWGL_FAILPOINT_CLAMP("site.name", n)` where a read size can be
/// shortened). When the tree is built with `-DCWGL_FAILPOINTS=ON` the macros
/// call into this registry; otherwise they compile to nothing, so release
/// builds carry zero overhead.
///
/// Sites are activated by a spec string, either passed to `configure()` or
/// read from the `CWGL_FAILPOINTS` environment variable on first hit:
///
///   CWGL_FAILPOINTS="ingest.read_block=error@0.01;queue.push=delay:5ms"
///
/// Spec grammar (';'-separated entries):
///   <site>=<mode>[:<arg>][@<prob>][*<limit>]
///   seed=<uint64>           // seeds the per-site deterministic RNG streams
/// Modes:
///   error          throw util::FailpointError
///   throw          throw std::runtime_error (a foreign, non-library error)
///   delay[:Nms|Nus]  sleep (default 1ms) then continue
///   short-read[:N]   CWGL_FAILPOINT_CLAMP returns at most N (default 1)
/// `@p` triggers with probability p per visit (deterministic, seeded per
/// site); `*N` stops triggering after N triggers. Both default to "always".
namespace failpoint {

/// Replaces the active configuration. Throws InvalidArgument on a malformed
/// spec. An empty spec deactivates everything (like `clear()`).
void configure(std::string_view spec);

/// Deactivates all sites and forgets visit statistics.
void clear();

/// True when the library was compiled with failpoint sites
/// (-DCWGL_FAILPOINTS=ON), i.e. the CWGL_FAILPOINT macros are live.
constexpr bool compiled_in() noexcept {
#if defined(CWGL_FAILPOINTS_ENABLED)
  return true;
#else
  return false;
#endif
}

/// True if `site` is named in the active configuration.
bool configured(std::string_view site);

/// Executes the configured action for `site` (may throw or sleep). Called by
/// CWGL_FAILPOINT; safe — and a fast no-op — when nothing is configured.
void hit(const char* site);

/// Returns `n`, clamped down when `site` is configured in short-read mode
/// and triggers on this visit. Called by CWGL_FAILPOINT_CLAMP.
std::size_t clamp(const char* site, std::size_t n);

/// Visit/trigger counts per configured site, for assertions and reports.
struct SiteReport {
  std::string site;
  std::uint64_t visits = 0;    ///< times the site was reached
  std::uint64_t triggers = 0;  ///< times the fault actually fired
};
std::vector<SiteReport> report();

}  // namespace failpoint
}  // namespace cwgl::util

#if defined(CWGL_FAILPOINTS_ENABLED)
#define CWGL_FAILPOINT(site) ::cwgl::util::failpoint::hit(site)
#define CWGL_FAILPOINT_CLAMP(site, n) ::cwgl::util::failpoint::clamp(site, (n))
#else
#define CWGL_FAILPOINT(site) ((void)0)
#define CWGL_FAILPOINT_CLAMP(site, n) (n)
#endif

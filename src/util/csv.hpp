#pragma once

#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cwgl::util {

/// RFC-4180-style CSV parsing and writing.
///
/// Supports quoted fields containing commas, doubled quotes, and embedded
/// newlines; tolerates both LF and CRLF line endings. The Alibaba traces are
/// plain unquoted CSV, but the parser is general so user-supplied traces
/// survive round-trips.
class CsvReader {
 public:
  /// Wraps (does not own) an input stream.
  explicit CsvReader(std::istream& in) : in_(in) {}

  /// Reads the next record into `fields` (cleared first). Returns false at
  /// EOF. Throws ParseError on an unterminated quoted field.
  bool next(std::vector<std::string>& fields);

  /// 1-based index of the last record read (for error messages).
  std::size_t record_number() const noexcept { return record_; }

 private:
  std::istream& in_;
  std::size_t record_ = 0;
};

/// Streams records through `fn`; stops early if `fn` returns false.
/// Returns the number of records visited.
std::size_t for_each_csv_record(
    std::istream& in, const std::function<bool(const std::vector<std::string>&)>& fn);

/// Escapes a single field per RFC 4180 (quotes only when needed).
std::string csv_escape(std::string_view field);

/// Writes one record (fields escaped, '\n' terminator).
void write_csv_record(std::ostream& out, std::span<const std::string> fields);

}  // namespace cwgl::util

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "obs/metrics.hpp"
#include "util/failpoint.hpp"

namespace cwgl::util {

/// Outcome of a timed queue operation. The three-way split is what admission
/// control needs: `TimedOut` means "the queue stayed full/empty for the whole
/// budget — shed the request", while `Closed` means "the queue is shutting
/// down — stop producing / drain is complete". A waiter woken by `close()`
/// reports Closed even when its deadline has also expired; shutdown wins
/// ties so callers never mistake a drain for an overload.
enum class QueueResult {
  Ok,        ///< the item was transferred
  TimedOut,  ///< the deadline passed with the queue still full (push) / empty (pop)
  Closed,    ///< push: queue closed; pop: closed AND drained — nothing will arrive
};

/// Bounded blocking FIFO for producer/consumer pipelines.
///
/// `push` blocks while the queue is full (backpressure: a fast producer is
/// throttled to the consumers' pace, so memory stays bounded) and `pop`
/// blocks while it is empty. `close()` ends the conversation: blocked and
/// future pushes return false, and pops drain the remaining items before
/// returning nullopt. The timed variants (`try_push_for`/`try_pop_for`)
/// bound the wait and make the three outcomes distinct via QueueResult —
/// the serving daemon's admission control and drain deadlines are built on
/// them. All operations are safe to call from any thread.
///
/// Observability: all instances aggregate into the global registry —
/// `queue.items.pushed` and the `queue.occupancy.peak` high-water gauge are
/// always on; the `queue.push.wait_us`/`queue.pop.wait_us` block-time
/// histograms additionally need the registry's timing gate (they read
/// clocks around the condition-variable waits).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        registry_(&obs::MetricsRegistry::global()),
        pushed_(&registry_->counter("queue.items.pushed")),
        occupancy_(&registry_->gauge("queue.occupancy.peak")),
        push_wait_us_(&registry_->histogram("queue.push.wait_us")),
        pop_wait_us_(&registry_->histogram("queue.pop.wait_us")) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room or the queue is closed. Returns false (and
  /// drops `item`) when closed — producers use this as their stop signal.
  bool push(T item) {
    CWGL_FAILPOINT("queue.push");
    obs::ScopedLatency wait(*registry_, *push_wait_us_);
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    const auto depth = static_cast<std::int64_t>(items_.size());
    lock.unlock();
    pushed_->add();
    occupancy_->record_max(depth);
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// nullopt means no item will ever arrive again.
  std::optional<T> pop() {
    CWGL_FAILPOINT("queue.pop");
    obs::ScopedLatency wait(*registry_, *pop_wait_us_);
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Timed push: waits at most `timeout` for room. Returns Ok when the item
  /// was enqueued, TimedOut when the queue stayed full (the item is dropped —
  /// this is the admission-control shed path), and Closed when the queue was
  /// closed before room appeared (also drops the item). A zero timeout is a
  /// pure try: one predicate check, no waiting.
  template <typename Rep, typename Period>
  QueueResult try_push_for(T item,
                           std::chrono::duration<Rep, Period> timeout) {
    CWGL_FAILPOINT("queue.push");
    obs::ScopedLatency wait(*registry_, *push_wait_us_);
    std::unique_lock lock(mutex_);
    if (!not_full_.wait_for(lock, timeout, [&] {
          return closed_ || items_.size() < capacity_;
        })) {
      return QueueResult::TimedOut;
    }
    // The predicate held — but it holds for close() wake-ups too, so check
    // shutdown before capacity: a waiter released by close() must report
    // Closed, not sneak an item into a draining queue or report a timeout.
    if (closed_) return QueueResult::Closed;
    items_.push_back(std::move(item));
    const auto depth = static_cast<std::int64_t>(items_.size());
    lock.unlock();
    pushed_->add();
    occupancy_->record_max(depth);
    not_empty_.notify_one();
    return QueueResult::Ok;
  }

  /// Timed pop: waits at most `timeout` for an item into `out`. Returns Ok
  /// on delivery, TimedOut when the queue stayed empty, and Closed when the
  /// queue is closed AND drained — the consumer's definitive stop signal
  /// (queued items are still delivered as Ok after close, exactly like
  /// pop()). A zero timeout is a pure try.
  template <typename Rep, typename Period>
  QueueResult try_pop_for(std::chrono::duration<Rep, Period> timeout, T& out) {
    CWGL_FAILPOINT("queue.pop");
    obs::ScopedLatency wait(*registry_, *pop_wait_us_);
    std::unique_lock lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !items_.empty(); })) {
      return QueueResult::TimedOut;
    }
    if (items_.empty()) return QueueResult::Closed;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return QueueResult::Ok;
  }

  /// Non-blocking pop: an item if one is immediately available. Used to
  /// drain abandoned items on failure paths without risking a block.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Wakes every blocked producer and consumer. Items already queued are
  /// still delivered; idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
  obs::MetricsRegistry* registry_;
  obs::Counter* pushed_;
  obs::Gauge* occupancy_;
  obs::Histogram* push_wait_us_;
  obs::Histogram* pop_wait_us_;
};

}  // namespace cwgl::util

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cwgl::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum the
/// model-store file format uses to detect section corruption. Implemented
/// here so the tree stays dependency-free (no zlib).
///
/// `crc` is the running value for incremental use: seed with `kCrc32Init`,
/// fold in chunks, and finalize with `crc32_finish`. `crc32` does all three
/// in one call for a contiguous buffer.
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;

/// Folds `data` into a running (pre-finalization) CRC.
std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t size) noexcept;

/// Final xor (the bitwise complement mandated by the CRC-32 spec).
constexpr std::uint32_t crc32_finish(std::uint32_t crc) noexcept {
  return crc ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a buffer ("123456789" -> 0xCBF43926).
inline std::uint32_t crc32(std::string_view data) noexcept {
  return crc32_finish(crc32_update(kCrc32Init, data.data(), data.size()));
}

}  // namespace cwgl::util

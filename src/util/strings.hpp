#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cwgl::util {

/// Splits `text` on every occurrence of `sep` (single char). Adjacent
/// separators yield empty fields; the result always has #sep + 1 entries.
std::vector<std::string_view> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(std::span<const std::string> parts, std::string_view sep);

/// Locale-independent integer parse of the full string; nullopt on any
/// non-digit residue, overflow, or empty input.
std::optional<long long> to_int(std::string_view text);

/// Locale-independent double parse of the full string; nullopt on failure.
std::optional<double> to_double(std::string_view text);

/// True if every character is an ASCII decimal digit (and text non-empty).
bool all_digits(std::string_view text) noexcept;

/// Fixed-width formatting helpers used by the report printers.
std::string pad_left(std::string_view text, std::size_t width);
std::string pad_right(std::string_view text, std::size_t width);

/// Formats `value` with `decimals` fractional digits ('.' separator).
std::string format_double(double value, int decimals);

}  // namespace cwgl::util

#pragma once

#include <charconv>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cwgl::util {

/// Splits `text` on every occurrence of `sep` (single char). Adjacent
/// separators yield empty fields; the result always has #sep + 1 entries.
std::vector<std::string_view> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(std::span<const std::string> parts, std::string_view sep);

/// Locale-independent integer parse of the full string; nullopt on any
/// non-digit residue, overflow, or empty input. Inline with a manual digit
/// loop: this sits on the per-row hot path of the streaming CSV ingest
/// (4 calls per task record). Up to 18 digits cannot overflow long long, so
/// only longer runs fall back to from_chars for its overflow semantics.
inline std::optional<long long> to_int(std::string_view text) {
  const char* s = text.data();
  const std::size_t size = text.size();
  if (size == 0) return std::nullopt;
  const std::size_t start = (s[0] == '-') ? 1 : 0;
  if (size - start >= 1 && size - start <= 18) {
    unsigned long long value = 0;
    std::size_t i = start;
    for (; i < size; ++i) {
      const auto digit = static_cast<unsigned>(s[i]) - '0';
      if (digit > 9) return std::nullopt;  // matches from_chars' full-parse check
      value = value * 10 + digit;
    }
    const auto signed_value = static_cast<long long>(value);
    return start != 0 ? -signed_value : signed_value;
  }
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(s, s + size, value);
  if (ec != std::errc() || ptr != s + size) return std::nullopt;
  return value;
}

/// Locale-independent double parse of the full string; nullopt on failure.
/// Out-of-line fallback for inputs the to_double fast path cannot handle
/// (exponents, inf/nan, >15 digits); call to_double instead.
std::optional<double> to_double_general(std::string_view text);

/// Locale-independent double parse of the full string; nullopt on failure.
/// Inline fast path for plain fixed-point decimals like "100.00" — the
/// dominant shape on the streaming-ingest hot path (2 calls per task
/// record). The mantissa fits in 53 bits and powers of ten up to 1e15 are
/// exact doubles, so the single IEEE division is correctly rounded and the
/// result is bit-identical to what from_chars returns. Anything else falls
/// through to to_double_general.
inline std::optional<double> to_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  constexpr double kPow10[] = {1e0, 1e1, 1e2,  1e3,  1e4,  1e5,  1e6,  1e7,
                               1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15};
  const char* s = text.data();
  std::size_t i = 0;
  bool negative = false;
  if (s[0] == '-') {
    negative = true;
    i = 1;
  }
  unsigned long long mantissa = 0;
  int digits = 0;
  int frac_digits = -1;  ///< -1 until a '.' is seen
  for (; i < text.size(); ++i) {
    const char c = s[i];
    if (c >= '0' && c <= '9') {
      if (++digits > 15) break;
      mantissa = mantissa * 10 + static_cast<unsigned long long>(c - '0');
      if (frac_digits >= 0) ++frac_digits;
    } else if (c == '.' && frac_digits < 0) {
      frac_digits = 0;
    } else {
      break;
    }
  }
  if (i == text.size() && digits > 0 && frac_digits != 0) {
    double value = static_cast<double>(mantissa);
    if (frac_digits > 0) value /= kPow10[frac_digits];
    return negative ? -value : value;
  }
  return to_double_general(text);
}

/// True if every character is an ASCII decimal digit (and text non-empty).
bool all_digits(std::string_view text) noexcept;

/// Fixed-width formatting helpers used by the report printers.
std::string pad_left(std::string_view text, std::size_t width);
std::string pad_right(std::string_view text, std::size_t width);

/// Formats `value` with `decimals` fractional digits ('.' separator).
std::string format_double(double value, int decimals);

}  // namespace cwgl::util

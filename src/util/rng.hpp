#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace cwgl::util {

/// SplitMix64 — a tiny, fast, well-distributed 64-bit generator.
///
/// Used standalone for hashing/seeding and as the seed expander for
/// `Xoshiro256StarStar`. Satisfies `std::uniform_random_bit_generator`.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Advances the state and returns the next 64-bit output.
  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the library's default RNG.
///
/// Deterministic across platforms for a given seed, which the trace
/// generator and every sampling routine rely on for reproducibility.
/// Satisfies `std::uniform_random_bit_generator` so it can drive the
/// standard `<random>` distributions, but the member helpers below are
/// preferred because unlike the standard distributions their outputs are
/// identical across standard-library implementations.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via SplitMix64, per the
  /// reference implementation's recommendation.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x2545F4914F6CDD1DULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform integer in the closed interval [lo, hi]. Precondition: lo <= hi.
  /// Uses Lemire's unbiased bounded rejection method.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform int in [lo, hi] (closed). Precondition: lo <= hi.
  int uniform_int(int lo, int hi) noexcept;

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept;

  /// Bernoulli draw: returns true with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to `weights[i]`. Zero-total weights fall back to index 0.
  std::size_t discrete(std::span<const double> weights) noexcept;

  /// Geometric-like draw: returns lo + G where G ~ Geometric(p), truncated
  /// so the result never exceeds hi. Used for trace size distributions.
  int truncated_geometric(int lo, int hi, double p) noexcept;

  /// Standard normal deviate (Box–Muller, no caching so fully deterministic
  /// per call sequence).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Fisher–Yates shuffle of an index-addressable container.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(0, i - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement
  /// (Floyd's algorithm; order is unspecified but deterministic).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Mixes two 64-bit values into one; stable across platforms. Used to derive
/// independent per-job RNG streams from a master seed.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace cwgl::util

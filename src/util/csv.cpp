#include "util/csv.hpp"

#include <istream>
#include <ostream>
#include <span>

#include "util/error.hpp"

namespace cwgl::util {

bool CsvReader::next(std::vector<std::string>& fields) {
  fields.clear();
  int c = in_.get();
  // Skip a bare trailing newline left by the previous record.
  if (c == std::istream::traits_type::eof()) return false;
  ++record_;
  std::string field;
  bool in_quotes = false;
  bool any = false;
  for (;; c = in_.get()) {
    if (c == std::istream::traits_type::eof()) {
      if (in_quotes) {
        throw ParseError("CSV record " + std::to_string(record_) +
                         ": unterminated quoted field");
      }
      break;
    }
    const char ch = static_cast<char>(c);
    any = true;
    if (in_quotes) {
      if (ch == '"') {
        if (in_.peek() == '"') {
          in_.get();
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
      continue;
    }
    if (ch == '"' && field.empty()) {
      in_quotes = true;
    } else if (ch == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      break;
    } else if (ch == '\r') {
      if (in_.peek() == '\n') in_.get();
      break;
    } else {
      field += ch;
    }
  }
  if (!any && fields.empty() && field.empty()) {
    // Lone EOF after previous newline: no record.
    --record_;
    return false;
  }
  fields.push_back(std::move(field));
  return true;
}

std::size_t for_each_csv_record(
    std::istream& in,
    const std::function<bool(const std::vector<std::string>&)>& fn) {
  CsvReader reader(in);
  std::vector<std::string> fields;
  std::size_t n = 0;
  while (reader.next(fields)) {
    ++n;
    if (!fn(fields)) break;
  }
  return n;
}

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_csv_record(std::ostream& out, std::span<const std::string> fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out << ',';
    out << csv_escape(fields[i]);
  }
  out << '\n';
}

}  // namespace cwgl::util

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"
#include "util/failpoint.hpp"

namespace cwgl::util {

/// Fixed-size worker pool with a single FIFO queue.
///
/// Work items are type-erased `std::move_only_function`-style closures (we
/// use packaged tasks so exceptions propagate through the returned future).
/// The pool joins all workers on destruction after draining the queue; tasks
/// submitted after `shutdown()` throw.
///
/// Observability: every pool reports into the global metrics registry —
/// `pool.task.submitted`/`pool.task.completed` counters and the
/// `pool.queue.depth` gauge (whose max is the queue's high-water mark) are
/// always on; the `pool.task.wait_us`/`pool.task.run_us` latency histograms
/// and the `pool.worker.busy_us` utilization counter additionally need the
/// registry's timing gate (they read clocks).
class ThreadPool {
 public:
  /// Creates `threads` workers. `threads == 0` selects
  /// `std::thread::hardware_concurrency()` (min 1).
  explicit ThreadPool(unsigned threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues `fn(args...)`; the returned future yields its result or
  /// rethrows its exception.
  template <typename F, typename... Args>
  auto submit(F&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    // May throw (error mode): callers must tolerate a submission failing
    // after earlier submissions already queued work against shared state.
    CWGL_FAILPOINT("pool.submit");
    auto task = std::make_shared<std::packaged_task<R()>>(
        [f = std::forward<F>(fn),
         ... a = std::forward<Args>(args)]() mutable -> R {
          return std::invoke(std::move(f), std::move(a)...);
        });
    std::future<R> result = task->get_future();
    QueuedTask item;
    item.run = [task]() { (*task)(); };
    if (metrics_.registry->timing_enabled()) {
      item.enqueued = obs::Stopwatch::clock::now();
    }
    std::size_t depth;
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.push_back(std::move(item));
      depth = queue_.size();
    }
    metrics_.submitted->add();
    metrics_.depth->set(static_cast<std::int64_t>(depth));
    cv_.notify_one();
    return result;
  }

  /// Pops one queued task and runs it on the calling thread; returns false
  /// when the queue is empty. This lets a thread that is blocked waiting on
  /// pool work help drain the queue instead — `parallel_for_chunked` uses
  /// it so nested invocations from inside pool tasks make progress even
  /// when every worker is occupied by a waiting parent task.
  bool run_pending_task();

  /// Stops accepting work and joins workers after the queue drains — tasks
  /// already queued at the time of the call still run to completion.
  /// Idempotent; also called by the destructor.
  void shutdown();

 private:
  /// A queued closure plus its enqueue timestamp (stamped only when the
  /// metrics timing gate is open; a default time_point means "not stamped").
  struct QueuedTask {
    std::function<void()> run;
    obs::Stopwatch::clock::time_point enqueued{};
  };

  /// Instrument handles resolved once at construction so the per-task hot
  /// path is relaxed atomics, never a registry lookup.
  struct Metrics {
    obs::MetricsRegistry* registry;
    obs::Counter* submitted;
    obs::Counter* completed;
    obs::Counter* busy_us;
    obs::Gauge* depth;
    obs::Histogram* wait_us;
    obs::Histogram* run_us;
  };

  void worker_loop();

  /// Dequeue bookkeeping + execution shared by workers and helpers.
  void run_task(QueuedTask&& task);

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  Metrics metrics_;
};

/// Process-wide default pool, lazily created with hardware concurrency.
/// Prefer passing an explicit pool in library code; this exists so the
/// bench/example binaries share workers.
ThreadPool& default_pool();

/// Splits [begin, end) into contiguous chunks of at least `grain` iterations
/// and runs `fn(chunk_begin, chunk_end)` on the pool. Blocks until all
/// chunks finish; the first exception thrown by any chunk is rethrown.
///
/// With a single worker (or end - begin <= grain) the loop runs inline on
/// the calling thread. With more workers the caller "helps": while waiting
/// for its chunks it drains pending pool tasks via `run_pending_task`, so
/// calling re-entrantly from pool tasks is deadlock-free even when every
/// worker is simultaneously inside a nested parallel_for.
void parallel_for_chunked(ThreadPool& pool, std::size_t begin, std::size_t end,
                          std::size_t grain,
                          const std::function<void(std::size_t, std::size_t)>& fn);

/// Work-sized variant of `parallel_for_chunked`: item i of [0, work.size())
/// costs an estimated `work[i]` units, and chunk boundaries are placed so
/// every chunk carries roughly `total_work / chunks` units instead of the
/// same item count. This is what keeps wildly skewed per-item costs (the
/// Gram tiles — a tile's cost is the product of its rows' nnz sums) from
/// serializing behind one overloaded chunk. Negative or non-finite weights
/// are treated as zero. Chunks are contiguous, cover every index exactly
/// once, and run through the same submit + help-while-waiting machinery as
/// `parallel_for_chunked` (same inline fallback for 1-worker pools, same
/// first-exception rethrow, same `pool.chunk` failpoint).
void parallel_for_weighted(ThreadPool& pool, std::span<const double> work,
                           const std::function<void(std::size_t, std::size_t)>& fn);

/// Element-wise convenience wrapper over `parallel_for_chunked`.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

}  // namespace cwgl::util

#include "util/failpoint.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace cwgl::util::failpoint {

namespace {

enum class Mode { Error, Throw, Delay, ShortRead };

struct Site {
  Mode mode = Mode::Error;
  std::uint64_t arg = 0;        ///< delay in microseconds / short-read bytes
  double probability = 1.0;
  std::uint64_t limit = 0;      ///< max triggers; 0 = unlimited
  std::uint64_t visits = 0;
  std::uint64_t triggers = 0;
  Xoshiro256StarStar rng{0};
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, Site> sites;
  bool active = false;          ///< mirrors !sites.empty(), checked unlocked
  bool env_checked = false;
};

Registry& registry() {
  static Registry r;
  return r;
}

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
  throw InvalidArgument("failpoint spec \"" + std::string(spec) + "\": " + why);
}

/// Parses "<mode>[:<arg>][@<prob>][*<limit>]" into `site`.
void parse_action(std::string_view spec, std::string_view action, Site& site) {
  // Split off *limit then @prob, right to left, so mode args keep ':' free.
  if (const auto star = action.rfind('*'); star != std::string_view::npos) {
    const auto limit = to_int(action.substr(star + 1));
    if (!limit || *limit < 1) bad_spec(spec, "bad trigger limit");
    site.limit = static_cast<std::uint64_t>(*limit);
    action = action.substr(0, star);
  }
  if (const auto at = action.rfind('@'); at != std::string_view::npos) {
    const auto prob = to_double(action.substr(at + 1));
    if (!prob || *prob < 0.0 || *prob > 1.0) {
      bad_spec(spec, "probability must be in [0, 1]");
    }
    site.probability = *prob;
    action = action.substr(0, at);
  }
  std::string_view mode = action;
  std::string_view arg;
  if (const auto colon = action.find(':'); colon != std::string_view::npos) {
    mode = action.substr(0, colon);
    arg = action.substr(colon + 1);
  }
  if (mode == "error") {
    site.mode = Mode::Error;
  } else if (mode == "throw") {
    site.mode = Mode::Throw;
  } else if (mode == "delay") {
    site.mode = Mode::Delay;
    site.arg = 1000;  // default 1ms
    if (!arg.empty()) {
      std::uint64_t unit = 1000;
      if (arg.size() >= 2 && arg.substr(arg.size() - 2) == "us") {
        unit = 1;
        arg = arg.substr(0, arg.size() - 2);
      } else if (arg.size() >= 2 && arg.substr(arg.size() - 2) == "ms") {
        arg = arg.substr(0, arg.size() - 2);
      }
      const auto n = to_int(arg);
      if (!n || *n < 0) bad_spec(spec, "bad delay duration");
      site.arg = static_cast<std::uint64_t>(*n) * unit;
    }
  } else if (mode == "short-read") {
    site.mode = Mode::ShortRead;
    site.arg = 1;
    if (!arg.empty()) {
      const auto n = to_int(arg);
      if (!n || *n < 1) bad_spec(spec, "bad short-read size");
      site.arg = static_cast<std::uint64_t>(*n);
    }
  } else {
    bad_spec(spec, "unknown mode \"" + std::string(mode) + "\"");
  }
}

std::unordered_map<std::string, Site> parse_spec(std::string_view spec) {
  std::unordered_map<std::string, Site> sites;
  std::uint64_t seed = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto semi = spec.find(';', pos);
    std::string_view entry = spec.substr(
        pos, semi == std::string_view::npos ? std::string_view::npos
                                            : semi - pos);
    pos = semi == std::string_view::npos ? spec.size() + 1 : semi + 1;
    entry = trim(entry);
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      bad_spec(spec, "expected <site>=<action>");
    }
    const std::string_view name = trim(entry.substr(0, eq));
    const std::string_view action = trim(entry.substr(eq + 1));
    if (name == "seed") {
      const auto s = to_int(action);
      if (!s) bad_spec(spec, "bad seed");
      seed = static_cast<std::uint64_t>(*s);
      continue;
    }
    Site site;
    parse_action(spec, action, site);
    sites.emplace(std::string(name), site);
  }
  // Per-site streams derive from (seed, site name) so adding one site never
  // perturbs another site's trigger sequence.
  for (auto& [name, site] : sites) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : name) {
      h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    }
    site.rng = Xoshiro256StarStar(hash_combine(seed, h));
  }
  return sites;
}

void install(std::unordered_map<std::string, Site> sites) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  r.sites = std::move(sites);
  r.active = !r.sites.empty();
  r.env_checked = true;  // explicit configuration wins over the environment
}

/// Reads CWGL_FAILPOINTS once, the first time any site is consulted without
/// a prior configure() call — so binaries pick up faults with no code change.
void ensure_env_loaded() {
  Registry& r = registry();
  {
    std::lock_guard lock(r.mutex);
    if (r.env_checked) return;
    r.env_checked = true;
  }
  const char* env = std::getenv("CWGL_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  auto sites = parse_spec(env);
  std::lock_guard lock(r.mutex);
  r.sites = std::move(sites);
  r.active = !r.sites.empty();
}

/// Decides whether `site` fires on this visit; returns the action to take.
/// nullopt = pass through. Delay durations are returned so the sleep happens
/// outside the registry lock.
struct Fired {
  Mode mode;
  std::uint64_t arg;
  std::string site;
};
std::optional<Fired> visit(const char* name, bool clamp_site) {
  Registry& r = registry();
  if (!r.active) return std::nullopt;
  std::lock_guard lock(r.mutex);
  const auto it = r.sites.find(name);
  if (it == r.sites.end()) return std::nullopt;
  Site& site = it->second;
  // A short-read site only acts at CLAMP points and vice versa, so one name
  // can guard both the control path (hit) and the size path (clamp).
  if ((site.mode == Mode::ShortRead) != clamp_site) return std::nullopt;
  ++site.visits;
  if (site.limit != 0 && site.triggers >= site.limit) return std::nullopt;
  if (site.probability < 1.0 && !site.rng.bernoulli(site.probability)) {
    return std::nullopt;
  }
  ++site.triggers;
  return Fired{site.mode, site.arg, it->first};
}

}  // namespace

void configure(std::string_view spec) { install(parse_spec(spec)); }

void clear() { install({}); }

bool configured(std::string_view site) {
  ensure_env_loaded();
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  return r.sites.find(std::string(site)) != r.sites.end();
}

void hit(const char* site) {
  ensure_env_loaded();
  const auto fired = visit(site, /*clamp_site=*/false);
  if (!fired) return;
  switch (fired->mode) {
    case Mode::Error:
      throw FailpointError("failpoint " + fired->site + ": injected error");
    case Mode::Throw:
      throw std::runtime_error("failpoint " + fired->site +
                               ": injected foreign exception");
    case Mode::Delay:
      std::this_thread::sleep_for(std::chrono::microseconds(fired->arg));
      return;
    case Mode::ShortRead:
      return;  // unreachable: filtered in visit()
  }
}

std::size_t clamp(const char* site, std::size_t n) {
  ensure_env_loaded();
  const auto fired = visit(site, /*clamp_site=*/true);
  if (!fired) return n;
  return std::min(n, static_cast<std::size_t>(std::max<std::uint64_t>(
                         1, fired->arg)));
}

std::vector<SiteReport> report() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::vector<SiteReport> out;
  out.reserve(r.sites.size());
  for (const auto& [name, site] : r.sites) {
    out.push_back({name, site.visits, site.triggers});
  }
  std::sort(out.begin(), out.end(),
            [](const SiteReport& a, const SiteReport& b) {
              return a.site < b.site;
            });
  return out;
}

}  // namespace cwgl::util::failpoint

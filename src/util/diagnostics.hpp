#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cwgl::util {

/// Thread-safe structured sink for quarantine/degradation events.
///
/// Every stage of the fault-tolerant pipeline (CSV scan, row parse, DAG
/// build, clustering) reports what it had to drop or work around as a
/// (stage, kind) counter plus a bounded sample of offending records — enough
/// to audit a dirty trace without unbounded memory. One Diagnostics instance
/// is shared across the reader and all worker threads of an ingest.
class Diagnostics {
 public:
  /// `max_samples` bounds how many example records are kept per
  /// (stage, kind); further records only bump the counter.
  explicit Diagnostics(std::size_t max_samples = 8) : max_samples_(max_samples) {}

  Diagnostics(const Diagnostics&) = delete;
  Diagnostics& operator=(const Diagnostics&) = delete;

  /// Bumps (stage, kind) by `n` without attaching a sample.
  void count(std::string_view stage, std::string_view kind, std::uint64_t n = 1);

  /// Bumps (stage, kind) and keeps `sample` (truncated to ~160 bytes) while
  /// fewer than `max_samples` examples are stored for that key.
  void record(std::string_view stage, std::string_view kind,
              std::string_view sample);

  /// Sum of every counter.
  std::uint64_t total() const;

  /// Counter for one (stage, kind); 0 when never reported.
  std::uint64_t count_of(std::string_view stage, std::string_view kind) const;

  bool empty() const { return total() == 0; }

  struct Entry {
    std::string stage;
    std::string kind;
    std::uint64_t count = 0;
    std::vector<std::string> samples;
  };

  /// Snapshot of all entries, sorted by (stage, kind).
  std::vector<Entry> entries() const;

  /// Human-readable report, one line per (stage, kind) plus indented samples.
  void write_text(std::ostream& out) const;

  /// Machine-readable report: {"total": N, "entries": [{stage, kind, count,
  /// samples}, ...]}.
  void write_json(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<std::string, std::string>, Entry> entries_;
  std::size_t max_samples_;
};

}  // namespace cwgl::util

#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace cwgl::util {

void JsonWriter::before_value() {
  if (stack_.empty()) {
    if (root_written_) {
      throw InvalidArgument("JsonWriter: multiple root values");
    }
    root_written_ = true;
    return;
  }
  Frame& top = stack_.back();
  if (top == Frame::Object) {
    throw InvalidArgument("JsonWriter: value inside object requires key()");
  }
  if (top == Frame::ObjectAwaitingValue) {
    top = Frame::Object;
    return;  // comma already handled by key()
  }
  // Array element.
  if (!first_.back()) out_ << ',';
  first_.back() = false;
}

void JsonWriter::begin_object() {
  before_value();
  stack_.push_back(Frame::Object);
  first_.push_back(true);
  out_ << '{';
}

void JsonWriter::end_object() {
  if (stack_.empty() || (stack_.back() != Frame::Object)) {
    throw InvalidArgument("JsonWriter: end_object without open object");
  }
  stack_.pop_back();
  first_.pop_back();
  out_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  stack_.push_back(Frame::Array);
  first_.push_back(true);
  out_ << '[';
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::Array) {
    throw InvalidArgument("JsonWriter: end_array without open array");
  }
  stack_.pop_back();
  first_.pop_back();
  out_ << ']';
}

void JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != Frame::Object) {
    throw InvalidArgument("JsonWriter: key() outside object");
  }
  if (!first_.back()) out_ << ',';
  first_.back() = false;
  write_escaped(name);
  out_ << ':';
  stack_.back() = Frame::ObjectAwaitingValue;
}

void JsonWriter::value(std::string_view text) {
  before_value();
  write_escaped(text);
}

void JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ << "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.12g", number);
  out_ << buffer;
}

void JsonWriter::value(long long number) {
  before_value();
  out_ << number;
}

void JsonWriter::value(unsigned long long number) {
  before_value();
  out_ << number;
}

void JsonWriter::value(bool flag) {
  before_value();
  out_ << (flag ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  out_ << "null";
}

bool JsonWriter::complete() const noexcept {
  return stack_.empty() && root_written_;
}

void JsonWriter::write_escaped(std::string_view text) {
  out_ << '"';
  for (char c : text) {
    switch (c) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\n': out_ << "\\n"; break;
      case '\r': out_ << "\\r"; break;
      case '\t': out_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out_ << buffer;
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
}

}  // namespace cwgl::util

#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace cwgl::util {

void JsonWriter::before_value() {
  if (stack_.empty()) {
    if (root_written_) {
      throw InvalidArgument("JsonWriter: multiple root values");
    }
    root_written_ = true;
    return;
  }
  Frame& top = stack_.back();
  if (top == Frame::Object) {
    throw InvalidArgument("JsonWriter: value inside object requires key()");
  }
  if (top == Frame::ObjectAwaitingValue) {
    top = Frame::Object;
    return;  // comma already handled by key()
  }
  // Array element.
  if (!first_.back()) out_ << ',';
  first_.back() = false;
}

void JsonWriter::begin_object() {
  before_value();
  stack_.push_back(Frame::Object);
  first_.push_back(true);
  out_ << '{';
}

void JsonWriter::end_object() {
  if (stack_.empty() || (stack_.back() != Frame::Object)) {
    throw InvalidArgument("JsonWriter: end_object without open object");
  }
  stack_.pop_back();
  first_.pop_back();
  out_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  stack_.push_back(Frame::Array);
  first_.push_back(true);
  out_ << '[';
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::Array) {
    throw InvalidArgument("JsonWriter: end_array without open array");
  }
  stack_.pop_back();
  first_.pop_back();
  out_ << ']';
}

void JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != Frame::Object) {
    throw InvalidArgument("JsonWriter: key() outside object");
  }
  if (!first_.back()) out_ << ',';
  first_.back() = false;
  write_escaped(name);
  out_ << ':';
  stack_.back() = Frame::ObjectAwaitingValue;
}

void JsonWriter::value(std::string_view text) {
  before_value();
  write_escaped(text);
}

void JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ << "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.12g", number);
  out_ << buffer;
}

void JsonWriter::value(long long number) {
  before_value();
  out_ << number;
}

void JsonWriter::value(unsigned long long number) {
  before_value();
  out_ << number;
}

void JsonWriter::value(bool flag) {
  before_value();
  out_ << (flag ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  out_ << "null";
}

void JsonWriter::raw(std::string_view json) {
  before_value();
  out_ << json;
}

bool JsonWriter::complete() const noexcept {
  return stack_.empty() && root_written_;
}

bool JsonValue::as_bool() const {
  if (const bool* b = std::get_if<bool>(&data_)) return *b;
  throw InvalidArgument("JsonValue: not a bool");
}

double JsonValue::as_number() const {
  if (const double* d = std::get_if<double>(&data_)) return *d;
  throw InvalidArgument("JsonValue: not a number");
}

const std::string& JsonValue::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&data_)) return *s;
  throw InvalidArgument("JsonValue: not a string");
}

const JsonValue::Array& JsonValue::as_array() const {
  if (const Array* a = std::get_if<Array>(&data_)) return *a;
  throw InvalidArgument("JsonValue: not an array");
}

const JsonValue::Object& JsonValue::as_object() const {
  if (const Object* o = std::get_if<Object>(&data_)) return *o;
  throw InvalidArgument("JsonValue: not an object");
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (const JsonValue* v = find(key)) return *v;
  throw InvalidArgument("JsonValue: missing key \"" + std::string(key) + "\"");
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  const Object* o = std::get_if<Object>(&data_);
  if (o == nullptr) return nullptr;
  const auto it = o->find(key);
  return it != o->end() ? &it->second : nullptr;
}

bool JsonValue::contains(std::string_view key) const noexcept {
  return find(key) != nullptr;
}

namespace {

/// Recursive-descent parser over an in-memory document. Depth is bounded to
/// keep adversarial inputs from overflowing the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("JSON at byte " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': v = parse_object(); break;
      case '[': v = parse_array(); break;
      case '"': v = JsonValue(parse_string()); break;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        v = JsonValue(true);
        break;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        v = JsonValue(false);
        break;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        break;
      default: v = parse_number(); break;
    }
    --depth_;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array elements;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(elements));
    }
    for (;;) {
      elements.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue(std::move(elements));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    unsigned cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: a low surrogate must follow for a full code point.
      if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
          text_[pos_ + 1] == 'u') {
        pos_ += 2;
        const unsigned lo = parse_hex4();
        if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
      } else {
        fail("unpaired surrogate");
      }
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // leading zero must stand alone
    } else {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid number: digit must follow '.'");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid number: digit must follow exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

namespace {

void write_value(JsonWriter& j, const JsonValue& v) {
  if (v.is_null()) {
    j.null();
  } else if (v.is_bool()) {
    j.value(v.as_bool());
  } else if (v.is_number()) {
    const double d = v.as_number();
    // Integral doubles inside the 2^53 exact window print as integers so
    // counters round-trip without picking up a fraction or an exponent.
    if (std::isfinite(d) && std::nearbyint(d) == d &&
        std::fabs(d) <= 9007199254740992.0) {
      j.value(static_cast<long long>(d));
    } else {
      j.value(d);
    }
  } else if (v.is_string()) {
    j.value(v.as_string());
  } else if (v.is_array()) {
    j.begin_array();
    for (const JsonValue& element : v.as_array()) write_value(j, element);
    j.end_array();
  } else {
    j.begin_object();
    for (const auto& [key, member] : v.as_object()) {
      j.key(key);
      write_value(j, member);
    }
    j.end_object();
  }
}

}  // namespace

void write_json(std::ostream& out, const JsonValue& v) {
  JsonWriter j(out);
  write_value(j, v);
}

std::string to_json_string(const JsonValue& v) {
  std::ostringstream out;
  write_json(out, v);
  return out.str();
}

void JsonWriter::write_escaped(std::string_view text) {
  out_ << '"';
  for (char c : text) {
    switch (c) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\n': out_ << "\\n"; break;
      case '\r': out_ << "\\r"; break;
      case '\t': out_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out_ << buffer;
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
}

}  // namespace cwgl::util
